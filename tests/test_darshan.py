"""Tests for the Darshan substrate: counters, instrumentation, text I/O."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.darshan.counters import (
    MODULE_COUNTERS,
    SIZE_BIN_EDGES,
    SIZE_BIN_SUFFIXES,
    size_bin_index,
    size_counters,
)
from repro.darshan.instrument import DarshanInstrument
from repro.darshan.log import MODULE_ORDER
from repro.darshan.parser import (
    DarshanParseError,
    parse_darshan_text,
    parse_darshan_text_with_report,
)
from repro.darshan.records import DarshanRecord, record_id_for
from repro.darshan.writer import render_darshan_text
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import IORuntime, JobSpec
from repro.util.units import MiB


class TestCounters:
    def test_size_bins_cover_examples(self):
        assert SIZE_BIN_SUFFIXES[size_bin_index(0)] == "0_100"
        assert SIZE_BIN_SUFFIXES[size_bin_index(47008)] == "10K_100K"
        assert SIZE_BIN_SUFFIXES[size_bin_index(MiB)] == "1M_4M"
        assert SIZE_BIN_SUFFIXES[size_bin_index(2 * 1024**3)] == "1G_PLUS"

    @given(st.integers(min_value=0, max_value=2**40))
    def test_size_bin_index_in_range(self, size):
        idx = size_bin_index(size)
        assert 0 <= idx < len(SIZE_BIN_SUFFIXES)
        # Lower bin edges are inclusive (bisect_right semantics).
        if idx > 0:
            assert size >= SIZE_BIN_EDGES[idx - 1]
        if idx < len(SIZE_BIN_EDGES):
            assert size < SIZE_BIN_EDGES[idx]

    def test_size_bin_rejects_negative(self):
        with pytest.raises(ValueError):
            size_bin_index(-1)

    def test_size_counters_naming(self):
        names = size_counters("POSIX", "READ")
        assert names[0] == "POSIX_SIZE_READ_0_100"
        assert len(names) == 10
        agg = size_counters("MPIIO", "WRITE", agg=True)
        assert agg[-1] == "MPIIO_SIZE_WRITE_AGG_1G_PLUS"

    def test_every_module_declares_counters(self):
        for module in MODULE_ORDER:
            assert MODULE_COUNTERS[module]


class TestRecords:
    def test_record_id_stable_and_positive(self):
        assert record_id_for("/scratch/a") == record_id_for("/scratch/a")
        assert record_id_for("/scratch/a") > 0

    def test_shared_flag(self):
        assert DarshanRecord(module="POSIX", path="/f", rank=-1).shared
        assert not DarshanRecord(module="POSIX", path="/f", rank=0).shared

    def test_get_spans_both_tables(self):
        rec = DarshanRecord(module="POSIX", path="/f", rank=0)
        rec.counters["POSIX_READS"] = 3
        rec.fcounters["POSIX_F_READ_TIME"] = 1.5
        assert rec.get("POSIX_READS") == 3
        assert rec.get("POSIX_F_READ_TIME") == 1.5
        assert rec.get("MISSING", 7) == 7


def _run_instrumented(ops, nprocs=4, **fs_kwargs):
    fs = LustreFileSystem(seed=2, **fs_kwargs)
    spec = JobSpec(exe="/bin/x", nprocs=nprocs, jobid=9)
    rt = IORuntime(spec, fs)
    inst = DarshanInstrument(spec, fs)
    rt.add_observer(inst)
    result = rt.run(ops)
    return inst.finalize(result.runtime)


class TestInstrument:
    def test_sequential_and_consecutive_detection(self):
        ops = [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=i * 4096, size=4096) for i in range(10)]
        log = _run_instrumented(ops, nprocs=1)
        rec = log.records_for("POSIX")[0]
        assert rec.counters["POSIX_WRITES"] == 10
        assert rec.counters["POSIX_CONSEC_WRITES"] == 9  # first op has no predecessor
        assert rec.counters["POSIX_SEQ_WRITES"] == 9

    def test_gapped_writes_are_seq_but_not_consec(self):
        ops = [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=i * 8192, size=4096) for i in range(10)]
        log = _run_instrumented(ops, nprocs=1)
        rec = log.records_for("POSIX")[0]
        assert rec.counters["POSIX_SEQ_WRITES"] == 9
        assert rec.counters["POSIX_CONSEC_WRITES"] == 0

    def test_rw_switch_counting(self):
        ops = []
        for i in range(4):
            kind = OpKind.WRITE if i % 2 == 0 else OpKind.READ
            ops.append(IOOp(kind=kind, api=API.POSIX, rank=0, path="/scratch/f", offset=i * 4096, size=4096))
        log = _run_instrumented(ops, nprocs=1)
        assert log.records_for("POSIX")[0].counters["POSIX_RW_SWITCHES"] == 3

    def test_alignment_counters(self):
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=17, size=100, mem_aligned=False),
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=4096, size=100),
        ]
        log = _run_instrumented(ops, nprocs=1)
        rec = log.records_for("POSIX")[0]
        assert rec.counters["POSIX_FILE_NOT_ALIGNED"] == 1
        assert rec.counters["POSIX_MEM_NOT_ALIGNED"] == 1
        assert rec.counters["POSIX_FILE_ALIGNMENT"] == 4096

    def test_size_histogram_binning(self):
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=50),
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=50, size=47008),
        ]
        log = _run_instrumented(ops, nprocs=1)
        rec = log.records_for("POSIX")[0]
        assert rec.counters["POSIX_SIZE_WRITE_0_100"] == 1
        assert rec.counters["POSIX_SIZE_WRITE_10K_100K"] == 1

    def test_shared_file_reduction(self):
        ops = []
        for r in range(4):
            ops.append(IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=r, path="/scratch/s", offset=r * MiB, size=MiB))
        log = _run_instrumented(ops)
        rec = log.records_for("POSIX")[0]
        assert rec.rank == -1  # shared record
        assert rec.counters["POSIX_FASTEST_RANK_BYTES"] == MiB
        assert rec.fcounters["POSIX_F_SLOWEST_RANK_TIME"] > 0

    def test_single_rank_record_keeps_rank(self):
        ops = [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=2, path="/scratch/own", offset=0, size=100)]
        log = _run_instrumented(ops)
        assert log.records_for("POSIX")[0].rank == 2

    def test_common_access_sizes(self):
        ops = [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=i * 1000, size=1000) for i in range(5)]
        ops.append(IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=5000, size=77))
        log = _run_instrumented(ops, nprocs=1)
        rec = log.records_for("POSIX")[0]
        assert rec.counters["POSIX_ACCESS1_ACCESS"] == 1000
        assert rec.counters["POSIX_ACCESS1_COUNT"] == 5

    def test_lustre_record_created_with_layout(self):
        ops = [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=MiB)]
        log = _run_instrumented(ops, nprocs=1, default_stripe_width=2, num_osts=8)
        lrec = log.records_for("LUSTRE")[0]
        assert lrec.counters["LUSTRE_STRIPE_WIDTH"] == 2
        assert lrec.counters["LUSTRE_OSTS"] == 8
        assert "LUSTRE_OST_ID_1" in lrec.counters

    def test_metadata_time_accumulates(self):
        ops = [
            IOOp(kind=OpKind.OPEN, api=API.POSIX, rank=0, path="/scratch/f"),
            IOOp(kind=OpKind.STAT, api=API.POSIX, rank=0, path="/scratch/f"),
            IOOp(kind=OpKind.CLOSE, api=API.POSIX, rank=0, path="/scratch/f"),
        ]
        log = _run_instrumented(ops, nprocs=1)
        rec = log.records_for("POSIX")[0]
        assert rec.fcounters["POSIX_F_META_TIME"] > 0
        assert rec.counters["POSIX_OPENS"] == 1
        assert rec.counters["POSIX_STATS"] == 1

    def test_mpiio_collective_counters(self):
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.MPIIO, rank=r, path="/scratch/c", offset=r * MiB, size=MiB, collective=True)
            for r in range(4)
        ]
        log = _run_instrumented(ops)
        rec = log.records_for("MPIIO")[0]
        assert rec.counters["MPIIO_COLL_WRITES"] == 4
        assert rec.counters["MPIIO_INDEP_WRITES"] == 0


class TestTextRoundTrip:
    def test_round_trip_preserves_everything(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log)
        log2 = parse_darshan_text(text)
        assert log2.header.nprocs == sb01_trace.log.header.nprocs
        assert log2.header.jobid == sb01_trace.log.header.jobid
        assert len(log2.records) == len(sb01_trace.log.records)
        orig = {(r.module, r.path): r for r in sb01_trace.log.records}
        for rec in log2.records:
            o = orig[(rec.module, rec.path)]
            assert rec.rank == o.rank
            assert rec.counters == o.counters

    def test_module_section_order(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log)
        posix_pos = text.index("POSIX module data")
        mpiio_pos = text.index("MPI-IO module data")
        lustre_pos = text.index("LUSTRE module data")
        assert posix_pos < mpiio_pos < lustre_pos  # MPI-IO in the latter half

    def test_parser_rejects_malformed_rows(self):
        with pytest.raises(DarshanParseError):
            parse_darshan_text("POSIX\t0\tbroken line without enough fields\n")

    def test_parser_requires_header(self):
        with pytest.raises(DarshanParseError):
            parse_darshan_text("# exe: /bin/x\n")

    def test_parser_tolerates_comments_and_blanks(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log)
        noisy = text.replace("\n\n", "\n# stray comment\n\n", 1)
        assert parse_darshan_text(noisy).header.exe == sb01_trace.log.header.exe


class TestDamagedText:
    """Edge cases for both parser postures: strict raises, lenient counts."""

    def test_empty_dxt_section(self, sb01_trace):
        # A DXT marker with no segment lines is valid in both postures:
        # the temporal channel is simply absent, not an error.
        text = render_darshan_text(sb01_trace.log) + "# DXT trace\n"
        for lenient in (False, True):
            log, report = parse_darshan_text_with_report(text, lenient=lenient)
            assert log.dxt_segments is None
            assert report.dxt_lines == 0
            assert report.clean

    def test_trailing_garbage_after_last_record(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log) + "?? trailing garbage ??\n"
        with pytest.raises(DarshanParseError):
            parse_darshan_text(text)
        log, report = parse_darshan_text_with_report(text, lenient=True)
        assert len(log.records) == len(sb01_trace.log.records)
        assert report.skipped_count == 1
        assert report.skipped[0].text == "?? trailing garbage ??"
        assert "8 tab-separated fields" in report.skipped[0].reason

    def test_mid_line_truncation(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log).rstrip("\n")
        truncated = text[: len(text) - len(text.rsplit("\t", 2)[-1]) - 4]
        with pytest.raises(DarshanParseError):
            parse_darshan_text(truncated)
        log, report = parse_darshan_text_with_report(truncated, lenient=True)
        # Only the cut line is lost; every intact record survives.
        assert report.skipped_count == 1
        assert len(log.records) >= len(sb01_trace.log.records) - 1

    def test_dxt_garbage_lineno_offsets_into_full_text(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log, include_dxt=True)
        assert "# DXT trace" in text  # the fixture trace carries segments
        damaged = text + "POSIX garbled \x00 segment line\n"
        with pytest.raises(DarshanParseError):
            parse_darshan_text(damaged)
        log, report = parse_darshan_text_with_report(damaged, lenient=True)
        assert log.dxt_segments is not None
        assert report.skipped_count == 1
        # The skipped lineno is positioned in the *full* text, not the
        # DXT sub-text, so diagnostics point at the real line.
        assert report.skipped[0].lineno == len(damaged.splitlines())

    def test_strict_round_trip_report_is_clean(self, sb01_trace):
        text = render_darshan_text(sb01_trace.log, include_dxt=True)
        log, report = parse_darshan_text_with_report(text)
        assert report.clean
        assert report.record_lines > 0
        assert report.dxt_lines == len(log.dxt_segments)

    def test_missing_header_raises_even_lenient(self):
        with pytest.raises(DarshanParseError, match="missing header fields"):
            parse_darshan_text_with_report("# exe: /bin/x\n", lenient=True)
