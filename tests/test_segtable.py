"""Columnar DXT segment store + vectorized kernel equivalence (PR 4).

Covers: the :class:`SegmentTable` / :class:`SegmentTableBuilder` pair and
their lazy per-segment view, the chunk-buffered collector, the
golden-equivalence guarantee (vectorized kernels reproduce the scalar
PR 3 facts on the pinned temporal fixtures), property checks on
randomized segment tables against the scalar reference, the timeline
masking fix, and the DXT text round trip (``parse_dxt_text`` +
``render_darshan_text(include_dxt=True)``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.darshan.dxt import (
    DxtCollector,
    DxtSegment,
    app_level_segments,
    dxt_digest,
    dxt_temporal_facts,
    dxt_timeline_facts,
    parse_dxt_text,
    render_dxt_text,
)
from repro.darshan.dxt_reference import (
    scalar_app_level_segments,
    scalar_temporal_facts,
)
from repro.darshan.parser import parse_darshan_text
from repro.darshan.segtable import (
    SegmentTable,
    SegmentTableBuilder,
    as_table,
)
from repro.darshan.writer import render_darshan_text
from repro.sim.ops import API, IOOp, OpKind
from repro.workloads.scenarios import build_scenario

EQUIVALENCE_SCENARIOS = (
    "path04-straggler-rank",
    "path14-lock-convoy",
    "path16-slow-ost-hotspot",
    "path17-producer-consumer",
)


@pytest.fixture(scope="module")
def equivalence_traces():
    return {name: build_scenario(name, seed=0) for name in EQUIVALENCE_SCENARIOS}


def _make_segments(n: int, seed: int, *, zero_lengths: bool = False) -> list[DxtSegment]:
    """Randomized segments exercising every kernel: multiple ranks, files,
    op kinds, MPIIO->POSIX lowering, overlapping and tied intervals."""
    rng = np.random.default_rng(seed)
    segments = []
    for _ in range(n):
        path_idx = int(rng.integers(0, 9))
        lowered = path_idx < 3 and rng.random() < 0.5
        module = "X_MPIIO" if path_idx < 3 and not lowered else "X_POSIX"
        # Quantized times create exact start/end ties across segments.
        start = round(float(rng.uniform(0.0, 30.0)), 2)
        duration = round(float(rng.uniform(0.0, 1.0)), 2)
        length = 0 if zero_lengths and rng.random() < 0.3 else int(rng.integers(1, 1 << 20))
        segments.append(
            DxtSegment(
                module=module,
                rank=int(rng.integers(0, 8)),
                path=f"/scratch/rand/f{path_idx}",
                operation="read" if rng.random() < 0.4 else "write",
                offset=int(rng.integers(0, 1 << 30)),
                length=length,
                start_time=start,
                end_time=start + duration,
            )
        )
    return segments


def _assert_facts_equivalent(vec_facts, ref_facts, rel=1e-9):
    vec = {f.kind: f.data for f in vec_facts}
    ref = {f.kind: f.data for f in ref_facts}
    assert vec.keys() == ref.keys()
    for kind, ref_data in ref.items():
        vec_data = vec[kind]
        assert vec_data.keys() == ref_data.keys(), kind
        for field, expected in ref_data.items():
            got = vec_data[field]
            if isinstance(expected, float):
                assert got == pytest.approx(expected, rel=rel, abs=1e-9), f"{kind}.{field}"
            else:
                assert got == expected, f"{kind}.{field}"


class TestSegmentTable:
    def test_builder_round_trip_across_chunks(self):
        segments = _make_segments(20, seed=1)
        builder = SegmentTableBuilder(chunk=8)  # force multiple chunks
        for s in segments:
            builder.append(
                s.module, s.rank, s.path, s.operation,
                s.offset, s.length, s.start_time, s.end_time,
            )
        table = builder.build()
        assert len(table) == 20
        assert list(table) == segments

    def test_from_segments_matches_builder(self):
        segments = _make_segments(50, seed=2)
        assert list(SegmentTable.from_segments(segments)) == segments

    def test_getitem_and_slice(self):
        segments = _make_segments(10, seed=3)
        table = SegmentTable.from_segments(segments)
        assert table[0] == segments[0]
        assert table[-1] == segments[-1]
        with pytest.raises(IndexError):
            table[10]
        sliced = table[2:5]
        assert isinstance(sliced, SegmentTable)
        assert list(sliced) == segments[2:5]

    def test_take_shares_dictionaries(self):
        table = SegmentTable.from_segments(_make_segments(30, seed=4))
        subset = table.take(table.op_code == 0)
        assert subset.paths is table.paths
        assert all(s.operation == "read" for s in subset)

    def test_as_table_passthrough_and_empty(self):
        table = SegmentTable.from_segments(_make_segments(5, seed=5))
        assert as_table(table) is table
        assert len(as_table(None)) == 0
        assert len(as_table([])) == 0
        assert not as_table([])  # falsy, like the old empty list

    def test_digest_stable_and_content_sensitive(self):
        segments = _make_segments(25, seed=6)
        table = SegmentTable.from_segments(segments)
        assert table.digest() == SegmentTable.from_segments(segments).digest()
        assert dxt_digest(table) == table.digest()  # list/table entry points agree
        bumped = segments[:12] + [
            DxtSegment(
                module=segments[12].module,
                rank=segments[12].rank,
                path=segments[12].path,
                operation=segments[12].operation,
                offset=segments[12].offset,
                length=segments[12].length + 1,
                start_time=segments[12].start_time,
                end_time=segments[12].end_time,
            )
        ] + segments[13:]
        assert SegmentTable.from_segments(bumped).digest() != table.digest()

    def test_durations_column(self):
        table = SegmentTable.from_segments(_make_segments(8, seed=7))
        for i, seg in enumerate(table):
            assert table.durations[i] == pytest.approx(seg.duration)


class TestCollector:
    def _ingest(self, collector, n=10, rank=0):
        for i in range(n):
            op = IOOp(
                kind=OpKind.WRITE, api=API.POSIX, rank=rank,
                path="/scratch/c", offset=i * 100, size=100,
            )
            collector.on_op(op, float(i), float(i) + 0.5, None)

    def test_collector_builds_a_table(self):
        collector = DxtCollector()
        self._ingest(collector, n=7)
        table = collector.segments
        assert isinstance(table, SegmentTable)
        assert len(table) == 7
        assert table[3].offset == 300

    def test_segments_memoized_per_count(self):
        collector = DxtCollector()
        self._ingest(collector, n=3)
        first = collector.segments
        assert collector.segments is first  # no new ops -> same table
        self._ingest(collector, n=1)
        assert len(collector.segments) == 4

    def test_max_segments_still_counts_drops(self):
        collector = DxtCollector(max_segments=5)
        self._ingest(collector, n=9)
        assert len(collector.segments) == 5
        assert collector.dropped == 4


class TestGoldenEquivalence:
    """The vectorized kernels reproduce the exact PR 3 scalar facts on the
    pinned temporal-tier fixtures (same Fact kinds, same values)."""

    @pytest.mark.parametrize("name", EQUIVALENCE_SCENARIOS)
    def test_scenario_facts_match_scalar_reference(self, equivalence_traces, name):
        table = equivalence_traces[name].log.dxt_segments
        _assert_facts_equivalent(
            dxt_temporal_facts(table), scalar_temporal_facts(list(table))
        )

    def test_app_level_matches_scalar_reference(self):
        trace = build_scenario("path08-tiny-collectives", seed=0)
        table = trace.log.dxt_segments
        assert list(app_level_segments(table)) == scalar_app_level_segments(list(table))


class TestPropertyEquivalence:
    @pytest.mark.parametrize("n,seed", [(1, 10), (3, 11), (64, 12), (257, 13), (2000, 14)])
    def test_random_tables_match_scalar_reference(self, n, seed):
        segments = _make_segments(n, seed=seed)
        _assert_facts_equivalent(
            dxt_temporal_facts(segments), scalar_temporal_facts(segments), rel=1e-7
        )

    @pytest.mark.parametrize("seed", [20, 21])
    def test_random_app_level_matches_scalar(self, seed):
        segments = _make_segments(500, seed=seed)
        assert list(app_level_segments(segments)) == scalar_app_level_segments(segments)

    def test_file_skew_bucket_tie_keeps_first_touched_bucket(self):
        """Two size buckets with exactly equal total bytes: both sweeps
        must keep the bucket whose first eligible file was touched first
        (dict-insertion-order max), not the numerically smaller bucket."""

        def file_stream(path, mean_size, t0):
            return [
                DxtSegment("X_POSIX", 0, path, "write", i * mean_size, mean_size,
                           t0 + i * 0.01, t0 + i * 0.01 + 0.004)
                for i in range(8)
            ]

        segments = []
        # 4 files at 256 KiB mean touched first, 4 files at 64 KiB mean
        # after — equal 2 MiB per file, equal 8 MiB per bucket.
        for k in range(4):
            segments += file_stream(f"/s/big{k}", 256 * 1024, t0=k * 1.0)
        for k in range(4):
            segments += file_stream(f"/s/small{k}", 64 * 1024, t0=10.0 + k * 1.0)
        _assert_facts_equivalent(
            dxt_temporal_facts(segments), scalar_temporal_facts(segments)
        )
        skew = {f.kind: f.data for f in dxt_temporal_facts(segments)}["dxt_file_skew"]
        assert skew["slow_path"].startswith("/s/big")


class TestTimelineMaskingFix:
    def test_zero_byte_reads_still_count_as_a_phase(self):
        """Reads with segments but zero bytes used to vanish from the phase
        signature (and the list-comprehension masks risked NaN averages);
        op-kind presence now decides, with explicit empty guards."""
        segments = [
            DxtSegment("X_POSIX", 0, "/scratch/z", "read", 0, 0, 0.0, 0.1),
            DxtSegment("X_POSIX", 0, "/scratch/z", "read", 0, 0, 0.2, 0.3),
            DxtSegment("X_POSIX", 0, "/scratch/z", "write", 0, 4096, 1.0, 1.1),
        ]
        (fact,) = dxt_timeline_facts(segments)
        assert fact.data["phase"] == "read-then-write"
        assert all(
            not (isinstance(v, float) and math.isnan(v)) for v in fact.data.values()
        )

    def test_single_op_kind_phases(self):
        writes = [DxtSegment("X_POSIX", 0, "/s/f", "write", 0, 10, 0.0, 0.1)]
        reads = [DxtSegment("X_POSIX", 0, "/s/f", "read", 0, 0, 0.0, 0.1)]
        assert dxt_timeline_facts(writes)[0].data["phase"] == "write-only"
        assert dxt_timeline_facts(reads)[0].data["phase"] == "read-only"


class TestDxtTextRoundTrip:
    def test_parse_inverts_render(self):
        segments = _make_segments(40, seed=30)
        table = SegmentTable.from_segments(segments)
        parsed = parse_dxt_text(render_dxt_text(table))
        assert len(parsed) == len(table)
        for original, restored in zip(table, parsed):
            assert restored.module == original.module
            assert restored.rank == original.rank
            assert restored.path == original.path
            assert restored.operation == original.operation
            assert restored.offset == original.offset
            assert restored.length == original.length
            # Times quantize at the rendering's 1e-4 s resolution.
            assert restored.start_time == pytest.approx(original.start_time, abs=1e-4)
            assert restored.end_time == pytest.approx(original.end_time, abs=1e-4)

    def test_text_round_trip_is_idempotent(self):
        text = render_dxt_text(as_table(_make_segments(25, seed=31)))
        assert render_dxt_text(parse_dxt_text(text)) == text

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="expected 9"):
            parse_dxt_text("X_POSIX 0 write 0 0\n")

    def test_parse_rejects_unknown_operation_token(self):
        line = "X_POSIX 0 wt 0 0 4096 0.0000 0.0010 /scratch/f\n"
        with pytest.raises(ValueError, match="unknown operation 'wt'"):
            parse_dxt_text(line)

    def test_darshan_text_export_preserves_the_channel(self):
        trace = build_scenario("path01-random-small-reads", seed=0)
        text = render_darshan_text(trace.log, include_dxt=True)
        restored = parse_darshan_text(text)
        assert restored.has_dxt
        assert len(restored.dxt_segments) == len(trace.log.dxt_segments)
        # The counter channel still round-trips identically.
        assert render_darshan_text(restored) == render_darshan_text(trace.log)
        # Restored temporal facts ground the same fact kinds.
        original = {f.kind for f in dxt_temporal_facts(trace.log.dxt_segments)}
        assert {f.kind for f in dxt_temporal_facts(restored.dxt_segments)} == original

    def test_default_export_still_drops_the_channel(self):
        trace = build_scenario("path01-random-small-reads", seed=0)
        assert parse_darshan_text(render_darshan_text(trace.log)).dxt_segments is None


class TestScalingBaseline:
    """The checked-in benchmark baseline records the perf-gate contract."""

    def test_baseline_artifact_meets_the_speedup_target(self):
        import json
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_dxt_scaling.json"
        )
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["benchmark"] == "dxt_scaling"
        rows = {r["n_segments"]: r for r in baseline["results"]}
        assert {10_000, 100_000, 1_000_000} <= rows.keys()
        # The tentpole target: >= 10x over the scalar path at 1M segments.
        assert rows[1_000_000]["speedup"] >= baseline["target_speedup_at_1m"] == 10.0
        for row in rows.values():
            assert row["extract_throughput_seg_per_s"] > 0
