"""Tests for the serving layer: queue, coalescing, store, telemetry.

Covers the four tentpole contracts — typed backpressure, N-identical-
requests-cost-one-run coalescing, the persistent content-addressed
result store (including cross-process replay with zero LLM calls in a
real subprocess), and byte-identical deterministic metrics snapshots —
plus the unified registry-lookup error surface and the reconciled
``ServiceStats`` accessor.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.registry import ToolNotFoundError
from repro.core.service import DiagnosisService, ServiceStats
from repro.llm.client import Usage
from repro.resilience import (
    CircuitBreaker,
    FaultPlanNotFoundError,
    FaultyLLMClient,
    RetryPolicy,
    get_fault_plan,
)
from repro.serve import (
    LATENCY_BUCKET_BOUNDS,
    DiagnosisServer,
    FixedBucketHistogram,
    LatencyModel,
    QueueFullError,
    ResultStore,
    ServerClosedError,
    report_from_dict,
    report_to_dict,
)
from repro.serve.store import store_filename
from repro.util.lookup import RegistryLookupError
from repro.workloads.scenarios import ScenarioNotFoundError, SeriesScenarioNotFoundError

REPO_ROOT = Path(__file__).resolve().parent.parent


def _service(**config_kwargs) -> DiagnosisService:
    config = IOAgentConfig(seed=0, max_workers=1, **config_kwargs)
    return DiagnosisService(tool="ioagent", config=config)


def _degraded_service(store=None) -> DiagnosisService:
    """A service whose every run loses the merge channel (degraded reports)."""
    config = IOAgentConfig(max_workers=1)
    client = FaultyLLMClient(
        get_fault_plan("merge-outage"),
        retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(),
    )
    agent = IOAgent(config, client=client)
    return DiagnosisService(tool=agent, config=config, max_workers=1, store=store)


# -- histograms + latency model ------------------------------------------


class TestFixedBucketHistogram:
    def test_observations_land_in_inclusive_upper_bound_buckets(self):
        hist = FixedBucketHistogram(bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 5.0, 99.0):
            hist.observe(value)
        snap = hist.as_dict()
        assert snap["counts"] == [2, 1, 1, 1]  # last bucket = overflow
        assert snap["count"] == 5
        assert snap["min"] == 0.5 and snap["max"] == 99.0

    def test_bounds_must_be_ascending(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=())

    def test_empty_histogram_snapshot(self):
        snap = FixedBucketHistogram(bounds=(1.0,)).as_dict()
        assert snap["count"] == 0 and snap["min"] is None and snap["max"] is None

    def test_render_marks_only_nonempty_buckets(self):
        hist = FixedBucketHistogram(bounds=(1.0, 2.0))
        hist.observe(0.5)
        text = hist.render("lat")
        assert "n=1" in text and "<= 1s" in text and "<= 2s" not in text

    def test_snapshot_is_order_independent(self):
        a = FixedBucketHistogram()
        b = FixedBucketHistogram()
        values = [0.001, 5.0, 0.3, 0.3, 200.0]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.as_dict() == b.as_dict()

    def test_default_bounds_are_the_schema(self):
        assert FixedBucketHistogram().bounds == LATENCY_BUCKET_BOUNDS


class TestLatencyModel:
    def test_usage_maps_deterministically_to_seconds(self):
        model = LatencyModel()
        usage = Usage(prompt_tokens=10_000, completion_tokens=2_000, calls=2)
        expected = model.base_seconds + 2 * model.seconds_per_call + 1.0 + 1.0
        assert model.stage_seconds(usage) == pytest.approx(expected)
        assert model.stage_seconds(Usage()) == model.base_seconds


# -- result store --------------------------------------------------------


class TestResultStore:
    KEY = ("digest-abc", "ioagent", "IOAgentConfig()")

    def _report(self, **overrides):
        from repro.core.report import DiagnosisReport

        fields = dict(
            trace_id="t1",
            model="gpt-4o",
            text="diagnosis text",
            n_fragments=3,
            sources_retrieved=5,
            sources_kept=2,
            degraded=(),
        )
        fields.update(overrides)
        return DiagnosisReport(**fields)

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        report = self._report()
        store.put(self.KEY, report)
        assert self.KEY in store and len(store) == 1
        loaded = store.get(self.KEY)
        assert report_to_dict(loaded) == report_to_dict(report)

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get(self.KEY) is None

    def test_degraded_reports_are_refused(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="degraded"):
            store.put(self.KEY, self._report(degraded=("merge",)))
        assert len(store) == 0

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(self.KEY, self._report())
        store.path_for(self.KEY).write_text("{torn wri", encoding="utf-8")
        assert store.get(self.KEY) is None

    def test_version_and_key_mismatches_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(self.KEY, self._report())
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["version"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(self.KEY) is None
        # A (vanishingly unlikely) filename collision must not serve the
        # wrong key's report: the full key is checked, not just the hash.
        other = ("digest-other", "ioagent", "IOAgentConfig()")
        store.put(self.KEY, self._report())
        store.path_for(other).write_bytes(store.path_for(self.KEY).read_bytes())
        assert store.get(other) is None

    def test_clear_removes_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(self.KEY, self._report())
        assert store.clear() == 1
        assert len(store) == 0

    def test_filename_is_stable_and_key_addressed(self):
        assert store_filename(self.KEY) == store_filename(tuple(self.KEY))
        assert store_filename(self.KEY) != store_filename(("x", "ioagent", "c"))
        assert store_filename(self.KEY).endswith(".json")

    def test_report_dict_round_trip_preserves_degraded(self):
        report = self._report(degraded=("merge", "temporal"))
        assert report_from_dict(report_to_dict(report)).degraded == ("merge", "temporal")


# -- service + store integration -----------------------------------------


class TestServiceStore:
    def test_fresh_service_replays_from_store_with_zero_llm_calls(self, tmp_path, sb01_trace):
        first = _service()
        first.store = ResultStore(tmp_path)
        first.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert len(first.store) == 1

        # Same config as `first`: the key is (digest, tool, config repr).
        second = DiagnosisService(
            config=IOAgentConfig(seed=0, max_workers=1), store=str(tmp_path)
        )
        report = second.diagnose(sb01_trace.log, trace_id="renamed")
        stats = second.stats()
        assert stats.store_hits == 1 and stats.cache_misses == 0
        assert stats.usage.calls == 0  # the replay burned no LLM budget
        assert report.trace_id == "renamed"

    def test_store_hit_promotes_into_memory(self, tmp_path, sb01_trace):
        _svc = _service()
        _svc.store = ResultStore(tmp_path)
        _svc.diagnose(sb01_trace.log, trace_id="a")

        second = DiagnosisService(
            config=IOAgentConfig(seed=0, max_workers=1), store=str(tmp_path)
        )
        second.diagnose(sb01_trace.log, trace_id="b")
        second.diagnose(sb01_trace.log, trace_id="c")
        stats = second.stats()
        assert stats.store_hits == 1  # only the first lookup touched disk
        assert stats.cache_hits == 1

    def test_degraded_run_leaves_no_store_entry(self, tmp_path, sb01_trace):
        service = _degraded_service(store=str(tmp_path))
        report = service.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert report.degraded == ("merge",)
        assert len(service.store) == 0

    def test_cross_process_replay_zero_llm_calls(self, tmp_path, sb01_trace):
        """Satellite contract: a second *process* serves from the store."""
        service = _service()
        service.store = ResultStore(tmp_path)
        original = service.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)

        script = textwrap.dedent(
            """
            from repro.core.agent import IOAgentConfig
            from repro.core.service import DiagnosisService
            from repro.tracebench.build import build_trace
            from repro.tracebench.spec import TRACE_SPECS
            import sys

            spec = next(s for s in TRACE_SPECS if s.trace_id == "sb01-small-writes")
            trace = build_trace(spec, seed=0)
            service = DiagnosisService(
                config=IOAgentConfig(seed=0, max_workers=1), store=sys.argv[1]
            )
            report = service.diagnose(trace.log, trace_id="second-process")
            stats = service.stats()
            assert stats.store_hits == 1, stats
            assert stats.cache_misses == 0, stats
            assert stats.usage.calls == 0, stats.usage
            print(report.text == sys.stdin.read())
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            input=original.text,
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "True"


# -- ServiceStats --------------------------------------------------------


class TestServiceStats:
    def test_stats_snapshot_is_coherent(self, sb01_trace):
        service = _service()
        service.diagnose(sb01_trace.log, trace_id="a")
        service.diagnose(sb01_trace.log, trace_id="b")
        stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.tool == service.tool.name
        assert (stats.cache_hits, stats.cache_misses, stats.store_hits) == (1, 1, 0)
        assert stats.requests == 2
        assert len(stats.cached_reports) == 1
        assert stats.usage.calls > 0

    def test_stats_usage_is_a_defensive_copy(self, sb01_trace):
        service = _service()
        service.diagnose(sb01_trace.log, trace_id="a")
        stats = service.stats()
        before = stats.usage.calls
        stats.usage.calls += 1000
        assert service.stats().usage.calls == before

    def test_deprecated_wrappers_agree_with_stats(self, sb01_trace):
        service = _service()
        service.diagnose(sb01_trace.log, trace_id="a")
        stats = service.stats()
        assert service.cached_reports() == stats.cached_reports
        assert service.usage().calls == stats.usage.calls

    def test_clear_cache_resets_counters(self, sb01_trace):
        service = _service()
        service.diagnose(sb01_trace.log, trace_id="a")
        service.clear_cache()
        stats = service.stats()
        assert stats.requests == 0 and stats.cached_reports == ()


# -- the server: queue, coalescing, lifecycle ----------------------------


class TestDiagnosisServer:
    def test_herd_of_identical_requests_costs_one_run(self, sb01_trace):
        service = _service()
        server = DiagnosisServer(service, workers=2, queue_depth=16)
        handles = [server.submit(sb01_trace.log, trace_id=f"req-{i}") for i in range(6)]
        reports = [h.result(timeout=120) for h in handles]
        server.close()
        assert server.counters.executed == 1
        assert server.counters.coalesced + server.counters.cache_served == 5
        assert all(r.text == reports[0].text for r in reports)
        # Every caller got its own trace id back, not the digest label.
        assert [r.trace_id for r in reports] == [f"req-{i}" for i in range(6)]

    def test_queue_full_is_a_typed_rejection(self, bench):
        a, b, c = (bench.get(t) for t in ("sb01-small-writes", "sb03-misaligned-writes", "sb05-metadata-storm"))
        server = DiagnosisServer(_service(), queue_depth=2, autostart=False)
        server.submit(a.log, trace_id="a")
        server.submit(b.log, trace_id="b")
        with pytest.raises(QueueFullError) as excinfo:
            server.submit(c.log, trace_id="c")
        assert excinfo.value.queue_depth == 2
        assert "retry later" in str(excinfo.value)
        assert server.counters.rejected == 1
        # Identical traffic still coalesces for free past the full queue.
        dup = server.submit(a.log, trace_id="a2")
        assert dup.coalesced
        server.close()

    def test_submit_time_cache_service_skips_the_queue(self, sb01_trace):
        service = _service()
        service.diagnose(sb01_trace.log, trace_id="warm")
        server = DiagnosisServer(service, autostart=False)
        handle = server.submit(sb01_trace.log, trace_id="hit")
        assert handle.served_from_cache and handle.done()
        assert handle.result().trace_id == "hit"
        assert server.counters.cache_served == 1
        server.close()

    def test_closed_server_rejects_submissions(self, sb01_trace):
        server = DiagnosisServer(_service(), autostart=False)
        pending = server.submit(sb01_trace.log, trace_id="orphan")
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(sb01_trace.log, trace_id="late")
        with pytest.raises(ServerClosedError):
            pending.result(timeout=5)

    def test_serve_all_is_deterministically_byte_identical(self, sb01_trace):
        def snapshot() -> str:
            server = DiagnosisServer(_service(), autostart=False)
            server.serve_all([(sb01_trace.log, f"r{i}") for i in range(4)])
            server.close()
            return server.metrics_snapshot().to_json()

        first, second = snapshot(), snapshot()
        assert first == second
        payload = json.loads(first)
        assert payload["latency_mode"] == "modeled"
        assert payload["counters"]["submitted"] == 4
        assert payload["counters"]["executed"] == 1

    def test_wall_clock_mode_changes_only_the_mode_label(self, sb01_trace):
        server = DiagnosisServer(_service(), wall_clock=True, autostart=False)
        server.serve_all([(sb01_trace.log, "r0")])
        server.close()
        snap = server.metrics_snapshot()
        assert snap.latency_mode == "wall"
        assert snap.request_latency["count"] == 1

    def test_failed_run_propagates_to_every_waiter(self, sb01_trace):
        class ExplodingTool:
            name = "exploder"
            config = None

            def diagnose(self, log, trace_id="trace"):
                raise RuntimeError("boom")

            def usage(self):
                return Usage()

        service = DiagnosisService(tool=ExplodingTool(), config=IOAgentConfig(seed=0))
        server = DiagnosisServer(service, workers=1, autostart=False)
        handles = [server.submit(sb01_trace.log, trace_id=f"r{i}") for i in range(2)]
        server.start()
        for handle in handles:
            with pytest.raises(RuntimeError, match="boom"):
                handle.result(timeout=60)
        server.close()
        assert server.counters.failed == 1  # one run, both waiters told

    def test_validation(self):
        with pytest.raises(ValueError):
            DiagnosisServer(_service(), queue_depth=0)
        with pytest.raises(ValueError):
            DiagnosisServer(_service(), workers=0)

    def test_server_persists_through_its_store(self, tmp_path, sb01_trace):
        server = DiagnosisServer(
            tool="ioagent",
            config=IOAgentConfig(seed=0),
            store=str(tmp_path),
            autostart=False,
        )
        server.serve_all([(sb01_trace.log, "r0")])
        server.close()
        assert server.counters.store_writes == 1
        assert len(ResultStore(tmp_path)) == 1


# -- unified registry lookup errors --------------------------------------


class TestRegistryLookupErrors:
    def test_all_five_variants_share_the_base(self):
        from repro.analysis.registry import CheckNotFoundError

        for exc_type in (
            ToolNotFoundError,
            ScenarioNotFoundError,
            SeriesScenarioNotFoundError,
            FaultPlanNotFoundError,
            CheckNotFoundError,
        ):
            assert issubclass(exc_type, RegistryLookupError)
            assert issubclass(exc_type, KeyError)

    def test_message_names_the_unknown_and_the_options(self):
        exc = ToolNotFoundError("nope", available=("drishti", "ioagent"))
        assert "unknown tool 'nope'" in str(exc)
        assert "drishti, ioagent" in str(exc)

    def test_render_cli_is_the_one_formatter(self):
        exc = FaultPlanNotFoundError("nope", available=("llm-flaky",))
        rendered = exc.render_cli()
        assert rendered.startswith("error: unknown fault plan: nope")
        assert "available fault plans: llm-flaky" in rendered

    def test_scenario_hint_for_uppercase_difficulty(self):
        exc = ScenarioNotFoundError("HARD", available=())
        rendered = exc.render_cli()
        assert "did you mean 'hard'" in rendered
        assert "difficulty tiers: easy, medium, hard, control" in rendered

    def test_lookup_raises_are_catchable_as_before(self):
        from repro.core.registry import get_tool
        from repro.resilience.faults import get_fault_plan
        from repro.workloads.scenarios import get_series_scenario, select_scenarios

        with pytest.raises(ToolNotFoundError):
            get_tool("no-such-tool")
        with pytest.raises(ScenarioNotFoundError):
            select_scenarios(["no-such-selector"])
        with pytest.raises(SeriesScenarioNotFoundError):
            get_series_scenario("no-such-series")
        with pytest.raises(FaultPlanNotFoundError):
            get_fault_plan("no-such-plan")


# -- the serve CLI -------------------------------------------------------


class TestServeCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_serve_scenarios_coalesces_and_prints_metrics(self, capsys, tmp_path):
        out = tmp_path / "snap.json"
        code = self._run(
            "serve", "--scenarios", "sb01-small-writes", "--repeat", "3", "--out", str(out)
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "submitted=3 executed=1 coalesced=2" in captured.out
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["counters"]["executed"] == 1

    def test_serve_cli_snapshots_are_byte_identical(self, tmp_path, capsys):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert self._run("serve", "--scenarios", "sb01-small-writes", "--out", str(out)) == 0
            outs.append(out.read_bytes())
        capsys.readouterr()
        assert outs[0] == outs[1]

    def test_serve_unknown_selector_exits_2(self, capsys):
        assert self._run("serve", "--scenarios", "nope") == 2
        err = capsys.readouterr().err
        assert "error: unknown scenario selector: nope" in err

    def test_serve_unknown_tool_exits_2(self, capsys):
        assert self._run("serve", "--scenarios", "sb01-small-writes", "--tool", "nope") == 2
        err = capsys.readouterr().err
        assert "error: unknown tool: nope" in err
        assert "available tools:" in err

    def test_serve_without_inputs_exits_2(self, capsys):
        assert self._run("serve") == 2
        assert "pass trace files and/or --scenarios" in capsys.readouterr().err

    def test_serve_queue_overflow_exits_2_with_hint(self, capsys):
        code = self._run(
            "serve",
            "--scenarios",
            "sb01-small-writes,sb03-misaligned-writes",
            "--queue-depth",
            "1",
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "work queue is full" in err and "--queue-depth" in err

    def test_serve_store_replays_across_invocations(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._run("serve", "--scenarios", "sb01-small-writes", "--store", str(store)) == 0
        first = capsys.readouterr().out
        assert "executed=1" in first and "store_writes=1" in first
        assert self._run("serve", "--scenarios", "sb01-small-writes", "--store", str(store)) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second and "cache=1" in second
