"""Tests for the `repro.analysis` static analyzer.

Three layers: the check registry itself, every built-in check against
the *real* repository (all green), and every built-in check against
deliberately broken fixture contexts (precise diagnostics, non-zero
exit). The fixtures are inert `CheckContext` values — no live registry
is ever monkeypatched.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    CheckContext,
    CheckNotFoundError,
    Diagnostic,
    available_checks,
    error,
    get_check,
    has_errors,
    register_check,
    run_checks,
    unregister_check,
)
from repro.analysis.cli import main as analysis_main
from repro.analysis.context import consumed_fact_kinds, produced_fact_kinds
from repro.analysis.typing_gate import (
    bucket_errors,
    check_ratchet_monotonic,
    evaluate_budgets,
    module_bucket,
    run_typing_gate,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

EXPECTED_CHECKS = {
    "fact-grammar-roundtrip",
    "fact-kind-flow",
    "suppression-dag",
    "scenario-ground-truth",
    "issue-reachability",
    "trigger-issue-map",
    "tool-registry",
    "unseeded-random",
    "segtable-private",
    "service-locked-mutation",
}


@pytest.fixture(scope="module")
def repo_ctx() -> CheckContext:
    return CheckContext.from_repo(REPO_ROOT)


def _errors(results: dict[str, list[Diagnostic]], name: str) -> list[str]:
    return [d.message for d in results[name] if d.severity == "error"]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_checks_registered(self) -> None:
        assert EXPECTED_CHECKS <= set(available_checks())

    def test_register_and_unregister(self) -> None:
        @register_check("test-dummy", description="dummy", tags=("test",))
        def dummy(ctx: CheckContext) -> list[Diagnostic]:
            return [error("test-dummy", "boom")]

        try:
            assert "test-dummy" in available_checks()
            check = get_check("test-dummy")
            assert check.description == "dummy"
        finally:
            unregister_check("test-dummy")
        assert "test-dummy" not in available_checks()

    def test_duplicate_registration_rejected(self) -> None:
        with pytest.raises(ValueError, match="already registered"):
            register_check("fact-kind-flow", lambda ctx: [])

    def test_unknown_check_error_lists_available(self) -> None:
        with pytest.raises(CheckNotFoundError, match="fact-kind-flow"):
            get_check("no-such-check")

    def test_crashing_check_becomes_diagnostic(self, repo_ctx: CheckContext) -> None:
        def crash(ctx: CheckContext) -> list[Diagnostic]:
            raise RuntimeError("kaboom")

        register_check("test-crash", crash)
        try:
            results = run_checks(repo_ctx, ["test-crash"])
        finally:
            unregister_check("test-crash")
        assert has_errors(results["test-crash"])
        assert "kaboom" in results["test-crash"][0].message

    def test_diagnostic_format_and_severity(self) -> None:
        diag = error("x", "msg", file="src/a.py", line=3)
        assert diag.format() == "src/a.py:3: error: [x] msg"
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(check="x", message="m", severity="fatal")


# ---------------------------------------------------------------------------
# The real repository is invariant-clean
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_all_checks_green(self, repo_ctx: CheckContext) -> None:
        results = run_checks(repo_ctx)
        failing = {
            name: [d.format() for d in diags if d.severity == "error"]
            for name, diags in results.items()
            if has_errors(diags)
        }
        assert not failing, f"invariant violations in the live repo: {failing}"

    def test_cli_exits_zero_on_repo(self, capsys: pytest.CaptureFixture[str]) -> None:
        assert analysis_main(["--no-mypy"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_cli_list(self, capsys: pytest.CaptureFixture[str]) -> None:
        assert analysis_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_CHECKS:
            assert name in out

    def test_cli_unknown_check_exits_2(self, capsys: pytest.CaptureFixture[str]) -> None:
        assert analysis_main(["--no-mypy", "--checks", "nope"]) == 2

    def test_module_entry_point_fast(self) -> None:
        # The acceptance bar: the full domain leg through the real CLI
        # stays under the 5s fast-mode budget.
        import sys
        import time

        start = time.monotonic()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--no-mypy", "-q"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        elapsed = time.monotonic() - start
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert elapsed < 5.0, f"analyzer took {elapsed:.1f}s (budget 5s)"


# ---------------------------------------------------------------------------
# Broken-fixture contexts: each invariant fires with a precise diagnostic
# ---------------------------------------------------------------------------


class TestBrokenFixtures:
    def test_cyclic_suppression(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx,
            suppressions=repo_ctx.suppressions + (("dxt_idle", "dxt_ost_latency"),),
        )
        msgs = _errors(run_checks(bad, ["suppression-dag"]), "suppression-dag")
        assert any("cyclic" in m and "dxt_idle" in m for m in msgs)

    def test_order_contradicts_edge(self, repo_ctx: CheckContext) -> None:
        order = list(repo_ctx.deepest_cause_order)
        order[0], order[-1] = order[-1], order[0]
        bad = dataclasses.replace(repo_ctx, deepest_cause_order=tuple(order))
        msgs = _errors(run_checks(bad, ["suppression-dag"]), "suppression-dag")
        assert any("contradicts suppression edge" in m for m in msgs)

    def test_order_not_total(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx, deepest_cause_order=repo_ctx.deepest_cause_order[:-1]
        )
        msgs = _errors(run_checks(bad, ["suppression-dag"]), "suppression-dag")
        assert any("not a total order" in m and "dxt_idle" in m for m in msgs)

    def test_unreachable_temporal_rule(self, repo_ctx: CheckContext) -> None:
        rule_issues = dict(repo_ctx.rule_issues)
        del rule_issues["dxt_idle"]
        bad = dataclasses.replace(repo_ctx, rule_issues=rule_issues)
        msgs = _errors(run_checks(bad, ["suppression-dag"]), "suppression-dag")
        assert any("unreachable" in m and "dxt_idle" in m for m in msgs)

    def test_self_suppression(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx, suppressions=repo_ctx.suppressions + (("dxt_idle", "dxt_idle"),)
        )
        msgs = _errors(run_checks(bad, ["suppression-dag"]), "suppression-dag")
        assert any("suppresses itself" in m for m in msgs)

    def test_orphan_fact_kind(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx,
            context_only_kinds=frozenset(repo_ctx.context_only_kinds - {"mount"}),
        )
        msgs = _errors(run_checks(bad, ["fact-kind-flow"]), "fact-kind-flow")
        assert any("orphan fact kind 'mount'" in m for m in msgs)

    def test_kind_in_two_roles(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx,
            context_only_kinds=frozenset(repo_ctx.context_only_kinds | {"size_hist"}),
        )
        msgs = _errors(run_checks(bad, ["fact-kind-flow"]), "fact-kind-flow")
        assert any("more than one role" in m and "size_hist" in m for m in msgs)

    def test_unproduced_fact_kind(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx, produced_kinds=frozenset(repo_ctx.produced_kinds - {"meta"})
        )
        msgs = _errors(run_checks(bad, ["fact-kind-flow"]), "fact-kind-flow")
        assert any("no producer" in m and "'meta'" in m for m in msgs)

    def test_undeclared_consumption(self, repo_ctx: CheckContext) -> None:
        rule_issues = dict(repo_ctx.rule_issues)
        del rule_issues["meta"]
        bad = dataclasses.replace(
            repo_ctx,
            rule_issues=rule_issues,
            context_only_kinds=frozenset(repo_ctx.context_only_kinds | {"meta"}),
        )
        msgs = _errors(run_checks(bad, ["fact-kind-flow"]), "fact-kind-flow")
        assert any("not declared in" in m and "'meta'" in m for m in msgs)

    def test_broken_roundtrip_example(self, repo_ctx: CheckContext) -> None:
        examples = dict(repo_ctx.fact_examples)
        examples["meta"] = {"wrong_field": 1}
        bad = dataclasses.replace(repo_ctx, fact_examples=examples)
        msgs = _errors(
            run_checks(bad, ["fact-grammar-roundtrip"]), "fact-grammar-roundtrip"
        )
        assert any("'meta'" in m for m in msgs)

    def test_missing_example(self, repo_ctx: CheckContext) -> None:
        examples = dict(repo_ctx.fact_examples)
        del examples["meta"]
        bad = dataclasses.replace(repo_ctx, fact_examples=examples)
        msgs = _errors(
            run_checks(bad, ["fact-grammar-roundtrip"]), "fact-grammar-roundtrip"
        )
        assert any("no example payload" in m and "'meta'" in m for m in msgs)

    def test_bad_scenario_root_cause(self, repo_ctx: CheckContext) -> None:
        from repro.analysis import ScenarioInfo

        bad = dataclasses.replace(
            repo_ctx,
            scenarios=repo_ctx.scenarios
            + (
                ScenarioInfo(
                    name="broken_fixture",
                    root_causes=frozenset({"not_an_issue_key"}),
                ),
            ),
        )
        msgs = _errors(
            run_checks(bad, ["scenario-ground-truth"]), "scenario-ground-truth"
        )
        assert any(
            "broken_fixture" in m and "not_an_issue_key" in m for m in msgs
        )

    def test_ungrounded_issue_key(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx, issue_keys=repo_ctx.issue_keys + ("phantom_issue",)
        )
        msgs = _errors(
            run_checks(bad, ["scenario-ground-truth"]), "scenario-ground-truth"
        )
        assert any("phantom_issue" in m and "no scenario" in m for m in msgs)

    def test_unreachable_issue_key(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx,
            issue_keys=repo_ctx.issue_keys + ("phantom_issue",),
            untriggered_issues=repo_ctx.untriggered_issues + ("phantom_issue",),
        )
        msgs = _errors(run_checks(bad, ["issue-reachability"]), "issue-reachability")
        assert any("phantom_issue" in m and "unreachable" in m for m in msgs)

    def test_trigger_map_gap_and_stale(self, repo_ctx: CheckContext) -> None:
        trigger_issues = dict(repo_ctx.trigger_issues)
        del trigger_issues["POSIX_SMALL_READS"]
        trigger_issues["NOT_A_TRIGGER"] = ("small_read",)
        bad = dataclasses.replace(repo_ctx, trigger_issues=trigger_issues)
        msgs = _errors(run_checks(bad, ["trigger-issue-map"]), "trigger-issue-map")
        assert any(
            "POSIX_SMALL_READS" in m and "missing from TRIGGER_ISSUES" in m
            for m in msgs
        )
        assert any("NOT_A_TRIGGER" in m and "unregistered" in m for m in msgs)

    def test_undeclared_trigger_gap(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(repo_ctx, untriggered_issues=())
        msgs = _errors(run_checks(bad, ["trigger-issue-map"]), "trigger-issue-map")
        assert any("no_mpi" in m and "UNTRIGGERED_ISSUES" in m for m in msgs)

    def test_missing_builtin_tool(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(
            repo_ctx, tool_names=tuple(n for n in repo_ctx.tool_names if n != "ion")
        )
        msgs = _errors(run_checks(bad, ["tool-registry"]), "tool-registry")
        assert any("'ion'" in m for m in msgs)

    def test_reserved_cli_collision_warns(self, repo_ctx: CheckContext) -> None:
        bad = dataclasses.replace(repo_ctx, tool_names=repo_ctx.tool_names + ("chat",))
        results = run_checks(bad, ["tool-registry"])
        warnings = [
            d for d in results["tool-registry"] if d.severity == "warning"
        ]
        assert any("'chat'" in d.message for d in warnings)


# ---------------------------------------------------------------------------
# AST lint rules on seeded fixture trees
# ---------------------------------------------------------------------------


def _lint_ctx(repo_ctx: CheckContext, tmp_path: Path, files: dict[str, str]) -> CheckContext:
    for rel, text in files.items():
        path = tmp_path / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return dataclasses.replace(repo_ctx, src_root=tmp_path / "src")


class TestLintRules:
    def test_unseeded_random_violations(
        self, repo_ctx: CheckContext, tmp_path: Path
    ) -> None:
        ctx = _lint_ctx(
            repo_ctx,
            tmp_path,
            {
                "core/bad.py": """\
                import random
                from random import choice
                import numpy as np

                x = np.random.rand(4)
                rng = np.random.default_rng()
                """,
                "util/rng.py": "import random  # exempt: the one sanctioned seed source\n",
                "core/good.py": """\
                import numpy as np

                rng = np.random.default_rng(123)
                """,
            },
        )
        diags = run_checks(ctx, ["unseeded-random"])["unseeded-random"]
        files_lines = {(d.file, d.line) for d in diags}
        assert ("src/repro/core/bad.py", 1) in files_lines  # import random
        assert ("src/repro/core/bad.py", 2) in files_lines  # from random import
        assert ("src/repro/core/bad.py", 5) in files_lines  # np.random.rand
        assert ("src/repro/core/bad.py", 6) in files_lines  # default_rng()
        assert not any(d.file.endswith("rng.py") for d in diags)
        assert not any(d.file.endswith("good.py") for d in diags)

    def test_segtable_private_violations(
        self, repo_ctx: CheckContext, tmp_path: Path
    ) -> None:
        ctx = _lint_ctx(
            repo_ctx,
            tmp_path,
            {
                "core/bad.py": """\
                from repro.darshan.segtable import _normalize_rows
                import repro.darshan.segtable as segtable
                from repro.darshan.dxt_reference import extract_reference

                rows = segtable._columns
                """,
                "darshan/internal.py": """\
                from repro.darshan.segtable import _normalize_rows
                """,
                "core/good.py": """\
                from repro.darshan.segtable import SegmentTable
                """,
            },
        )
        diags = run_checks(ctx, ["segtable-private"])["segtable-private"]
        msgs = [d.message for d in diags]
        assert any("_normalize_rows" in m for m in msgs)
        assert any("dxt_reference" in m for m in msgs)
        assert any("segtable._columns" in m for m in msgs)
        assert not any(d.file and "darshan/" in d.file for d in diags)
        assert not any(d.file.endswith("good.py") for d in diags)

    def test_service_lock_rule(self, repo_ctx: CheckContext, tmp_path: Path) -> None:
        ctx = _lint_ctx(
            repo_ctx,
            tmp_path,
            {
                "core/service.py": """\
                class DiagnosisService:
                    def __init__(self):
                        self._cache = {}   # allowed: pre-sharing construction
                        self.cache_hits = 0

                    def good(self, key, value):
                        with self._cache_lock:
                            self._cache[key] = value
                            self.cache_hits += 1

                    def bad(self, key, value):
                        self._cache[key] = value
                        self.cache_hits += 1
                        self._cache.clear()
                """,
            },
        )
        diags = run_checks(ctx, ["service-locked-mutation"])["service-locked-mutation"]
        lines = sorted(d.line for d in diags)
        assert lines == [12, 13, 14]
        assert all("_cache_lock" in d.message for d in diags)

    def test_live_tree_is_lint_clean(self, repo_ctx: CheckContext) -> None:
        results = run_checks(
            repo_ctx,
            ["unseeded-random", "segtable-private", "service-locked-mutation"],
        )
        bad = [d.format() for diags in results.values() for d in diags]
        assert not bad, bad

    def test_clear_cache_resets_counters_under_lock(self) -> None:
        # Pinned regression: clear_cache used to reset the hit/miss
        # counters outside _cache_lock; the lint rule now guards it, and
        # this asserts the live file stays clean under that exact rule.
        import ast as ast_mod

        source = (REPO_ROOT / "src/repro/core/service.py").read_text()
        tree = ast_mod.parse(source)
        clear_cache = next(
            node
            for node in ast_mod.walk(tree)
            if isinstance(node, ast_mod.FunctionDef) and node.name == "clear_cache"
        )
        # Every statement in clear_cache (past the docstring) is inside
        # the with-lock block.
        body = [
            stmt
            for stmt in clear_cache.body
            if not (
                isinstance(stmt, ast_mod.Expr) and isinstance(stmt.value, ast_mod.Constant)
            )
        ]
        assert len(body) == 1
        assert isinstance(body[0], ast_mod.With)


# ---------------------------------------------------------------------------
# AST scanners
# ---------------------------------------------------------------------------


class TestScanners:
    def test_produced_and_consumed(self, tmp_path: Path) -> None:
        producer = tmp_path / "producer.py"
        producer.write_text(
            'from repro.llm.facts import Fact\n'
            'f1 = Fact("alpha", {"x": 1})\n'
            'f2 = Fact(kind="beta", data={})\n'
        )
        consumer = tmp_path / "consumer.py"
        consumer.write_text('val = kinds.get("alpha")\nother = kinds.get(name)\n')
        assert produced_fact_kinds([producer]) == {"alpha", "beta"}
        assert consumed_fact_kinds([consumer]) == {"alpha"}

    def test_real_producers_cover_grammar(self, repo_ctx: CheckContext) -> None:
        assert set(repo_ctx.fact_kinds) == set(repo_ctx.produced_kinds)


# ---------------------------------------------------------------------------
# Typing gate
# ---------------------------------------------------------------------------


class TestTypingGate:
    def test_module_bucketing(self) -> None:
        assert module_bucket("src/repro/core/service.py") == "core"
        assert module_bucket("src/repro/cli.py") == "cli"
        assert module_bucket("somewhere/else.py") == "<other>"

    def test_bucket_errors_parses_mypy_output(self) -> None:
        output = textwrap.dedent(
            """\
            src/repro/core/service.py:10: error: Incompatible types  [assignment]
            src/repro/core/agent.py:5:17: error: Missing return  [return]
            src/repro/llm/facts.py:2: error: boom  [misc]
            src/repro/llm/facts.py:3: note: See docs
            Found 3 errors in 3 files
            """
        )
        assert bucket_errors(output) == {"core": 2, "llm": 1}

    def test_evaluate_budgets(self) -> None:
        failures = evaluate_budgets({"core": 3, "llm": 1}, {"core": 2, "llm": 5})
        assert len(failures) == 1
        assert "repro/core" in failures[0] and "budget 2" in failures[0]

    def test_ratchet_file_is_valid_and_covers_packages(self) -> None:
        data = json.loads((REPO_ROOT / "mypy-ratchet.json").read_text())
        budgets = data["budgets"]
        assert all(isinstance(v, int) and v >= 0 for v in budgets.values())
        # The new analysis package starts — and must stay — strict.
        assert budgets["analysis"] == 0

    def test_ratchet_monotonic_on_checkout(self) -> None:
        assert check_ratchet_monotonic(REPO_ROOT) == []

    def test_ratchet_loosening_detected(self, tmp_path: Path) -> None:
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        ratchet = tmp_path / "mypy-ratchet.json"
        ratchet.write_text(json.dumps({"budgets": {"core": 2, "llm": 0}}))
        subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
        subprocess.run(
            [
                "git",
                "-c",
                "user.email=t@t",
                "-c",
                "user.name=t",
                "commit",
                "-qm",
                "seed",
            ],
            cwd=tmp_path,
            check=True,
        )
        ratchet.write_text(json.dumps({"budgets": {"core": 5}}))
        violations = check_ratchet_monotonic(tmp_path)
        assert any("'core' loosened 2 -> 5" in v for v in violations)
        assert not any("'llm'" in v for v in violations)  # zero entry may drop

        ratchet.write_text(json.dumps({"budgets": {"llm": 0}}))
        violations = check_ratchet_monotonic(tmp_path)
        assert any("'core'" in v and "removed" in v for v in violations)

    def test_gate_skips_cleanly_without_mypy(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        import repro.analysis.typing_gate as tg

        (tmp_path / "mypy-ratchet.json").write_text(json.dumps({"budgets": {}}))
        monkeypatch.setattr(tg, "mypy_available", lambda: False)
        result = run_typing_gate(tmp_path)
        assert result.ok and result.skipped
        assert "SKIPPED" in result.summary()
        required = run_typing_gate(tmp_path, require=True)
        assert not required.ok
        assert any("--require-mypy" in m for m in required.messages)

    def test_gate_fails_without_ratchet_file(self, tmp_path: Path) -> None:
        result = run_typing_gate(tmp_path)
        assert not result.ok
        assert any("mypy-ratchet.json" in m for m in result.messages)

    def test_gate_with_fake_mypy(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        import repro.analysis.typing_gate as tg

        (tmp_path / "mypy-ratchet.json").write_text(
            json.dumps({"budgets": {"core": 0}})
        )
        monkeypatch.setattr(tg, "mypy_available", lambda: True)
        monkeypatch.setattr(
            tg,
            "run_mypy",
            lambda root: (1, "src/repro/core/x.py:1: error: bad  [misc]\n"),
        )
        result = run_typing_gate(tmp_path)
        assert not result.ok
        assert any("repro/core has 1 mypy errors" in m for m in result.messages)

        monkeypatch.setattr(tg, "run_mypy", lambda root: (0, ""))
        assert run_typing_gate(tmp_path).ok


# ---------------------------------------------------------------------------
# Pinned regressions surfaced while building the analyzer
# ---------------------------------------------------------------------------


class TestPinnedRegressions:
    def test_context_only_partition_exact(self, repo_ctx: CheckContext) -> None:
        # CONTEXT_ONLY_KINDS was derived from the actual rule dataflow;
        # pin the exact partition so a rule silently dropping a kind fails
        # here, not just in the analyzer.
        assert frozenset(repo_ctx.context_only_kinds) == frozenset(
            {"counts", "volume", "mount", "stripe", "dxt_timeline"}
        )
        assert set(repo_ctx.rule_issues) | set(repo_ctx.support_kinds) | set(
            repo_ctx.context_only_kinds
        ) == set(repo_ctx.fact_kinds)

    def test_drishti_gap_is_declared_exactly(self, repo_ctx: CheckContext) -> None:
        covered = {
            key for keys in repo_ctx.trigger_issues.values() for key in keys
        }
        # no_mpi is the paper's critique; trend_regression is structurally
        # out of reach for a single-trace tool (it lives across a series).
        assert set(repo_ctx.issue_keys) - covered == {"no_mpi", "trend_regression"}

    def test_fact_examples_roundtrip_live(self) -> None:
        from repro.llm.facts import (
            FACT_KINDS,
            example_fact,
            extract_facts,
            render_fact,
        )

        for kind in FACT_KINDS:
            fact = example_fact(kind)
            recovered = [
                f for f in extract_facts(render_fact(fact)) if f.kind == kind
            ]
            assert len(recovered) == 1, kind
