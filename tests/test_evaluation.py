"""Tests for the evaluation protocol: accuracy, judging, scoring, harness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.accuracy import issue_assertions, match_stats
from repro.evaluation.harness import evaluate_tools
from repro.evaluation.ranking import JudgeConfig, rank_candidates
from repro.evaluation.scoring import normalized_scores, score_from_rank
from repro.evaluation.tables import render_table3, render_table4
from repro.llm.findings import Finding, render_findings
from repro.tracebench.dataset import TraceBench


def _diag(keys, refs=0):
    findings = [
        Finding(
            issue_key=k,
            evidence=f"Evidence for {k} with 12345 bytes.",
            assessment="Because of latency amplification.",
            recommendation=f"Fix {k} by `doing -the thing`.",
            references=tuple(f"[S{i:02d}] X, \"Y\"" for i in range(1, refs + 1)),
        )
        for k in keys
    ]
    return render_findings(findings)


class TestAccuracy:
    def test_issue_assertions_from_tags(self):
        text = _diag(["small_write", "server_imbalance"])
        assert issue_assertions(text) == {"small_write", "server_imbalance"}

    def test_issue_assertions_from_aliases(self):
        text = "The application makes many small writes and shows rank load imbalance."
        asserted = issue_assertions(text)
        assert {"small_write", "rank_imbalance"} <= asserted

    def test_match_stats_confusion(self):
        stats = match_stats(_diag(["small_write", "random_read"]), {"small_write", "no_mpi"})
        assert (stats.matched, stats.false_positives, stats.missed) == (1, 1, 1)
        assert stats.precision == pytest.approx(0.5)
        assert stats.recall == pytest.approx(0.5)
        assert 0 < stats.f1 < 1

    def test_empty_cases(self):
        stats = match_stats("nothing here", set())
        assert stats.f1 == 0.0 or stats.precision == 1.0


class TestRanking:
    def _candidates(self):
        return {
            "good": _diag(["small_write", "server_imbalance"], refs=2),
            "ok": _diag(["small_write"]),
            "poor": _diag(["random_read"]),
            "bad": "I suggest you plot some graphs and investigate.",
        }

    def test_mean_ranks_complete_and_bounded(self, client):
        ranks = rank_candidates(
            self._candidates(),
            "accuracy",
            client=client,
            truth_labels={"small_write", "server_imbalance"},
            call_id="t",
        )
        assert set(ranks) == {"good", "ok", "poor", "bad"}
        assert all(1.0 <= r <= 4.0 for r in ranks.values())

    def test_good_candidate_beats_bad_on_average(self, client):
        """Average over many judged traces: signal beats judge noise."""
        totals = {"good": 0.0, "bad": 0.0}
        for i in range(25):
            ranks = rank_candidates(
                self._candidates(),
                "accuracy",
                client=client,
                truth_labels={"small_write", "server_imbalance"},
                call_id=f"trace{i}",
            )
            totals["good"] += ranks["good"]
            totals["bad"] += ranks["bad"]
        assert totals["good"] < totals["bad"]

    def test_augmentations_cancel_positional_bias(self, client):
        """With rotations off, the first-presented candidate gains rank;
        the paper's augmentations remove that advantage."""
        tied = {f"t{i}": _diag(["small_write"]) for i in range(4)}  # identical quality
        biased_cfg = JudgeConfig(rotate_content=False, rotate_rank_slots=False, anonymize=False)
        fair_cfg = JudgeConfig()
        bias_first, fair_first = 0.0, 0.0
        n = 40
        for i in range(n):
            b = rank_candidates(tied, "utility", client=client, config=biased_cfg, call_id=f"b{i}")
            f = rank_candidates(tied, "utility", client=client, config=fair_cfg, call_id=f"f{i}")
            bias_first += b["t0"] / n
            fair_first += f["t0"] / n
        assert bias_first < 2.3  # first position is advantaged
        assert 2.3 < fair_first < 2.7  # rotations debias back to ~2.5
        assert bias_first < fair_first

    def test_empty_candidates(self, client):
        assert rank_candidates({}, "accuracy", client=client) == {}


class TestScoring:
    def test_score_from_rank(self):
        assert score_from_rank(1) == 3.0
        assert score_from_rank(4) == 0.0

    def test_normalized_scores_eq2(self):
        per_trace = [{"a": 1.0, "b": 4.0}, {"a": 2.0, "b": 3.0}]
        ns = normalized_scores(per_trace)
        # a: (3+2)/(3*2) = 5/6 ; b: (0+1)/6
        assert ns["a"] == pytest.approx(5 / 6)
        assert ns["b"] == pytest.approx(1 / 6)

    @given(
        st.lists(
            st.fixed_dictionaries(
                {name: st.floats(min_value=1, max_value=4) for name in ("w", "x", "y", "z")}
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_rank_score_sum_invariant(self, per_trace):
        """If per-trace ranks are a permutation of 1..4, normalized scores
        across the four tools sum to exactly 2.0 (the Table IV invariant)."""
        permuted = []
        for i, _ in enumerate(per_trace):
            names = ["w", "x", "y", "z"]
            ranks = {n: float(((i + j) % 4) + 1) for j, n in enumerate(names)}
            permuted.append(ranks)
        ns = normalized_scores(permuted)
        assert sum(ns.values()) == pytest.approx(2.0)

    def test_empty(self):
        assert normalized_scores([]) == {}


class TestHarness:
    @pytest.fixture(scope="class")
    def mini_result(self, bench):
        sub = TraceBench(
            traces=[
                bench.get("sb01-small-writes"),
                bench.get("io500-14-mpiio-8k-shared"),
                bench.get("ra01-amrex"),
            ],
            seed=0,
        )
        return evaluate_tools(sub)

    def test_result_structure(self, mini_result):
        assert len(mini_result.tool_names) == 4
        assert set(mini_result.texts) == {
            "sb01-small-writes",
            "io500-14-mpiio-8k-shared",
            "ra01-amrex",
        }
        for criterion in ("accuracy", "utility", "interpretability"):
            assert len(mini_result.ranks[criterion]) == 3

    def test_table4_shape_and_sum_invariant(self, mini_result):
        table = mini_result.table4()
        assert set(table) == {"accuracy", "utility", "interpretability", "average"}
        for criterion, cols in table.items():
            assert "Overall" in cols
            for col, scores in cols.items():
                assert sum(scores.values()) == pytest.approx(2.0, abs=0.05)

    def test_render_table4_text(self, mini_result):
        text = render_table4(mini_result)
        assert "IOAgent-gpt-4o" in text and "Drishti" in text
        assert "Overall" in text

    def test_render_table3_matches_paper_totals(self):
        text = render_table3()
        assert text.splitlines()[-1].split()[-1] == "182"
        assert "Misaligned Write requests" in text
