"""Tests for the Drishti and ION baselines."""

from __future__ import annotations

from repro.baselines.drishti import DrishtiTool, TRIGGERS, run_triggers
from repro.baselines.ion import IONTool
from repro.evaluation.accuracy import issue_assertions


def _drishti_text(trace):
    """Drishti insight text for a labeled trace (protocol: report.text)."""
    return DrishtiTool().diagnose(trace.log, trace_id=trace.trace_id).text


def _ion_text(tool, trace):
    """ION diagnosis text for a labeled trace (protocol: report.text)."""
    return tool.diagnose(trace.log, trace_id=trace.trace_id).text



class TestDrishti:
    def test_thirty_seven_triggers_registered(self):
        assert len(TRIGGERS) == 37

    def test_small_write_trigger_fires(self, bench):
        text = _drishti_text(bench.get("sb01-small-writes"))
        assert "small write" in text.lower()
        assert "POSIX_SMALL_WRITES" in text

    def test_canned_recommendations_present(self, bench):
        text = _drishti_text(bench.get("sb01-small-writes"))
        assert "Recommendation:" in text

    def test_no_mpi_category_is_missed(self, bench):
        """Drishti has no multi-process-without-MPI trigger (a paper gap)."""
        trace = bench.get("io500-09-posix-tuned-4m")
        asserted = issue_assertions(_drishti_text(trace))
        assert "no_mpi" not in asserted

    def test_stripe_blind_spot_on_shimmed_offsets(self, bench):
        """Offset-shifted 1 MiB requests evade the stripe-size check."""
        trace = bench.get("sb03-misaligned-writes")
        asserted = issue_assertions(_drishti_text(trace))
        assert "misaligned_write" not in asserted  # labeled, but Drishti misses

    def test_fixed_threshold_false_positive(self, bench):
        """Minor small-read populations trip the >10% trigger (paper §II-B)."""
        trace = bench.get("io500-09-posix-tuned-4m")
        asserted = issue_assertions(_drishti_text(trace))
        assert "small_read" in asserted
        assert "small_read" not in trace.labels

    def test_redundant_read_trigger(self, bench):
        asserted = issue_assertions(_drishti_text(bench.get("sb07-repetitive-read")))
        assert "repetitive_read" in asserted

    def test_collective_triggers(self, bench):
        asserted = issue_assertions(_drishti_text(bench.get("io500-14-mpiio-8k-shared")))
        assert {"no_collective_read", "no_collective_write"} <= asserted

    def test_ok_insights_hidden_by_default(self, bench):
        trace = bench.get("io500-09-posix-tuned-4m")
        assert "✓ OK" not in _drishti_text(trace)
        assert "✓ OK" in DrishtiTool(include_ok=True).diagnose(trace.log).text

    def test_run_triggers_returns_results(self, bench):
        results = run_triggers(bench.get("sb01-small-writes").log)
        assert any(r.level == "HIGH" for r in results)
        codes = {r.code for r in results}
        assert "JOB_SUMMARY" in codes


class TestION:
    def test_small_trace_reasonable_diagnosis(self, bench):
        trace = bench.get("io500-14-mpiio-8k-shared")
        text = IONTool(model="gpt-4o", seed=0).diagnose(trace.log, trace.trace_id).text
        asserted = issue_assertions(text)
        assert "no_collective_read" in asserted

    def test_big_trace_truncation_misses_mpiio(self, bench):
        """The §III failure: MPI-IO facts in the middle of a huge trace are
        lost, so ION wrongly concludes there is no MPI at all."""
        trace = bench.get("io500-21-mpiio-mdtest")  # ~650k lines, MPI-IO used
        text = IONTool(model="gpt-4o", seed=0).diagnose(trace.log, trace.trace_id).text
        asserted = issue_assertions(text)
        assert "no_collective_write" not in asserted  # the MPIIO facts are gone
        assert "no_mpi" in asserted  # and their absence is misread

    def test_no_references_ever(self, bench):
        text = _ion_text(IONTool(model="gpt-4o", seed=0), bench.get("sb01-small-writes"))
        assert "References:" not in text

    def test_gpt4_plans_instead_of_diagnosing(self, bench):
        """The Fig. 1 left panel."""
        text = _ion_text(IONTool(model="gpt-4", seed=0), bench.get("ra01-amrex"))
        assert "### Finding" not in text
        assert "plot the time series" in text

    def test_misconceptions_appear_without_rag(self, bench):
        """Over the suite, unguarded prompting emits popular misconceptions."""
        from repro.llm.misconceptions import misconception_in_text

        ion = IONTool(model="gpt-4o", seed=0)
        hits = 0
        for trace_id in ("sb01-small-writes", "sb06-shared-file", "ra01-amrex", "ra02-e2e-original"):
            hits += len(misconception_in_text(_ion_text(ion, bench.get(trace_id))))
        assert hits >= 1
