"""The docs gate: every documented snippet runs, every local link resolves.

Documentation that drifts from the code is worse than none, so CI executes
each ```python fenced block in README.md and docs/*.md in its own
namespace (they are written to be self-contained) and verifies that every
relative markdown link points at a file that exists.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) — excluding images; shortest-match target up to ')'.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _python_blocks() -> list[tuple[str, int, str]]:
    blocks = []
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        for match in _FENCE_RE.finditer(text):
            line = text[: match.start()].count("\n") + 2  # first code line
            blocks.append((path.name, line, match.group(1)))
    return blocks


_BLOCKS = _python_blocks()


def test_docs_exist():
    """The documented surface is present: README plus the six guides."""
    names = {p.name for p in DOC_FILES}
    assert "README.md" in names
    assert {
        "evidence.md",
        "extending.md",
        "analysis.md",
        "regression.md",
        "resilience.md",
        "serving.md",
    } <= names
    assert _BLOCKS, "expected runnable python snippets in the docs"


@pytest.mark.parametrize(
    "block",
    _BLOCKS,
    ids=[f"{name}:L{line}" for name, line, _ in _BLOCKS],
)
def test_snippet_runs(block):
    """Each fenced python block executes cleanly in a fresh namespace."""
    name, line, code = block
    namespace: dict = {"__name__": f"doc_snippet_{name}_{line}"}
    exec(compile(code, f"{name}:L{line}", "exec"), namespace)  # noqa: S102


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_intra_repo_links_resolve(path):
    """Relative links in the docs point at files that exist."""
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken links in {path.name}: {broken}"
