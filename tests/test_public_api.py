"""The stable top-level API: ``repro.__all__`` is a contract.

These tests pin the blessed surface.  Adding a name is a deliberate API
decision (update ``STABLE_API`` here in the same commit); removing or
breaking one is a major-version event.  Every exported name must resolve
through the lazy ``__getattr__`` to a real object.
"""

from __future__ import annotations

import importlib

import pytest

import repro

# The blessed surface, alphabetized.  Keep in sync with repro.__all__.
STABLE_API = sorted(
    [
        "DiagnosisPipeline",
        "DiagnosisReport",
        "DiagnosisServer",
        "DiagnosisService",
        "DiagnosticTool",
        "DrishtiTool",
        "IOAgent",
        "IOAgentConfig",
        "IONTool",
        "InteractiveSession",
        "LLMClient",
        "PendingDiagnosis",
        "QueueFullError",
        "RegistryLookupError",
        "ResultStore",
        "SeriesDiagnosticTool",
        "ServeSnapshot",
        "ServiceStats",
        "available_tools",
        "build_tracebench",
        "evaluate_tools",
        "get_tool",
        "register_scenario",
        "register_tool",
        "select_scenarios",
        "trace_digest",
    ]
)


def test_all_is_exactly_the_stable_surface():
    assert sorted(repro.__all__) == STABLE_API


@pytest.mark.parametrize("name", STABLE_API)
def test_every_export_resolves(name):
    obj = getattr(repro, name)
    assert obj is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.not_a_real_export  # noqa: B018


def test_exports_are_canonical_objects():
    # The lazy re-export must be the same object as the defining module's —
    # isinstance checks across the two import paths must agree.
    from repro.core.service import DiagnosisService, ServiceStats
    from repro.serve import DiagnosisServer, QueueFullError, ResultStore
    from repro.util.lookup import RegistryLookupError

    assert repro.DiagnosisService is DiagnosisService
    assert repro.ServiceStats is ServiceStats
    assert repro.DiagnosisServer is DiagnosisServer
    assert repro.QueueFullError is QueueFullError
    assert repro.ResultStore is ResultStore
    assert repro.RegistryLookupError is RegistryLookupError


def test_version_is_semver():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_serve_subsystem_all_matches_exports():
    serve = importlib.import_module("repro.serve")
    for name in serve.__all__:
        assert getattr(serve, name) is not None
