"""Tests for workload generation and the TraceBench suite.

The headline invariants: the suite reproduces paper Table III *exactly*
(182 labeled issues over 40 traces), and every trace's expert labels are
recoverable from its counters by the expert rules with no false positives
— i.e. the labels describe real behaviours of the generated traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summaries import app_context_facts, extract_fragments
from repro.llm.reasoning import infer_findings
from repro.tracebench.spec import TABLE3_EXPECTED, TRACE_SPECS, table3_counts
from repro.workloads.base import WorkloadContext
from repro.workloads.patterns import _offsets_for_rank, data_phase, metadata_phase
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import OpKind
from repro.util.rng import rng_for


class TestPatterns:
    def _ctx(self, nprocs=4):
        return WorkloadContext(nprocs=nprocs, fs=LustreFileSystem(seed=0), rng=rng_for(0, "t"))

    def test_data_phase_fpp_paths(self):
        ops = list(data_phase("/scratch/f", "write", xfer=100, count_per_rank=2)(self._ctx()))
        writes = [o for o in ops if o.kind is OpKind.WRITE]
        assert {o.path for o in writes} == {f"/scratch/f.{r:05d}" for r in range(4)}

    def test_data_phase_shared_single_path(self):
        ops = list(
            data_phase("/scratch/s", "write", xfer=100, count_per_rank=2, layout="shared")(self._ctx())
        )
        assert {o.path for o in ops} == {"/scratch/s"}

    def test_collective_requires_mpiio(self):
        with pytest.raises(ValueError):
            data_phase("/f", "write", xfer=1, count_per_rank=1, collective=True, api="posix")

    def test_unaligned_shim_shifts_offsets(self):
        ops = list(
            data_phase("/scratch/f", "write", xfer=4096, count_per_rank=3, unaligned_shim=17)(self._ctx(1))
        )
        writes = [o for o in ops if o.kind is OpKind.WRITE]
        assert all(o.offset % 4096 == 17 for o in writes)

    def test_metadata_phase_op_structure(self):
        ops = list(metadata_phase("/scratch/md", files_per_rank=3)(self._ctx(2)))
        opens = [o for o in ops if o.kind is OpKind.OPEN]
        stats = [o for o in ops if o.kind is OpKind.STAT]
        assert len(opens) == len(stats) == 6
        assert len({o.path for o in opens}) == 6  # distinct files

    @given(
        rank=st.integers(min_value=0, max_value=7),
        count=st.integers(min_value=1, max_value=200),
        xfer=st.sampled_from([100, 4096, 47008]),
        layout=st.sampled_from(["shared", "fpp"]),
        pattern=st.sampled_from(["seq", "strided", "random"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_offsets_unique_and_nonnegative(self, rank, count, xfer, layout, pattern):
        """No two requests of one rank overlap; offsets stay in range."""
        offs = _offsets_for_rank(rank, 8, count, xfer, layout, pattern, rng_for(0, "h"))
        assert len(np.unique(offs)) == count
        assert (offs >= 0).all()
        if pattern == "random":
            # A permutation of the same block set.
            base = _offsets_for_rank(rank, 8, count, xfer, layout, "seq", rng_for(0, "h"))
            assert set(offs.tolist()) == set(base.tolist())

    def test_rank_offsets_disjoint_on_shared_file(self):
        all_offs = [
            set(_offsets_for_rank(r, 4, 50, 4096, "shared", "strided", rng_for(0, "x")).tolist())
            for r in range(4)
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (all_offs[i] & all_offs[j])


class TestWorkloadExecution:
    def test_workload_run_is_deterministic(self):
        from repro.workloads.simple_bench import sb01_small_writes

        log1, res1 = sb01_small_writes().run(seed=0)
        log2, res2 = sb01_small_writes().run(seed=0)
        assert res1.bytes_written == res2.bytes_written
        assert render_eq(log1, log2)

    def test_no_mpi_workloads_have_no_mpiio_records(self, bench):
        trace = bench.get("io500-01-posix-4k-fpp")
        assert not trace.log.records_for("MPIIO")
        assert trace.log.header.nprocs > 1

    def test_amrex_matches_paper_vitals(self, bench):
        """The §III example: ~722 s, 8 processes, 11 files, stripe width 1."""
        trace = bench.get("ra01-amrex")
        assert trace.log.header.nprocs == 8
        assert 700 <= trace.log.header.run_time <= 760
        assert len(trace.log.files()) >= 10
        widths = {
            r.counters["LUSTRE_STRIPE_WIDTH"] for r in trace.log.records_for("LUSTRE")
        }
        assert 1 in widths


def render_eq(log1, log2) -> bool:
    from repro.darshan.writer import render_darshan_text

    return render_darshan_text(log1) == render_darshan_text(log2)


class TestTraceBench:
    def test_table3_exact_match(self):
        assert table3_counts() == TABLE3_EXPECTED

    def test_suite_size_and_totals(self, bench):
        assert len(bench) == 40
        assert bench.total_labels() == 182
        assert len(bench.by_source("simple-bench")) == 10
        assert len(bench.by_source("io500")) == 21
        assert len(bench.by_source("real-applications")) == 9

    def test_trace_ids_unique(self):
        ids = [s.trace_id for s in TRACE_SPECS]
        assert len(set(ids)) == len(ids)

    def test_every_trace_has_at_least_one_label(self):
        assert all(s.labels for s in TRACE_SPECS)

    def test_get_unknown_raises(self, bench):
        with pytest.raises(KeyError):
            bench.get("nope")

    def test_labels_are_behaviourally_grounded(self, bench):
        """Expert rules over full (unsampled) facts recover the labels
        exactly, for every trace: no label is unobservable, none spurious."""
        for trace in bench:
            facts = app_context_facts(trace.log)
            for fragment in extract_fragments(trace.log):
                facts.extend(fragment.facts)
            detected = {f.issue_key for f in infer_findings(facts)}
            assert detected == set(trace.labels), trace.trace_id

    def test_text_property_is_cached(self, bench):
        trace = bench.get("sb01-small-writes")
        assert trace.text is trace.text
