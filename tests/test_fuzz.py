"""The generative scenario fuzzer: sampling, grounding, adversarial gaps.

The fuzzer's contract has three legs, each tested here: sampling is
deterministic and prefix-stable (the same seed always yields the same
compositions, byte-for-byte across processes), every derived label is
recoverable by the expert rules from the built trace, and each
adversarial pair *demonstrably* masks its rule — the documented known
gap.  The per-pathology confusion matrix that scores the tier is pinned
against a hand-computed fixture.
"""

from __future__ import annotations

import hashlib
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.issues import ISSUE_KEYS
from repro.darshan.writer import render_darshan_text
from repro.evaluation.accuracy import MatchStats
from repro.evaluation.confusion import ConfusionMatrix
from repro.evaluation.detector import detected_issues
from repro.workloads.fuzz import (
    ADVERSARIAL_PAIRS,
    DEFAULT_FUZZ_COUNT,
    DEFAULT_FUZZ_SEED,
    RAMPS,
    find_detection_threshold,
    generate_compositions,
    sample_composition,
)
from repro.workloads.scenarios import build_scenario, select_scenarios

REPO_ROOT = Path(__file__).resolve().parent.parent


def _digest(log) -> str:
    text = render_darshan_text(log, include_dxt=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestSampling:
    def test_composition_shape(self):
        for index in range(6):
            comp = sample_composition(3, index)
            assert 2 <= len(comp.ingredients) <= 4
            assert comp.labels <= set(ISSUE_KEYS)
            for draw in comp.ingredients:
                assert draw.labels <= comp.labels  # ground truth is the union
            assert comp.nprocs in {4, 8, 16}
            assert comp.num_osts in {4, 8}
            assert comp.name.startswith(f"fuzz-s3-{index:03d}-")

    def test_no_mpi_label_tracks_ingredients(self):
        for index in range(8):
            comp = sample_composition(5, index)
            uses_mpi = any(d.mpiio for d in comp.ingredients)
            assert ("no_mpi" in comp.labels) == (not uses_mpi)

    def test_sampling_is_deterministic(self):
        a = sample_composition(7, 2)
        b = sample_composition(7, 2)
        assert (a.name, a.labels, a.description) == (b.name, b.labels, b.description)
        assert (a.nprocs, a.num_osts, a.primary) == (b.nprocs, b.num_osts, b.primary)
        assert [d.key for d in a.ingredients] == [d.key for d in b.ingredients]

    def test_stream_is_prefix_stable(self):
        """Drawing 5 then 10 compositions agrees on the shared prefix."""
        five = [c.name for c in generate_compositions(0, 5)]
        ten = [c.name for c in generate_compositions(0, 10)]
        assert ten[:5] == five

    def test_build_is_byte_identical_in_process(self):
        """Satellite contract: building twice yields identical digests."""
        comp = sample_composition(4, 1)
        first = build_scenario(comp.scenario(), seed=0)
        second = build_scenario(comp.scenario(), seed=0)
        assert _digest(first.log) == _digest(second.log)

    @pytest.mark.parametrize("seed", [0, 11])
    def test_build_is_byte_identical_across_processes(self, seed):
        """Same fuzzer seed, fresh interpreter: the same trace bytes."""
        comp = sample_composition(seed, 0)
        local = _digest(build_scenario(comp.scenario(), seed=0).log)
        script = (
            "import hashlib\n"
            "from repro.darshan.writer import render_darshan_text\n"
            "from repro.workloads.fuzz import sample_composition\n"
            "from repro.workloads.scenarios import build_scenario\n"
            f"comp = sample_composition({seed}, 0)\n"
            "trace = build_scenario(comp.scenario(), seed=0)\n"
            "text = render_darshan_text(trace.log, include_dxt=True)\n"
            "print(hashlib.sha256(text.encode('utf-8')).hexdigest(), end='')\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        ).stdout
        assert remote == local


class TestRegistration:
    def test_pinned_tier_registered(self):
        fuzz = select_scenarios(["fuzz"])
        assert len(fuzz) == DEFAULT_FUZZ_COUNT + 2 * len(ADVERSARIAL_PAIRS)
        assert all(s.source == "fuzz" for s in fuzz)
        compositions = select_scenarios(["fuzz-composition"])
        assert len(compositions) == DEFAULT_FUZZ_COUNT
        assert all(s.difficulty == "medium" for s in compositions)

    def test_registered_names_match_pinned_stream(self):
        expected = [
            c.name for c in generate_compositions(DEFAULT_FUZZ_SEED, DEFAULT_FUZZ_COUNT)
        ]
        assert [s.name for s in select_scenarios(["fuzz-composition"])] == expected

    def test_adversarial_twins_registered(self):
        names = {s.name for s in select_scenarios(["fuzz-adversarial"])}
        for pair in ADVERSARIAL_PAIRS:
            assert pair.bare_name in names
            assert pair.masked_name in names


class TestGrounding:
    @pytest.mark.parametrize(
        "name", [s.name for s in select_scenarios(["fuzz-composition"])]
    )
    def test_derived_labels_recoverable(self, name):
        """Every label the fuzzer derived, the expert rules recover."""
        trace = build_scenario(name, seed=0)
        assert set(trace.labels) <= detected_issues(trace.log)


class TestAdversarial:
    @pytest.mark.parametrize(
        "pair", ADVERSARIAL_PAIRS, ids=[p.name for p in ADVERSARIAL_PAIRS]
    )
    def test_masking_demonstrated(self, pair):
        """Bare twin detects the keys; the masked twin provably does not."""
        bare = build_scenario(pair.bare_name, seed=0)
        masked = build_scenario(pair.masked_name, seed=0)
        assert pair.masked_keys <= detected_issues(bare.log)
        assert not pair.masked_keys & detected_issues(masked.log)
        # Twins share ground truth: labels record what was injected, so
        # the masked twin is an honest false-negative row, not a relabel.
        assert set(bare.labels) == set(masked.labels)


class TestRamps:
    def test_threshold_is_bisected_to_a_bracket(self):
        ramp = RAMPS[0]
        result = find_detection_threshold(ramp, detected_issues, seed=0, iterations=3)
        assert result.ramp == ramp.name
        assert result.issue_key == ramp.issue_key
        assert 0.0 <= result.detected_at < result.masked_at <= 1.0
        # 3 bisection steps shrink the initial [0, 1] bracket to 1/8.
        assert result.masked_at - result.detected_at == pytest.approx(0.125)
        assert result.threshold == pytest.approx(
            (result.detected_at + result.masked_at) / 2.0
        )

    def test_unbracketed_ramp_is_rejected(self):
        with pytest.raises(ValueError, match="not detected at intensity"):
            find_detection_threshold(RAMPS[0], lambda log: set(), iterations=1)


class TestConfusionMatrix:
    """Satellite: the cell math pinned against a hand-computed fixture."""

    # Three scenarios: (detected, labels).
    #   s1: a hits, b is a false positive, c is missed
    #   s2: a hits cleanly
    #   s3: c hits, b is missed
    PAIRS = [
        ({"a", "b"}, {"a", "c"}),
        ({"a"}, {"a"}),
        ({"c"}, {"b", "c"}),
    ]

    def test_cells_match_hand_computation(self):
        m = ConfusionMatrix.from_pairs(self.PAIRS)
        assert m.n_traces == 3
        assert m.cells["a"] == MatchStats(matched=2, false_positives=0, missed=0)
        assert m.cells["b"] == MatchStats(matched=0, false_positives=1, missed=1)
        assert m.cells["c"] == MatchStats(matched=1, false_positives=0, missed=1)

    def test_derived_rates_are_exact(self):
        m = ConfusionMatrix.from_pairs(self.PAIRS)
        assert (m.cells["a"].precision, m.cells["a"].recall, m.cells["a"].f1) == (
            1.0,
            1.0,
            1.0,
        )
        assert (m.cells["b"].precision, m.cells["b"].recall, m.cells["b"].f1) == (
            0.0,
            0.0,
            0.0,
        )
        assert (m.cells["c"].precision, m.cells["c"].recall) == (1.0, 0.5)
        assert m.cells["c"].f1 == pytest.approx(2 / 3)

    def test_micro_totals(self):
        t = ConfusionMatrix.from_pairs(self.PAIRS).totals()
        assert (t.matched, t.false_positives, t.missed) == (3, 1, 2)
        assert t.precision == 0.75
        assert t.recall == 0.6
        assert t.f1 == pytest.approx(2 / 3)

    def test_recall_for_absent_key_is_one(self):
        m = ConfusionMatrix.from_pairs(self.PAIRS)
        assert m.recall_for("never-seen") == 1.0

    def test_render_orders_taxonomy_keys_first(self):
        pairs = [({"small_write", "zz-custom"}, {"small_write", "zz-custom"})]
        rendered = ConfusionMatrix.from_pairs(pairs).render("fixture")
        assert rendered.startswith("fixture (1 traces)")
        assert rendered.index("small_write") < rendered.index("zz-custom")
        assert "(micro total)" in rendered


class TestFuzzCLI:
    def test_generate_prints_derived_truth(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "generate", "--seed", "5", "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("fuzz-s5-") == 3
        assert "labels=" in out

    def test_sweep_renders_and_writes_confusion(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "confusion.txt"
        assert main(["fuzz", "sweep", "--count", "2", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok   fuzz-s0-") == 2
        assert "Fuzz sweep confusion" in out
        written = out_path.read_text(encoding="utf-8")
        assert written.startswith("Fuzz sweep confusion")

    def test_ramp_reports_every_threshold(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "ramp", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("threshold ~") == len(RAMPS)

    def test_evaluate_renders_fuzz_confusion(self, capsys):
        from repro.cli import main

        name = select_scenarios(["fuzz-composition"])[0].name
        assert main(["evaluate", "--scenarios", name]) == 0
        out = capsys.readouterr().out
        assert "Fuzz tier confusion (expert rules)" in out


class TestSelectorErrors:
    """Satellite: one friendly exit-2 path for every selector surface."""

    def test_evaluate_and_list_scenarios_share_the_error(self, capsys):
        from repro.cli import main

        assert main(["evaluate", "--scenarios", "bogus-tag"]) == 2
        evaluate_err = capsys.readouterr().err
        assert main(["list-scenarios", "--tag", "bogus-tag"]) == 2
        list_err = capsys.readouterr().err
        assert evaluate_err == list_err
        assert "unknown scenario selector: bogus-tag" in evaluate_err
        assert "available tags:" in evaluate_err
        assert "list-scenarios" in evaluate_err

    def test_difficulty_case_hint(self, capsys):
        from repro.cli import main

        assert main(["list-scenarios", "--tag", "Hard"]) == 2
        err = capsys.readouterr().err
        assert "difficulty tiers are lowercase" in err
        assert "'hard'" in err
