"""Tests for the per-OST server-attribution evidence channel (PR 5).

Covers: the ``ost`` column end to end (sim stamping → columnar store →
text round trip), the per-OST kernels against their scalar references
(pinned scenarios + randomized property equivalence), the ``None``-ost
degradation guarantee (counter-only and legacy text traces produce no
server facts and fire no server rules), the server-attribution scenario
tier (path18-path21) grounding exactly *only* through the new channel,
the deepest-cause suppression ordering, and the two ``DXT_OST_*``
Drishti triggers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.drishti.triggers import run_triggers
from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.dxt import (
    dxt_temporal_facts,
    parse_dxt_text,
    render_dxt_text,
)
from repro.darshan.dxt_reference import scalar_temporal_facts
from repro.darshan.parser import parse_darshan_text
from repro.darshan.segtable import (
    NO_OST,
    DxtSegment,
    SegmentTable,
    SegmentTableBuilder,
)
from repro.darshan.writer import render_darshan_text
from repro.llm.facts import extract_facts, render_fact
from repro.llm.reasoning import infer_findings
from repro.workloads.scenarios import build_scenario

OST_TIER = (
    "path18-hot-ost",
    "path19-mds-vs-oss",
    "path20-rebalanced-stripe",
    "path21-multi-ost-degradation",
)
# Scenarios whose ground truth needs the ost column (path20 is the control).
OST_GROUNDED = ("path18-hot-ost", "path19-mds-vs-oss", "path21-multi-ost-degradation")


@pytest.fixture(scope="module")
def ost_traces():
    return {name: build_scenario(name, seed=0) for name in OST_TIER}


def _detected(trace, segments=None) -> set[str]:
    facts = app_context_facts(trace.log)
    for fragment in extract_fragments(trace.log):
        facts.extend(fragment.facts)
    if segments is not None:
        facts.extend(dxt_temporal_facts(segments))
    return {f.issue_key for f in infer_findings(facts)}


def _facts(segments) -> dict[str, dict]:
    return {f.kind: f.data for f in dxt_temporal_facts(segments)}


def _make_segments(n: int, seed: int, *, with_ost: bool = True) -> list[DxtSegment]:
    """Randomized attributed segments exercising the per-OST kernels:
    several OSTs, a None-attribution mix, multiple size buckets, ranks,
    files, and MPIIO->POSIX lowering."""
    rng = np.random.default_rng(seed)
    segments = []
    for _ in range(n):
        path_idx = int(rng.integers(0, 6))
        lowered = path_idx < 2 and rng.random() < 0.5
        module = "X_MPIIO" if path_idx < 2 and not lowered else "X_POSIX"
        start = round(float(rng.uniform(0.0, 20.0)), 2)
        duration = round(float(rng.uniform(0.001, 0.5)), 3)
        # Two size buckets plus jitter, so the dominant-bucket pick matters.
        base = 1 << int(rng.choice([12, 20]))
        length = int(base * rng.uniform(1.0, 1.9))
        ost = int(rng.integers(0, 7)) if with_ost and rng.random() < 0.9 else None
        segments.append(
            DxtSegment(
                module=module,
                rank=int(rng.integers(0, 8)),
                path=f"/scratch/rand/f{path_idx}",
                operation="read" if rng.random() < 0.4 else "write",
                offset=int(rng.integers(0, 1 << 30)),
                length=length,
                start_time=start,
                end_time=start + duration,
                ost=ost,
            )
        )
    return segments


def _assert_facts_equivalent(vec_facts, ref_facts, rel=1e-9):
    vec = {f.kind: f.data for f in vec_facts}
    ref = {f.kind: f.data for f in ref_facts}
    assert vec.keys() == ref.keys()
    for kind, ref_data in ref.items():
        vec_data = vec[kind]
        assert vec_data.keys() == ref_data.keys(), kind
        for field, expected in ref_data.items():
            got = vec_data[field]
            if isinstance(expected, float):
                assert got == pytest.approx(expected, rel=rel, abs=1e-9), f"{kind}.{field}"
            else:
                assert got == expected, f"{kind}.{field}"


class TestOstColumn:
    def test_collector_stamps_serving_ost(self, ost_traces):
        table = ost_traces["path18-hot-ost"].log.dxt_segments
        assert (table.ost != NO_OST).all()
        # Aligned stripe-sized requests on a width-8 pinned layout: the
        # stamped OST is exactly offset // stripe_size mod 8.
        expected = (table.offset // (1 << 20)) % 8
        assert (table.ost == expected).all()

    def test_segment_object_view_round_trips_ost(self):
        builder = SegmentTableBuilder()
        builder.append("X_POSIX", 0, "/s/f", "write", 0, 4096, 0.0, 0.1, 5)
        builder.append("X_POSIX", 1, "/s/f", "read", 4096, 4096, 0.1, 0.2, None)
        table = builder.build()
        assert [s.ost for s in table] == [5, None]
        assert table[0].ost == 5 and table[1].ost is None
        assert list(SegmentTable.from_segments(list(table))) == list(table)

    def test_digest_is_ost_sensitive(self):
        segments = _make_segments(20, seed=1)
        base = SegmentTable.from_segments(segments).digest()
        stripped = SegmentTable.from_segments(segments).without_ost().digest()
        assert base != stripped

    def test_dxt_text_round_trips_ost(self):
        table = SegmentTable.from_segments(_make_segments(30, seed=2))
        parsed = parse_dxt_text(render_dxt_text(table))
        assert [s.ost for s in parsed] == [s.ost for s in table]
        assert render_dxt_text(parsed) == render_dxt_text(table)

    def test_legacy_nine_field_text_parses_unattributed(self):
        line = "X_POSIX 0 write 0 0 4096 0.0000 0.0010 /scratch/f\n"
        (seg,) = parse_dxt_text(line)
        assert seg.ost is None

    def test_legacy_text_with_spaced_path_still_parses(self):
        """A pre-ost export line whose path contains whitespace must not be
        mistaken for the 10-field format (the 9th token is no ost id)."""
        line = "X_POSIX 0 write 0 0 4096 0.0000 0.0010 /scratch/my file\n"
        (seg,) = parse_dxt_text(line)
        assert seg.path == "/scratch/my file"
        assert seg.ost is None

    def test_darshan_text_export_preserves_attribution(self, ost_traces):
        log = ost_traces["path21-multi-ost-degradation"].log
        restored = parse_darshan_text(render_darshan_text(log, include_dxt=True))
        assert (restored.dxt_segments.ost == log.dxt_segments.ost).all()


class TestOstKernels:
    def test_hot_ost_latency_attribution(self, ost_traces):
        facts = _facts(ost_traces["path18-hot-ost"].log.dxt_segments)
        latency = facts["dxt_ost_latency"]
        assert latency["slow_osts"] == [3]
        assert latency["n_osts"] == 8
        assert latency["ratio"] == pytest.approx(4.0, abs=0.05)
        skew = facts["dxt_ost_skew"]
        assert skew["hot_ost"] == 3
        assert skew["skew"] == pytest.approx(4 / (4 + 7) * 8, abs=0.1)

    def test_multi_ost_attribution_names_both_servers(self, ost_traces):
        latency = _facts(ost_traces["path21-multi-ost-degradation"].log.dxt_segments)[
            "dxt_ost_latency"
        ]
        assert latency["slow_osts"] == [2, 5]
        assert latency["ratio"] == pytest.approx(4.0, abs=0.05)

    def test_rebalanced_control_is_healthy(self, ost_traces):
        facts = _facts(ost_traces["path20-rebalanced-stripe"].log.dxt_segments)
        latency = facts["dxt_ost_latency"]
        assert 3 not in latency["slow_osts"]  # the degraded OST serves nothing
        assert latency["n_osts"] == 7
        assert latency["ratio"] < 1.5
        assert facts["dxt_ost_skew"]["skew"] < 1.5

    @pytest.mark.parametrize("name", OST_TIER)
    def test_scenario_facts_match_scalar_reference(self, ost_traces, name):
        table = ost_traces[name].log.dxt_segments
        _assert_facts_equivalent(
            dxt_temporal_facts(table), scalar_temporal_facts(list(table))
        )

    @pytest.mark.parametrize("n,seed", [(16, 10), (64, 11), (257, 12), (2000, 13)])
    def test_random_tables_match_scalar_reference(self, n, seed):
        segments = _make_segments(n, seed=seed)
        _assert_facts_equivalent(
            dxt_temporal_facts(segments), scalar_temporal_facts(segments), rel=1e-7
        )

    def test_none_ost_segments_produce_no_server_facts(self):
        """The degradation guarantee: a timeline with no attribution at all
        (counter-only deployments, parsed legacy text) yields no per-OST
        facts — identical to the full extraction minus the ost kinds."""
        segments = _make_segments(300, seed=20, with_ost=False)
        kinds = {f.kind for f in dxt_temporal_facts(segments)}
        assert not {k for k in kinds if k.startswith("dxt_ost")}
        _assert_facts_equivalent(
            dxt_temporal_facts(segments), scalar_temporal_facts(segments), rel=1e-7
        )


class TestNlRoundTrip:
    @pytest.mark.parametrize("kind", ["dxt_ost_skew", "dxt_ost_latency"])
    def test_scenario_facts_survive_rendering(self, ost_traces, kind):
        facts = dxt_temporal_facts(ost_traces["path21-multi-ost-degradation"].log.dxt_segments)
        fact = next(f for f in facts if f.kind == kind)
        recovered = [f for f in extract_facts(render_fact(fact)) if f.kind == kind]
        assert recovered
        for field, value in fact.data.items():
            if isinstance(value, float):
                # Rates render at one decimal, shares at one decimal percent.
                assert recovered[0].data[field] == pytest.approx(value, abs=0.06)
            else:
                assert recovered[0].data[field] == value


class TestOstGrounding:
    @pytest.mark.parametrize("name", OST_TIER)
    def test_tier_grounds_exactly_with_the_channel(self, ost_traces, name):
        trace = ost_traces[name]
        assert _detected(trace, trace.log.dxt_segments) == set(trace.labels)

    @pytest.mark.parametrize("name", OST_GROUNDED)
    def test_tier_needs_the_ost_column(self, ost_traces, name):
        """Counters plus the *file-level* temporal facts are not enough:
        the same timeline without its ost column under-grounds (or, for
        path21, misattributes to rank imbalance)."""
        trace = ost_traces[name]
        without = _detected(trace, trace.log.dxt_segments.without_ost())
        assert without != set(trace.labels)
        assert "server_imbalance" not in without

    def test_multi_ost_misattributes_without_the_column(self, ost_traces):
        trace = ost_traces["path21-multi-ost-degradation"]
        without = _detected(trace, trace.log.dxt_segments.without_ost())
        assert "rank_imbalance" in without  # the wrong (shallower) diagnosis

    def test_control_grounds_either_way(self, ost_traces):
        trace = ost_traces["path20-rebalanced-stripe"]
        assert _detected(trace, trace.log.dxt_segments) == set(trace.labels)
        assert _detected(trace, trace.log.dxt_segments.without_ost()) == set(trace.labels)

    def test_slow_server_explains_away_the_straggler(self, ost_traces):
        """Deepest-cause ordering: with attribution, the slow-rank symptom
        of path21 is attributed to its servers, not reported as its own
        rank-imbalance finding."""
        trace = ost_traces["path21-multi-ost-degradation"]
        detected = _detected(trace, trace.log.dxt_segments)
        assert "server_imbalance" in detected
        assert "rank_imbalance" not in detected


class TestOstTriggers:
    def test_slow_server_trigger_fires_on_degraded_tiers(self, ost_traces):
        for name in OST_GROUNDED:
            fired = {r.code for r in run_triggers(ost_traces[name].log)}
            assert "DXT_OST_SLOW_SERVER" in fired, name
            assert "DXT_TIME_STRAGGLER" not in fired, name  # suppressed

    def test_hotspot_trigger_fires_on_single_hot_ost(self, ost_traces):
        fired = {r.code for r in run_triggers(ost_traces["path18-hot-ost"].log)}
        assert "DXT_OST_HOTSPOT" in fired

    def test_triggers_quiet_on_the_rebalanced_control(self, ost_traces):
        fired = {r.code for r in run_triggers(ost_traces["path20-rebalanced-stripe"].log)}
        assert not fired & {"DXT_OST_SLOW_SERVER", "DXT_OST_HOTSPOT"}

    def test_triggers_quiet_without_segments(self, ost_traces):
        log = parse_darshan_text(render_darshan_text(ost_traces["path18-hot-ost"].log))
        fired = {r.code for r in run_triggers(log)}
        assert not fired & {"DXT_OST_SLOW_SERVER", "DXT_OST_HOTSPOT"}
