"""Tests for the IOAgent core pipeline."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.describe import context_sentences, describe_fragment
from repro.core.issues import ISSUE_KEYS, ISSUES, issue_by_key
from repro.core.merge import one_step_merge, tree_merge
from repro.core.preprocess import split_modules, write_module_csvs
from repro.core.session import InteractiveSession
from repro.core.summaries import SUMMARY_COVERAGE, app_context_facts, extract_fragments
from repro.llm.findings import Finding, parse_findings, render_findings


class TestIssues:
    def test_taxonomy_size(self):
        # The paper's 16 Table II issues plus the two time-domain
        # extension issues (lock_contention, io_stall) and the
        # longitudinal one (trend_regression).
        assert len(ISSUES) == 19
        assert len(set(ISSUE_KEYS)) == 19
        assert {"lock_contention", "io_stall", "trend_regression"} <= set(ISSUE_KEYS)

    def test_lookup(self):
        assert issue_by_key("small_write").label == "Small Write I/O Requests"
        with pytest.raises(KeyError):
            issue_by_key("nope")

    def test_aliases_lowercase(self):
        for issue in ISSUES:
            assert all(a == a.lower() for a in issue.aliases)


class TestPreprocess:
    def test_split_modules_covers_present_modules(self, sb01_trace):
        tables = split_modules(sb01_trace.log)
        assert set(tables) == {"POSIX", "MPIIO", "LUSTRE"}
        posix = tables["POSIX"]
        assert posix.rows and posix.columns[0].startswith("POSIX_")

    def test_csv_render_shape(self, sb01_trace):
        table = split_modules(sb01_trace.log)["POSIX"]
        lines = table.to_csv().strip().splitlines()
        assert len(lines) == len(table.rows) + 1
        assert lines[0].startswith("file,rank,")

    def test_write_module_csvs(self, sb01_trace, tmp_path):
        paths = write_module_csvs(sb01_trace.log, str(tmp_path))
        assert {os.path.basename(p) for p in paths} == {"posix.csv", "mpiio.csv", "lustre.csv"}
        for p in paths:
            assert os.path.getsize(p) > 0


class TestSummaries:
    def test_table1_coverage_matrix(self):
        """The Table I checkmarks, exactly."""
        assert SUMMARY_COVERAGE["POSIX"] == (
            "io_size", "request_count", "file_metadata", "rank", "alignment", "order", "mount",
        )
        assert SUMMARY_COVERAGE["MPIIO"] == (
            "io_size", "request_count", "file_metadata", "rank", "alignment",
        )
        assert SUMMARY_COVERAGE["STDIO"] == ("io_size", "request_count", "file_metadata")
        assert SUMMARY_COVERAGE["LUSTRE"] == ("mount", "stripe_setting", "server_usage")

    def test_fragments_have_code_and_json(self, sb01_trace):
        fragments = extract_fragments(sb01_trace.log)
        assert fragments
        for frag in fragments:
            assert "def extract_" in frag.code
            payload = frag.to_json()
            json.dumps(payload)  # JSON-serializable
            assert payload["module"] == frag.module

    def test_sb01_has_small_write_signal(self, sb01_trace):
        fragments = {f.fragment_id: f for f in extract_fragments(sb01_trace.log)}
        size = fragments["POSIX.io_size"]
        fact = next(f for f in size.facts if f.kind == "size_hist" and f.get("direction") == "write")
        assert fact.get("small_fraction") > 0.9
        assert fact.get("n_requests") == 20000

    def test_app_context_facts(self, sb01_trace):
        facts = app_context_facts(sb01_trace.log)
        kinds = {f.kind for f in facts}
        assert kinds == {"app_context", "mpi_presence"}
        mpi = next(f for f in facts if f.kind == "mpi_presence")
        assert mpi.get("mpiio_used") is True


class TestDescribe:
    def test_description_carries_quantities(self, sb01_trace, client):
        fragments = {f.fragment_id: f for f in extract_fragments(sb01_trace.log)}
        desc = describe_fragment(
            fragments["POSIX.io_size"],
            app_context_facts(sb01_trace.log),
            client,
            "gpt-4o",
            call_id="t/desc",
        )
        assert "20000" in desc  # the Fig. 3 property: values preserved in NL
        assert "POSIX" in desc

    def test_context_sentences_renders_all(self, sb01_trace):
        text = context_sentences(app_context_facts(sb01_trace.log))
        assert "4 processes" in text


class TestMerge:
    def _summary(self, key: str) -> str:
        return render_findings(
            [Finding(issue_key=key, evidence=f"E-{key}", assessment="A", recommendation="R")]
        )

    def test_tree_merge_retains_all_findings(self, client):
        keys = ["small_write", "misaligned_write", "server_imbalance", "no_collective_write"]
        merged = tree_merge([self._summary(k) for k in keys], client, "gpt-4o", call_id_prefix="t")
        assert {f.issue_key for f in parse_findings(merged)} == set(keys)

    def test_tree_merge_dedupes(self, client):
        merged = tree_merge(
            [self._summary("small_write"), self._summary("small_write")],
            client,
            "gpt-4o",
            call_id_prefix="t",
        )
        assert len(parse_findings(merged)) == 1

    def test_one_step_merge_loses_middle_findings_on_weak_model(self, client):
        """The Fig. 6 phenomenon, llama-3-70b, 13 summaries."""
        keys = list(ISSUE_KEYS)[:13]
        summaries = [self._summary(k) for k in keys]
        one = one_step_merge(summaries, client, "llama-3-70b", call_id_prefix="t1")
        tree = tree_merge(summaries, client, "llama-3-70b", call_id_prefix="t2")
        kept_one = {f.issue_key for f in parse_findings(one)}
        kept_tree = {f.issue_key for f in parse_findings(tree)}
        assert len(kept_one) < len(keys)  # 1-step drops mid-positioned content
        assert keys[0] in kept_one and keys[-1] in kept_one  # anchors survive
        assert len(kept_tree) > len(kept_one)  # tree merge retains more

    def test_empty_merge_rejected(self, client):
        with pytest.raises(ValueError):
            tree_merge([], client, "gpt-4o")
        with pytest.raises(ValueError):
            one_step_merge([], client, "gpt-4o")


class TestAgentEndToEnd:
    def test_sb01_diagnosis_matches_labels(self, sb01_trace):
        agent = IOAgent(IOAgentConfig(model="gpt-4o", seed=0))
        report = agent.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert report.issue_keys == sb01_trace.labels
        assert report.references  # RAG produced citations
        assert report.n_fragments >= 10
        assert report.sources_kept <= report.sources_retrieved

    def test_diagnosis_is_deterministic(self, sb01_trace):
        r1 = IOAgent(IOAgentConfig(seed=0)).diagnose(sb01_trace.log, trace_id="x")
        r2 = IOAgent(IOAgentConfig(seed=0)).diagnose(sb01_trace.log, trace_id="x")
        assert r1.text == r2.text

    def test_rag_off_drops_references(self, sb01_trace):
        agent = IOAgent(IOAgentConfig(use_rag=False, seed=0))
        report = agent.diagnose(sb01_trace.log, trace_id="norag")
        assert not report.references

    def test_one_step_strategy_wired(self, sb01_trace):
        agent = IOAgent(IOAgentConfig(merge_strategy="one-step", seed=0))
        report = agent.diagnose(sb01_trace.log, trace_id="onestep")
        assert report.text.startswith("# Merged I/O Performance Diagnosis")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            IOAgentConfig(merge_strategy="bogus")
        with pytest.raises(ValueError):
            IOAgentConfig(top_k=0)

    def test_report_render_header(self, sb01_trace):
        report = IOAgent(IOAgentConfig(seed=0)).diagnose(sb01_trace.log, trace_id="sb01")
        rendered = report.render()
        assert rendered.startswith("I/O performance diagnosis for trace 'sb01'")


class TestInteractiveSession:
    def test_fix_question_yields_concrete_command(self, sb01_trace, client):
        """The Fig. 5 interaction: 'how do I fix it' → lfs setstripe."""
        agent = IOAgent(IOAgentConfig(seed=0), client=client)
        report = agent.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        session = InteractiveSession(report=report, client=client)
        answer = session.ask("How can I fix the server load imbalance issue?")
        assert "lfs setstripe" in answer
        assert len(session.history) == 1

    def test_followup_uses_history(self, sb01_trace, client):
        agent = IOAgent(IOAgentConfig(seed=0), client=client)
        report = agent.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        session = InteractiveSession(report=report, client=client)
        session.ask("What about the small writes?")
        second = session.ask("And the misaligned write requests?")
        assert "pad" in second.lower() or "align" in second.lower()
        assert len(session.history) == 2
