"""Tests for the DXT temporal evidence channel (the tentpole of PR 3).

Covers: the always-on collector in ``run_workload``, the temporal fact
extractors (golden values for the straggler trace), the ``temporal``
pipeline stage and its ablation switch, the time-domain expert rules and
Drishti triggers, the sim-layer support (barrier, slow OSTs), and the
per-difficulty evaluation split.
"""

from __future__ import annotations

import pytest

from repro.baselines.drishti.triggers import run_triggers
from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.pipeline import DEFAULT_STAGE_ORDER, build_default_pipeline
from repro.core.service import trace_digest
from repro.darshan.dxt import app_level_segments, dxt_temporal_facts
from repro.darshan.parser import parse_darshan_text
from repro.darshan.writer import render_darshan_text
from repro.llm.reasoning import infer_findings
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind, barrier
from repro.sim.runtime import IORuntime, JobSpec
from repro.util.units import MiB
from repro.workloads.scenarios import build_scenario

TEMPORAL_SCENARIOS = (
    "path04-straggler-rank",
    "path13-straggler-compute",
    "path14-lock-convoy",
    "path15-bursty-interference",
    "path16-slow-ost-hotspot",
    "path17-producer-consumer",
)


@pytest.fixture(scope="module")
def temporal_traces():
    return {name: build_scenario(name, seed=0) for name in TEMPORAL_SCENARIOS}


def _facts(trace) -> dict[str, dict]:
    return {f.kind: f.data for f in dxt_temporal_facts(trace.log.dxt_segments)}


class TestSimSupport:
    def test_barrier_synchronizes_clocks(self):
        fs = LustreFileSystem(seed=0)
        rt = IORuntime(JobSpec(exe="/bin/x", nprocs=2), fs)
        result = rt.run(
            [
                IOOp(kind=OpKind.COMPUTE, api=API.POSIX, rank=0, duration=1.0),
                barrier(),
                IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=1, path="/scratch/f", offset=0, size=4096),
            ]
        )
        # Rank 1's write starts only after rank 0's compute finished.
        assert result.runtime > 1.0

    def test_barrier_invisible_to_observers(self):
        fs = LustreFileSystem(seed=0)
        rt = IORuntime(JobSpec(exe="/bin/x", nprocs=2), fs)
        seen = []

        class Obs:
            def on_op(self, op, t0, t1, fs):
                seen.append(op.kind)

        rt.add_observer(Obs())
        rt.run([barrier()])
        assert seen == []

    def test_slow_ost_multiplies_transfer_time(self):
        def run(slow):
            fs = LustreFileSystem(
                seed=0, num_osts=2, slow_osts={0: 4.0} if slow else None
            )
            fs.set_stripe("/scratch/f", 1 * MiB, 1, 0)  # pinned to OST 0
            rt = IORuntime(JobSpec(exe="/bin/x", nprocs=1), fs)
            return rt.run(
                [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=MiB)]
            ).runtime

        assert run(slow=True) == pytest.approx(4.0 * run(slow=False))

    def test_slow_osts_validation(self):
        with pytest.raises(ValueError, match=">= 1.0"):
            LustreFileSystem(slow_osts={0: 0.5})

    def test_stripe_offset_pinning(self):
        fs = LustreFileSystem(seed=0, num_osts=8)
        fs.set_stripe("/scratch/f", 1 * MiB, 2, 5)
        assert fs.layout_for("/scratch/f").ost_ids == (5, 6)
        with pytest.raises(ValueError, match="valid OST"):
            fs.set_stripe("/scratch/g", 1 * MiB, 1, 9)


class TestCollectorWiring:
    def test_every_workload_log_carries_segments(self, temporal_traces):
        for trace in temporal_traces.values():
            assert trace.log.has_dxt
            assert len(trace.log.dxt_segments) > 0

    def test_parsed_text_has_no_dxt(self, temporal_traces):
        trace = temporal_traces["path14-lock-convoy"]
        reparsed = parse_darshan_text(render_darshan_text(trace.log))
        assert reparsed.dxt_segments is None
        assert not reparsed.has_dxt

    def test_digest_covers_the_temporal_channel(self, temporal_traces):
        """Same counters + different timeline must not share a cache key."""
        trace = temporal_traces["path14-lock-convoy"]
        with_dxt = trace_digest(trace.log)
        stripped = parse_darshan_text(render_darshan_text(trace.log))
        assert trace_digest(stripped) != with_dxt


class TestTemporalFacts:
    def test_straggler_golden_facts(self, temporal_traces):
        """Golden temporal facts for the PR 2 straggler trace (seed 0)."""
        facts = _facts(temporal_traces["path04-straggler-rank"])
        skew = facts["dxt_rank_skew"]
        assert skew["slowest_rank"] == 0
        assert skew["nprocs"] == 8
        assert skew["time_skew"] == pytest.approx(6.94, abs=0.01)
        assert skew["span_skew"] == pytest.approx(6.94, abs=0.01)
        assert skew["bytes_ratio"] == pytest.approx(1.0)
        timeline = facts["dxt_timeline"]
        assert timeline["n_segments"] == 12624
        assert timeline["phase"] == "write-only"

    def test_convoy_serializes(self, temporal_traces):
        facts = _facts(temporal_traces["path14-lock-convoy"])
        conc = facts["dxt_concurrency"]
        assert conc["active_ranks"] == 8
        assert conc["mean_inflight"] == pytest.approx(1.0, abs=0.01)
        assert conc["peak_inflight"] == 1

    def test_interference_gaps(self, temporal_traces):
        idle = _facts(temporal_traces["path15-bursty-interference"])["dxt_idle"]
        assert idle["n_gaps"] == 9
        assert idle["idle_fraction"] > 0.9
        assert idle["longest_gap_s"] == pytest.approx(0.6, abs=0.01)

    def test_slow_ost_file_skew(self, temporal_traces):
        skew = _facts(temporal_traces["path16-slow-ost-hotspot"])["dxt_file_skew"]
        assert skew["n_files"] == 8
        assert skew["ratio"] == pytest.approx(4.0, abs=0.01)
        assert skew["slow_path"].startswith("/scratch/path16/")

    def test_producer_consumer_stalled_ranks(self, temporal_traces):
        idle = _facts(temporal_traces["path17-producer-consumer"])["dxt_idle"]
        assert idle["stalled_ranks"] == 8  # both halves wait on each other

    def test_app_level_sees_through_aggregators(self):
        trace = build_scenario("path08-tiny-collectives", seed=0)
        app = app_level_segments(trace.log.dxt_segments)
        assert all(s.module == "X_MPIIO" for s in app)
        assert any(s.module == "X_POSIX" for s in trace.log.dxt_segments)

    def test_empty_segments(self):
        assert dxt_temporal_facts([]) == []


class TestTemporalRules:
    @pytest.mark.parametrize("name", TEMPORAL_SCENARIOS)
    def test_hard_tier_grounds_through_dxt(self, temporal_traces, name):
        """The whole temporal tier's ground truth is recoverable from
        counter facts + DXT facts (and from nothing less)."""
        from repro.core.summaries import app_context_facts, extract_fragments

        trace = temporal_traces[name]
        facts = app_context_facts(trace.log)
        for fragment in extract_fragments(trace.log):
            facts.extend(fragment.facts)
        counter_only = {f.issue_key for f in infer_findings(facts)}
        assert counter_only != set(trace.labels), "ground truth leaked into counters"
        facts.extend(dxt_temporal_facts(trace.log.dxt_segments))
        assert {f.issue_key for f in infer_findings(facts)} == set(trace.labels)


class TestTemporalStage:
    def test_stage_in_default_order(self):
        assert "temporal" in DEFAULT_STAGE_ORDER
        assert DEFAULT_STAGE_ORDER.index("temporal") < DEFAULT_STAGE_ORDER.index("describe")

    def test_use_dxt_ablation_drops_stage(self):
        pipeline = build_default_pipeline(IOAgentConfig(use_dxt=False))
        assert "temporal" not in pipeline.stage_names

    def test_stage_appends_dxt_fragment(self, temporal_traces):
        agent = IOAgent(IOAgentConfig(seed=0))
        ctx = agent.run(temporal_traces["path13-straggler-compute"].log, trace_id="t")
        assert "DXT.timeline" in [f.fragment_id for f in ctx.fragments]
        assert "DXT.timeline" in ctx.descriptions

    def test_stage_noop_without_segments(self, temporal_traces):
        log = parse_darshan_text(
            render_darshan_text(temporal_traces["path13-straggler-compute"].log)
        )
        agent = IOAgent(IOAgentConfig(seed=0))
        ctx = agent.run(log, trace_id="t")
        assert "DXT.timeline" not in [f.fragment_id for f in ctx.fragments]
        assert "temporal" in ctx.stage_seconds  # the stage ran, found nothing

    def test_temporal_findings_reach_the_report(self, temporal_traces):
        report = IOAgent(IOAgentConfig(seed=0)).diagnose(
            temporal_traces["path14-lock-convoy"].log, trace_id="t"
        )
        assert "[lock_contention]" in report.text

    def test_counter_only_config_reproduces_paper_system(self, temporal_traces):
        """use_dxt=False on a DXT-carrying log equals running on the
        counter-only rendering of the same log."""
        log = temporal_traces["path16-slow-ost-hotspot"].log
        stripped = parse_darshan_text(render_darshan_text(log))
        ablated = IOAgent(IOAgentConfig(seed=0, use_dxt=False)).diagnose(log, trace_id="x")
        counter_only = IOAgent(IOAgentConfig(seed=0)).diagnose(stripped, trace_id="x")
        assert ablated.text == counter_only.text


class TestDxtTriggers:
    def test_triggers_fire_exactly_on_the_temporal_tier(self, temporal_traces):
        expected = {
            "path04-straggler-rank": "DXT_TIME_STRAGGLER",
            "path13-straggler-compute": "DXT_TIME_STRAGGLER",
            "path14-lock-convoy": "DXT_SERIALIZED_IO",
            "path15-bursty-interference": "DXT_IO_STALLS",
            # Since PR 5 the ost column localizes path16's degradation to
            # its servers, which suppresses the (shallower) straggler read.
            "path16-slow-ost-hotspot": "DXT_OST_SLOW_SERVER",
            "path17-producer-consumer": "DXT_IO_STALLS",
        }
        for name, code in expected.items():
            fired = {r.code for r in run_triggers(temporal_traces[name].log)}
            assert code in fired, name

    def test_triggers_quiet_on_tracebench(self, bench):
        new = {
            "DXT_TIME_STRAGGLER",
            "DXT_SERIALIZED_IO",
            "DXT_IO_STALLS",
            "DXT_OST_SLOW_SERVER",
            "DXT_OST_HOTSPOT",
        }
        for trace in bench:
            fired = {r.code for r in run_triggers(trace.log)}
            assert not (fired & new), trace.trace_id

    def test_triggers_quiet_without_segments(self, temporal_traces):
        log = parse_darshan_text(
            render_darshan_text(temporal_traces["path14-lock-convoy"].log)
        )
        fired = {r.code for r in run_triggers(log)}
        assert not fired & {
            "DXT_TIME_STRAGGLER",
            "DXT_SERIALIZED_IO",
            "DXT_IO_STALLS",
            "DXT_OST_SLOW_SERVER",
            "DXT_OST_HOTSPOT",
        }


class TestDifficultySplit:
    def test_labeled_trace_carries_difficulty(self, temporal_traces):
        assert temporal_traces["path14-lock-convoy"].difficulty == "hard"
        trace = build_scenario("path12-clean-baseline", seed=0)
        assert trace.difficulty == "control"

    def test_evaluation_result_splits_by_difficulty(self):
        from repro.evaluation.harness import evaluate_scenarios

        result = evaluate_scenarios(
            ["path01-random-small-reads", "path14-lock-convoy", "path12-clean-baseline"]
        )
        assert result.difficulties() == ["easy", "hard", "control"]
        split = result.accuracy_by_difficulty()
        assert set(split) == {"easy", "hard", "control"}
        for scores in split.values():
            assert set(scores) == set(result.tool_names)

    def test_table4_renders_difficulty_block(self):
        from repro.evaluation.harness import evaluate_scenarios
        from repro.evaluation.tables import render_table4

        result = evaluate_scenarios(["path01-random-small-reads", "path14-lock-convoy"])
        text = render_table4(result)
        assert "Accuracy by scenario difficulty" in text
        for column in ("easy", "hard"):
            assert column in text

    def test_batch_reports_f1_by_difficulty(self):
        from repro.core.batch import run_scenario_batch

        result = run_scenario_batch(
            ("path01-random-small-reads", "path14-lock-convoy"), max_workers=1
        )
        assert set(result.f1_by_difficulty) == {"easy", "hard"}
        # The convoy's ground truth is fully recoverable via DXT.
        assert result.f1_by_difficulty["hard"] == pytest.approx(1.0)
