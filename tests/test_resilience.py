"""Tests for the resilience layer: recovery policy, fault plans, degradation."""

from __future__ import annotations

import pytest

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.service import DiagnosisService
from repro.llm.client import LLMClient
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    FaultPlan,
    FaultPlanNotFoundError,
    FaultSpec,
    FaultyLLMClient,
    LLMTimeoutError,
    PermanentLLMError,
    RetryPolicy,
    TransientLLMError,
    available_fault_plans,
    corrupt_trace_text,
    get_fault_plan,
    register_fault_plan,
    unregister_fault_plan,
)
from repro.resilience.faults import garble_text
from repro.util.rng import rng_for


def always(kind: str, **kwargs) -> FaultSpec:
    return FaultSpec(kind=kind, rate=1.0, **kwargs)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy()
        for attempt in (1, 2, 3):
            raw = min(policy.base_delay * policy.multiplier ** (attempt - 1), policy.max_delay)
            a = policy.backoff(attempt, seed=7, call_id="c1")
            b = policy.backoff(attempt, seed=7, call_id="c1")
            assert a == b  # same (seed, call_id, attempt) -> same jitter
            assert raw * (1.0 - policy.jitter) <= a <= raw
        assert policy.backoff(1, seed=7, call_id="c1") != policy.backoff(1, seed=7, call_id="c2")

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=10.0, max_delay=0.02, jitter=0.0)
        assert policy.backoff(5) == 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_calls=2)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # third consecutive failure trips
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()
        assert not breaker.allow()  # cooldown_calls fast-fails
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe goes through
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        assert breaker.record_failure() is True
        assert not breaker.allow()
        assert breaker.state == "half-open"
        assert breaker.record_failure() is True  # failed probe -> straight back open
        assert breaker.trips == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # the streak restarted


class TestFaultPlans:
    def test_spec_fires_deterministically_and_respects_scope(self):
        spec = FaultSpec(kind="llm-transient", rate=0.5, scope="/describe")
        assert not spec.fires_for(0, "t1/merge")  # out of scope: never
        fired = [spec.fires_for(0, f"t1/describe/{i}") for i in range(64)]
        assert fired == [spec.fires_for(0, f"t1/describe/{i}") for i in range(64)]
        assert any(fired) and not all(fired)  # rate 0.5 is neither 0 nor 1
        assert always("llm-transient").fires_for(0, "anything")
        assert not FaultSpec(kind="llm-transient", rate=0.0).fires_for(0, "anything")

    def test_registry_mirrors_scenarios(self):
        plan = FaultPlan(name="test-weather", specs=(always("llm-transient", param=1),))
        register_fault_plan(plan)
        try:
            assert "test-weather" in available_fault_plans()
            assert get_fault_plan("test-weather") is plan
            with pytest.raises(ValueError, match="already registered"):
                register_fault_plan(plan)
        finally:
            unregister_fault_plan("test-weather")
        with pytest.raises(FaultPlanNotFoundError, match="test-weather"):
            get_fault_plan("test-weather")

    def test_builtin_plans_reference_registered_kinds(self):
        from repro.resilience import available_fault_kinds, iter_fault_plans

        kinds = set(available_fault_kinds())
        for plan in iter_fault_plans():
            assert set(plan.kinds) <= kinds

    def test_garble_and_trace_damage_are_deterministic(self, sb01_trace):
        from repro.darshan.writer import render_darshan_text

        text = "a perfectly healthy completion " * 8
        assert garble_text(text, rng_for(0, "g")) == garble_text(text, rng_for(0, "g"))
        assert "�" in garble_text(text, rng_for(0, "g"))

        rendered = render_darshan_text(sb01_trace.log, include_dxt=True)
        plan = get_fault_plan("truncated-dxt")
        damage = corrupt_trace_text(rendered, plan, sb01_trace.trace_id)
        assert damage.damaged and "trace-truncate-dxt" in damage.applied
        assert damage.text == corrupt_trace_text(rendered, plan, sb01_trace.trace_id).text
        assert len(damage.text) < len(rendered)


class TestClientRecovery:
    def test_transient_faults_recover_transparently(self):
        plan = FaultPlan(name="t", specs=(always("llm-transient", param=2),))
        prompt = "TASK: plain\nhello"
        clean = LLMClient(seed=0).complete(prompt, model="gpt-4o", call_id="c1")
        client = FaultyLLMClient(plan, seed=0)
        out = client.complete(prompt, model="gpt-4o", call_id="c1")
        assert out.text == clean.text  # recovery is invisible to the caller
        metrics = client.resilience_metrics()
        assert metrics.retries >= 1
        assert metrics.transient_errors >= 1
        assert metrics.permanent_errors == 0

    def test_exhausted_attempts_surface_the_last_error(self):
        plan = FaultPlan(name="t", specs=(always("llm-transient", param=1),))
        client = FaultyLLMClient(plan, retry_policy=RetryPolicy(max_attempts=1))
        with pytest.raises(TransientLLMError):
            client.complete("TASK: plain\nhello", model="gpt-4o", call_id="c1")
        assert client.resilience_metrics().retries == 0

    def test_timeouts_are_counted_separately(self):
        plan = FaultPlan(name="t", specs=(always("llm-timeout", param=1),))
        client = FaultyLLMClient(plan, retry_policy=RetryPolicy(max_attempts=1))
        with pytest.raises(LLMTimeoutError):
            client.complete("TASK: plain\nhello", model="gpt-4o", call_id="c1")
        metrics = client.resilience_metrics()
        assert metrics.timeouts == 1 and metrics.transient_errors == 0

    def test_zero_budget_forbids_retries(self):
        plan = FaultPlan(name="t", specs=(always("llm-transient", param=1),))
        client = FaultyLLMClient(plan, retry_policy=RetryPolicy(budget=0.0))
        with pytest.raises(TransientLLMError):
            client.complete("TASK: plain\nhello", model="gpt-4o", call_id="c1")
        assert client.resilience_metrics().retries == 0

    def test_permanent_faults_trip_the_breaker_then_fast_fail(self):
        plan = FaultPlan(name="t", specs=(always("llm-permanent"),))
        client = FaultyLLMClient(plan, breaker=CircuitBreaker(failure_threshold=2))
        for call_id in ("c1", "c2"):
            with pytest.raises(PermanentLLMError):
                client.complete("TASK: plain\nhello", model="gpt-4o", call_id=call_id)
        with pytest.raises(CircuitOpenError):
            client.complete("TASK: plain\nhello", model="gpt-4o", call_id="c3")
        metrics = client.resilience_metrics()
        assert metrics.permanent_errors == 2
        assert metrics.circuit_trips == 1
        assert metrics.circuit_fast_fails == 1

    def test_garbled_completions_are_counted(self):
        plan = FaultPlan(name="t", specs=(always("llm-garble"),))
        client = FaultyLLMClient(plan)
        out = client.complete("TASK: plain\nhello " * 20, model="gpt-4o", call_id="c1")
        assert "�" in out.text
        assert client.resilience_metrics().garbled == 1


class TestListenerIsolation:
    def test_crashing_usage_listener_does_not_abort_completion(self):
        client = LLMClient(seed=0)
        seen: list[str] = []

        def bad_listener(model: str, usage, call_id: str) -> None:
            raise RuntimeError("observer bug")

        client.add_usage_listener(bad_listener)
        client.add_usage_listener(lambda model, usage, call_id: seen.append(call_id))
        out = client.complete("TASK: plain\nhello", model="gpt-4o", call_id="c1")
        assert out.text  # the completion survived the observer crash
        assert seen == ["c1"]  # later listeners still ran
        assert client.resilience_metrics().listener_errors == 1

    def test_crashing_fault_listener_does_not_break_recovery(self):
        plan = FaultPlan(name="t", specs=(always("llm-transient", param=1),))
        client = FaultyLLMClient(plan)

        def bad_listener(event) -> None:
            raise RuntimeError("observer bug")

        client.add_fault_listener(bad_listener)
        out = client.complete("TASK: plain\nhello", model="gpt-4o", call_id="c1")
        assert out.text
        assert client.resilience_metrics().transient_errors >= 1


def _service(plan_name: str, **config_kwargs) -> DiagnosisService:
    config = IOAgentConfig(max_workers=1, **config_kwargs)
    client = FaultyLLMClient(
        get_fault_plan(plan_name), retry_policy=RetryPolicy(), breaker=CircuitBreaker()
    )
    agent = IOAgent(config, client=client)
    return DiagnosisService(tool=agent, config=config, max_workers=1)


class TestDegradation:
    def test_merge_outage_degrades_and_names_the_channel(self, sb01_trace):
        service = _service("merge-outage")
        report = service.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert report.degraded == ("merge",)
        assert "DEGRADED" in report.render()
        assert "merge" in report.render()

    def test_degraded_reports_are_never_cached(self, sb01_trace):
        service = _service("merge-outage")
        service.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert service.cached_reports() == ()
        service.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert service.cache_hits == 0 and service.cache_misses == 2

    def test_cache_key_follows_the_tools_config(self, sb01_trace):
        # An ablated tool (use_dxt=False) behind a service configured with
        # the full config must not share cache entries with the full tool.
        full = IOAgentConfig()
        ablated_service = DiagnosisService(
            tool=IOAgent(IOAgentConfig(use_dxt=False)), config=full
        )
        full_service = DiagnosisService(tool=IOAgent(full), config=full)
        assert ablated_service._cache_key(sb01_trace.log) != full_service._cache_key(
            sb01_trace.log
        )

    def test_clean_runs_stay_undegraded_and_cache(self, sb01_trace):
        config = IOAgentConfig(max_workers=1)
        service = DiagnosisService(tool=IOAgent(config), config=config, max_workers=1)
        report = service.diagnose(sb01_trace.log, trace_id=sb01_trace.trace_id)
        assert report.degraded == ()
        assert "DEGRADED" not in report.render()
        assert len(service.cached_reports()) == 1

    def test_stage_metrics_attribute_retries(self, sb01_trace):
        service = _service("flaky-llm")
        result = service.diagnose_batch([sb01_trace])
        assert sum(m.retries for m in result.stage_metrics.values()) > 0
        assert result.degraded_traces == {}  # transparent recovery

    def test_batch_surfaces_degraded_traces(self, sb01_trace):
        service = _service("merge-outage")
        result = service.diagnose_batch([sb01_trace])
        assert result.degraded_traces == {sb01_trace.trace_id: ("merge",)}


class TestChaosDeterminism:
    def test_single_plan_sweep_reproduces(self):
        from repro.resilience.chaos import ChaosReport, run_chaos_plan

        runs = run_chaos_plan("temporal-crash", scenarios=("path01-random-small-reads",))
        again = run_chaos_plan("temporal-crash", scenarios=("path01-random-small-reads",))
        assert runs == again
        (run,) = runs
        assert run.completed and run.degraded == ("dxt-temporal",)
        report = ChaosReport(
            seed=0,
            plans=("temporal-crash",),
            scenarios=("path01-random-small-reads",),
            runs=runs,
        )
        assert report.digest == ChaosReport(
            seed=0,
            plans=("temporal-crash",),
            scenarios=("path01-random-small-reads",),
            runs=again,
        ).digest
