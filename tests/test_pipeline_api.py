"""Tests for the pipeline/registry/service API (the tool platform layer)."""

from __future__ import annotations

import hashlib

import pytest

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.pipeline import (
    DEFAULT_STAGE_ORDER,
    DiagnosisPipeline,
    PipelineObserver,
    build_default_pipeline,
)
from repro.core.registry import (
    DiagnosticTool,
    ToolNotFoundError,
    available_tools,
    get_tool,
    register_tool,
    unregister_tool,
)
from repro.core.report import DiagnosisReport
from repro.core.service import DiagnosisService, trace_digest
from repro.llm.client import LLMClient, Usage
from repro.rag.index import build_default_index, default_index_builds

# sha256 of DiagnosisReport.text for sb01-small-writes, default config,
# seed 0, trace_id "golden" — captured from the pre-refactor (fused-loop)
# IOAgent.diagnose.  The stage pipeline must reproduce it byte-for-byte.
GOLDEN_SB01_SHA256 = "f1a4acc39d2d9928ccf5f84c0b963ad9e6d736591e85a4f80b1c81358eca332e"


class RecordingObserver(PipelineObserver):
    def __init__(self) -> None:
        self.events: list[tuple] = []
        self.llm_calls: list[tuple[str, str, str]] = []

    def on_stage_start(self, stage, ctx):
        self.events.append(("start", stage))

    def on_stage_end(self, stage, ctx, seconds):
        self.events.append(("end", stage, seconds))

    def on_llm_call(self, stage, ctx, model, usage, call_id):
        self.llm_calls.append((stage, model, call_id))


class TestPipeline:
    def test_default_stage_order(self):
        pipeline = build_default_pipeline(IOAgentConfig())
        assert pipeline.stage_names == DEFAULT_STAGE_ORDER

    def test_ablation_drops_integrate_stage(self):
        pipeline = build_default_pipeline(IOAgentConfig(use_rag=False))
        assert "integrate" not in pipeline.stage_names
        assert pipeline.stage_names == tuple(
            s for s in DEFAULT_STAGE_ORDER if s != "integrate"
        )

    def test_duplicate_stage_names_rejected(self):
        from repro.core.pipeline import PreprocessStage

        with pytest.raises(ValueError, match="duplicate"):
            DiagnosisPipeline([PreprocessStage(), PreprocessStage()])

    def test_event_hooks_fire_in_stage_order(self, sb01_trace):
        obs = RecordingObserver()
        agent = IOAgent(IOAgentConfig(seed=0), observers=[obs])
        ctx = agent.run(sb01_trace.log, trace_id="hooks")
        starts = [e[1] for e in obs.events if e[0] == "start"]
        ends = [e[1] for e in obs.events if e[0] == "end"]
        assert tuple(starts) == DEFAULT_STAGE_ORDER
        assert tuple(ends) == DEFAULT_STAGE_ORDER
        # start/end strictly interleave per stage.
        kinds = [e[0] for e in obs.events]
        assert kinds == ["start", "end"] * len(DEFAULT_STAGE_ORDER)
        # Per-stage telemetry was populated.
        assert set(ctx.stage_seconds) == set(DEFAULT_STAGE_ORDER)
        assert all(t >= 0.0 for t in ctx.stage_seconds.values())

    def test_llm_calls_attributed_to_stages(self, sb01_trace):
        obs = RecordingObserver()
        agent = IOAgent(IOAgentConfig(seed=0), observers=[obs])
        ctx = agent.run(sb01_trace.log, trace_id="attr")
        stages_with_llm = {stage for stage, _, _ in obs.llm_calls}
        # preprocess/summarize are pure-Python; the LLM stages all call out.
        assert {"describe", "diagnose", "merge"} <= stages_with_llm
        assert "preprocess" not in stages_with_llm
        assert "summarize" not in stages_with_llm
        # ctx.stage_usage agrees with the client's total accounting.
        total = Usage()
        for usage in ctx.stage_usage.values():
            total.add(usage)
        assert total.calls == agent.client.total_usage().calls

    def test_context_products_feed_report(self, sb01_trace):
        agent = IOAgent(IOAgentConfig(seed=0))
        ctx = agent.run(sb01_trace.log, trace_id="ctx")
        assert ctx.fragments and ctx.descriptions and ctx.diagnoses
        assert set(ctx.descriptions) == {f.fragment_id for f in ctx.fragments}
        report = ctx.build_report()
        assert report.text == ctx.merged_text
        assert report.n_fragments == len(ctx.fragments)

    def test_golden_equivalence_with_prerefactor_pipeline(self, sb01_trace):
        report = IOAgent(IOAgentConfig(seed=0)).diagnose(sb01_trace.log, trace_id="golden")
        digest = hashlib.sha256(report.text.encode()).hexdigest()
        assert digest == GOLDEN_SB01_SHA256


class TestRegistry:
    def test_builtins_registered(self):
        assert {"ioagent", "drishti", "ion"} <= set(available_tools())

    def test_builtin_tools_satisfy_protocol(self, sb01_trace):
        for name in ("drishti", "ion", "ioagent"):
            tool = get_tool(name, model="gpt-4o", seed=0)
            assert isinstance(tool, DiagnosticTool)
            report = tool.diagnose(sb01_trace.log, trace_id="proto")
            assert isinstance(report, DiagnosisReport)
            assert isinstance(tool.usage(), Usage)
        assert get_tool("drishti").usage().calls == 0  # heuristic: no LLM

    def test_ioagent_tool_name_carries_model(self):
        assert get_tool("ioagent", model="llama-3.1-70b").name == "ioagent-llama-3.1-70b"

    def test_round_trip_and_unknown_name(self):
        class FakeTool:
            name = "fake"

            def diagnose(self, log, trace_id="trace"):
                return DiagnosisReport(trace_id=trace_id, model="fake", text="nothing")

            def usage(self):
                return Usage()

        register_tool("fake", FakeTool)
        try:
            assert "fake" in available_tools()
            assert isinstance(get_tool("fake"), FakeTool)
            with pytest.raises(ValueError, match="already registered"):
                register_tool("fake", FakeTool)
            register_tool("fake", FakeTool, replace=True)  # explicit override ok
        finally:
            unregister_tool("fake")
        assert "fake" not in available_tools()
        with pytest.raises(ToolNotFoundError) as exc:
            get_tool("fake")
        assert "available tools" in str(exc.value)

    def test_factory_kwarg_filtering(self):
        # Drishti's factory takes no model/seed; generic drivers may still
        # pass them and the registry drops what the signature rejects.
        tool = get_tool("drishti", model="gpt-4o", seed=3, max_workers=2)
        assert tool.name == "drishti"


class TestService:
    def test_cache_hit_on_identical_content(self, sb01_trace):
        service = DiagnosisService(config=IOAgentConfig(seed=0))
        first = service.diagnose(sb01_trace.log, trace_id="t1")
        calls_after_first = service.usage().calls
        again = service.diagnose(sb01_trace.log, trace_id="t1")
        assert service.cache_hits == 1 and service.cache_misses == 1
        assert again is first
        assert service.usage().calls == calls_after_first  # no new LLM work

    def test_cache_hit_relabels_trace_id(self, sb01_trace):
        service = DiagnosisService(config=IOAgentConfig(seed=0))
        first = service.diagnose(sb01_trace.log, trace_id="a")
        renamed = service.diagnose(sb01_trace.log, trace_id="b")
        assert renamed.trace_id == "b"
        assert renamed.text == first.text

    def test_cache_disabled(self, sb01_trace):
        service = DiagnosisService(config=IOAgentConfig(seed=0), cache=False)
        service.diagnose(sb01_trace.log)
        service.diagnose(sb01_trace.log)
        assert service.cache_hits == 0

    def test_service_matches_direct_agent(self, sb01_trace):
        direct = IOAgent(IOAgentConfig(seed=0)).diagnose(sb01_trace.log, trace_id="eq")
        via_service = DiagnosisService(config=IOAgentConfig(seed=0)).diagnose(
            sb01_trace.log, trace_id="eq"
        )
        assert via_service.text == direct.text

    def test_batch_collects_stage_metrics(self, bench):
        traces = [bench.get("sb01-small-writes"), bench.get("sb06-shared-file")]
        service = DiagnosisService(config=IOAgentConfig(seed=0))
        result = service.diagnose_batch(traces, max_workers=2)
        assert set(result.reports) == {t.trace_id for t in traces}
        assert set(result.stage_metrics) == set(DEFAULT_STAGE_ORDER)
        for stage in ("describe", "diagnose", "merge"):
            assert result.stage_metrics[stage].calls > 0
            assert result.stage_metrics[stage].cost_usd >= 0.0
        assert result.stage_metrics["preprocess"].calls == 0
        assert result.total_seconds > 0.0
        assert result.llm_calls == sum(m.calls for m in result.stage_metrics.values())
        # Re-running the same batch is served from cache: no new LLM calls.
        rerun = service.diagnose_batch(traces, max_workers=2)
        assert rerun.cache_hits == len(traces)
        assert rerun.llm_calls == 0
        assert {r.text for r in rerun.reports.values()} == {
            r.text for r in result.reports.values()
        }

    def test_service_over_heuristic_tool(self, bench):
        service = DiagnosisService(tool="drishti", config=IOAgentConfig(seed=0))
        result = service.diagnose_batch([bench.get("sb01-small-writes")])
        assert result.tool == "drishti"
        assert result.llm_calls == 0 and result.cost_usd == 0.0
        assert result.stage_metrics == {}  # no pipeline → no stage telemetry

    def test_trace_digest_distinguishes_content(self, bench):
        a = bench.get("sb01-small-writes")
        b = bench.get("sb06-shared-file")
        assert trace_digest(a.log) == trace_digest(a.log)
        assert trace_digest(a.log) != trace_digest(b.log)


class TestSharedIndexMemo:
    def test_repeated_construction_reuses_index(self):
        idx = build_default_index(0)
        builds_before = default_index_builds()
        agents = [IOAgent(IOAgentConfig(seed=0)) for _ in range(5)]
        DiagnosisService(config=IOAgentConfig(seed=0))
        assert default_index_builds() == builds_before
        assert all(a.retriever.index is idx for a in agents)


class TestUsageListener:
    def test_listener_fires_and_detaches(self):
        client = LLMClient(seed=0)
        seen: list[tuple[str, str]] = []
        def listener(model, usage, call_id):
            seen.append((model, call_id))
        client.add_usage_listener(listener)
        client.complete("TASK: plain\nhello", model="gpt-4o", call_id="x1")
        assert seen == [("gpt-4o", "x1")]
        client.remove_usage_listener(listener)
        client.complete("TASK: plain\nhello", model="gpt-4o", call_id="x2")
        assert seen == [("gpt-4o", "x1")]
        client.remove_usage_listener(listener)  # double-remove is a no-op
