"""Tests for the scenario registry and the extended pathology tier.

The headline invariants: the registry round-trips (register → list → get
→ build), the TraceBench build enumerates through it, every pathology
trace survives the Darshan text round-trip, and each pathology carries
the counter signature its ground-truth labels promise.
"""

from __future__ import annotations

import pytest

from repro.baselines.drishti.triggers import run_triggers
from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.parser import parse_darshan_text
from repro.darshan.writer import render_darshan_text
from repro.llm.reasoning import infer_findings
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import OpKind
from repro.tracebench import build_tracebench
from repro.tracebench.spec import TRACE_SPECS
from repro.util.rng import rng_for
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload, WorkloadContext
from repro.workloads.patterns import (
    checkpoint_burst_phase,
    data_phase,
    false_sharing_phase,
    fsync_per_write_phase,
    metadata_churn_phase,
    read_modify_write_phase,
    straggler_phase,
)
from repro.workloads.scenarios import (
    Scenario,
    ScenarioNotFoundError,
    available_scenarios,
    available_tags,
    build_scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    select_scenarios,
    unregister_scenario,
)

PATHOLOGY_NAMES = available_scenarios("pathology")

# The counter-invisible hard tier: ground truth includes labels that only
# the DXT temporal evidence channel can recover (see docs/evidence.md).
TEMPORAL_TIER = (
    "path04-straggler-rank",
    "path13-straggler-compute",
    "path14-lock-convoy",
    "path15-bursty-interference",
    "path16-slow-ost-hotspot",
    "path17-producer-consumer",
)

# Labels of each temporal-tier scenario that counters alone cannot ground.
TEMPORAL_ONLY_LABELS = {
    "path04-straggler-rank": {"rank_imbalance"},
    "path13-straggler-compute": {"rank_imbalance"},
    "path14-lock-convoy": {"lock_contention"},
    "path15-bursty-interference": {"io_stall"},
    "path16-slow-ost-hotspot": {"server_imbalance"},
    "path17-producer-consumer": {"io_stall"},
    # The server-attribution tier (PR 5): these labels additionally need
    # the per-OST ost column, not just file-level temporal facts — see
    # tests/test_ost_channel.py for the channel-ablation proof.
    "path18-hot-ost": {"server_imbalance"},
    "path19-mds-vs-oss": {"server_imbalance"},
    "path21-multi-ost-degradation": {"server_imbalance"},
}


@pytest.fixture(scope="session")
def pathology_traces():
    """All 21 pathology traces, built once."""
    return {name: build_scenario(name, seed=0) for name in PATHOLOGY_NAMES}


def _tiny_workload() -> Workload:
    return Workload(
        name="tiny",
        exe="/bin/tiny",
        nprocs=2,
        phases=(data_phase("/scratch/tiny/f", "write", xfer=4 * KiB, count_per_rank=4),),
    )


def _total(log, counter: str) -> float:
    return log.total(counter)


def _detected(trace, with_dxt: bool = False) -> set[str]:
    facts = app_context_facts(trace.log)
    for fragment in extract_fragments(trace.log):
        facts.extend(fragment.facts)
    if with_dxt:
        from repro.darshan.dxt import dxt_temporal_facts

        facts.extend(dxt_temporal_facts(trace.log.dxt_segments or []))
    return {f.issue_key for f in infer_findings(facts)}


class TestScenarioRegistry:
    def test_round_trip_register_list_get_run(self):
        scenario = Scenario(
            name="test-tiny",
            source="pathology",
            builder=_tiny_workload,
            root_causes=frozenset({"small_write"}),
            difficulty="easy",
            tags=("test",),
        )
        try:
            register_scenario(scenario)
            assert "test-tiny" in available_scenarios()
            assert get_scenario("test-tiny") is scenario
            trace = build_scenario("test-tiny", seed=0)
            assert trace.trace_id == "test-tiny"
            assert trace.labels == frozenset({"small_write"})
            assert trace.log.header.nprocs == 2
        finally:
            unregister_scenario("test-tiny")
        assert "test-tiny" not in available_scenarios()

    def test_duplicate_registration_raises_unless_replace(self):
        scenario = get_scenario("path12-clean-baseline")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)
        register_scenario(scenario, replace=True)  # idempotent with replace

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(ScenarioNotFoundError) as exc:
            get_scenario("nope")
        assert exc.value.unknown == ("nope",)
        assert "sb01-small-writes" in exc.value.available

    def test_difficulty_validation(self):
        with pytest.raises(ValueError, match="difficulty"):
            Scenario("x", "pathology", _tiny_workload, frozenset(), difficulty="insane")

    def test_root_cause_validation(self):
        with pytest.raises(ValueError, match="unknown root causes"):
            Scenario("x", "pathology", _tiny_workload, frozenset({"bogus_issue"}))

    def test_suite_size(self):
        assert len(available_scenarios()) >= 61
        assert len(available_scenarios("tracebench")) == 40
        assert len(PATHOLOGY_NAMES) == 21

    def test_selector_tokens(self):
        tags = available_tags()
        for token in ("tracebench", "pathology", "easy", "hard", "control", "io500"):
            assert token in tags

    def test_select_by_name_tag_and_difficulty(self):
        by_name = select_scenarios(["sb01-small-writes"])
        assert [s.name for s in by_name] == ["sb01-small-writes"]
        by_tag = select_scenarios(["pathology"])
        assert len(by_tag) == 21
        controls = select_scenarios(["control"])
        assert [s.name for s in controls] == [
            "path12-clean-baseline",
            "path20-rebalanced-stripe",
        ]
        # Duplicates collapse, first-match order is preserved.
        mixed = select_scenarios(["path03-metadata-storm", "pathology"])
        names = [s.name for s in mixed]
        assert names[0] == "path03-metadata-storm"
        assert len(names) == len(set(names)) == 21

    def test_unknown_selectors_collected_into_one_error(self):
        with pytest.raises(ScenarioNotFoundError) as exc:
            select_scenarios(["pathology", "nope-1", "nope-2"])
        assert exc.value.unknown == ("nope-1", "nope-2")

    def test_tracebench_builds_through_registry(self, bench):
        assert tuple(t.trace_id for t in bench) == available_scenarios("tracebench")
        assert build_tracebench(0) is bench  # memoized

    def test_trace_specs_and_registry_agree(self):
        for spec in TRACE_SPECS:
            scenario = get_scenario(spec.trace_id)
            assert scenario.root_causes == spec.labels
            assert scenario.source == spec.source

    def test_every_scenario_has_ground_truth_vocabulary(self):
        from repro.core.issues import ISSUE_KEYS

        for scenario in iter_scenarios():
            assert scenario.root_causes <= set(ISSUE_KEYS)

    def test_temporal_tier_is_hard(self):
        """Counter-invisible scenarios sit in the hard tier (path04 was
        already there; the PR 3 additions join it)."""
        for name in TEMPORAL_TIER:
            assert get_scenario(name).difficulty == "hard", name


class TestNewPhases:
    def _ctx(self, nprocs=4):
        return WorkloadContext(nprocs=nprocs, fs=LustreFileSystem(seed=0), rng=rng_for(0, "t"))

    def test_false_sharing_interleaves_ranks_within_blocks(self):
        ops = list(false_sharing_phase("/s/f", record_bytes=512, count_per_rank=4)(self._ctx()))
        writes = [o for o in ops if o.kind is OpKind.WRITE]
        # Ranks 0..3 of record 0 occupy one 4 KiB block together.
        first_block = {o.offset // 4096 for o in writes[:4]}
        assert first_block == {0}
        assert {o.rank for o in writes[:4]} == {0, 1, 2, 3}

    def test_false_sharing_rejects_bad_record(self):
        with pytest.raises(ValueError):
            false_sharing_phase("/s/f", record_bytes=0, count_per_rank=1)

    def test_metadata_churn_op_counts(self):
        ops = list(metadata_churn_phase("/s/md", files_per_rank=3, cycles=2)(self._ctx(2)))
        opens = [o for o in ops if o.kind is OpKind.OPEN]
        stats = [o for o in ops if o.kind is OpKind.STAT]
        # 2 ranks x 3 files x (1 create + 2 reopen) passes.
        assert len(opens) == len(stats) == 18
        assert len({o.path for o in opens}) == 6
        with pytest.raises(ValueError):
            metadata_churn_phase("/s/md", files_per_rank=1, cycles=-1)

    def test_read_modify_write_alternates_at_same_offset(self):
        ops = list(
            read_modify_write_phase("/s/f", record_bytes=1000, count_per_rank=3)(self._ctx(1))
        )
        data = [o for o in ops if o.kind in (OpKind.READ, OpKind.WRITE)]
        kinds = [o.kind for o in data]
        assert kinds == [OpKind.READ, OpKind.WRITE] * 3
        for rd, wr in zip(data[::2], data[1::2]):
            assert rd.offset == wr.offset and rd.size == wr.size

    def test_fsync_per_write_pairs_sync_with_write(self):
        ops = list(fsync_per_write_phase("/s/f", xfer=4096, count_per_rank=5)(self._ctx(2)))
        writes = sum(o.kind is OpKind.WRITE for o in ops)
        syncs = sum(o.kind is OpKind.SYNC for o in ops)
        assert writes == syncs == 10

    def test_straggler_preserves_byte_balance(self):
        ops = list(
            straggler_phase("/s/f", xfer=1 * MiB, count_per_rank=2, slow_factor=4)(self._ctx())
        )
        by_rank_bytes: dict[int, int] = {}
        by_rank_ops: dict[int, int] = {}
        for o in ops:
            if o.kind is OpKind.WRITE:
                by_rank_bytes[o.rank] = by_rank_bytes.get(o.rank, 0) + o.size
                by_rank_ops[o.rank] = by_rank_ops.get(o.rank, 0) + 1
        assert len(set(by_rank_bytes.values())) == 1  # volume perfectly balanced
        assert by_rank_ops[0] == 4 * by_rank_ops[1]  # ... but op counts are not

    def test_straggler_rejects_nondividing_factor(self):
        with pytest.raises(ValueError):
            straggler_phase("/s/f", xfer=1000, count_per_rank=1, slow_factor=3)

    def test_checkpoint_burst_structure(self):
        ops = list(
            checkpoint_burst_phase(
                "/s/c", xfer=4096, writes_per_burst=2, bursts=3, compute_seconds=1.0
            )(self._ctx(2))
        )
        syncs = [o for o in ops if o.kind is OpKind.SYNC]
        computes = [o for o in ops if o.kind is OpKind.COMPUTE]
        assert len(syncs) == 2 * 3  # per rank per burst
        assert len(computes) == 2 * 2  # no compute after the final burst
        assert all(o.duration == 1.0 for o in computes)


class TestPathologyTraces:
    @pytest.mark.parametrize("name", PATHOLOGY_NAMES)
    def test_parses_through_darshan(self, pathology_traces, name):
        """Every pathology trace survives the darshan-parser text round trip."""
        text = render_darshan_text(pathology_traces[name].log)
        reparsed = parse_darshan_text(text)
        assert render_darshan_text(reparsed) == text

    @pytest.mark.parametrize("name", PATHOLOGY_NAMES)
    def test_ground_truth_is_behaviourally_grounded(self, pathology_traces, name):
        """Expert rules over counter facts recover every counter-visible
        label; the temporal tier's remaining labels are exactly the
        documented counter-invisible ones (docs/evidence.md), recovered by
        the DXT channel in the test below."""
        trace = pathology_traces[name]
        counter_blind = TEMPORAL_ONLY_LABELS.get(name, set())
        assert _detected(trace) == set(trace.labels) - counter_blind

    @pytest.mark.parametrize("name", PATHOLOGY_NAMES)
    def test_temporal_channel_closes_the_gap(self, pathology_traces, name):
        """With DXT facts included, detection matches ground truth exactly —
        the PR 2 'time-vs-bytes gap' (path04) is a passing case now, and
        the whole hard tier grounds through the temporal channel."""
        trace = pathology_traces[name]
        assert _detected(trace, with_dxt=True) == set(trace.labels)

    def test_random_small_reads_signature(self, pathology_traces):
        log = pathology_traces["path01-random-small-reads"].log
        reads = _total(log, "POSIX_READS")
        assert reads >= 10_000
        assert _total(log, "POSIX_SEQ_READS") < 0.6 * reads
        assert _total(log, "POSIX_SIZE_READ_1K_10K") == reads  # 4 KiB bin
        assert not log.records_for("MPIIO")

    def test_false_sharing_signature(self, pathology_traces):
        log = pathology_traces["path02-false-sharing"].log
        writes = _total(log, "POSIX_WRITES")
        assert _total(log, "POSIX_FILE_NOT_ALIGNED") >= 0.5 * writes
        shared = [r for r in log.records_for("POSIX") if r.shared]
        assert shared  # one file, many ranks
        assert _total(log, "MPIIO_INDEP_WRITES") > 0
        assert _total(log, "MPIIO_COLL_WRITES") == 0

    def test_metadata_storm_signature(self, pathology_traces):
        log = pathology_traces["path03-metadata-storm"].log
        assert _total(log, "POSIX_OPENS") == 16 * 250 * 3
        assert _total(log, "POSIX_STATS") == 16 * 250 * 3
        assert _total(log, "POSIX_BYTES_WRITTEN") == 0
        meta = sum(r.fcounters.get("POSIX_F_META_TIME", 0.0) for r in log.records_for("POSIX"))
        assert meta > 0

    def test_straggler_signature(self, pathology_traces):
        log = pathology_traces["path04-straggler-rank"].log
        rec = next(r for r in log.records_for("POSIX") if r.shared)
        fast = rec.fcounters["POSIX_F_FASTEST_RANK_TIME"]
        slow = rec.fcounters["POSIX_F_SLOWEST_RANK_TIME"]
        assert fast > 0 and slow > 3 * fast
        # The byte counters stay balanced: the imbalance lives in time.
        assert rec.counters["POSIX_SLOWEST_RANK_BYTES"] == rec.counters["POSIX_FASTEST_RANK_BYTES"]
        assert rec.counters["POSIX_SLOWEST_RANK"] == 0

    def test_bursty_checkpoint_signature(self, pathology_traces):
        log = pathology_traces["path05-bursty-checkpoint"].log
        assert _total(log, "MPIIO_SYNCS") == 16 * 4  # one per rank per burst
        assert log.header.run_time >= 30.0  # three 10 s compute gaps

    def test_read_modify_write_signature(self, pathology_traces):
        log = pathology_traces["path06-read-modify-write"].log
        ops = _total(log, "POSIX_READS") + _total(log, "POSIX_WRITES")
        assert _total(log, "POSIX_RW_SWITCHES") > 0.5 * ops
        assert _total(log, "POSIX_READS") == _total(log, "POSIX_WRITES")

    def test_misaligned_stride_signature(self, pathology_traces):
        log = pathology_traces["path07-misaligned-stride"].log
        assert _total(log, "POSIX_FILE_NOT_ALIGNED") == _total(log, "POSIX_WRITES")
        assert _total(log, "POSIX_MEM_NOT_ALIGNED") == _total(log, "POSIX_WRITES")

    def test_tiny_collectives_signature(self, pathology_traces):
        log = pathology_traces["path08-tiny-collectives"].log
        assert _total(log, "MPIIO_COLL_WRITES") == 16 * 40
        assert _total(log, "MPIIO_INDEP_WRITES") == 0
        assert _total(log, "MPIIO_SIZE_WRITE_AGG_10K_100K") == 16 * 40  # 32 KiB bin

    def test_fsync_per_write_signature(self, pathology_traces):
        log = pathology_traces["path09-fsync-per-write"].log
        assert _total(log, "POSIX_FSYNCS") == _total(log, "POSIX_WRITES") == 4 * 900
        meta = sum(r.fcounters.get("POSIX_F_META_TIME", 0.0) for r in log.records_for("POSIX"))
        data = sum(
            r.fcounters.get("POSIX_F_READ_TIME", 0.0) + r.fcounters.get("POSIX_F_WRITE_TIME", 0.0)
            for r in log.records_for("POSIX")
        )
        assert meta > data  # commit latency dominates the byte movement

    def test_redundant_reread_signature(self, pathology_traces):
        log = pathology_traces["path10-redundant-reread"].log
        rec = next(r for r in log.records_for("POSIX") if r.counters["POSIX_BYTES_READ"] > 0)
        extent = rec.counters["POSIX_MAX_BYTE_READ"] + 1
        assert rec.counters["POSIX_BYTES_READ"] >= 3 * extent

    def test_stdio_mix_signature(self, pathology_traces):
        log = pathology_traces["path11-stdio-mpiio-mix"].log
        stdio = _total(log, "STDIO_BYTES_WRITTEN")
        total = stdio + _total(log, "POSIX_BYTES_WRITTEN")
        assert stdio >= 0.3 * total
        assert _total(log, "MPIIO_INDEP_WRITES") > 0

    def test_clean_baseline_is_clean(self, pathology_traces):
        trace = pathology_traces["path12-clean-baseline"]
        assert trace.labels == frozenset()
        assert _detected(trace) == set()  # expert rules stay quiet
        assert _total(trace.log, "MPIIO_COLL_WRITES") > 0  # it does real collective I/O

    def test_clean_baseline_still_trips_fixed_thresholds(self, pathology_traces):
        """Drishti's absolute thresholds over-trigger even on the control
        (its handful of aggregator writes have no sequential predecessor),
        which is precisely the false-positive mode the paper critiques —
        the control scenario exists to measure it."""
        trace = pathology_traces["path12-clean-baseline"]
        high = {r.code for r in run_triggers(trace.log) if r.level == "HIGH"}
        assert "POSIX_RANDOM_WRITES" in high


class TestDrishtiPathologyCoverage:
    def test_fsync_trigger_fires_on_fsync_flood(self, pathology_traces):
        results = run_triggers(pathology_traces["path09-fsync-per-write"].log)
        assert any(r.code == "POSIX_FSYNC_FREQUENT" and r.level == "HIGH" for r in results)

    def test_small_collective_trigger_fires_on_tiny_collectives(self, pathology_traces):
        results = run_triggers(pathology_traces["path08-tiny-collectives"].log)
        assert any(r.code == "MPIIO_SMALL_COLLECTIVES" for r in results)

    def test_new_triggers_stay_quiet_on_tracebench(self, bench):
        new = {"POSIX_FSYNC_FREQUENT", "MPIIO_SMALL_COLLECTIVES"}
        for trace in bench:
            fired = {r.code for r in run_triggers(trace.log)}
            assert not (fired & new), trace.trace_id
