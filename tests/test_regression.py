"""The longitudinal regression channel: profiles, baselines, drift, series.

Determinism is the channel's core contract — baselines must serialize to
byte-identical JSON across processes, drift must decompose into named
contributions, and the inflection finder must land exactly on the
injected degradation run for every registered series scenario.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.llm.facts import extract_facts, render_fact
from repro.llm.reasoning import infer_findings
from repro.regression import (
    DRIFT_THRESHOLD,
    FEATURE_NAMES,
    Baseline,
    SeriesDiagnosticTool,
    TraceProfile,
    build_baseline,
    drift_score,
    find_inflection,
    profile_trace,
    score_series,
    trend_regression_fact,
)
from repro.regression.drift import InflectionPoint
from repro.workloads.scenarios import (
    ScenarioNotFoundError,
    SeriesScenario,
    available_series_scenarios,
    build_series,
    get_series_scenario,
    iter_series_scenarios,
    register_series_scenario,
    unregister_series_scenario,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _flat_profile(value: float, trace_id: str = "t") -> TraceProfile:
    return TraceProfile(trace_id=trace_id, features={n: value for n in FEATURE_NAMES})


@pytest.fixture(scope="module")
def locking_series():
    """One built series (the locking-onset scenario), shared per module."""
    scenario = get_series_scenario("series03-locking-onset")
    return scenario, build_series(scenario, seed=0)


class TestTraceProfile:
    def test_schema_is_fixed_and_validated(self):
        profile = _flat_profile(1.0)
        assert set(profile.features) == set(FEATURE_NAMES)
        with pytest.raises(ValueError, match="FEATURE_NAMES"):
            TraceProfile(trace_id="t", features={"app.runtime_s": 1.0})

    def test_profile_trace_is_deterministic(self, sb01_trace):
        a = profile_trace(sb01_trace.log, "a")
        b = profile_trace(sb01_trace.log, "b")
        # Same log, same features — the digest ignores the run name.
        assert a.features == b.features
        assert a.digest == b.digest
        assert a.to_json() != b.to_json()  # trace_id differs

    def test_json_round_trip(self, sb01_trace):
        profile = profile_trace(sb01_trace.log, "rt")
        again = TraceProfile.from_json(profile.to_json())
        assert again == profile
        assert again.to_json() == profile.to_json()


class TestBaseline:
    def test_center_is_median_scale_is_max_deviation(self):
        profiles = [_flat_profile(v) for v in (1.0, 5.0, 2.0)]
        baseline = build_baseline(profiles)
        assert baseline.center["app.runtime_s"] == 2.0
        assert baseline.scale["app.runtime_s"] == 3.0

    def test_even_run_count_median_is_deterministic(self):
        profiles = [_flat_profile(v) for v in (1.0, 2.0, 3.0, 4.0)]
        assert build_baseline(profiles).center["app.runtime_s"] == 2.5

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="zero profiles"):
            build_baseline([])

    def test_json_round_trip_preserves_digest(self):
        baseline = build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)])
        again = Baseline.from_json(baseline.to_json())
        assert again == baseline
        assert again.digest == baseline.digest

    def test_baseline_json_is_byte_identical_across_processes(self, locking_series):
        """The cross-process reuse contract: same series, same bytes."""
        scenario, traces = locking_series
        profiles = [profile_trace(t.log, t.trace_id) for t in traces]
        local = build_baseline(profiles[: scenario.baseline_runs]).to_json()
        script = (
            "from repro.workloads.scenarios import build_series, get_series_scenario\n"
            "from repro.regression import build_baseline, profile_trace\n"
            f"s = get_series_scenario({scenario.name!r})\n"
            "traces = build_series(s, seed=0)\n"
            "profiles = [profile_trace(t.log, t.trace_id) for t in traces]\n"
            "print(build_baseline(profiles[:s.baseline_runs]).to_json(), end='')\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        ).stdout
        assert remote == local
        json.loads(local)  # and it is real JSON


class TestDrift:
    def test_zero_drift_at_baseline_center(self):
        baseline = build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)])
        score = drift_score(_flat_profile(2.0), baseline)
        assert score.total == 0.0
        assert set(score.contributions) == set(FEATURE_NAMES)

    def test_total_is_max_contribution_with_named_feature(self):
        baseline = build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)])
        features = {n: 2.0 for n in FEATURE_NAMES}
        features["dxt.idle_fraction"] = 50.0
        score = drift_score(TraceProfile(trace_id="t", features=features), baseline)
        assert score.top_feature == "dxt.idle_fraction"
        assert score.total == score.contributions["dxt.idle_fraction"]
        assert score.top(1)[0][0] == "dxt.idle_fraction"

    def test_zero_variance_baseline_needs_more_than_the_floor(self):
        baseline = build_baseline([_flat_profile(2.0)] * 3)
        # Within the relative floor (5% of |center|): not drift.
        assert drift_score(_flat_profile(2.05), baseline).total <= DRIFT_THRESHOLD
        # Far outside it: drift.
        assert drift_score(_flat_profile(4.0), baseline).total > DRIFT_THRESHOLD

    def test_score_series_preserves_run_order(self):
        baseline = build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)])
        profiles = [_flat_profile(v, f"run{i}") for i, v in enumerate((2.0, 9.0))]
        scores = score_series(profiles, baseline)
        assert [s.trace_id for s in scores] == ["run0", "run1"]
        assert scores[0].total < scores[1].total


class TestInflection:
    def test_first_crossing_wins(self):
        baseline = build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)])
        profiles = [_flat_profile(v, f"run{i}") for i, v in enumerate((2.0, 2.0, 50.0, 90.0))]
        inflection = find_inflection(profiles, baseline)
        assert inflection is not None
        assert inflection.run_index == 2

    def test_steady_series_has_no_inflection(self):
        baseline = build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)])
        assert find_inflection([_flat_profile(2.0)] * 6, baseline) is None

    @pytest.mark.parametrize("name", available_series_scenarios())
    def test_every_registered_series_grounds_exactly(self, name):
        """Detected inflection run == the injected one, for every series."""
        scenario = get_series_scenario(name)
        traces = build_series(scenario, seed=0)
        profiles = [profile_trace(t.log, t.trace_id) for t in traces]
        baseline = build_baseline(profiles[: scenario.baseline_runs])
        inflection = find_inflection(profiles, baseline)
        detected = None if inflection is None else inflection.run_index
        assert detected == scenario.inflection_run


class TestTrendFactAndRule:
    def test_nl_round_trip(self):
        inflection = InflectionPoint(
            run_index=5,
            score=drift_score(
                _flat_profile(9.0),
                build_baseline([_flat_profile(v) for v in (1.0, 2.0, 3.0)]),
            ),
            threshold=DRIFT_THRESHOLD,
        )
        fact = trend_regression_fact(inflection, n_runs=8, baseline_runs=3)
        extracted = extract_facts(render_fact(fact))
        assert len(extracted) == 1
        assert extracted[0].kind == "trend_regression"
        assert extracted[0].data["run_index"] == 5
        assert extracted[0].data["n_runs"] == 8
        assert extracted[0].data["top_feature"] == fact.data["top_feature"]

    def test_rule_fires_at_threshold_and_stays_quiet_below(self):
        def fact_with(drift: float):
            from repro.llm.facts import Fact

            return Fact(
                "trend_regression",
                {
                    "n_runs": 8,
                    "baseline_runs": 3,
                    "run_index": 5,
                    "drift": drift,
                    "threshold": 1.0,
                    "top_feature": "dxt.idle_fraction",
                },
            )

        fired = infer_findings([fact_with(4.5)])
        assert [f.issue_key for f in fired] == ["trend_regression"]
        assert "run 5" in fired[0].evidence
        assert "dxt.idle_fraction" in fired[0].evidence
        assert infer_findings([fact_with(0.4)]) == []


class TestSeriesScenarioRegistry:
    def test_builtins_registered_with_series_tag(self):
        names = available_series_scenarios("series")
        assert len(names) >= 5
        assert "series05-steady-control" in names
        controls = [s for s in iter_series_scenarios() if s.inflection_run is None]
        assert controls, "expected at least one control series"

    def test_register_round_trip_and_duplicate_rejection(self):
        series = SeriesScenario(
            name="tmp-series",
            source="test",
            base="path12-clean-baseline",
            degraded="path03-metadata-storm",
            n_runs=5,
            inflection_run=3,
            root_causes=frozenset({"trend_regression", "high_metadata_load", "no_mpi"}),
        )
        register_series_scenario(series)
        try:
            assert get_series_scenario("tmp-series") is series
            with pytest.raises(ValueError, match="already registered"):
                register_series_scenario(series)
        finally:
            unregister_series_scenario("tmp-series")
        with pytest.raises(ScenarioNotFoundError):
            get_series_scenario("tmp-series")

    def test_validation(self):
        def make(**kwargs):
            defaults = dict(
                name="bad",
                source="test",
                base="path12-clean-baseline",
                degraded="path03-metadata-storm",
                n_runs=6,
                inflection_run=4,
                root_causes=frozenset({"trend_regression"}),
            )
            defaults.update(kwargs)
            return SeriesScenario(**defaults)

        with pytest.raises(ValueError, match="at least two runs"):
            make(n_runs=1, inflection_run=None, root_causes=frozenset())
        with pytest.raises(ValueError, match="baseline window"):
            make(inflection_run=1)
        with pytest.raises(ValueError, match="unknown root causes"):
            make(root_causes=frozenset({"trend_regression", "bogus"}))
        with pytest.raises(ValueError, match="cannot claim"):
            make(inflection_run=None)
        with pytest.raises(ValueError, match="must claim"):
            make(root_causes=frozenset())

    def test_build_series_trace_ids_and_per_run_labels(self, locking_series):
        scenario, traces = locking_series
        assert len(traces) == scenario.n_runs
        assert traces[0].trace_id == f"{scenario.name}/run00"
        # Pre-inflection runs carry the base scenario's (clean) labels...
        assert traces[0].labels == frozenset()
        # ...and post-inflection runs the degraded scenario's labels.
        assert "lock_contention" in traces[scenario.inflection_run].labels


class TestSeriesDiagnosticTool:
    def test_protocol_conformance_and_registration(self):
        from repro.core.registry import DiagnosticTool, available_tools, get_tool

        assert "series" in available_tools()
        tool = get_tool("series", inner="drishti")
        assert isinstance(tool, DiagnosticTool)
        assert tool.name == "series"
        assert tool.usage().calls == 0

    def test_single_trace_diagnose_passes_through(self, sb01_trace):
        tool = SeriesDiagnosticTool(inner="drishti")
        report = tool.diagnose(sb01_trace.log, trace_id="one")
        assert report.trace_id == "one"

    def test_diagnose_series_finds_regression(self, locking_series):
        scenario, traces = locking_series
        tool = SeriesDiagnosticTool(inner="drishti", baseline_runs=scenario.baseline_runs)
        result = tool.diagnose_series(
            [t.log for t in traces],
            series_id=scenario.name,
            trace_ids=[t.trace_id for t in traces],
        )
        assert result.inflection is not None
        assert result.inflection.run_index == scenario.inflection_run
        assert "trend_regression" in result.report.issue_keys
        rendered = result.render()
        assert "<-- inflection" in rendered
        assert len(result.scores) == scenario.n_runs

    def test_steady_series_appends_nothing(self):
        scenario = get_series_scenario("series05-steady-control")
        traces = build_series(scenario, seed=0)
        tool = SeriesDiagnosticTool(inner="drishti", baseline_runs=scenario.baseline_runs)
        result = tool.diagnose_series([t.log for t in traces], series_id=scenario.name)
        assert result.inflection is None
        assert "trend_regression" not in result.report.issue_keys
        assert "steady" in result.render()

    def test_pinned_baseline_lifts_run_floor(self, locking_series):
        scenario, traces = locking_series
        profiles = [profile_trace(t.log, t.trace_id) for t in traces]
        baseline = Baseline.from_json(
            build_baseline(profiles[: scenario.baseline_runs]).to_json()
        )
        tool = SeriesDiagnosticTool(inner="drishti", baseline=baseline)
        result = tool.diagnose_series([traces[-1].log], series_id="pinned")
        assert result.inflection is not None
        assert result.inflection.run_index == 0

    def test_too_few_runs_rejected(self, sb01_trace):
        tool = SeriesDiagnosticTool(inner="drishti", baseline_runs=3)
        with pytest.raises(ValueError, match="at least 4 runs"):
            tool.diagnose_series([sb01_trace.log] * 3)


class TestSeriesCLI:
    def test_scenario_subcommand_runs(self, capsys):
        from repro.cli import main

        code = main(
            [
                "series",
                "--scenario",
                "series02-metadata-creep",
                "--inner",
                "drishti",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "<-- inflection" in out
        assert "trend_regression" in out

    def test_unknown_scenario_exits_2(self, capsys):
        from repro.cli import main

        assert main(["series", "--scenario", "nope"]) == 2
        assert "available series scenarios" in capsys.readouterr().err

    def test_no_traces_exits_2(self, capsys):
        from repro.cli import main

        assert main(["series"]) == 2
        assert "two or more trace files" in capsys.readouterr().err


class TestSeriesCLITraceFiles:
    """The trace-file entry point: argument order IS run order."""

    @pytest.fixture(scope="class")
    def trace_files(self, tmp_path_factory):
        """The locking-onset series exported as per-run trace files."""
        from repro.darshan.writer import render_darshan_text

        scenario = get_series_scenario("series03-locking-onset")
        traces = build_series(scenario, seed=0)
        directory = tmp_path_factory.mktemp("series-runs")
        paths = []
        for i, trace in enumerate(traces):
            path = directory / f"run-{i}.darshan.txt"
            path.write_text(
                render_darshan_text(trace.log, include_dxt=True), encoding="utf-8"
            )
            paths.append(str(path))
        return scenario, paths

    def test_single_run_series_exits_2(self, trace_files, capsys):
        """One trace file is not a series; same friendly error as none."""
        from repro.cli import main

        _, paths = trace_files
        assert main(["series", paths[0]]) == 2
        assert "two or more trace files" in capsys.readouterr().err

    @staticmethod
    def _inflection_run(out: str) -> int:
        """The run index on the drift table's ``<-- inflection`` line."""
        for line in out.splitlines():
            if "<-- inflection" in line:
                return int(line.split()[1])
        raise AssertionError(f"no inflection line in output:\n{out}")

    def test_in_order_files_recover_the_inflection(self, trace_files, capsys):
        from repro.cli import main

        scenario, paths = trace_files
        assert main(["series", *paths, "--inner", "drishti"]) == 0
        out = capsys.readouterr().out
        assert self._inflection_run(out) == scenario.inflection_run

    def test_argument_order_is_run_order_not_filename_order(self, trace_files, capsys):
        """Reversed arguments build a different series: the CLI must not
        sort the files, because shell glob order is not run order."""
        from repro.cli import main

        scenario, paths = trace_files
        assert main(["series", *reversed(paths), "--inner", "drishti"]) == 0
        out = capsys.readouterr().out
        # Degraded runs now freeze the baseline, so the first *clean* run
        # is the departure — a different inflection than run order finds.
        assert self._inflection_run(out) != scenario.inflection_run
        assert self._inflection_run(out) == scenario.n_runs - scenario.inflection_run

    def test_duplicate_files_are_distinct_runs(self, trace_files, capsys):
        """The same file twice is two runs — a real monitoring shape, where
        an unchanged job recurs before the regression lands."""
        from repro.cli import main

        _, paths = trace_files
        code = main(
            [
                "series",
                paths[0],
                paths[0],
                paths[0],
                paths[-1],
                "--baseline-runs",
                "2",
                "--inner",
                "drishti",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 runs, baseline frozen over the first 2" in out
        # The duplicated clean run sits exactly on the baseline; only the
        # degraded final run drifts.
        assert self._inflection_run(out) == 3
