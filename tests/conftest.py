"""Shared fixtures: the TraceBench build is expensive, so share one."""

from __future__ import annotations

import pytest

from repro.llm.client import LLMClient
from repro.tracebench import build_tracebench
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS


@pytest.fixture(scope="session")
def bench():
    """The full 40-trace TraceBench suite (memoized per session)."""
    return build_tracebench(0)


@pytest.fixture(scope="session")
def sb01_trace():
    """One small, fast, fully-labeled trace for unit-level pipeline tests."""
    spec = next(s for s in TRACE_SPECS if s.trace_id == "sb01-small-writes")
    return build_trace(spec, seed=0)


@pytest.fixture()
def client():
    """A fresh deterministic LLM client per test."""
    return LLMClient(seed=0)
