"""Unit tests for repro.util.*"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.parallel import parallel_map
from repro.util.rng import derive_seed, rng_for
from repro.util.stats import gini, histogram_fractions, normalized_variance, weighted_percentile
from repro.util.text import dedent_strip, sentence_split, simple_tokens, slugify, wrap_paragraph
from repro.util.units import GiB, KiB, MiB, format_bytes, format_count, format_duration, parse_bytes


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_derive_seed_scope_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_scope_concatenation_is_not_ambiguous(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_rng_streams_independent(self):
        a = rng_for(0, "x").random(5)
        b = rng_for(0, "y").random(5)
        assert not np.allclose(a, b)

    def test_rng_reproducible(self):
        assert np.allclose(rng_for(3, "z").random(4), rng_for(3, "z").random(4))


class TestUnits:
    def test_format_bytes_scales(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(4 * MiB) == "4.00 MiB"
        assert format_bytes(2 * GiB) == "2.00 GiB"

    def test_parse_bytes_forms(self):
        assert parse_bytes("4M") == 4 * MiB
        assert parse_bytes("1 MiB") == MiB
        assert parse_bytes("47008") == 47008
        assert parse_bytes("2k") == 2 * KiB

    def test_parse_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bytes("lots")
        with pytest.raises(ValueError):
            parse_bytes("12 parsecs")

    @given(st.integers(min_value=0, max_value=10**15))
    def test_format_count_has_separators(self, n):
        assert format_count(n) == f"{n:,}"

    def test_format_duration(self):
        assert format_duration(722.0) == "722.0 s"
        assert format_duration(0.0042) == "4.200 ms"


class TestStats:
    def test_gini_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_gini_concentrated_is_high(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_gini_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
    def test_gini_bounds(self, values):
        g = gini(values)
        assert -1e-9 <= g <= 1.0

    def test_normalized_variance(self):
        assert normalized_variance([1, 1, 1]) == pytest.approx(0.0)
        assert normalized_variance([]) == 0.0
        assert normalized_variance([0, 2]) == pytest.approx(1.0)  # var=1, mean=1

    def test_weighted_percentile_median(self):
        v = np.array([1.0, 2.0, 3.0])
        w = np.array([1.0, 1.0, 1.0])
        assert 1.0 <= weighted_percentile(v, w, 50) <= 3.0

    def test_weighted_percentile_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_percentile(np.array([1.0]), np.array([1.0, 2.0]), 50)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20))
    def test_histogram_fractions_sum(self, counts):
        fr = histogram_fractions(counts)
        if sum(counts) == 0:
            assert np.allclose(fr, 0.0)
        else:
            assert fr.sum() == pytest.approx(1.0)


class TestParallel:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * 2, range(10), max_workers=4)
        assert out == [x * 2 for x in range(10)]

    def test_serial_fallback(self):
        assert parallel_map(lambda x: x + 1, [1], max_workers=1) == [2]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2, 3])


class TestText:
    def test_simple_tokens_keeps_numbers_and_paths(self):
        toks = simple_tokens("read 47008 bytes from /scratch/f.dat!")
        assert "47008" in toks and "/scratch/f.dat" in toks and "!" in toks

    def test_sentence_split(self):
        s = sentence_split("One sentence. Another one! A third? Done.")
        assert len(s) == 4

    def test_wrap_paragraph_width(self):
        text = wrap_paragraph("word " * 60, width=40)
        assert all(len(line) <= 40 for line in text.splitlines())

    def test_slugify(self):
        assert slugify("Hello, World! 2x") == "hello-world-2x"

    def test_dedent_strip(self):
        assert dedent_strip("\n    a\n    b\n") == "a\nb"
