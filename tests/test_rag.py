"""Tests for the RAG substrate: corpus, chunking, embedding, retrieval."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rag.chunking import chunk_text
from repro.rag.corpus import TOPICS, build_corpus, topics_for_issue
from repro.rag.embedding import HashedTfIdfEmbedder
from repro.rag.index import build_default_index
from repro.rag.reflection import reflect_filter
from repro.rag.retriever import Retriever
from repro.util.text import simple_tokens


class TestCorpus:
    def test_sixty_six_documents(self):
        docs = build_corpus(0)
        assert len(docs) == 66

    def test_doc_ids_unique_and_sequential(self):
        docs = build_corpus(0)
        assert [d.doc_id for d in docs] == [f"S{i:02d}" for i in range(1, 67)]

    def test_topics_valid(self):
        docs = build_corpus(0)
        for doc in docs:
            assert set(doc.topics) <= set(TOPICS)

    def test_every_issue_has_topic_coverage(self):
        from repro.core.issues import ISSUE_KEYS

        docs = build_corpus(0)
        covered = {t for d in docs for t in d.topics}
        for key in ISSUE_KEYS:
            assert set(topics_for_issue(key)) & covered, key

    def test_deterministic(self):
        assert build_corpus(0)[10].body == build_corpus(0)[10].body

    def test_citation_format(self):
        doc = build_corpus(0)[0]
        assert doc.citation.startswith("[S01] ")
        assert doc.title in doc.citation


class TestChunking:
    def test_short_doc_single_chunk(self):
        chunks = chunk_text("D", "only a few words here")
        assert len(chunks) == 1
        assert chunks[0].chunk_id == "D#0"

    def test_long_doc_overlapping_chunks(self):
        words = " ".join(f"w{i}" for i in range(1200))
        chunks = chunk_text("D", words, chunk_size=512, overlap=20)
        assert len(chunks) == 3
        # Overlap: last 20 tokens of chunk k = first 20 of chunk k+1.
        t0 = simple_tokens(chunks[0].text)
        t1 = simple_tokens(chunks[1].text)
        assert t0[-20:] == t1[:20]

    @given(
        n_words=st.integers(min_value=0, max_value=3000),
        chunk_size=st.integers(min_value=32, max_value=512),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunking_covers_all_tokens(self, n_words, chunk_size):
        words = " ".join(f"w{i}" for i in range(n_words))
        chunks = chunk_text("D", words, chunk_size=chunk_size, overlap=10)
        recovered = set()
        for c in chunks:
            recovered.update(simple_tokens(c.text))
        assert recovered == set(simple_tokens(words))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            chunk_text("D", "x", chunk_size=0)
        with pytest.raises(ValueError):
            chunk_text("D", "x", chunk_size=10, overlap=10)


class TestEmbedding:
    def _fitted(self):
        docs = [d.body for d in build_corpus(0)]
        return HashedTfIdfEmbedder().fit(docs)

    def test_unit_norm(self):
        emb = self._fitted()
        import numpy as np

        v = emb.embed("collective MPI-IO aggregates small requests")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_text_is_zero(self):
        import numpy as np

        assert np.allclose(self._fitted().embed(""), 0.0)

    def test_topical_similarity_beats_cross_topic(self):
        emb = self._fitted()
        stripe_q = emb.embed("stripe width of 1 concentrates traffic on a single OST")
        stripe_d = emb.embed(
            "a stripe count of one places the file's entire load on a single OST"
        )
        meta_d = emb.embed("metadata servers serialize opens, creates, and stats")
        assert stripe_q @ stripe_d > stripe_q @ meta_d

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            HashedTfIdfEmbedder().embed("x")


class TestIndexAndRetrieval:
    def test_top_k_size_and_order(self):
        index = build_default_index()
        hits = index.search("small write requests below one megabyte waste bandwidth", k=15)
        assert len(hits) == 15
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_topical_retrieval_quality(self):
        """A small-I/O query should surface small-io docs near the top."""
        index = build_default_index()
        hits = index.search(
            "the median write request size is 562 bytes across 20000 write "
            "requests with 99.5% of them below 128 KiB; aggregating small "
            "writes into larger requests"
        )
        top_topics = [t for h in hits[:5] for t in h.doc.topics]
        assert "small-io" in top_topics

    def test_render_source_contains_topics_line(self):
        index = build_default_index()
        hit = index.search("striping", k=1)[0]
        rendered = Retriever.render_source(hit)
        assert "Topics:" in rendered and rendered.startswith(f"[{hit.doc.doc_id}]")


class TestReflection:
    def test_filters_off_topic_sources(self, client):
        index = build_default_index()
        retriever = Retriever(index)
        description = (
            "In the POSIX module, the median write request size is 562 bytes "
            "across 20000 write requests, with 99.5% of them below 128 KiB."
        )
        hits = retriever.retrieve(description)
        sources = [Retriever.render_source(h) for h in hits]
        kept = reflect_filter(description, sources, client, call_id_prefix="t")
        assert 0 < len(kept) < len(sources)  # rules out a good fraction (§IV-B3)
        # Kept sources should be dominated by topically relevant ones.
        small_io = sum(1 for s in kept if "small-io" in s or "Aggregation" in s)
        assert small_io >= len(kept) / 2
