"""Tests for the simulated HPC substrate (filesystem, ops, runtime)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.filesystem import LustreFileSystem, StripeLayout
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import IORuntime, JobSpec
from repro.sim.timing import PerfModel
from repro.util.units import MiB


class TestStripeLayout:
    def test_ost_for_offset_round_robin(self):
        layout = StripeLayout(stripe_size=MiB, stripe_width=4, stripe_offset=0, ost_ids=(0, 1, 2, 3))
        assert layout.ost_for_offset(0) == 0
        assert layout.ost_for_offset(MiB) == 1
        assert layout.ost_for_offset(4 * MiB) == 0

    @given(
        offset=st.integers(min_value=0, max_value=64 * MiB),
        size=st.integers(min_value=1, max_value=32 * MiB),
        width=st.integers(min_value=1, max_value=8),
    )
    def test_bytes_per_ost_conserves_bytes(self, offset, size, width):
        layout = StripeLayout(
            stripe_size=MiB, stripe_width=width, stripe_offset=0, ost_ids=tuple(range(width))
        )
        per_ost = layout.bytes_per_ost(offset, size)
        assert sum(per_ost.values()) == size
        assert all(ost in range(width) for ost in per_ost)

    def test_zero_size_extent(self):
        layout = StripeLayout(stripe_size=MiB, stripe_width=1, stripe_offset=0, ost_ids=(0,))
        assert layout.bytes_per_ost(10, 0) == {}

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StripeLayout(stripe_size=MiB, stripe_width=2, stripe_offset=0, ost_ids=(0,))


class TestLustreFileSystem:
    def test_layout_deterministic_per_path(self):
        fs = LustreFileSystem(seed=5)
        a = fs.layout_for("/scratch/a")
        assert a == fs.layout_for("/scratch/a")

    def test_set_stripe_override(self):
        fs = LustreFileSystem(num_osts=32, seed=0)
        fs.set_stripe("/scratch/wide", MiB, 16)
        assert fs.layout_for("/scratch/wide").stripe_width == 16

    def test_restripe_after_touch_rejected(self):
        fs = LustreFileSystem(seed=0)
        fs.layout_for("/scratch/f")
        with pytest.raises(ValueError):
            fs.set_stripe("/scratch/f", MiB, 4)

    def test_stripe_wider_than_osts_rejected(self):
        fs = LustreFileSystem(num_osts=4, seed=0)
        with pytest.raises(ValueError):
            fs.set_stripe("/scratch/f", MiB, 8)

    def test_contains(self):
        fs = LustreFileSystem(mount_point="/scratch", seed=0)
        assert fs.contains("/scratch/x")
        assert not fs.contains("/home/x")

    def test_file_size_tracking(self):
        fs = LustreFileSystem(seed=0)
        fs.record_extent("/scratch/f", 1000)
        fs.record_extent("/scratch/f", 500)
        assert fs.file_size("/scratch/f") == 1000


class TestIOOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            IOOp(kind=OpKind.READ, api=API.POSIX, rank=-1, path="/f", size=1)
        with pytest.raises(ValueError):
            IOOp(kind=OpKind.READ, api=API.POSIX, rank=0, path="", size=1)
        with pytest.raises(ValueError):
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/f", size=1, collective=True)

    def test_end_offset(self):
        op = IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/f", offset=100, size=50)
        assert op.end_offset == 150


class TestPerfModel:
    def test_small_ops_latency_bound(self):
        perf = PerfModel()
        t_small = perf.transfer_time(100, 1, sequential=True)
        assert t_small == pytest.approx(perf.op_latency, rel=0.05)

    def test_wide_stripes_are_faster(self):
        perf = PerfModel()
        assert perf.transfer_time(64 * MiB, 8, True) < perf.transfer_time(64 * MiB, 1, True)

    def test_seek_penalty(self):
        perf = PerfModel()
        assert perf.transfer_time(MiB, 1, False) > perf.transfer_time(MiB, 1, True)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PerfModel().transfer_time(-1, 1, True)


class TestIORuntime:
    def _runtime(self, nprocs=4, **fs_kwargs):
        fs = LustreFileSystem(seed=1, **fs_kwargs)
        spec = JobSpec(exe="/bin/app", nprocs=nprocs)
        return IORuntime(spec, fs), fs

    def test_bytes_accounting(self):
        rt, _ = self._runtime()
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=1000),
            IOOp(kind=OpKind.READ, api=API.POSIX, rank=1, path="/scratch/f", offset=0, size=400),
        ]
        res = rt.run(ops)
        assert res.bytes_written == 1000
        assert res.bytes_read == 400

    def test_ost_traffic_conservation(self):
        rt, _ = self._runtime()
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=i * MiB, size=MiB)
            for i in range(8)
        ]
        res = rt.run(ops)
        assert sum(res.ost_bytes.values()) == 8 * MiB

    def test_collective_lowering_aggregates(self):
        """Collective writes lower to few large POSIX writes by aggregators."""
        rt, fs = self._runtime(nprocs=4)
        seen = []

        class Obs:
            def on_op(self, op, t0, t1, fs):
                seen.append(op)

        rt.add_observer(Obs())
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.MPIIO, rank=r, path="/scratch/c", offset=r * MiB, size=MiB, collective=True)
            for r in range(4)
        ]
        rt.run(ops)
        posix = [o for o in seen if o.api is API.POSIX]
        mpiio = [o for o in seen if o.api is API.MPIIO]
        assert len(mpiio) == 4  # every rank's collective call is recorded
        assert len(posix) == 1  # one aggregated transfer (4 MiB < CB buffer)
        assert posix[0].size == 4 * MiB
        assert posix[0].rank == 0  # the aggregator

    def test_independent_mpiio_lowers_one_to_one(self):
        rt, _ = self._runtime(nprocs=2)
        seen = []

        class Obs:
            def on_op(self, op, t0, t1, fs):
                seen.append(op)

        rt.add_observer(Obs())
        rt.run([IOOp(kind=OpKind.WRITE, api=API.MPIIO, rank=0, path="/scratch/i", offset=0, size=4096)])
        assert [o.api for o in seen] == [API.MPIIO, API.POSIX]
        assert seen[1].size == 4096

    def test_rank_clocks_advance_independently(self):
        rt, _ = self._runtime(nprocs=2)
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f0", offset=0, size=16 * MiB),
            IOOp(kind=OpKind.COMPUTE, api=API.POSIX, rank=1, duration=0.001),
        ]
        res = rt.run(ops)
        assert res.rank_busy[0] > res.rank_busy[1] > 0

    def test_out_of_range_rank_rejected(self):
        rt, _ = self._runtime(nprocs=2)
        with pytest.raises(ValueError):
            rt.run([IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=5, path="/scratch/f", size=1)])

    def test_runtime_monotone_in_volume(self):
        rt1, _ = self._runtime()
        rt2, _ = self._runtime()
        small = rt1.run(
            [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=MiB)]
        )
        big = rt2.run(
            [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=64 * MiB)]
        )
        assert big.runtime > small.runtime
