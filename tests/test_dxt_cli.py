"""Tests for the DXT extension (paper future work) and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.darshan.dxt import DxtCollector, dxt_timeline_facts, render_dxt_text
from repro.darshan.writer import render_darshan_text
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import IORuntime, JobSpec
from repro.util.units import MiB


def _run_with_dxt(ops, nprocs=4):
    fs = LustreFileSystem(seed=3)
    spec = JobSpec(exe="/bin/x", nprocs=nprocs)
    rt = IORuntime(spec, fs)
    dxt = DxtCollector()
    rt.add_observer(dxt)
    rt.run(ops)
    return dxt


class TestDxtCollector:
    def test_captures_data_ops_only(self):
        ops = [
            IOOp(kind=OpKind.OPEN, api=API.POSIX, rank=0, path="/scratch/f"),
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=4096),
            IOOp(kind=OpKind.READ, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=4096),
            IOOp(kind=OpKind.CLOSE, api=API.POSIX, rank=0, path="/scratch/f"),
        ]
        dxt = _run_with_dxt(ops, nprocs=1)
        assert len(dxt.segments) == 2
        assert [s.operation for s in dxt.segments] == ["write", "read"]
        assert all(s.end_time > s.start_time for s in dxt.segments)

    def test_segment_fields(self):
        ops = [IOOp(kind=OpKind.WRITE, api=API.MPIIO, rank=2, path="/scratch/f", offset=1024, size=4096)]
        dxt = _run_with_dxt(ops)
        mpiio = [s for s in dxt.segments if s.module == "X_MPIIO"]
        assert mpiio and mpiio[0].rank == 2 and mpiio[0].offset == 1024
        # Independent MPI-IO also lowers to a POSIX segment.
        assert any(s.module == "X_POSIX" for s in dxt.segments)

    def test_segment_cap_counts_drops(self):
        fs = LustreFileSystem(seed=3)
        spec = JobSpec(exe="/bin/x", nprocs=1)
        rt = IORuntime(spec, fs)
        dxt = DxtCollector(max_segments=5)
        rt.add_observer(dxt)
        rt.run(
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=i * 100, size=100)
            for i in range(10)
        )
        assert len(dxt.segments) == 5
        assert dxt.dropped == 5

    def test_by_rank_grouping(self):
        ops = [
            IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=r, path="/scratch/f", offset=r * 100, size=100)
            for r in (0, 1, 0)
        ]
        groups = _run_with_dxt(ops).by_rank()
        assert len(groups[0]) == 2 and len(groups[1]) == 1

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            DxtCollector(max_segments=0)


class TestDxtAnalysis:
    def test_render_text_format(self):
        dxt = _run_with_dxt(
            [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=4096)]
        )
        text = render_dxt_text(dxt.segments)
        assert "X_POSIX" in text and "/scratch/f" in text
        assert text.startswith("# DXT trace")

    def test_timeline_phase_detection(self):
        ops = []
        for i in range(50):
            ops.append(IOOp(kind=OpKind.READ, api=API.POSIX, rank=0, path="/scratch/in", offset=i * MiB, size=MiB))
        for i in range(50):
            ops.append(IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/out", offset=i * MiB, size=MiB))
        facts = dxt_timeline_facts(_run_with_dxt(ops, nprocs=1).segments)
        assert facts[0].get("phase") == "read-then-write"
        assert facts[0].get("n_segments") == 100

    def test_burst_detection(self):
        ops = []
        # Quiet phase: tiny log writes separated by compute gaps...
        for i in range(40):
            ops.append(IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/log", offset=i * 4096, size=4096))
            ops.append(IOOp(kind=OpKind.COMPUTE, api=API.POSIX, rank=0, duration=0.005))
        # ... then a dense checkpoint burst at the end.
        for i in range(20):
            ops.append(IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/ckpt", offset=i * MiB, size=MiB))
        facts = dxt_timeline_facts(_run_with_dxt(ops, nprocs=1).segments)
        assert facts[0].get("n_bursts") >= 1
        assert facts[0].get("peak_to_mean") > 3.0

    def test_empty_segments(self):
        assert dxt_timeline_facts([]) == []

    def test_timeline_fact_round_trips_through_nl(self):
        from repro.llm.facts import extract_facts, render_fact

        ops = [IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=0, path="/scratch/f", offset=0, size=4096)]
        facts = dxt_timeline_facts(_run_with_dxt(ops, nprocs=1).segments)
        text = render_fact(facts[0])
        recovered = extract_facts(text)
        assert any(f.kind == "dxt_timeline" for f in recovered)


class TestCli:
    @pytest.fixture()
    def trace_file(self, sb01_trace, tmp_path):
        path = tmp_path / "sb01.darshan.txt"
        path.write_text(render_darshan_text(sb01_trace.log), encoding="utf-8")
        return str(path)

    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["diagnose", "t.txt", "--model", "llama-3.1-70b"])
        assert args.command == "diagnose" and args.model == "llama-3.1-70b"
        args = parser.parse_args(["tracebench", "table3"])
        assert args.tb_command == "table3"

    def test_diagnose_command(self, trace_file, capsys):
        assert main(["diagnose", trace_file]) == 0
        out = capsys.readouterr().out
        assert "small_write" in out and "References" in out

    def test_diagnose_no_rag(self, trace_file, capsys):
        assert main(["diagnose", trace_file, "--no-rag"]) == 0
        assert "References:" not in capsys.readouterr().out

    def test_drishti_command(self, trace_file, capsys):
        assert main(["drishti", trace_file]) == 0
        assert "DRISHTI" in capsys.readouterr().out

    def test_ion_command(self, trace_file, capsys):
        assert main(["ion", trace_file]) == 0
        assert "assessment" in capsys.readouterr().out.lower()

    def test_table3_command(self, capsys):
        assert main(["tracebench", "table3"]) == 0
        assert "182" in capsys.readouterr().out

    def test_export_command(self, tmp_path, capsys):
        out_dir = tmp_path / "tb"
        assert main(["tracebench", "export", str(out_dir)]) == 0
        assert (out_dir / "labels.tsv").exists()
        assert len(list(out_dir.glob("*.darshan.txt"))) == 40

    def test_export_dxt_flag_preserves_the_channel(self, tmp_path, capsys):
        from repro.darshan.parser import parse_darshan_text

        plain_dir, dxt_dir = tmp_path / "plain", tmp_path / "dxt"
        assert main(["tracebench", "export", str(plain_dir)]) == 0
        assert main(["tracebench", "export", str(dxt_dir), "--dxt"]) == 0
        name = "sb01-small-writes.darshan.txt"
        plain = parse_darshan_text((plain_dir / name).read_text(encoding="utf-8"))
        restored = parse_darshan_text((dxt_dir / name).read_text(encoding="utf-8"))
        assert plain.dxt_segments is None  # default export unchanged
        assert restored.has_dxt
        assert len(restored.dxt_segments) > 0

    def test_evaluate_subset(self, capsys):
        assert main(["evaluate", "--traces", "sb01-small-writes,ra01-amrex"]) == 0
        out = capsys.readouterr().out
        assert "IOAgent-gpt-4o" in out and "Overall" in out

    def test_evaluate_unknown_trace_ids(self, capsys):
        code = main(["evaluate", "--traces", "sb01-small-writes,nope-1,nope-2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown trace id(s): nope-1, nope-2" in err
        assert "sb01-small-writes" in err  # the available ids are listed

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_list_tools(self, capsys):
        assert main(["--list-tools"]) == 0
        listed = capsys.readouterr().out.split()
        assert {"ioagent", "drishti", "ion"} <= set(listed)

    def test_ioagent_alias_and_max_workers(self, trace_file, capsys):
        assert main(["ioagent", trace_file, "--max-workers", "1"]) == 0
        assert "small_write" in capsys.readouterr().out

    def test_max_workers_does_not_change_output(self, trace_file, capsys):
        assert main(["diagnose", trace_file]) == 0
        default_out = capsys.readouterr().out
        assert main(["diagnose", trace_file, "--max-workers", "1"]) == 0
        assert capsys.readouterr().out == default_out

    def test_no_command_errors(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_list_scenarios_flag(self, capsys):
        assert main(["--list-scenarios"]) == 0
        listed = capsys.readouterr().out.split()
        assert "sb01-small-writes" in listed and "path12-clean-baseline" in listed
        assert len(listed) >= 52

    def test_list_scenarios_subcommand(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "sb01-small-writes" in out and "path09-fsync-per-write" in out
        assert "<clean>" in out  # the control's empty ground truth

    def test_list_scenarios_tag_filter(self, capsys):
        assert main(["list-scenarios", "--tag", "pathology"]) == 0
        out = capsys.readouterr().out
        assert "path01-random-small-reads" in out
        assert "sb01-small-writes" not in out

    def test_list_scenarios_unknown_tag(self, capsys):
        assert main(["list-scenarios", "--tag", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario selector: nope" in err
        assert "available tags:" in err

    def test_evaluate_scenarios_selector(self, capsys):
        assert main(["evaluate", "--scenarios", "control"]) == 0
        out = capsys.readouterr().out
        assert "Pathology" in out and "IOAgent-gpt-4o" in out

    def test_evaluate_unknown_scenario_selector(self, capsys):
        code = main(["evaluate", "--scenarios", "pathology,bogus-tag"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario selector: bogus-tag" in err
        assert "available tags:" in err and "pathology" in err

    def test_evaluate_difficulty_selector(self, capsys):
        """`--scenarios <difficulty>` works like any tag selector and the
        output carries the per-difficulty accuracy split."""
        assert main(["evaluate", "--scenarios", "control"]) == 0
        out = capsys.readouterr().out
        assert "Accuracy by scenario difficulty" in out
        assert "control" in out

    def test_evaluate_unknown_difficulty_hint(self, capsys):
        code = main(["evaluate", "--scenarios", "HARD"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario selector: HARD" in err
        assert "did you mean 'hard'" in err
        assert "difficulty tiers: easy, medium, hard, control" in err

    def test_evaluate_unknown_selector_lists_difficulties(self, capsys):
        code = main(["evaluate", "--scenarios", "nightmare"])
        assert code == 2
        err = capsys.readouterr().err
        assert "difficulty tiers: easy, medium, hard, control" in err

    def test_evaluate_scenarios_and_traces_combine(self, capsys):
        code = main(
            ["evaluate", "--scenarios", "control", "--traces", "sb01-small-writes"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pathology" in out and "Simple-Bench" in out
