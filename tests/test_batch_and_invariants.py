"""Batch/cost module tests plus cross-layer property invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import cost_comparison, run_batch
from repro.darshan.counters import SIZE_BIN_SUFFIXES
from repro.darshan.instrument import DarshanInstrument
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import IORuntime, JobSpec


class TestBatch:
    @pytest.fixture(scope="class")
    def traces(self, bench):
        return [bench.get("sb01-small-writes"), bench.get("sb06-shared-file")]

    def test_run_batch_accounts_usage(self, traces):
        result = run_batch(traces, model="gpt-4o", seed=0)
        assert set(result.reports) == {t.trace_id for t in traces}
        assert result.llm_calls > 0
        assert result.prompt_tokens > 0
        assert result.cost_usd > 0
        assert 0.0 <= result.mean_f1 <= 1.0
        assert result.cost_per_trace == pytest.approx(result.cost_usd / 2)

    def test_cost_comparison_open_vs_proprietary(self, traces):
        results = cost_comparison(traces, models=("gpt-4o", "llama-3.1-70b"), seed=0)
        gpt, llama = results["gpt-4o"], results["llama-3.1-70b"]
        assert gpt.cost_usd > 0
        assert llama.cost_usd == 0.0  # fully-open pipeline is free to run
        # The democratization claim: open backbone stays in the same league.
        assert llama.mean_f1 >= 0.6 * gpt.mean_f1

    def test_batch_empty(self):
        result = run_batch([], model="gpt-4o")
        assert result.mean_f1 == 0.0 and not result.reports


def _instrumented(ops, nprocs=4):
    fs = LustreFileSystem(seed=7)
    spec = JobSpec(exe="/bin/x", nprocs=nprocs)
    rt = IORuntime(spec, fs)
    inst = DarshanInstrument(spec, fs)
    rt.add_observer(inst)
    result = rt.run(ops)
    return inst.finalize(result.runtime), result


@st.composite
def _op_streams(draw):
    """Random single-file op streams over up to 4 ranks."""
    nprocs = draw(st.integers(min_value=1, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        rank = draw(st.integers(min_value=0, max_value=nprocs - 1))
        kind = draw(st.sampled_from([OpKind.READ, OpKind.WRITE]))
        offset = draw(st.integers(min_value=0, max_value=1 << 22))
        size = draw(st.integers(min_value=0, max_value=1 << 21))
        ops.append(
            IOOp(kind=kind, api=API.POSIX, rank=rank, path="/scratch/h", offset=offset, size=size)
        )
    return nprocs, ops


class TestInstrumentInvariants:
    @given(_op_streams())
    @settings(max_examples=40, deadline=None)
    def test_counter_conservation(self, stream):
        """Darshan counters are a faithful projection of the op stream."""
        nprocs, ops = stream
        log, result = _instrumented(ops, nprocs=nprocs)
        rec = log.records_for("POSIX")[0]
        reads = sum(1 for o in ops if o.kind is OpKind.READ)
        writes = len(ops) - reads
        assert rec.counters["POSIX_READS"] == reads
        assert rec.counters["POSIX_WRITES"] == writes
        # Byte totals agree between the runtime and the counters.
        assert rec.counters["POSIX_BYTES_READ"] == result.bytes_read
        assert rec.counters["POSIX_BYTES_WRITTEN"] == result.bytes_written
        # Size histograms partition the operations exactly.
        for stem, total in (("READ", reads), ("WRITE", writes)):
            hist = sum(
                rec.counters[f"POSIX_SIZE_{stem}_{s}"] for s in SIZE_BIN_SUFFIXES
            )
            assert hist == total
        # SEQ/CONSEC can never exceed the op count minus first-ops.
        assert rec.counters["POSIX_SEQ_READS"] <= max(0, reads)
        assert rec.counters["POSIX_CONSEC_WRITES"] <= rec.counters["POSIX_SEQ_WRITES"] or (
            rec.counters["POSIX_CONSEC_WRITES"] <= writes
        )

    @given(_op_streams())
    @settings(max_examples=25, deadline=None)
    def test_text_round_trip_arbitrary_logs(self, stream):
        """Writer/parser round-trip holds for arbitrary generated logs."""
        from repro.darshan.parser import parse_darshan_text
        from repro.darshan.writer import render_darshan_text

        nprocs, ops = stream
        log, _ = _instrumented(ops, nprocs=nprocs)
        log2 = parse_darshan_text(render_darshan_text(log))
        assert {(r.module, r.path): r.counters for r in log2.records} == {
            (r.module, r.path): r.counters for r in log.records
        }

    @given(_op_streams())
    @settings(max_examples=25, deadline=None)
    def test_fragment_facts_always_renderable(self, stream):
        """Every fact any summary produces must render and re-extract."""
        from repro.core.summaries import app_context_facts, extract_fragments
        from repro.llm.facts import extract_facts, render_fact

        nprocs, ops = stream
        log, _ = _instrumented(ops, nprocs=nprocs)
        facts = app_context_facts(log)
        for frag in extract_fragments(log):
            facts.extend(frag.facts)
        text = " ".join(render_fact(f) for f in facts)
        recovered = extract_facts(text)
        assert len(recovered) == len(facts)
