"""Tests for the SimLLM substrate: tokens, context, facts, engine, client."""

from __future__ import annotations

import pytest

from repro.llm.client import LLMClient
from repro.llm.context import fit_prompt
from repro.llm.facts import FACT_KINDS, Fact, extract_facts, render_fact
from repro.llm.findings import Finding, parse_findings, render_findings
from repro.llm.misconceptions import MISCONCEPTIONS, misconception_in_text, triggered_misconceptions
from repro.llm.models import MODEL_REGISTRY, get_model
from repro.llm.reasoning import THRESHOLDS, infer_findings
from repro.llm.tokenizer import approx_tokens, take_tokens_back, take_tokens_front


class TestTokenizer:
    def test_approx_tokens_monotone(self):
        assert approx_tokens("abcd" * 100) == 100
        assert approx_tokens("") == 0

    def test_take_front_respects_lines(self):
        text = "\n".join(f"line {i}" for i in range(100))
        front = take_tokens_front(text, 20)
        assert front.endswith("\n")
        assert approx_tokens(front) <= 21

    def test_take_back_respects_lines(self):
        text = "\n".join(f"line {i}" for i in range(100))
        back = take_tokens_back(text, 20)
        assert back.startswith("line")
        assert "line 99" in back

    def test_zero_budget(self):
        assert take_tokens_front("abc", 0) == ""
        assert take_tokens_back("abc", 0) == ""


class TestContext:
    def test_short_prompt_untouched(self):
        model = get_model("gpt-4o")
        fitted = fit_prompt("hello world", model)
        assert not fitted.truncated
        assert fitted.visible_text == "hello world"

    def test_long_prompt_loses_the_middle(self):
        model = get_model("gpt-4")
        lines = [f"HEAD {i}" for i in range(100)]
        lines += [f"MIDDLE {i}" for i in range(20000)]
        lines += [f"TAIL {i}" for i in range(100)]
        fitted = fit_prompt("\n".join(lines), model)
        assert fitted.truncated
        assert "HEAD 0" in fitted.visible_text
        assert "TAIL 99" in fitted.visible_text
        assert "MIDDLE 10000" not in fitted.visible_text
        assert "context truncated" in fitted.visible_text
        assert 0.0 < fitted.loss_fraction < 1.0

    def test_visible_tokens_fit_window(self):
        model = get_model("o1-preview")
        fitted = fit_prompt("x" * 10_000_000, model)
        assert fitted.visible_tokens <= model.context_tokens


class TestModels:
    def test_registry_contains_paper_models(self):
        for name in ("gpt-4", "gpt-4o", "gpt-4o-mini", "o1-preview", "llama-3-70b", "llama-3.1-70b"):
            assert name in MODEL_REGISTRY

    def test_open_source_models_are_free(self):
        assert get_model("llama-3.1-70b").usd_per_mtok_in == 0.0

    def test_unknown_model_helpful_error(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("gpt-99")

    def test_capability_ordering(self):
        """The tiers encode the paper's quality ordering."""
        assert get_model("gpt-4o").fact_recall > get_model("llama-3.1-70b").fact_recall
        assert get_model("llama-3.1-70b").fact_recall > get_model("llama-3-70b").fact_recall
        assert (
            get_model("llama-3-70b").merge_retention_decay
            > get_model("gpt-4o").merge_retention_decay
        )


def _example_fact(kind: str) -> Fact:
    samples = {
        "app_context": {"runtime_s": 722.0, "nprocs": 8, "total_bytes": 123456},
        "mpi_presence": {"mpiio_used": False, "nprocs": 8, "mpiio_bytes": 0, "posix_bytes": 999},
        "size_hist": {"module": "POSIX", "direction": "write", "p50_bytes": 562, "n_requests": 20000, "small_fraction": 0.995},
        "volume": {"module": "MPIIO", "bytes_read": 10, "bytes_written": 20},
        "counts": {"module": "STDIO", "reads": 5, "writes": 6, "n_files": 2},
        "mpi_ops": {"indep_reads": 1, "indep_writes": 2, "coll_reads": 3, "coll_writes": 4},
        "meta": {"module": "POSIX", "meta_time_s": 1.25, "meta_ops": 4500, "data_time_s": 0.5, "meta_fraction": 0.714},
        "alignment": {"module": "POSIX", "direction": "read", "unaligned_fraction": 0.87, "alignment": 4096, "common_size": 47008},
        "order": {"module": "POSIX", "direction": "write", "seq_fraction": 0.51, "consec_fraction": 0.25},
        "shared": {"n_shared_files": 2, "shared_bytes": 999999999, "total_bytes": 1999999999, "example_path": "/scratch/s.dat"},
        "rank_balance": {"module": "MPIIO", "gini": 0.677, "norm_variance": 19.5, "nprocs": 32},
        "repetition": {"path": "/scratch/in.dat", "ratio": 9.0, "bytes_read": 94371840, "extent": 10485760},
        "stdio_share": {"direction": "written", "share": 0.89, "stdio_bytes": 67108864, "total_bytes": 75497472},
        "stripe": {"n_files": 4, "mount": "/scratch", "stripe_width": 1, "stripe_size": 1048576},
        "server_usage": {"eff_osts": 1.0, "num_osts": 64, "utilization": 0.016, "top_share": 1.0, "total_bytes": 503316480},
        "mount": {"fs_type": "lustre", "mount": "/scratch"},
        "dxt_timeline": {"n_segments": 2400, "span_s": 12.5, "phase": "read-then-write", "n_bursts": 3, "peak_to_mean": 7.2},
        "dxt_rank_skew": {"slowest_rank": 0, "span_skew": 5.2, "time_skew": 4.8, "bytes_ratio": 1.0, "nprocs": 8},
        "dxt_concurrency": {"mean_inflight": 1.06, "peak_inflight": 2, "active_ranks": 8},
        "dxt_idle": {"n_gaps": 9, "idle_fraction": 0.42, "span_s": 8.125, "longest_gap_s": 0.5, "stalled_ranks": 4},
        "dxt_file_skew": {"slow_path": "/scratch/out.00003", "slow_mbps": 120.5, "median_mbps": 485.0, "n_files": 8, "ratio": 4.0},
        "dxt_ost_skew": {"time_share": 0.354, "hot_ost": 3, "bytes_share": 0.125, "skew": 2.8, "n_osts": 8},
        "dxt_ost_latency": {"slow_osts": [2, 5], "slow_mbps": 61.7, "median_mbps": 246.9, "n_osts": 8, "ratio": 4.0},
        "trend_regression": {"n_runs": 8, "baseline_runs": 3, "run_index": 5, "drift": 4.5, "threshold": 1.0, "top_feature": "dxt.idle_fraction"},
    }
    return Fact(kind=kind, data=samples[kind])


class TestFacts:
    @pytest.mark.parametrize("kind", FACT_KINDS)
    def test_render_extract_round_trip(self, kind):
        """Every fact kind survives NL rendering and re-extraction."""
        fact = _example_fact(kind)
        text = render_fact(fact)
        recovered = [f for f in extract_facts(text) if f.kind == kind]
        assert recovered, f"no {kind} extracted from: {text}"
        back = recovered[0]
        for field, value in fact.data.items():
            if isinstance(value, float):
                assert back.data[field] == pytest.approx(value, abs=0.01), (kind, field)
            else:
                assert back.data[field] == value, (kind, field)

    def test_extract_preserves_order(self):
        text = render_fact(_example_fact("volume")) + " " + render_fact(_example_fact("counts"))
        kinds = [f.kind for f in extract_facts(text)]
        assert kinds == ["volume", "counts"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            render_fact(Fact(kind="nope", data={}))

    def test_extract_from_unrelated_text(self):
        assert extract_facts("nothing quantitative here at all") == []


class TestFindings:
    def _finding(self, key="small_write"):
        return Finding(
            issue_key=key,
            evidence="20000 requests at 562 B median.",
            assessment="Latency dominates.",
            recommendation="Buffer the writes.",
            references=("[S01] A, \"T\"", "[S02] B, \"U\""),
        )

    def test_render_parse_round_trip(self):
        f = self._finding()
        parsed = parse_findings(render_findings([f]))
        assert len(parsed) == 1
        assert parsed[0] == f

    def test_notes_not_absorbed_into_fields(self):
        text = render_findings([self._finding()]) + "\n\nNote: a stray misconception."
        parsed = parse_findings(text)
        assert "misconception" not in parsed[0].references[-1]
        assert "misconception" not in parsed[0].recommendation

    def test_unknown_issue_keys_skipped(self):
        text = "### Finding: Made Up [not_a_real_issue]\nEvidence: x\n"
        assert parse_findings(text) == []

    def test_merged_with_unions_references(self):
        a = self._finding()
        b = Finding(issue_key="small_write", evidence="e", assessment="a", recommendation="r", references=("[S03] C, \"V\"",))
        merged = a.merged_with(b)
        assert len(merged.references) == 3

    def test_merged_with_rejects_different_issue(self):
        with pytest.raises(ValueError):
            self._finding("small_write").merged_with(self._finding("small_read"))


class TestReasoning:
    def test_small_write_threshold_boundary(self):
        base = {"module": "POSIX", "direction": "write", "p50_bytes": 1000}
        hot = Fact("size_hist", {**base, "n_requests": 1000, "small_fraction": 0.95})
        cold = Fact("size_hist", {**base, "n_requests": 100, "small_fraction": 0.95})
        assert any(f.issue_key == "small_write" for f in infer_findings([hot]))
        assert not infer_findings([cold])

    def test_no_mpi_rule(self):
        fact = Fact("mpi_presence", {"mpiio_used": False, "nprocs": 8, "mpiio_bytes": 0, "posix_bytes": 1})
        assert any(f.issue_key == "no_mpi" for f in infer_findings([fact]))
        single = Fact("mpi_presence", {"mpiio_used": False, "nprocs": 1, "mpiio_bytes": 0, "posix_bytes": 1})
        assert not infer_findings([single])

    def test_no_collective_rule_needs_zero_collectives(self):
        nc = Fact("mpi_ops", {"indep_reads": 100, "indep_writes": 0, "coll_reads": 0, "coll_writes": 0})
        ok = Fact("mpi_ops", {"indep_reads": 100, "indep_writes": 0, "coll_reads": 5, "coll_writes": 0})
        assert any(f.issue_key == "no_collective_read" for f in infer_findings([nc]))
        assert not any(f.issue_key == "no_collective_read" for f in infer_findings([ok]))

    def test_server_imbalance_needs_volume(self):
        starved = Fact("server_usage", {"eff_osts": 1.0, "num_osts": 64, "utilization": 0.016, "top_share": 1.0, "total_bytes": 1024})
        assert not infer_findings([starved])

    def test_rank_rule_prefers_mpiio_and_ignores_posix_variance(self):
        posix_nv = Fact("rank_balance", {"module": "POSIX", "gini": 0.1, "norm_variance": 3.0, "nprocs": 32})
        assert not infer_findings([posix_nv])  # CB-aggregator artifact
        mpiio_nv = Fact("rank_balance", {"module": "MPIIO", "gini": 0.1, "norm_variance": 3.0, "nprocs": 32})
        assert any(f.issue_key == "rank_imbalance" for f in infer_findings([mpiio_nv]))

    def test_findings_reference_evidence_numbers(self):
        fact = _example_fact("repetition")
        findings = infer_findings([fact])
        assert findings and "9.0x" in findings[0].evidence

    def test_thresholds_documented(self):
        assert set(THRESHOLDS) >= {"small_fraction", "seq_fraction", "rank_gini"}


class TestMisconceptions:
    def test_trigger_and_signature_detection(self):
        facts = [_example_fact("stripe")]
        triggered = triggered_misconceptions(facts)
        assert any(m.key == "stripe_default_optimal" for m in triggered)
        mis = next(m for m in MISCONCEPTIONS if m.key == "stripe_default_optimal")
        assert misconception_in_text(mis.text) == [mis]

    def test_signatures_unique(self):
        sigs = [m.signature for m in MISCONCEPTIONS]
        assert len(set(sigs)) == len(sigs)

    def test_contradicts_are_valid_issue_keys(self):
        from repro.core.issues import ISSUE_KEYS

        for m in MISCONCEPTIONS:
            assert set(m.contradicts) <= set(ISSUE_KEYS)


class TestEngineClient:
    def test_determinism(self, client):
        prompt = "TASK: describe\n```json\n{\"module\": \"POSIX\", \"category\": \"io_size\", \"facts\": []}\n```"
        a = client.complete(prompt, model="gpt-4o", call_id="t1").text
        b = LLMClient(seed=0).complete(prompt, model="gpt-4o", call_id="t1").text
        assert a == b

    def test_usage_and_cost_accounting(self, client):
        prompt = "TASK: describe\n```json\n{}\n```" + "x" * 4000
        client.complete(prompt, model="gpt-4o", call_id="c")
        usage = client.usage_by_model["gpt-4o"]
        assert usage.calls == 1
        assert usage.prompt_tokens > 1000
        assert usage.cost_usd > 0
        total = client.total_usage()
        assert total.prompt_tokens == usage.prompt_tokens

    def test_open_source_model_costs_nothing(self, client):
        client.complete("TASK: describe\n```json\n{}\n```", model="llama-3.1-70b", call_id="c")
        assert client.usage_by_model["llama-3.1-70b"].cost_usd == 0.0

    def test_unknown_task_defaults_to_plain(self, client):
        out = client.complete("just some text with no task marker", model="gpt-4o", call_id="c")
        assert out.text  # plain handler answers something
