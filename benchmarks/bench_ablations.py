"""A1-A4 — Ablations of IOAgent's design choices (DESIGN.md index).

A1: RAG on/off — accuracy and hallucination rate.
A2: judge augmentations on/off — positional bias (paper §VI-B).
A3: merge fan-in sweep — finding retention vs number of summaries merged
    at once (generalizes Fig. 6).
A4: self-reflection filter on/off — fraction of off-topic sources reaching
    the diagnosis prompt.
"""

from __future__ import annotations

import pytest

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.merge import one_step_merge
from repro.evaluation.accuracy import match_stats
from repro.evaluation.ranking import JudgeConfig, rank_candidates
from repro.llm.client import LLMClient
from repro.llm.findings import Finding, parse_findings, render_findings
from repro.llm.misconceptions import misconception_in_text

_ABLATION_TRACES = (
    "sb01-small-writes",
    "sb06-shared-file",
    "io500-14-mpiio-8k-shared",
    "io500-17-mpiio-hard-47008",
    "ra01-amrex",
    "ra04-openpmd-original",
)


def test_a1_rag_ablation(benchmark, bench_suite):
    """Without RAG: no references, more surviving misconceptions."""

    def run():
        rows = []
        for with_rag in (True, False):
            agent = IOAgent(IOAgentConfig(model="gpt-4o", use_rag=with_rag, seed=0))
            refs = 0
            f1 = 0.0
            notes = 0
            for tid in _ABLATION_TRACES:
                trace = bench_suite.get(tid)
                report = agent.diagnose(trace.log, trace_id=f"{tid}-rag{with_rag}")
                refs += len(report.references)
                f1 += match_stats(report.text, trace.labels).f1 / len(_ABLATION_TRACES)
                notes += len(misconception_in_text(report.text))
            rows.append((with_rag, refs, f1, notes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'RAG':>5s} {'references':>11s} {'mean F1':>9s} {'misconceptions':>15s}")
    for with_rag, refs, f1, notes in rows:
        print(f"{str(with_rag):>5s} {refs:>11d} {f1:>9.3f} {notes:>15d}")
    (on_refs, on_f1, on_notes) = rows[0][1:]
    (off_refs, off_f1, off_notes) = rows[1][1:]
    assert on_refs > 0 and off_refs == 0
    assert on_notes <= off_notes  # RAG suppresses popular misconceptions
    assert on_f1 >= off_f1 - 0.05


def test_a2_judge_augmentation_ablation(benchmark):
    """Disabling anonymization+rotations lets positional bias through."""
    client = LLMClient(seed=0)
    tied = {
        f"tool{i}": render_findings(
            [Finding(issue_key="small_write", evidence="E 123", assessment="A", recommendation="R")]
        )
        for i in range(4)
    }

    def run():
        biased, fair = 0.0, 0.0
        n = 40
        for i in range(n):
            b = rank_candidates(
                tied,
                "utility",
                client=client,
                config=JudgeConfig(anonymize=False, rotate_rank_slots=False, rotate_content=False),
                call_id=f"b{i}",
            )
            f = rank_candidates(tied, "utility", client=client, config=JudgeConfig(), call_id=f"f{i}")
            biased += b["tool0"] / n
            fair += f["tool0"] / n
        return biased, fair

    biased, fair = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"first-presented candidate mean rank: augment OFF={biased:.2f}  ON={fair:.2f} (unbiased=2.50)")
    assert biased < 2.3  # bias inflates the first candidate
    assert abs(fair - 2.5) < abs(biased - 2.5)


@pytest.mark.parametrize("fan_in", [2, 4, 8, 13])
def test_a3_merge_fanin_sweep(benchmark, fan_in):
    """Finding retention of a single-prompt merge degrades with fan-in."""
    from repro.core.issues import ISSUE_KEYS

    client = LLMClient(seed=0)
    keys = list(ISSUE_KEYS)[:fan_in]
    summaries = [
        render_findings([Finding(issue_key=k, evidence="E", assessment="A", recommendation="R")])
        for k in keys
    ]

    def run():
        kept = 0
        rounds = 12
        for i in range(rounds):
            merged = one_step_merge(summaries, client, "gpt-4o", call_id_prefix=f"fan{fan_in}/{i}")
            kept += len(parse_findings(merged)) / rounds
        return kept / fan_in

    retention = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfan-in {fan_in:2d}: mean finding retention {retention:.2f}")
    if fan_in == 2:
        assert retention > 0.95  # pairwise merging is reliable
    if fan_in == 13:
        assert retention < 0.8  # "13 summaries ... extremely challenging" (§VI-F)


def test_a4_reflection_ablation(benchmark, bench_suite):
    """Self-reflection rules out a large share of retrieved sources."""

    def run():
        stats = {}
        for use_reflection in (True, False):
            agent = IOAgent(
                IOAgentConfig(model="gpt-4o", use_reflection=use_reflection, seed=0)
            )
            trace = bench_suite.get("sb01-small-writes")
            report = agent.diagnose(trace.log, trace_id=f"refl{use_reflection}")
            stats[use_reflection] = (report.sources_retrieved, report.sources_kept)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for use_reflection, (retrieved, kept) in stats.items():
        print(f"reflection={use_reflection}: retrieved={retrieved} kept={kept}")
    retrieved_on, kept_on = stats[True]
    retrieved_off, kept_off = stats[False]
    assert kept_off == retrieved_off  # filter off: everything flows through
    # Paper: reflection "rules out nearly half of the retrieved sources".
    assert 0.3 <= 1.0 - kept_on / retrieved_on <= 0.85
