"""CI chaos gate: the diagnosis service must bend, not break.

Sweeps every pinned fault plan (:mod:`repro.resilience.faults`) over the
counter-grounded pathology scenarios and asserts the resilience contract:

1. **Crash-free** — under every plan the service returns a report; no
   exception escapes :meth:`DiagnosisService.diagnose`.
2. **Honest degradation** — plans that cost an evidence channel produce
   reports marked ``degraded`` naming that channel (``dxt-temporal``,
   ``merge``, ``llm-completions``, dropped ``fragment:*`` entries), and
   the ``describe-outage`` plan trips the circuit breaker.
3. **Cache hygiene** — a degraded report is never cached, and a damaged
   trace never shares the clean trace's content digest (so a degraded
   answer can never be served for a clean resubmission).
4. **Accuracy floors** — under single-channel loss (and under transparent
   recovery) label F1 stays at or above the pinned per-scenario floor.
5. **Reproducibility** — the report digest from a fresh subprocess equals
   the in-process digest: chaos runs are byte-identical per seed.

Writes the full chaos report JSON to ``--out`` (uploaded per SHA by the
``chaos-smoke`` CI job).

Run locally::

    PYTHONPATH=src python benchmarks/chaos_gate.py --out CHAOS_report.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

from repro.resilience.chaos import DEFAULT_CHAOS_SCENARIOS, ChaosReport, run_chaos

# Plans where recovery or single-channel loss must preserve accuracy.
# (Not llm-brownout: garbled completions legitimately destroy evidence —
# its contract is honest degradation, checked separately.)
FLOOR_PLANS = ("flaky-llm", "temporal-crash", "merge-outage", "truncated-dxt")

# Pinned per-scenario F1 floors, slightly below the measured values
# (0.75 / 0.80 / 1.00 clean and under every FLOOR_PLAN at seed 0).
F1_FLOORS = {
    "path01-random-small-reads": 0.70,
    "path05-bursty-checkpoint": 0.75,
    "path09-fsync-per-write": 0.95,
}

# Plans that must mark the report degraded, and the channel they cost.
EXPECTED_CHANNELS = {
    "temporal-crash": "dxt-temporal",
    "merge-outage": "merge",
    "llm-brownout": "llm-completions",
}


def check_report(report: ChaosReport) -> list[str]:
    """All contract assertions over one sweep; returns failure lines."""
    failures: list[str] = []

    def fail(line: str) -> None:
        failures.append(line)
        print(f"FAIL {line}", file=sys.stderr)

    runs_by_plan: dict[str, list] = {}
    for run in report.runs:
        runs_by_plan.setdefault(run.plan, []).append(run)

        tag = f"{run.plan}/{run.scenario}"
        if not run.completed:
            fail(f"{tag}: service crashed: {run.error}")
            continue
        if run.cached_degraded:
            fail(f"{tag}: {run.cached_degraded} degraded report(s) stored in cache")
        if run.damage_applied and run.trace_digest == run.clean_trace_digest:
            fail(f"{tag}: damaged trace aliases the clean digest")
        if run.plan in FLOOR_PLANS and run.f1 < F1_FLOORS[run.scenario]:
            fail(f"{tag}: f1 {run.f1:.3f} below floor {F1_FLOORS[run.scenario]:.2f}")
        channel = EXPECTED_CHANNELS.get(run.plan)
        if channel is not None and channel not in run.degraded:
            fail(f"{tag}: degraded={run.degraded} does not name {channel!r}")

    for run in runs_by_plan.get("flaky-llm", []):
        if run.retries == 0:
            fail(f"flaky-llm/{run.scenario}: no retries surfaced in metrics")
        if run.degraded:
            fail(f"flaky-llm/{run.scenario}: recovery should be transparent, got {run.degraded}")
    for run in runs_by_plan.get("describe-outage", []):
        if run.circuit_trips == 0:
            fail(f"describe-outage/{run.scenario}: breaker never tripped")
        if not any(ch.startswith("fragment:") for ch in run.degraded):
            fail(f"describe-outage/{run.scenario}: no dropped fragment recorded")
    for run in runs_by_plan.get("garbled-trace", []):
        if run.parse_skipped == 0:
            fail(f"garbled-trace/{run.scenario}: lenient parser skipped nothing")

    if not failures:
        for run in report.runs:
            deg = ",".join(run.degraded[:2]) + ("…" if len(run.degraded) > 2 else "")
            print(
                f"ok   {run.plan}/{run.scenario}: f1={run.f1:.3f} "
                f"degraded=[{deg}] retries={run.retries} trips={run.circuit_trips}"
            )
    return failures


def check_cross_process(report: ChaosReport, seed: int) -> list[str]:
    """A fresh interpreter must reproduce the report digest byte-for-byte."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "--seed", str(seed), "--digest"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        line = f"subprocess chaos run failed: {proc.stderr.strip()[-300:]}"
        print(f"FAIL {line}", file=sys.stderr)
        return [line]
    child_digest = proc.stdout.strip().splitlines()[-1]
    if child_digest != report.digest:
        line = f"cross-process digest mismatch: {child_digest} != {report.digest}"
        print(f"FAIL {line}", file=sys.stderr)
        return [line]
    print(f"ok   cross-process digest reproduces: {report.digest}")
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="CHAOS_report.json")
    parser.add_argument(
        "--skip-subprocess",
        action="store_true",
        help="skip the cross-process reproducibility check (fast local runs)",
    )
    args = parser.parse_args(argv)

    report = run_chaos(seed=args.seed)
    failures = check_report(report)
    if not args.skip_subprocess:
        failures += check_cross_process(report, seed=args.seed)

    payload = report.as_dict()
    payload["digest"] = report.digest
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if failures:
        print(f"{len(failures)} chaos check(s) failed", file=sys.stderr)
        return 1
    print(
        f"chaos gate green: {len(report.plans)} plans x "
        f"{len(DEFAULT_CHAOS_SCENARIOS)} scenarios, all crash-free, "
        f"floors hold, digest {report.digest[:12]} reproducible"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
