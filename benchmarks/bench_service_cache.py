"""S1 — Service-layer wins: shared RAG index memo + per-trace result cache.

Two production-scale claims the `DiagnosisService` facade makes:

1. constructing many agents/services reuses ONE memoized default RAG
   index (the corpus embed used to be rebuilt per agent);
2. re-diagnosing unchanged traces is served from the content-addressed
   cache — zero LLM calls, orders of magnitude faster.
"""

from __future__ import annotations

import time

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.service import DiagnosisService
from repro.rag.index import build_default_index, clear_default_index_cache, default_index_builds


def test_index_memo_across_constructions(benchmark):
    def run():
        clear_default_index_cache()
        t0 = time.perf_counter()
        build_default_index(0)
        cold = time.perf_counter() - t0
        builds_after_cold = default_index_builds()
        t0 = time.perf_counter()
        for _ in range(20):
            IOAgent(IOAgentConfig(seed=0))
        warm20 = time.perf_counter() - t0
        return cold, warm20, default_index_builds() - builds_after_cold

    cold, warm20, extra_builds = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"cold index build: {cold * 1e3:8.1f} ms")
    print(f"20 agent constructions after: {warm20 * 1e3:8.1f} ms ({extra_builds} index rebuilds)")
    assert extra_builds == 0  # every construction shared the memoized index
    assert warm20 < 20 * cold  # constructions no longer pay the embed cost


def test_trace_cache_speedup(benchmark, bench_suite):
    trace = bench_suite.get("sb01-small-writes")

    def run():
        service = DiagnosisService(config=IOAgentConfig(seed=0))
        t0 = time.perf_counter()
        service.diagnose(trace.log, trace_id=trace.trace_id)
        miss = time.perf_counter() - t0
        calls_after_miss = service.usage().calls
        t0 = time.perf_counter()
        service.diagnose(trace.log, trace_id=trace.trace_id)
        hit = time.perf_counter() - t0
        return miss, hit, service.usage().calls - calls_after_miss, service.cache_hits

    miss, hit, extra_calls, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"cache miss: {miss * 1e3:8.1f} ms   cache hit: {hit * 1e6:8.1f} µs")
    assert hits == 1
    assert extra_calls == 0  # the hit made no LLM calls
    assert hit < miss / 10
