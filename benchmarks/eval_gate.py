"""CI evaluation gate: exact grounding of the counter-invisible tiers.

Three jobs in one script, matching the ``evaluation-gate`` CI job:

1. **Exact-grounding sweep** — every scenario whose ground truth lives
   beyond the counters (the PR 3 temporal tier path13-17 + path04, and
   the PR 5 server-attribution tier path18-21) must ground *exactly*:
   the expert rules over counter facts + DXT temporal facts recover
   ``detected == labels``, no more, no less.  Any drift — a lost fact, a
   threshold regression, an over-firing rule — fails the job.
2. **Series-inflection sweep** — every registered series scenario must
   ground exactly in the longitudinal channel: the detected inflection
   run equals the declared one (``None`` for controls), and
   ``trend_regression`` plus the issues the rules detect at the
   inflection beyond the base runs equals the series' declared root
   causes.
3. **Table IV artifact** — renders the full Table IV plus the
   per-difficulty split over the hard + control tiers and writes them to
   ``--table-out``, uploaded per SHA so every commit's evaluation surface
   is one click away.

Run locally::

    PYTHONPATH=src python benchmarks/eval_gate.py --table-out TABLE4_hard.txt
"""

from __future__ import annotations

import argparse
import sys

from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.dxt import dxt_temporal_facts
from repro.evaluation.harness import evaluate_scenarios
from repro.evaluation.tables import render_table4, render_table4_difficulty
from repro.llm.reasoning import infer_findings
from repro.regression import build_baseline, find_inflection, profile_trace
from repro.workloads.scenarios import build_scenario, build_series, iter_series_scenarios

# The counter-invisible sweep: temporal tier (PR 3) + attribution tier (PR 5).
SWEEP = (
    "path04-straggler-rank",
    "path13-straggler-compute",
    "path14-lock-convoy",
    "path15-bursty-interference",
    "path16-slow-ost-hotspot",
    "path17-producer-consumer",
    "path18-hot-ost",
    "path19-mds-vs-oss",
    "path20-rebalanced-stripe",
    "path21-multi-ost-degradation",
)


def detected_issues(trace) -> set[str]:
    """Issue keys the expert rules recover from both evidence channels."""
    facts = app_context_facts(trace.log)
    for fragment in extract_fragments(trace.log):
        facts.extend(fragment.facts)
    facts.extend(dxt_temporal_facts(trace.log.dxt_segments or []))
    return {f.issue_key for f in infer_findings(facts)}


def run_sweep(seed: int = 0) -> list[str]:
    """Exact-grounding check; returns human-readable failure lines."""
    failures = []
    for name in SWEEP:
        trace = build_scenario(name, seed=seed)
        detected = detected_issues(trace)
        labels = set(trace.labels)
        if detected != labels:
            missing = sorted(labels - detected)
            extra = sorted(detected - labels)
            failures.append(f"{name}: missing={missing} extra={extra}")
            print(f"FAIL {name}: missing={missing} extra={extra}", file=sys.stderr)
        else:
            print(f"ok   {name}: {sorted(labels)}")
    return failures


def run_series_sweep(seed: int = 0) -> list[str]:
    """Series-inflection grounding check; returns failure lines.

    A series passes when (a) the drift engine's first threshold crossing
    lands exactly on the declared inflection run (and a control never
    crosses), and (b) ``trend_regression`` plus whatever issues the
    expert rules detect at the inflection run *beyond* the base runs
    equals the series' declared root causes.
    """
    failures = []
    for series in iter_series_scenarios():
        traces = build_series(series, seed=seed)
        profiles = [profile_trace(t.log, t.trace_id) for t in traces]
        baseline = build_baseline(profiles[: series.baseline_runs])
        inflection = find_inflection(profiles, baseline)
        detected_run = None if inflection is None else inflection.run_index
        if detected_run != series.inflection_run:
            failures.append(
                f"{series.name}: inflection {detected_run} != declared {series.inflection_run}"
            )
            print(f"FAIL {failures[-1]}", file=sys.stderr)
            continue
        if inflection is None:
            if series.root_causes:
                failures.append(f"{series.name}: steady series but declared root causes")
                print(f"FAIL {failures[-1]}", file=sys.stderr)
            else:
                print(f"ok   {series.name}: steady (no inflection)")
            continue
        injected = {"trend_regression"} | (
            detected_issues(traces[inflection.run_index]) - detected_issues(traces[0])
        )
        labels = set(series.root_causes)
        if injected != labels:
            missing = sorted(labels - injected)
            extra = sorted(injected - labels)
            failures.append(f"{series.name}: missing={missing} extra={extra}")
            print(f"FAIL {failures[-1]}", file=sys.stderr)
        else:
            print(
                f"ok   {series.name}: inflection at run {detected_run}, {sorted(labels)}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--table-out", default="TABLE4_hard.txt")
    parser.add_argument(
        "--selectors",
        nargs="*",
        default=["hard", "control"],
        help="scenario selectors for the rendered Table IV artifact",
    )
    args = parser.parse_args(argv)

    failures = run_sweep(seed=args.seed)
    failures += run_series_sweep(seed=args.seed)

    result = evaluate_scenarios(args.selectors, seed=args.seed)
    rendered = render_table4(result) + "\n\n" + render_table4_difficulty(result)
    with open(args.table_out, "w", encoding="utf-8") as fh:
        fh.write(rendered + "\n")
    print(f"wrote {args.table_out}")

    if failures:
        print(f"{len(failures)} scenario(s) lost exact grounding", file=sys.stderr)
        return 1
    n_series = len(iter_series_scenarios())
    print(
        f"all {len(SWEEP)} counter-invisible scenarios and "
        f"{n_series} series scenarios ground exactly"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
