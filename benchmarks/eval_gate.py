"""CI evaluation gate: exact grounding of the counter-invisible tiers.

Four jobs in one script, matching the ``evaluation-gate`` CI job:

1. **Exact-grounding sweep** — every scenario whose ground truth lives
   beyond the counters (the PR 3 temporal tier path13-17 + path04, and
   the PR 5 server-attribution tier path18-21) must ground *exactly*:
   the expert rules over counter facts + DXT temporal facts recover
   ``detected == labels``, no more, no less.  Any drift — a lost fact, a
   threshold regression, an over-firing rule — fails the job.
2. **Series-inflection sweep** — every registered series scenario must
   ground exactly in the longitudinal channel: the detected inflection
   run equals the declared one (``None`` for controls), and
   ``trend_regression`` plus the issues the rules detect at the
   inflection beyond the base runs equals the series' declared root
   causes.
3. **Pinned-seed fuzz sweep** — every registered generated composition
   (the ``fuzz-composition`` tier) must keep its derived labels
   recoverable: per-pathology recall over the generated tier must meet
   or beat the curated pathology tier's recall for the same issue key.
   Each adversarial pair must *demonstrably* mask its rules — the bare
   twin detects the masked keys, the masked twin does not — asserting
   the documented known gap stays exactly as documented.  The rendered
   per-pathology confusion matrix plus the known-gap list is written to
   ``--fuzz-out``, uploaded per SHA (``--fuzz-only`` runs just this
   sweep, as the ``fuzz-smoke`` CI step does).
4. **Table IV artifact** — renders the full Table IV plus the
   per-difficulty split over the hard + control tiers and writes them to
   ``--table-out``, uploaded per SHA so every commit's evaluation surface
   is one click away.

Run locally::

    PYTHONPATH=src python benchmarks/eval_gate.py --table-out TABLE4_hard.txt
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation.confusion import ConfusionMatrix
from repro.evaluation.detector import detected_issues
from repro.evaluation.harness import evaluate_scenarios
from repro.evaluation.tables import render_table4, render_table4_difficulty
from repro.regression import build_baseline, find_inflection, profile_trace
from repro.workloads.fuzz import ADVERSARIAL_PAIRS
from repro.workloads.scenarios import (
    build_scenario,
    build_series,
    iter_series_scenarios,
    select_scenarios,
)

# The counter-invisible sweep: temporal tier (PR 3) + attribution tier (PR 5).
SWEEP = (
    "path04-straggler-rank",
    "path13-straggler-compute",
    "path14-lock-convoy",
    "path15-bursty-interference",
    "path16-slow-ost-hotspot",
    "path17-producer-consumer",
    "path18-hot-ost",
    "path19-mds-vs-oss",
    "path20-rebalanced-stripe",
    "path21-multi-ost-degradation",
)


def run_sweep(seed: int = 0) -> list[str]:
    """Exact-grounding check; returns human-readable failure lines."""
    failures = []
    for name in SWEEP:
        trace = build_scenario(name, seed=seed)
        detected = detected_issues(trace.log)
        labels = set(trace.labels)
        if detected != labels:
            missing = sorted(labels - detected)
            extra = sorted(detected - labels)
            failures.append(f"{name}: missing={missing} extra={extra}")
            print(f"FAIL {name}: missing={missing} extra={extra}", file=sys.stderr)
        else:
            print(f"ok   {name}: {sorted(labels)}")
    return failures


def run_series_sweep(seed: int = 0) -> list[str]:
    """Series-inflection grounding check; returns failure lines.

    A series passes when (a) the drift engine's first threshold crossing
    lands exactly on the declared inflection run (and a control never
    crosses), and (b) ``trend_regression`` plus whatever issues the
    expert rules detect at the inflection run *beyond* the base runs
    equals the series' declared root causes.
    """
    failures = []
    for series in iter_series_scenarios():
        traces = build_series(series, seed=seed)
        profiles = [profile_trace(t.log, t.trace_id) for t in traces]
        baseline = build_baseline(profiles[: series.baseline_runs])
        inflection = find_inflection(profiles, baseline)
        detected_run = None if inflection is None else inflection.run_index
        if detected_run != series.inflection_run:
            failures.append(
                f"{series.name}: inflection {detected_run} != declared {series.inflection_run}"
            )
            print(f"FAIL {failures[-1]}", file=sys.stderr)
            continue
        if inflection is None:
            if series.root_causes:
                failures.append(f"{series.name}: steady series but declared root causes")
                print(f"FAIL {failures[-1]}", file=sys.stderr)
            else:
                print(f"ok   {series.name}: steady (no inflection)")
            continue
        injected = {"trend_regression"} | (
            detected_issues(traces[inflection.run_index].log) - detected_issues(traces[0].log)
        )
        labels = set(series.root_causes)
        if injected != labels:
            missing = sorted(labels - injected)
            extra = sorted(injected - labels)
            failures.append(f"{series.name}: missing={missing} extra={extra}")
            print(f"FAIL {failures[-1]}", file=sys.stderr)
        else:
            print(
                f"ok   {series.name}: inflection at run {detected_run}, {sorted(labels)}"
            )
    return failures


def run_fuzz_sweep(seed: int = 0, out: str = "FUZZ_confusion.txt") -> list[str]:
    """Pinned-seed fuzz sweep: recall floor + adversarial known-gap check.

    The generated compositions (``fuzz-composition`` tag) must keep every
    derived label recoverable — per-pathology recall at or above the
    curated pathology tier's recall for the same issue key.  The
    adversarial twins are excluded from the recall floor on purpose:
    their masked halves *are* the documented gap, and this sweep asserts
    the gap behaves exactly as documented (detected bare, masked when
    diluted).  Writes the rendered confusion matrix + known-gap list to
    ``out``.
    """
    failures = []
    curated_pairs = []
    for scenario in select_scenarios(["pathology"]):
        trace = build_scenario(scenario, seed=seed)
        curated_pairs.append((detected_issues(trace.log), set(trace.labels)))
    curated = ConfusionMatrix.from_pairs(curated_pairs)

    fuzz_pairs = []
    labeled_keys: set[str] = set()
    for scenario in select_scenarios(["fuzz-composition"]):
        trace = build_scenario(scenario, seed=seed)
        detected = detected_issues(trace.log)
        labels = set(trace.labels)
        fuzz_pairs.append((detected, labels))
        labeled_keys |= labels
        missing = sorted(labels - detected)
        if missing:
            failures.append(f"{scenario.name}: labels not recovered: {missing}")
            print(f"FAIL {failures[-1]}", file=sys.stderr)
        else:
            print(f"ok   {scenario.name}: {sorted(labels)}")
    confusion = ConfusionMatrix.from_pairs(fuzz_pairs)
    for key in sorted(labeled_keys):
        if confusion.recall_for(key) < curated.recall_for(key):
            failures.append(
                f"recall({key}): fuzz {confusion.recall_for(key):.2f} < "
                f"curated {curated.recall_for(key):.2f}"
            )
            print(f"FAIL {failures[-1]}", file=sys.stderr)

    gap_lines = []
    adversarial = {s.name: s for s in select_scenarios(["fuzz-adversarial"])}
    for pair in ADVERSARIAL_PAIRS:
        bare = build_scenario(adversarial[pair.bare_name], seed=seed)
        masked = build_scenario(adversarial[pair.masked_name], seed=seed)
        bare_detected = detected_issues(bare.log)
        masked_detected = detected_issues(masked.log)
        if not pair.masked_keys <= bare_detected:
            failures.append(
                f"{pair.name}: bare twin no longer detects "
                f"{sorted(pair.masked_keys - bare_detected)}"
            )
            print(f"FAIL {failures[-1]}", file=sys.stderr)
            continue
        leaked = pair.masked_keys & masked_detected
        if leaked:
            failures.append(
                f"{pair.name}: mask broken — {sorted(leaked)} still detected in the masked twin"
            )
            print(f"FAIL {failures[-1]}", file=sys.stderr)
            continue
        gap_lines.append(
            f"{pair.name}: masks {', '.join(sorted(pair.masked_keys))} — {pair.description}"
        )
        print(f"ok   {pair.name}: known gap holds ({', '.join(sorted(pair.masked_keys))} masked)")
    if not gap_lines:
        failures.append("no adversarial pair demonstrably masks a rule")
        print(f"FAIL {failures[-1]}", file=sys.stderr)

    text = confusion.render("Fuzz sweep confusion (expert rules, pinned seed)")
    text += "\n\nKnown gaps (adversarial masking, asserted by the gate):\n"
    text += "".join(f"  - {line}\n" for line in gap_lines)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {out}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--table-out", default="TABLE4_hard.txt")
    parser.add_argument("--fuzz-out", default="FUZZ_confusion.txt")
    parser.add_argument(
        "--fuzz-only",
        action="store_true",
        help="run only the pinned-seed fuzz sweep (the fuzz-smoke CI step)",
    )
    parser.add_argument(
        "--selectors",
        nargs="*",
        default=["hard", "control"],
        help="scenario selectors for the rendered Table IV artifact",
    )
    args = parser.parse_args(argv)

    if args.fuzz_only:
        failures = run_fuzz_sweep(seed=args.seed, out=args.fuzz_out)
        if failures:
            print(f"{len(failures)} fuzz check(s) failed", file=sys.stderr)
            return 1
        print("fuzz sweep: all labels recoverable, all adversarial gaps hold")
        return 0

    failures = run_sweep(seed=args.seed)
    failures += run_series_sweep(seed=args.seed)
    failures += run_fuzz_sweep(seed=args.seed, out=args.fuzz_out)

    result = evaluate_scenarios(args.selectors, seed=args.seed)
    rendered = render_table4(result) + "\n\n" + render_table4_difficulty(result)
    with open(args.table_out, "w", encoding="utf-8") as fh:
        fh.write(rendered + "\n")
    print(f"wrote {args.table_out}")

    if failures:
        print(f"{len(failures)} scenario(s) lost exact grounding", file=sys.stderr)
        return 1
    n_series = len(iter_series_scenarios())
    print(
        f"all {len(SWEEP)} counter-invisible scenarios and "
        f"{n_series} series scenarios ground exactly"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
