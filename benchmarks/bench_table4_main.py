"""E5 — Regenerate paper Table IV: the main evaluation.

Runs all four tools (Drishti, ION-gpt-4o, IOAgent-gpt-4o,
IOAgent-llama-3.1-70B) over the full TraceBench and scores them on
accuracy / utility / interpretability with the gpt-4o judge protocol
(anonymization + rotations, 4 permutations, Eq. 1-2 normalization).

Expected shape (paper): IOAgent-gpt-4o best overall (~0.63), then
IOAgent-llama (~0.55), Drishti (~0.45), ION (~0.38); per-cell normalized
scores sum to ~2.0.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import evaluate_tools
from repro.evaluation.tables import render_table4


def test_table4_main(benchmark, bench_suite):
    result = benchmark.pedantic(
        lambda: evaluate_tools(bench_suite), rounds=1, iterations=1
    )
    print()
    print(render_table4(result))

    table = result.table4()
    avg = table["average"]["Overall"]
    # The paper's headline orderings.
    assert avg["ioagent-gpt-4o"] > avg["drishti"]
    assert avg["ioagent-gpt-4o"] > avg["ion"]
    assert avg["ioagent-llama-3.1-70b"] > avg["drishti"]  # model-agnosticism
    assert avg["ioagent-llama-3.1-70b"] > avg["ion"]
    assert avg["drishti"] > avg["ion"]
    acc = table["accuracy"]["Overall"]
    assert acc["ioagent-gpt-4o"] > acc["ioagent-llama-3.1-70b"]
    # Rank-based scoring invariant: each cell's scores sum to 2.0.
    for criterion, cols in table.items():
        for col, scores in cols.items():
            assert sum(scores.values()) == pytest.approx(2.0, abs=0.05)
