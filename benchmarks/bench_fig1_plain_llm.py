"""E1 — Regenerate paper Fig. 1: plain-LLM diagnosis of the AMReX trace.

gpt-4 produces an analysis *plan* instead of a diagnosis; gpt-4o produces
concrete findings but (a) misses the POSIX-instead-of-MPI-IO issue whose
evidence sits in the truncated middle of the trace text, and (b) asserts
the "1 MiB stripe size is optimal" misconception.
"""

from __future__ import annotations

from repro.baselines.ion import IONTool
from repro.evaluation.accuracy import issue_assertions
from repro.llm.client import LLMClient
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS


def test_fig1_plain_llm_diagnosis(benchmark):
    spec = next(s for s in TRACE_SPECS if s.trace_id == "ra01-amrex")
    trace = build_trace(spec, seed=0)
    client = LLMClient(seed=0)

    def run_both():
        gpt4 = IONTool(client=client, model="gpt-4").diagnose(trace.log, trace.trace_id).text
        gpt4o = IONTool(client=client, model="gpt-4o").diagnose(trace.log, trace.trace_id).text
        return gpt4, gpt4o

    gpt4_text, gpt4o_text = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print("=" * 30, "gpt-4 (plain prompt)", "=" * 30)
    print(gpt4_text[:900])
    print()
    print("=" * 30, "gpt-4o (plain prompt)", "=" * 30)
    print(gpt4o_text[:1600])

    # gpt-4: a plan, not a diagnosis (Fig. 1 left).
    assert "### Finding" not in gpt4_text
    assert issue_assertions(gpt4_text) == set()
    # gpt-4o: concrete findings (Fig. 1 right) ...
    asserted = issue_assertions(gpt4o_text)
    assert asserted, "gpt-4o should produce concrete diagnoses"
    labels = set(trace.labels)
    # ... but not all labeled issues are found by direct prompting.
    assert labels - asserted, "plain prompting should miss part of the ground truth"
