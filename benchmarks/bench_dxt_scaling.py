"""DXT segment-count scaling: columnar ingest + vectorized extraction.

The temporal evidence channel only stays "as fast as the hardware
allows" if its cost is flat in segment count — Darshan leaves DXT off by
default precisely because per-operation tracing is expensive.  This
benchmark measures, at 10k / 100k / 1M segments:

* **ingest** — ``DxtCollector.on_op`` into the chunked columnar buffers
  plus the final table build;
* **vectorized extraction** — ``dxt_temporal_facts`` over the
  :class:`~repro.darshan.segtable.SegmentTable` (the production path);
* **scalar extraction** — the PR 3 per-object reference sweeps
  (:mod:`repro.darshan.dxt_reference`) over the materialized
  ``list[DxtSegment]`` (the old production path, now the baseline).

It emits ``BENCH_dxt_scaling.json`` recording throughputs and the
vectorized-over-scalar speedup per size (target: >= 10x at 1M segments),
and can gate CI against a checked-in baseline::

    PYTHONPATH=src python benchmarks/bench_dxt_scaling.py \
        --tier small --out BENCH_dxt_scaling.json \
        --baseline benchmarks/BENCH_dxt_scaling.json --max-regression 2.0

The run doubles as a correctness check: at every size the vectorized
facts are compared against the scalar reference before timings are
reported.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.darshan.dxt import DxtCollector, dxt_temporal_facts
from repro.darshan.dxt_reference import scalar_temporal_facts
from repro.darshan.segtable import NO_OST, group_bounds
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind

TIERS = {
    "small": (10_000, 100_000),
    "full": (10_000, 100_000, 1_000_000),
}
TARGET_SPEEDUP_1M = 10.0

# PR 4 extraction times (double event lexsort, before the PR 5 shared
# event sort), kept so BENCH_dxt_scaling.json records the before/after
# of the ROADMAP-flagged optimization alongside the live numbers.
PR4_DOUBLE_LEXSORT_EXTRACT_S = {10_000: 0.008739, 100_000: 0.071868, 1_000_000: 0.815921}

_API_OF = {"X_POSIX": API.POSIX, "X_MPIIO": API.MPIIO}


def synthesize_ops(n: int, seed: int = 0, n_ranks: int = 64) -> list[tuple[IOOp, float, float]]:
    """A realistic dense op stream exercising every temporal kernel.

    Each rank issues its operations sequentially (back-to-back with small
    think gaps, occasionally a longer compute pause), the way real
    application streams look — 64 ranks, 32 files, a read/write mix, and
    MPIIO->POSIX lowering on a few shared files.  Dense per-rank streams
    keep the scalar reference on its intended workload shape (few merged
    busy windows), so the measured speedup reflects per-object overhead,
    not a pathological corner of the old implementation.
    """
    rng = np.random.default_rng(seed)
    rank = rng.integers(0, n_ranks, n)
    path_idx = rng.integers(0, 32, n)
    is_read = rng.random(n) < 0.3
    length = rng.integers(4096, 1 << 20, n)
    offset = rng.integers(0, 1 << 30, n)
    duration = length / 2.0e8 * rng.uniform(0.5, 2.0, n)
    gap = np.where(rng.random(n) < 0.02, rng.exponential(0.05, n), rng.exponential(2e-4, n))
    mpiio = (path_idx < 4) & (rng.random(n) < 0.5)
    paths = [f"/scratch/bench/f{i:04d}" for i in range(32)]

    # Per-rank sequential clocks: grouped cumulative sum of gap + duration.
    _, inverse = np.unique(rank, return_inverse=True)
    inverse = inverse.ravel()
    order, firsts, counts = group_bounds(inverse)
    step_sorted = (gap + duration)[order]
    cumulative = np.cumsum(step_sorted)
    group_base = np.repeat(cumulative[firsts] - step_sorted[firsts], counts)
    end_sorted = cumulative - group_base
    end = np.empty(n)
    end[order] = end_sorted
    start = end - duration

    ops = []
    for i in range(n):
        module = "X_MPIIO" if mpiio[i] else "X_POSIX"
        ops.append(
            (
                IOOp(
                    kind=OpKind.READ if is_read[i] else OpKind.WRITE,
                    api=_API_OF[module],
                    rank=int(rank[i]),
                    path=paths[int(path_idx[i])],
                    offset=int(offset[i]),
                    size=int(length[i]),
                ),
                float(start[i]),
                float(end[i]),
            )
        )
    return ops


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _facts_match(vec_facts, ref_facts) -> bool:
    vec = {f.kind: f.data for f in vec_facts}
    ref = {f.kind: f.data for f in ref_facts}
    if vec.keys() != ref.keys():
        return False
    for kind, ref_data in ref.items():
        for field, expected in ref_data.items():
            got = vec[kind][field]
            if isinstance(expected, float):
                if not np.isclose(got, expected, rtol=1e-6, atol=1e-9):
                    return False
            elif got != expected:
                return False
    return True


def run_size(n: int, seed: int = 0, repeats: int = 3) -> dict:
    ops = synthesize_ops(n, seed=seed)

    # Ingest stamps every segment with its serving OST, as run_workload
    # does: the attribution lookup is part of the measured collector cost.
    fs = LustreFileSystem(num_osts=16, default_stripe_width=4, seed=seed)
    collector = DxtCollector(max_segments=n)
    t0 = time.perf_counter()
    on_op = collector.on_op
    for op, t_start, t_end in ops:
        on_op(op, t_start, t_end, fs)
    table = collector.segments  # includes the chunk concatenation
    ingest_s = time.perf_counter() - t0
    del ops

    vectorized_s, vec_facts = _best_of(lambda: dxt_temporal_facts(table), repeats)
    # The per-OST channel's own cost: extraction over the same timeline
    # without the ost column isolates the new server-attribution kernels.
    bare = table.without_ost()
    no_ost_s, _ = _best_of(lambda: dxt_temporal_facts(bare), repeats)
    segments = list(table)  # materialization not charged to the scalar path
    scalar_repeats = 1 if n >= 1_000_000 else repeats
    scalar_s, ref_facts = _best_of(lambda: scalar_temporal_facts(segments), scalar_repeats)

    if not _facts_match(vec_facts, ref_facts):
        raise SystemExit(f"vectorized facts diverge from the scalar reference at n={n}")

    n_osts = int(np.unique(table.ost[table.ost != NO_OST]).size)
    return {
        "n_segments": n,
        "ingest_s": round(ingest_s, 6),
        "ingest_ops_per_s": round(n / ingest_s, 1),
        "vectorized_extract_s": round(vectorized_s, 6),
        "scalar_extract_s": round(scalar_s, 6),
        "speedup": round(scalar_s / vectorized_s, 2),
        "extract_throughput_seg_per_s": round(n / vectorized_s, 1),
        "n_attributed_osts": n_osts,
        "extract_no_ost_s": round(no_ost_s, 6),
        "ost_kernel_overhead_s": round(max(0.0, vectorized_s - no_ost_s), 6),
    }


def check_baseline(results: list[dict], baseline: dict, max_regression: float) -> list[str]:
    """Flag sizes whose extraction performance regressed past the factor.

    The gate compares the vectorized-over-scalar *speedup*, not absolute
    throughput: the scalar reference runs on the same machine in the same
    job, so the ratio is hardware-independent and the gate cannot fail
    just because a shared CI runner is slower than the baseline host.
    Absolute throughputs stay in the JSON for trajectory tracking.
    """
    by_size = {r["n_segments"]: r for r in baseline.get("results", [])}
    failures = []
    for row in results:
        base = by_size.get(row["n_segments"])
        if base is None:
            continue
        if base["speedup"] / row["speedup"] > max_regression:
            failures.append(
                f"n={row['n_segments']}: {row['speedup']:.1f}x speedup vs baseline "
                f"{base['speedup']:.1f}x (> {max_regression}x regression)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tier", choices=sorted(TIERS), default="full")
    parser.add_argument("--sizes", type=int, nargs="*", help="override the tier's sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_dxt_scaling.json")
    parser.add_argument("--baseline", help="checked-in baseline JSON to gate against")
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else TIERS[args.tier]
    results = []
    print(f"{'segments':>10s} {'ingest':>10s} {'vectorized':>11s} {'scalar':>10s} {'speedup':>8s}")
    for n in sizes:
        row = run_size(n, seed=args.seed)
        results.append(row)
        print(
            f"{row['n_segments']:>10d} {row['ingest_s']:>9.3f}s "
            f"{row['vectorized_extract_s']:>10.3f}s {row['scalar_extract_s']:>9.3f}s "
            f"{row['speedup']:>7.1f}x"
        )

    payload = {
        "benchmark": "dxt_scaling",
        "tier": args.tier if not args.sizes else "custom",
        "seed": args.seed,
        "target_speedup_at_1m": TARGET_SPEEDUP_1M,
        # Before/after of the shared event sort (one stable argsort feeds
        # both the concurrency and idle kernels; PR 4 lexsorted twice).
        # "after" is the no-ost extraction — the same fact set PR 4
        # computed — so the comparison isolates the sort change; the full
        # extraction including the per-OST kernels is in the result rows.
        "event_sort": {
            "shared": True,
            "before_extract_s": {
                str(n): s
                for n, s in PR4_DOUBLE_LEXSORT_EXTRACT_S.items()
                if any(r["n_segments"] == n for r in results)
            },
            "after_extract_s": {
                str(r["n_segments"]): r["extract_no_ost_s"] for r in results
            },
        },
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    status = 0
    for row in results:
        if row["n_segments"] >= 1_000_000 and row["speedup"] < TARGET_SPEEDUP_1M:
            print(
                f"FAIL: speedup {row['speedup']}x at {row['n_segments']} segments "
                f"is below the {TARGET_SPEEDUP_1M}x target",
                file=sys.stderr,
            )
            status = 1
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            failures = check_baseline(results, json.load(fh), args.max_regression)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
            status = 1
        if not failures:
            print(f"speedup within {args.max_regression}x of {args.baseline}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
