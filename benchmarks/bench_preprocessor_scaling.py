"""P1 — Pre-processor scaling: why module summaries beat raw prompting.

Sweeps trace size and reports the raw darshan-parser token count versus
the token count of IOAgent's summary fragments: raw text grows linearly
with file count and overflows every model's window, while the fragment
representation stays bounded — the §IV-A claim.
"""

from __future__ import annotations

from repro.core.describe import context_sentences
from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.writer import render_darshan_text
from repro.llm.facts import render_fact
from repro.llm.models import get_model
from repro.llm.tokenizer import approx_tokens
from repro.workloads.base import Workload
from repro.workloads.patterns import metadata_phase


def _storm(n_files: int) -> Workload:
    return Workload(
        name=f"storm-{n_files}",
        exe="/bin/storm",
        nprocs=4,
        jobid=900 + n_files,
        phases=(metadata_phase("/scratch/storm", files_per_rank=n_files),),
    )


def test_preprocessor_scaling(benchmark):
    def run():
        rows = []
        for files_per_rank in (10, 100, 400, 1000):
            log, _ = _storm(files_per_rank).run(seed=0)
            raw_tokens = approx_tokens(render_darshan_text(log))
            fragments = extract_fragments(log)
            summary_tokens = approx_tokens(
                context_sentences(app_context_facts(log))
                + " ".join(render_fact(f) for frag in fragments for f in frag.facts)
            )
            rows.append((files_per_rank * 4, raw_tokens, summary_tokens))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    window = get_model("gpt-4o").context_tokens
    print()
    print(f"{'files':>8s} {'raw tokens':>12s} {'summary tokens':>15s} {'gpt-4o window':>14s}")
    for files, raw, summary in rows:
        print(f"{files:>8d} {raw:>12d} {summary:>15d} {window:>14d}")

    # Raw grows ~linearly with files; the summary stays bounded.
    assert rows[-1][1] > rows[0][1] * 20
    assert rows[-1][2] < 3 * rows[0][2]
    assert rows[-1][1] > window  # raw overflows the model window
    assert all(summary < window // 4 for _, _, summary in rows)  # summaries always fit
