"""E7 — Regenerate paper Fig. 6: pairwise tree merge vs 1-step merge.

Four diagnosis summaries (Size, Request Count, Metadata, Request Order)
merged by the weaker llama-3-70b model: the 1-step merge loses
mid-positioned findings and their reference sources, while the tree merge
retains every distinct finding.
"""

from __future__ import annotations

from repro.core.merge import one_step_merge, tree_merge
from repro.llm.client import LLMClient
from repro.llm.findings import Finding, parse_findings, render_findings

_SUMMARIES = {
    "Size": Finding(
        issue_key="small_write",
        evidence="Median write request of 8 KiB across 24000 requests.",
        assessment="Small transfers leave bandwidth unused.",
        recommendation="Aggregate writes to at least 1 MiB.",
        references=('[S01] Nguyen, "Request Aggregation for Small I/O"',),
    ),
    "Request Count": Finding(
        issue_key="no_collective_write",
        evidence="24000 independent MPI-IO writes, zero collective.",
        assessment="Independent operations bypass collective buffering.",
        recommendation="Use MPI_File_write_all (higher-level parallel I/O library).",
        references=('[S30] Costa, "Two-Phase Collective I/O in Practice"',),
    ),
    "Metadata": Finding(
        issue_key="high_metadata_load",
        evidence="4800 metadata operations at 41% of I/O time.",
        assessment="The metadata server serializes creates.",
        recommendation="Batch file creation; keep files open.",
        references=('[S22] Kim, "Metadata Scalability in Many-File Workloads"',),
    ),
    "Request Order": Finding(
        issue_key="random_write",
        evidence="Only 52% of writes are sequential; stride of 393216 bytes.",
        assessment="Non-sequential patterns defeat prefetching.",
        recommendation="Sort work items by offset before writing.",
        references=('[S12] Rossi, "Sequentializing Access Patterns"',),
    ),
}


def test_fig6_tree_vs_one_step(benchmark):
    client = LLMClient(seed=0)
    summaries = [render_findings([f]) for f in _SUMMARIES.values()]

    def merge_both():
        tree = tree_merge(summaries, client, "llama-3-70b", call_id_prefix="fig6-tree")
        one = one_step_merge(summaries, client, "llama-3-70b", call_id_prefix="fig6-one")
        return tree, one

    tree_text, one_text = benchmark.pedantic(merge_both, rounds=1, iterations=1)
    tree_keys = {f.issue_key for f in parse_findings(tree_text)}
    one_keys = {f.issue_key for f in parse_findings(one_text)}
    tree_refs = sum(len(f.references) for f in parse_findings(tree_text))
    one_refs = sum(len(f.references) for f in parse_findings(one_text))
    all_keys = {f.issue_key for f in _SUMMARIES.values()}

    print()
    print(f"input summaries: {sorted(all_keys)}")
    print(f"tree merge kept: {sorted(tree_keys)} ({tree_refs} references)")
    print(f"1-step merge kept: {sorted(one_keys)} ({one_refs} references)")
    print()
    print("---- tree-merged report ----")
    print(tree_text[:1200])

    assert tree_keys == all_keys  # the tree merge keeps every finding
    assert one_keys < all_keys  # the 1-step merge loses mid-positioned content
    assert tree_refs > one_refs  # ... along with its references
