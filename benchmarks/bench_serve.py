"""Serving-layer gate: coalescing, sustained throughput, snapshot identity.

Three claims the :mod:`repro.serve` layer makes, each checked here:

1. **coalescing** — a thundering herd of N concurrent requests for the
   same trace digest costs exactly ONE pipeline run (and one LLM bill);
   every duplicate either attaches to the in-flight run or is served
   from the cache it populated.  This is the hard CI gate: any second
   execution is a regression and fails the job;
2. **sustained throughput** — a mixed workload (distinct scenarios x
   repeats) drains through the bounded queue and worker pool with every
   request answered and every duplicate free;
3. **deterministic telemetry** — two fresh servers driven through the
   identical workload produce byte-identical metrics snapshots (modeled
   latency over seeded SimLLM usage; no wall-clock in the artifact).

Run the CI tier and write the snapshot artifact::

    PYTHONPATH=src python benchmarks/bench_serve.py --tier small \
        --out BENCH_serve_snapshot.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.agent import IOAgentConfig
from repro.core.service import DiagnosisService
from repro.serve import DiagnosisServer
from repro.workloads.scenarios import build_scenario, select_scenarios

TIERS = {
    # (scenario selectors, herd size, repeats per scenario)
    "small": (("sb01-small-writes", "sb03-misaligned-writes"), 8, 3),
    "full": (("simple-bench",), 32, 4),
}


def _build_traces(selectors, seed):
    traces = []
    for scenario in select_scenarios(list(selectors)):
        traces.append(build_scenario(scenario, seed=seed))
    return traces


def run_coalescing(trace, herd: int, seed: int) -> dict:
    """N concurrent identical requests -> exactly one executed run."""
    service = DiagnosisService(config=IOAgentConfig(seed=seed))
    server = DiagnosisServer(service, workers=4, queue_depth=herd)
    t0 = time.perf_counter()
    handles = [server.submit(trace.log, trace_id=f"req-{i}") for i in range(herd)]
    reports = [h.result(timeout=300) for h in handles]
    elapsed = time.perf_counter() - t0
    server.close()
    stats = service.stats()
    assert all(r.text == reports[0].text for r in reports)
    assert [r.trace_id for r in reports] == [f"req-{i}" for i in range(herd)]
    return {
        "herd": herd,
        "executed": server.counters.executed,
        "coalesced": server.counters.coalesced,
        "cache_served": server.counters.cache_served,
        "llm_calls": stats.usage.calls,
        "seconds": round(elapsed, 4),
    }


def run_throughput(traces, repeats: int, seed: int) -> dict:
    """Mixed workload through the deterministic driver; all answered."""
    requests = [
        (trace.log, f"{trace.trace_id}#{i}") for trace in traces for i in range(repeats)
    ]
    server = DiagnosisServer(
        service=DiagnosisService(config=IOAgentConfig(seed=seed)),
        workers=4,
        queue_depth=max(64, len(requests)),
        autostart=False,
    )
    t0 = time.perf_counter()
    reports = server.serve_all(requests)
    elapsed = time.perf_counter() - t0
    server.close()
    assert len(reports) == len(requests)
    assert server.counters.failed == 0
    return {
        "requests": len(requests),
        "distinct": len(traces),
        "executed": server.counters.executed,
        "seconds": round(elapsed, 4),
        "requests_per_s": round(len(requests) / elapsed, 1),
    }


def snapshot_bytes(traces, repeats: int, seed: int) -> bytes:
    """One fresh server's canonical snapshot over the fixed workload."""
    requests = [
        (trace.log, f"{trace.trace_id}#{i}") for trace in traces for i in range(repeats)
    ]
    server = DiagnosisServer(
        service=DiagnosisService(config=IOAgentConfig(seed=seed)),
        workers=4,
        queue_depth=max(64, len(requests)),
        autostart=False,
    )
    server.serve_all(requests)
    server.close()
    return server.metrics_snapshot().to_json().encode("utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tier", choices=sorted(TIERS), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--herd", type=int, default=None, help="override the tier's herd size")
    parser.add_argument(
        "--out", default=None, help="write the deterministic metrics snapshot JSON here"
    )
    args = parser.parse_args(argv)

    selectors, herd, repeats = TIERS[args.tier]
    if args.herd is not None:
        herd = args.herd
    traces = _build_traces(selectors, args.seed)
    status = 0

    coal = run_coalescing(traces[0], herd, args.seed)
    print(
        f"coalescing: herd={coal['herd']} executed={coal['executed']} "
        f"coalesced={coal['coalesced']} cache_served={coal['cache_served']} "
        f"llm_calls={coal['llm_calls']} ({coal['seconds']}s)"
    )
    if coal["executed"] != 1:
        print(
            f"FAIL: {coal['herd']} identical concurrent requests ran the pipeline "
            f"{coal['executed']} times (coalescing regressed; expected exactly 1)",
            file=sys.stderr,
        )
        status = 1
    if coal["coalesced"] + coal["cache_served"] != coal["herd"] - 1:
        print(
            "FAIL: duplicate requests were neither coalesced nor cache-served",
            file=sys.stderr,
        )
        status = 1

    tput = run_throughput(traces, repeats, args.seed)
    print(
        f"throughput: {tput['requests']} requests ({tput['distinct']} distinct) "
        f"in {tput['seconds']}s = {tput['requests_per_s']} req/s, "
        f"executed={tput['executed']}"
    )
    if tput["executed"] != tput["distinct"]:
        print(
            f"FAIL: {tput['distinct']} distinct traces needed {tput['executed']} "
            f"pipeline runs (duplicates were re-executed)",
            file=sys.stderr,
        )
        status = 1

    first = snapshot_bytes(traces, repeats, args.seed)
    second = snapshot_bytes(traces, repeats, args.seed)
    if first != second:
        print("FAIL: metrics snapshots differ across identical runs", file=sys.stderr)
        status = 1
    else:
        print(f"snapshots byte-identical across fresh servers ({len(first)} bytes)")
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(first + b"\n")
        print(f"wrote {args.out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
