"""E4 — Regenerate paper Table III: TraceBench composition.

Builds the full suite and prints the per-source label counts, asserting
they match the paper's numbers exactly (182 issues over 40 traces).
"""

from __future__ import annotations

from repro.evaluation.tables import render_table3
from repro.tracebench import build_tracebench
from repro.tracebench.spec import TABLE3_EXPECTED, table3_counts


def test_table3_composition(benchmark):
    suite = benchmark.pedantic(lambda: build_tracebench(0), rounds=1, iterations=1)
    assert len(suite) == 40
    assert suite.total_labels() == 182
    assert table3_counts() == TABLE3_EXPECTED
    print()
    print(render_table3())
