"""E3 — Regenerate paper Fig. 3: JSON summary fragment → natural language.

The describe step turns the POSIX I/O-size JSON fragment into prose whose
sentences embed the quantities — the representation that aligns with
prose-form domain knowledge for embedding search.
"""

from __future__ import annotations

import json

from repro.core.describe import describe_fragment
from repro.core.summaries import app_context_facts, extract_fragments
from repro.llm.client import LLMClient
from repro.llm.facts import extract_facts
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS


def test_fig3_json_to_natural_language(benchmark):
    spec = next(s for s in TRACE_SPECS if s.trace_id == "io500-14-mpiio-8k-shared")
    trace = build_trace(spec, seed=0)
    client = LLMClient(seed=0)
    fragments = {f.fragment_id: f for f in extract_fragments(trace.log)}
    fragment = fragments["POSIX.io_size"]
    app = app_context_facts(trace.log)

    description = benchmark.pedantic(
        lambda: describe_fragment(fragment, app, client, "gpt-4o", call_id="fig3"),
        rounds=1,
        iterations=1,
    )

    print()
    print("---- JSON summary fragment ----")
    print(json.dumps(fragment.to_json(), indent=1)[:700])
    print()
    print("---- natural-language description ----")
    print(description)

    # The Fig. 3 property: quantities survive the transformation, and the
    # NL is machine-recoverable into the same facts.
    recovered = {f.kind for f in extract_facts(description)}
    assert "size_hist" in recovered
    json_numbers = {str(f.get("n_requests")) for f in fragment.facts if f.kind == "size_hist"}
    for number in json_numbers:
        assert number in description
