"""Shared benchmark fixtures.

The TraceBench build and the full Table IV evaluation are expensive, so
both are session-scoped: every bench that reports on them shares one run.
Each benchmark prints the table/figure rows it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
evaluation artifacts end to end.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import evaluate_tools
from repro.llm.client import LLMClient
from repro.tracebench import build_tracebench


@pytest.fixture(scope="session")
def bench_suite():
    """The full 40-trace TraceBench."""
    return build_tracebench(0)


@pytest.fixture(scope="session")
def table4_result(bench_suite):
    """The full Table IV evaluation (runs once per session)."""
    return evaluate_tools(bench_suite)


@pytest.fixture()
def client():
    return LLMClient(seed=0)


def run_once(benchmark, fn):
    """Benchmark a heavyweight function a single time, returning its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
