"""E2 — Regenerate paper Table I: summary-category coverage per module.

Verifies both the static coverage matrix and that, on a trace exercising
all four modules, every covered (module, category) cell yields a non-empty
summary fragment.
"""

from __future__ import annotations

from repro.core.summaries import SUMMARY_COVERAGE, extract_fragments
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS

_CATEGORIES = (
    "io_size",
    "request_count",
    "file_metadata",
    "rank",
    "alignment",
    "order",
    "mount",
    "stripe_setting",
    "server_usage",
)


def test_table1_coverage(benchmark):
    spec = next(s for s in TRACE_SPECS if s.trace_id == "ra01-amrex")
    trace = build_trace(spec, seed=0)
    fragments = benchmark.pedantic(
        lambda: extract_fragments(trace.log), rounds=1, iterations=1
    )
    produced = {(f.module, f.category) for f in fragments}

    print()
    print("Table I: Coverage of Summary Categories Across Darshan Modules")
    header = f"{'Module':8s} " + " ".join(f"{c[:10]:>12s}" for c in _CATEGORIES)
    print(header)
    for module in ("POSIX", "MPIIO", "STDIO", "LUSTRE"):
        marks = []
        for cat in _CATEGORIES:
            covered = cat in SUMMARY_COVERAGE[module]
            got = (module, cat) in produced
            marks.append(f"{('✓' if got else ('(✓)' if covered else '-')):>12s}")
        print(f"{module:8s} " + " ".join(marks))

    # Static matrix matches the paper's checkmark counts: 7/5/3/3.
    assert [len(SUMMARY_COVERAGE[m]) for m in ("POSIX", "MPIIO", "STDIO", "LUSTRE")] == [7, 5, 3, 3]
    # The AMReX trace has all four modules, so every covered cell fires.
    for module, cats in SUMMARY_COVERAGE.items():
        for cat in cats:
            assert (module, cat) in produced, (module, cat)
