"""E6 — Regenerate paper Fig. 5: continued user interaction.

The paper's example: an IO500 trace performing 4 MB-ish transfers against
default stripe settings (width 1, 1 MiB); the final diagnosis flags the
suboptimal striping, and a follow-up question yields tailored guidance
with a concrete `lfs setstripe` command.
"""

from __future__ import annotations

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.session import InteractiveSession
from repro.llm.client import LLMClient
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS


def test_fig5_interactive_session(benchmark):
    spec = next(s for s in TRACE_SPECS if s.trace_id == "io500-02-posix-8k-shared")
    trace = build_trace(spec, seed=0)
    client = LLMClient(seed=0)
    agent = IOAgent(IOAgentConfig(model="gpt-4o", seed=0), client=client)

    def interact():
        report = agent.diagnose(trace.log, trace_id=trace.trace_id)
        session = InteractiveSession(report=report, client=client)
        answer = session.ask("How can I fix the server load imbalance issue?")
        return report, answer

    report, answer = benchmark.pedantic(interact, rounds=1, iterations=1)

    print()
    print("---- diagnosis (excerpt) ----")
    print(report.text[:900])
    print()
    print("---- user: How can I fix the server load imbalance issue? ----")
    print(answer)

    assert "server_imbalance" in report.issue_keys  # suboptimal striping flagged
    assert "lfs setstripe" in answer  # concrete, runnable command (orange box)
    assert "diagnosis observed" in answer  # tied to the specific evidence (green box)
