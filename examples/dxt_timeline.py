#!/usr/bin/env python3
"""DXT extended tracing: the paper's future-work extension in action.

Runs a bursty checkpoint workload with BOTH the standard Darshan counter
instrumentation and the DXT per-operation collector attached, prints an
excerpt of the DXT segment table, and shows the timeline facts (phase
structure, burst detection) that counters alone cannot express.

Usage:  python examples/dxt_timeline.py
"""

from __future__ import annotations

from repro.darshan.dxt import DxtCollector, dxt_temporal_facts, render_dxt_text
from repro.darshan.instrument import DarshanInstrument
from repro.llm.facts import render_fact
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import IORuntime, JobSpec
from repro.util.units import MiB


def checkpoint_workload(nprocs: int = 4):
    """Read phase, long compute with trickling logs, checkpoint burst."""
    for r in range(nprocs):
        for i in range(20):
            yield IOOp(kind=OpKind.READ, api=API.POSIX, rank=r,
                       path=f"/scratch/ckpt/input.{r:03d}", offset=i * MiB, size=MiB)
    for step in range(10):
        for r in range(nprocs):
            yield IOOp(kind=OpKind.COMPUTE, api=API.POSIX, rank=r, duration=0.02)
            yield IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=r,
                       path=f"/scratch/ckpt/log.{r:03d}", offset=step * 512, size=512)
    for r in range(nprocs):
        for i in range(30):
            yield IOOp(kind=OpKind.WRITE, api=API.POSIX, rank=r,
                       path=f"/scratch/ckpt/dump.{r:03d}", offset=i * MiB, size=MiB)


def main() -> None:
    fs = LustreFileSystem(seed=0)
    spec = JobSpec(exe="/home/demo/checkpointer", nprocs=4)
    runtime = IORuntime(spec, fs)
    counters = DarshanInstrument(spec, fs)
    dxt = DxtCollector()
    runtime.add_observer(counters)
    runtime.add_observer(dxt)
    result = runtime.run(checkpoint_workload())

    print(f"simulated {result.ops_executed} operations in {result.runtime:.3f} s")
    print(f"DXT captured {len(dxt.segments)} segments (dropped {dxt.dropped})")
    print()
    print("---- DXT segment table (first 8 rows) ----")
    print("\n".join(render_dxt_text(dxt.segments).splitlines()[:9]))
    print()
    print("---- temporal facts (LLM-ready) ----")
    for fact in dxt_temporal_facts(dxt.segments):
        print(render_fact(fact))


if __name__ == "__main__":
    main()
