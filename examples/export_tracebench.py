#!/usr/bin/env python3
"""Build TraceBench and export it to disk as darshan-parser text files.

Writes all 40 labeled traces (``<trace-id>.darshan.txt`` plus a
``labels.tsv`` manifest) so external tools can consume the benchmark, and
prints the Table III composition.

Usage:  python examples/export_tracebench.py [output_dir]
"""

from __future__ import annotations

import os
import sys

from repro.evaluation.tables import render_table3
from repro.tracebench import build_tracebench


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "tracebench_export"
    os.makedirs(out_dir, exist_ok=True)
    suite = build_tracebench(0)

    manifest_lines = ["trace_id\tsource\tnprocs\tlabels"]
    for trace in suite:
        path = os.path.join(out_dir, f"{trace.trace_id}.darshan.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(trace.text)
        manifest_lines.append(
            f"{trace.trace_id}\t{trace.source}\t{trace.log.header.nprocs}\t"
            + ",".join(sorted(trace.labels))
        )
    manifest = os.path.join(out_dir, "labels.tsv")
    with open(manifest, "w", encoding="utf-8") as fh:
        fh.write("\n".join(manifest_lines) + "\n")

    print(f"wrote {len(suite)} traces + {manifest}")
    print()
    print(render_table3())


if __name__ == "__main__":
    main()
