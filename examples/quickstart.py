#!/usr/bin/env python3
"""Quickstart: generate a Darshan trace, diagnose it with IOAgent.

Runs a small synthetic workload under Darshan instrumentation, shows the
pre-processor artifacts (per-module CSVs), diagnoses the trace with
IOAgent, and prints the final report with references.

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import IOAgent, IOAgentConfig
from repro.core.preprocess import write_module_csvs
from repro.workloads import Workload, data_phase


def main() -> None:
    # 1. Define a workload: four MPI ranks issuing frequent, small,
    #    independent writes — a classic I/O anti-pattern.
    workload = Workload(
        name="quickstart",
        exe="/home/demo/my_app",
        nprocs=4,
        jobid=1,
        phases=(
            data_phase(
                "/scratch/demo/out.dat",
                "write",
                xfer=1000,  # 1000-byte requests
                count_per_rank=5000,
                api="mpiio",  # independent MPI-IO (no collectives)
                layout="fpp",
            ),
        ),
    )

    # 2. Run it under Darshan-style instrumentation.
    log, result = workload.run(seed=0)
    print(f"ran {result.ops_executed} I/O operations; "
          f"wrote {result.bytes_written} bytes in {result.runtime:.2f} s (simulated)")

    # 3. The module-based pre-processor artifact: one CSV per module.
    with tempfile.TemporaryDirectory() as tmp:
        for path in write_module_csvs(log, tmp):
            print(f"pre-processor wrote {path}")

    # 4. Diagnose with IOAgent (module summaries → RAG → tree merge).
    agent = IOAgent(IOAgentConfig(model="gpt-4o", seed=0))
    report = agent.diagnose(log, trace_id="quickstart")

    print()
    print(report.render())
    print()
    print(f"issues: {sorted(report.issue_keys)}")
    print(f"fragments analyzed: {report.n_fragments}; "
          f"knowledge sources kept: {report.sources_kept}/{report.sources_retrieved}")
    usage = agent.client.total_usage()
    print(f"LLM usage: {usage.calls} calls, {usage.prompt_tokens} prompt tokens, "
          f"${usage.cost_usd:.4f} (simulated cost model)")


if __name__ == "__main__":
    main()
