#!/usr/bin/env python3
"""Head-to-head tool comparison on a TraceBench subset (mini Table IV).

Runs all four diagnosis tools over one trace from each source, prints each
tool's output excerpt and its accuracy against the expert labels, then the
judged normalized scores for the subset.

Usage:  python examples/compare_tools.py
"""

from __future__ import annotations

from repro.evaluation.accuracy import match_stats
from repro.evaluation.harness import evaluate_tools
from repro.evaluation.tables import render_table4
from repro.tracebench import build_tracebench
from repro.tracebench.dataset import TraceBench


def main() -> None:
    full = build_tracebench(0)
    subset = TraceBench(
        traces=[
            full.get("sb01-small-writes"),
            full.get("io500-17-mpiio-hard-47008"),
            full.get("ra04-openpmd-original"),
        ],
        seed=0,
    )
    result = evaluate_tools(subset)

    for trace in subset:
        print("=" * 72)
        print(f"trace {trace.trace_id} — labels: {sorted(trace.labels)}")
        for tool, text in result.texts[trace.trace_id].items():
            stats = match_stats(text, trace.labels)
            first_line = next((line for line in text.splitlines() if line.strip()), "")
            print(
                f"  {tool:24s} matched={stats.matched} missed={stats.missed} "
                f"false={stats.false_positives}  | {first_line[:60]}"
            )
    print()
    print(render_table4(result))


if __name__ == "__main__":
    main()
