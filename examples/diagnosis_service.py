#!/usr/bin/env python3
"""The production facade: registry-resolved tools behind DiagnosisService.

Shows the three API layers this repo exposes:

1. the tool registry — discover and build any diagnosis tool by name;
2. DiagnosisService — concurrent batch diagnosis with per-trace caching;
3. pipeline telemetry — per-stage latency and LLM spend on BatchResult.

Usage:  python examples/diagnosis_service.py
"""

from __future__ import annotations

from repro import DiagnosisService, IOAgentConfig, available_tools
from repro.tracebench import build_tracebench


def main() -> None:
    print(f"registered tools: {', '.join(available_tools())}")

    suite = build_tracebench(0)
    traces = [
        suite.get(tid)
        for tid in ("sb01-small-writes", "sb06-shared-file", "io500-14-mpiio-8k-shared")
    ]

    service = DiagnosisService(tool="ioagent", config=IOAgentConfig(model="gpt-4o", seed=0))
    result = service.diagnose_batch(traces, max_workers=3)

    print(f"\ndiagnosed {len(result.reports)} traces with {result.tool}: "
          f"mean F1 {result.mean_f1:.3f}, {result.llm_calls} LLM calls, "
          f"${result.cost_usd:.4f}")
    print(f"\n{'stage':>12s} {'seconds':>9s} {'calls':>7s} {'prompt tok':>11s} {'USD':>9s}")
    for stage, m in result.stage_metrics.items():
        print(f"{stage:>12s} {m.seconds:>9.3f} {m.calls:>7d} {m.prompt_tokens:>11d} {m.cost_usd:>9.4f}")

    # Resubmitting the same traces: served from the content-addressed cache.
    rerun = service.diagnose_batch(traces, max_workers=3)
    print(f"\nrerun: {rerun.cache_hits}/{len(traces)} cache hits, "
          f"{rerun.llm_calls} new LLM calls, ${rerun.cost_usd:.4f} marginal cost")

    # The same service API drives any registered tool, e.g. the heuristic
    # baseline (zero LLM spend, no stage telemetry).
    drishti = DiagnosisService(tool="drishti").diagnose_batch(traces)
    print(f"\ndrishti over the same traces: mean F1 {drishti.mean_f1:.3f}, "
          f"{drishti.llm_calls} LLM calls")


if __name__ == "__main__":
    main()
