#!/usr/bin/env python3
"""The paper's §III running example: diagnosing the AMReX trace.

Reproduces the Fig. 1 comparison — plain gpt-4 and gpt-4o prompting over
the raw darshan-parser text — and contrasts it with IOAgent's diagnosis of
the same trace (which catches the POSIX-instead-of-MPI-IO issue the plain
models miss, and cites its sources).

Usage:  python examples/diagnose_amrex.py
"""

from __future__ import annotations

from repro import IOAgent, IOAgentConfig, IONTool
from repro.evaluation.accuracy import issue_assertions, match_stats
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS


def main() -> None:
    spec = next(s for s in TRACE_SPECS if s.trace_id == "ra01-amrex")
    trace = build_trace(spec, seed=0)
    header = trace.log.header
    print(
        f"AMReX run: {header.run_time:.0f} s, {header.nprocs} processes, "
        f"{len(trace.log.files())} files ({len(trace.text.splitlines())} trace lines)"
    )
    print(f"expert labels: {sorted(trace.labels)}")

    print("\n" + "=" * 28 + " plain gpt-4 " + "=" * 28)
    print(IONTool(model="gpt-4", seed=0).diagnose(trace.log, trace.trace_id).text[:800])

    print("\n" + "=" * 28 + " plain gpt-4o " + "=" * 28)
    gpt4o_text = IONTool(model="gpt-4o", seed=0).diagnose(trace.log, trace.trace_id).text
    print(gpt4o_text[:1500])
    stats = match_stats(gpt4o_text, trace.labels)
    print(
        f"\nplain gpt-4o vs labels: matched {stats.matched}, "
        f"missed {stats.missed}, false {stats.false_positives}"
    )

    print("\n" + "=" * 28 + " IOAgent-gpt-4o " + "=" * 28)
    report = IOAgent(IOAgentConfig(model="gpt-4o", seed=0)).diagnose(
        trace.log, trace_id=trace.trace_id
    )
    print(report.text[:2000])
    stats = match_stats(report.text, trace.labels)
    print(
        f"\nIOAgent vs labels: matched {stats.matched}, missed {stats.missed}, "
        f"false {stats.false_positives}; references cited: {len(report.references)}"
    )
    missed_by_plain = trace.labels - issue_assertions(gpt4o_text)
    print(f"issues plain prompting missed but IOAgent found: {sorted(missed_by_plain & report.issue_keys)}")


if __name__ == "__main__":
    main()
