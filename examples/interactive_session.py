#!/usr/bin/env python3
"""Post-diagnosis interactive Q&A (paper Fig. 5).

Diagnoses an IO500 trace whose large transfers run against default Lustre
stripe settings, then asks IOAgent follow-up questions — receiving
tailored explanations and runnable commands (``lfs setstripe ...``).

Usage:  python examples/interactive_session.py
"""

from __future__ import annotations

from repro import IOAgent, IOAgentConfig, InteractiveSession, LLMClient
from repro.tracebench.build import build_trace
from repro.tracebench.spec import TRACE_SPECS


def main() -> None:
    spec = next(s for s in TRACE_SPECS if s.trace_id == "io500-02-posix-8k-shared")
    trace = build_trace(spec, seed=0)
    client = LLMClient(seed=0)
    agent = IOAgent(IOAgentConfig(model="gpt-4o", seed=0), client=client)
    report = agent.diagnose(trace.log, trace_id=trace.trace_id)

    print("---- final diagnosis (excerpt) ----")
    print(report.text[:1200])
    print()

    session = InteractiveSession(report=report, client=client)
    for question in (
        "How can I fix the server load imbalance issue?",
        "And what should I do about the small write requests?",
        "Can you remind me why shared file access is a problem here?",
    ):
        print(f">>> user: {question}")
        print(session.ask(question))
        print()


if __name__ == "__main__":
    main()
