#!/usr/bin/env python3
"""Cost vs. quality across LLM backbones (paper §I/§III cost discussion).

Diagnoses a TraceBench subset with IOAgent on a proprietary backbone
(gpt-4o + gpt-4o-mini reflection) and an open one (llama-3.1-70B all the
way through), printing per-trace cost, token volumes, and accuracy — the
trade-off at the heart of the "democratization" argument.

Usage:  python examples/cost_comparison.py
"""

from __future__ import annotations

from repro.core.batch import cost_comparison
from repro.tracebench import build_tracebench


def main() -> None:
    suite = build_tracebench(0)
    traces = [
        suite.get(tid)
        for tid in (
            "sb01-small-writes",
            "sb06-shared-file",
            "io500-14-mpiio-8k-shared",
            "io500-17-mpiio-hard-47008",
            "ra01-amrex",
            "ra04-openpmd-original",
        )
    ]
    results = cost_comparison(traces, models=("gpt-4o", "llama-3.1-70b"))

    print(f"{'backbone':>16s} {'mean F1':>8s} {'LLM calls':>10s} "
          f"{'prompt tok':>11s} {'completion':>11s} {'USD total':>10s} {'USD/trace':>10s}")
    for model, r in results.items():
        print(
            f"{model:>16s} {r.mean_f1:>8.3f} {r.llm_calls:>10d} "
            f"{r.prompt_tokens:>11d} {r.completion_tokens:>11d} "
            f"{r.cost_usd:>10.4f} {r.cost_per_trace:>10.4f}"
        )
    print()
    gpt = results["gpt-4o"]
    llama = results["llama-3.1-70b"]
    if gpt.stage_metrics:
        print("where the gpt-4o money goes (per pipeline stage):")
        for stage, m in gpt.stage_metrics.items():
            if m.calls:
                print(f"  {stage:>10s}: {m.calls:4d} calls  ${m.cost_usd:.4f}")
        print()
    print(
        f"The open backbone retains {100 * llama.mean_f1 / max(gpt.mean_f1, 1e-9):.0f}% "
        f"of the proprietary backbone's diagnosis quality at $0 marginal API cost "
        f"(vs ${gpt.cost_usd:.4f} for {len(traces)} traces) — the paper's "
        f"model-agnosticism argument in cost terms."
    )


if __name__ == "__main__":
    main()
