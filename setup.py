"""Packaging metadata.

Kept in setup.py (not pyproject ``[project]``) so legacy editable
installs work where ``wheel``/PEP-660 frontends are absent.  The
``py.typed`` marker ships in package data so downstream type checkers
see the inline annotations (PEP 561).
"""
import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(), re.M).group(1)

setup(
    name="repro-ioagent",
    version=_VERSION,
    description=(
        "Reproduction of IOAgent: Democratizing Trustworthy HPC I/O "
        "Performance Diagnosis Capability via LLMs (IPDPS 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    python_requires=">=3.10",
    install_requires=["numpy"],
)
