"""The I/O issue taxonomy (paper Table II).

Sixteen labels (read/write variants counted separately, as in Table III).
Every subsystem — TraceBench ground truth, IOAgent diagnoses, Drishti
triggers, ION outputs, and the accuracy scorer — speaks this vocabulary,
keyed by the stable ``key`` strings below.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Issue", "ISSUES", "issue_by_key", "ISSUE_KEYS"]


@dataclass(frozen=True, slots=True)
class Issue:
    """One diagnosable I/O performance issue."""

    key: str
    label: str
    description: str
    # Phrases whose presence in free text indicates this issue is being
    # asserted; used by the accuracy scorer to grade arbitrary tool output.
    aliases: tuple[str, ...]


ISSUES: tuple[Issue, ...] = (
    Issue(
        key="high_metadata_load",
        label="High Metadata Load",
        description=(
            "The application spends a significant amount of time performing "
            "metadata operations (e.g., directory lookups, file system "
            "operations)."
        ),
        aliases=("high metadata", "metadata load", "metadata-heavy", "metadata overhead"),
    ),
    Issue(
        key="misaligned_read",
        label="Misaligned Read Requests",
        description=(
            "The application makes read requests that are not aligned with "
            "the file system's stripe boundaries."
        ),
        aliases=("misaligned read", "unaligned read", "read requests are not aligned"),
    ),
    Issue(
        key="misaligned_write",
        label="Misaligned Write Requests",
        description=(
            "The application makes write requests that are not aligned with "
            "the file system's stripe boundaries."
        ),
        aliases=("misaligned write", "unaligned write", "write requests are not aligned"),
    ),
    Issue(
        key="random_read",
        label="Random Access Patterns on Read",
        description="The application issues read requests in a random access pattern.",
        aliases=("random read", "random access pattern on read", "non-sequential read"),
    ),
    Issue(
        key="random_write",
        label="Random Access Patterns on Write",
        description="The application issues write requests in a random access pattern.",
        aliases=("random write", "random access pattern on write", "non-sequential write"),
    ),
    Issue(
        key="shared_file_access",
        label="Shared File Access",
        description=(
            "The application has multiple processes or ranks accessing the same file."
        ),
        aliases=("shared file", "single shared file", "same file from multiple ranks"),
    ),
    Issue(
        key="small_read",
        label="Small Read I/O Requests",
        description=(
            "The application is making frequent read requests with a small number of bytes."
        ),
        aliases=("small read", "small reads", "tiny read request"),
    ),
    Issue(
        key="small_write",
        label="Small Write I/O Requests",
        description=(
            "The application is making frequent write requests with a small number of bytes."
        ),
        aliases=("small write", "small writes", "tiny write request"),
    ),
    Issue(
        key="repetitive_read",
        label="Repetitive Data Access on Read",
        description="The application is making read requests to the same data repeatedly.",
        aliases=("repetitive read", "re-read", "reads the same data repeatedly"),
    ),
    Issue(
        key="server_imbalance",
        label="Server Load Imbalance",
        description=(
            "The application issues a disproportionate amount of I/O traffic to "
            "some servers compared to others or does not properly utilize the "
            "available storage resources."
        ),
        aliases=(
            "server load imbalance",
            "ost imbalance",
            "underutilizes the available storage",
            "single ost",
            "stripe width of 1",
            "stripe count of 1",
        ),
    ),
    Issue(
        key="rank_imbalance",
        label="Rank Load Imbalance",
        description=(
            "The application has MPI ranks issuing a disproportionate amount of "
            "I/O traffic compared to others."
        ),
        aliases=("rank load imbalance", "rank imbalance", "imbalance across ranks"),
    ),
    Issue(
        key="no_mpi",
        label="Multi-Process Without MPI",
        description="The application has multiple processes but does not leverage MPI.",
        aliases=("without mpi", "does not leverage mpi", "no mpi-io usage detected"),
    ),
    Issue(
        key="no_collective_read",
        label="No Collective I/O on Read",
        description="The application does not perform collective I/O on read operations.",
        aliases=("no collective read", "collective i/o on read", "independent read"),
    ),
    Issue(
        key="no_collective_write",
        label="No Collective I/O on Write",
        description="The application does not perform collective I/O on write operations.",
        aliases=("no collective write", "collective i/o on write", "independent write"),
    ),
    Issue(
        key="low_level_read",
        label="Low-Level Library on Read",
        description=(
            "The application relies on a low-level library like STDIO for a "
            "significant amount of read operations outside of loading/reading "
            "configuration or output files."
        ),
        aliases=("low-level library on read", "stdio for read", "stdio reads"),
    ),
    Issue(
        key="low_level_write",
        label="Low-Level Library on Write",
        description=(
            "The application relies on a low-level library like STDIO for a "
            "significant amount of write operations outside of writing logs "
            "or small outputs."
        ),
        aliases=("low-level library on write", "stdio for write", "stdio writes"),
    ),
    # -- time-domain issues (beyond the paper's Table II) -------------------
    # These two pathologies live in when operations happen, not in how many
    # bytes move, so their ground truth is only recoverable from the DXT
    # temporal evidence channel (see docs/evidence.md).
    Issue(
        key="lock_contention",
        label="Lock Contention on Shared Files",
        description=(
            "The application's accesses to a shared file are serialized by "
            "file-system extent locks: ranks take turns instead of performing "
            "I/O concurrently, so aggregate bandwidth collapses to that of a "
            "single stream."
        ),
        aliases=("lock contention", "lock convoy", "serialized shared-file", "extent lock"),
    ),
    Issue(
        key="io_stall",
        label="I/O Stalls",
        description=(
            "The application's I/O stream repeatedly pauses mid-run — from "
            "cross-job interference or congestion, or from ranks waiting on "
            "data produced by other ranks — leaving the storage system idle "
            "while the job holds it."
        ),
        aliases=("i/o stall", "io stall", "stalls while", "interference from other"),
    ),
    # -- longitudinal issue (beyond any single trace) -----------------------
    # This pathology lives across a *series* of runs: each individual trace
    # may look internally consistent, and only the drift of its profile
    # against the series baseline shows the regression (see
    # docs/regression.md and repro.regression).
    Issue(
        key="trend_regression",
        label="Longitudinal Performance Regression",
        description=(
            "The application's I/O behavior has drifted from the baseline "
            "established by its earlier runs: a monitored run series shows a "
            "deterministic inflection point after which the I/O profile "
            "departs from its historical shape."
        ),
        aliases=(
            "trend regression",
            "performance regression",
            "started degrading",
            "drift from baseline",
            "regressed at run",
        ),
    ),
)

ISSUE_KEYS: tuple[str, ...] = tuple(issue.key for issue in ISSUES)

_BY_KEY = {issue.key: issue for issue in ISSUES}


def issue_by_key(key: str) -> Issue:
    """Look up an issue by its stable key; raises KeyError on typos."""
    return _BY_KEY[key]
