"""Batch diagnosis with cost accounting (the paper's production concern).

The paper motivates IOAgent partly by cost: o1-preview is "largely
impractical for our large-scale use", and the design must make *open*
models viable.  This module runs IOAgent (or a plain-prompt baseline)
over many traces and reports per-backbone token/cost totals, so the
"democratization" trade-off — open-weights quality at zero marginal API
cost vs. frontier quality at list price — is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.agent import IOAgent, IOAgentConfig
from repro.core.report import DiagnosisReport
from repro.evaluation.accuracy import match_stats
from repro.llm.client import LLMClient
from repro.tracebench.dataset import LabeledTrace

__all__ = ["BatchResult", "run_batch", "cost_comparison"]


@dataclass
class BatchResult:
    """Aggregate outcome of diagnosing a set of traces with one backbone."""

    model: str
    reports: dict[str, DiagnosisReport] = field(default_factory=dict)
    mean_f1: float = 0.0
    llm_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0

    @property
    def cost_per_trace(self) -> float:
        return self.cost_usd / max(1, len(self.reports))


def run_batch(
    traces: list[LabeledTrace],
    model: str = "gpt-4o",
    reflection_model: str = "gpt-4o-mini",
    seed: int = 0,
    **config_kwargs,
) -> BatchResult:
    """Diagnose every trace with a fresh agent on one backbone."""
    client = LLMClient(seed=seed)
    agent = IOAgent(
        IOAgentConfig(
            model=model, reflection_model=reflection_model, seed=seed, **config_kwargs
        ),
        client=client,
    )
    result = BatchResult(model=model)
    f1_total = 0.0
    for trace in traces:
        report = agent.diagnose(trace.log, trace_id=trace.trace_id)
        result.reports[trace.trace_id] = report
        f1_total += match_stats(report.text, trace.labels).f1
    usage = client.total_usage()
    result.mean_f1 = f1_total / max(1, len(traces))
    result.llm_calls = usage.calls
    result.prompt_tokens = usage.prompt_tokens
    result.completion_tokens = usage.completion_tokens
    result.cost_usd = usage.cost_usd
    return result


def cost_comparison(
    traces: list[LabeledTrace],
    models: tuple[str, ...] = ("gpt-4o", "llama-3.1-70b"),
    seed: int = 0,
) -> dict[str, BatchResult]:
    """Run the same trace set through several backbones.

    The reflection model follows the backbone's ecosystem: proprietary
    backbones use gpt-4o-mini (as in the paper), open backbones reuse
    themselves so the whole pipeline stays free to run.
    """
    results: dict[str, BatchResult] = {}
    for model in models:
        from repro.llm.models import get_model

        reflection = model if get_model(model).open_source else "gpt-4o-mini"
        results[model] = run_batch(
            traces, model=model, reflection_model=reflection, seed=seed
        )
    return results
