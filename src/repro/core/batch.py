"""Batch diagnosis with cost accounting (the paper's production concern).

The paper motivates IOAgent partly by cost: o1-preview is "largely
impractical for our large-scale use", and the design must make *open*
models viable.  This module runs any registered
:class:`~repro.core.registry.DiagnosticTool` over many traces — via
:class:`~repro.core.service.DiagnosisService`, so batches get concurrency,
per-trace caching, and per-stage telemetry for free — and reports
per-backbone token/cost totals, so the "democratization" trade-off —
open-weights quality at zero marginal API cost vs. frontier quality at
list price — is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.report import DiagnosisReport
from repro.tracebench.dataset import LabeledTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.service import StageMetrics

__all__ = ["BatchResult", "run_batch", "run_scenario_batch", "cost_comparison"]


@dataclass
class BatchResult:
    """Aggregate outcome of diagnosing a set of traces with one tool."""

    model: str
    tool: str = "ioagent"
    reports: dict[str, DiagnosisReport] = field(default_factory=dict)
    mean_f1: float = 0.0
    # difficulty tier -> mean F1 over the batch's traces of that tier.
    f1_by_difficulty: dict[str, float] = field(default_factory=dict)
    llm_calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    cache_hits: int = 0
    # stage name -> aggregate latency/usage across the batch (pipeline
    # tools only; empty for heuristic/plain-prompt tools).
    stage_metrics: "dict[str, StageMetrics]" = field(default_factory=dict)

    @property
    def cost_per_trace(self) -> float:
        return self.cost_usd / max(1, len(self.reports))

    @property
    def degraded_traces(self) -> dict[str, tuple[str, ...]]:
        """Trace id -> lost evidence channels, for reports that degraded."""
        return {
            trace_id: report.degraded
            for trace_id, report in self.reports.items()
            if report.degraded
        }

    @property
    def total_seconds(self) -> float:
        """Summed per-stage wall-clock (0.0 when no stage metrics exist)."""
        return sum(m.seconds for m in self.stage_metrics.values())


def run_batch(
    traces: list[LabeledTrace],
    model: str = "gpt-4o",
    reflection_model: str = "gpt-4o-mini",
    seed: int = 0,
    tool: str = "ioagent",
    max_workers: int | None = None,
    **config_kwargs,
) -> BatchResult:
    """Diagnose every trace with one registered tool on one backbone."""
    from repro.core.agent import IOAgentConfig
    from repro.core.service import DiagnosisService

    config = IOAgentConfig(
        model=model, reflection_model=reflection_model, seed=seed, **config_kwargs
    )
    service = DiagnosisService(tool=tool, config=config)
    return service.diagnose_batch(traces, max_workers=max_workers)


def run_scenario_batch(
    selectors: tuple[str, ...] | list[str],
    model: str = "gpt-4o",
    seed: int = 0,
    tool: str = "ioagent",
    max_workers: int | None = None,
    **config_kwargs,
) -> BatchResult:
    """Diagnose every scenario picked from the registry by ``selectors``.

    ``selectors`` are scenario names and/or tags (``"tracebench"``,
    ``"pathology"``, a difficulty tier, ...), resolved through the
    scenario registry — the batch runner needs no per-suite wiring.
    """
    from repro.tracebench.build import build_scenario_suite

    suite = build_scenario_suite(selectors, seed=seed)
    return run_batch(
        list(suite.traces),
        model=model,
        seed=seed,
        tool=tool,
        max_workers=max_workers,
        **config_kwargs,
    )


def cost_comparison(
    traces: list[LabeledTrace],
    models: tuple[str, ...] = ("gpt-4o", "llama-3.1-70b"),
    seed: int = 0,
) -> dict[str, BatchResult]:
    """Run the same trace set through several backbones.

    The reflection model follows the backbone's ecosystem: proprietary
    backbones use gpt-4o-mini (as in the paper), open backbones reuse
    themselves so the whole pipeline stays free to run.
    """
    results: dict[str, BatchResult] = {}
    for model in models:
        from repro.llm.models import get_model

        reflection = model if get_model(model).open_source else "gpt-4o-mini"
        results[model] = run_batch(
            traces, model=model, reflection_model=reflection, seed=seed
        )
    return results
