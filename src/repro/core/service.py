"""Production-style facade: concurrent, cached, metered diagnosis.

:class:`DiagnosisService` is the entry point a deployment would sit
behind.  On top of any registered :class:`~repro.core.registry.DiagnosticTool`
it adds the concerns the paper's production story needs but that don't
belong inside a tool:

* **concurrency** — traces fan out across a thread pool
  (:func:`repro.util.parallel.parallel_map`), on top of each tool's own
  per-fragment parallelism;
* **caching** — per-trace results memoized by ``(trace digest, tool,
  config)``, so re-diagnosing an unchanged log is free (``cache_hits`` is
  reported on every batch);
* **shared resources** — one tool instance (and therefore one memoized
  RAG index) serves the whole service lifetime instead of being rebuilt
  per call;
* **telemetry** — per-stage wall-clock and LLM spend, collected through
  the pipeline observer hooks and exposed as ``BatchResult.stage_metrics``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from threading import Lock
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.pipeline import PipelineContext, PipelineObserver
from repro.core.registry import DiagnosticTool, get_tool
from repro.core.report import DiagnosisReport
from repro.darshan.log import DarshanLog
from repro.darshan.writer import render_darshan_text
from repro.llm.client import FaultEvent, Usage
from repro.util.parallel import parallel_map

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import IOAgentConfig
    from repro.core.batch import BatchResult
    from repro.serve.store import ResultStore
    from repro.tracebench.dataset import LabeledTrace

__all__ = ["StageMetrics", "ServiceStats", "DiagnosisService", "trace_digest"]


def trace_digest(log: DarshanLog) -> str:
    """Stable content digest of a Darshan log.

    Covers both evidence channels: the parser-text rendering of the
    counters and, when present, the DXT segment table — two logs with
    identical counters but different timelines must not share a cache
    entry.
    """
    digest = hashlib.sha256(render_darshan_text(log).encode("utf-8"))
    if log.dxt_segments:
        from repro.darshan.dxt import dxt_digest

        if log.dxt_digest_cache is None:
            log.dxt_digest_cache = dxt_digest(log.dxt_segments)
        digest.update(log.dxt_digest_cache.encode("ascii"))
    return digest.hexdigest()


@dataclass
class StageMetrics:
    """Aggregate latency/cost/fault telemetry for one stage across a batch."""

    seconds: float = 0.0
    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    # Recovery-layer telemetry attributed to this stage.
    retries: int = 0
    circuit_trips: int = 0
    # fault-event kind (e.g. "transient", "timeout", "garbled") -> count.
    faults: dict[str, int] = field(default_factory=dict)

    def add_time(self, seconds: float) -> None:
        self.seconds += seconds

    def add_usage(self, usage: Usage) -> None:
        self.calls += usage.calls
        self.prompt_tokens += usage.prompt_tokens
        self.completion_tokens += usage.completion_tokens
        self.cost_usd += usage.cost_usd

    def add_fault(self, kind: str) -> None:
        if kind == "retry":
            self.retries += 1
        elif kind == "circuit-trip":
            self.circuit_trips += 1
        self.faults[kind] = self.faults.get(kind, 0) + 1


def _observable_runner(tool: DiagnosticTool) -> "Callable | None":
    """The tool's observer-aware ``run`` method, or None.

    ``run`` is not part of the DiagnosticTool protocol, so a tool may
    define an unrelated method of that name; only treat it as the
    pipeline entry point if its signature actually takes ``observers``.
    """
    import inspect

    runner = getattr(tool, "run", None)
    if not callable(runner):
        return None
    try:
        params = inspect.signature(runner).parameters
    except (TypeError, ValueError):
        return None
    return runner if "observers" in params else None


class _MetricsCollector(PipelineObserver):
    """Thread-safe accumulator of per-stage time + usage across traces."""

    def __init__(self) -> None:
        self.stages: dict[str, StageMetrics] = {}
        self._lock = Lock()

    def _metrics(self, stage: str) -> StageMetrics:
        return self.stages.setdefault(stage, StageMetrics())

    def on_stage_end(self, stage: str, ctx: PipelineContext, seconds: float) -> None:
        with self._lock:
            self._metrics(stage).add_time(seconds)

    def on_llm_call(
        self, stage: str, ctx: PipelineContext, model: str, usage: Usage, call_id: str
    ) -> None:
        with self._lock:
            self._metrics(stage).add_usage(usage)

    def on_fault_event(self, stage: str, ctx: PipelineContext, event: FaultEvent) -> None:
        with self._lock:
            self._metrics(stage).add_fault(event.kind)


@dataclass(frozen=True)
class ServiceStats:
    """One coherent snapshot of a service's caching + spend state.

    The single accessor serve-mode and batch-mode metrics both read
    through: ``stats()`` replaces the historical trio of
    ``cached_reports()`` / ``usage()`` / ``cache_hits``-peeking (all kept
    as thin wrappers).  ``usage`` is a point-in-time copy — mutating it
    does not touch the tool's accounting.
    """

    tool: str
    cache_hits: int
    cache_misses: int
    store_hits: int
    cached_reports: tuple[DiagnosisReport, ...]
    usage: Usage

    @property
    def requests(self) -> int:
        """Total diagnose() calls that consulted the cache."""
        return self.cache_hits + self.cache_misses + self.store_hits


class DiagnosisService:
    """Multi-trace diagnosis facade over a registered tool.

    ``tool`` may be a registry name (``"ioagent"``, ``"drishti"``,
    ``"ion"``) or an already-built :class:`DiagnosticTool` instance.  When
    a name is given, construction knobs come from ``config`` (threaded to
    factories that accept them; heuristic tools ignore what they don't
    take).

    ``store`` optionally backs the in-memory cache with a persistent
    :class:`~repro.serve.store.ResultStore` (a directory path is accepted
    and wrapped): lookups fall back memory → store → run, store hits are
    promoted into memory, and every non-degraded result is persisted, so
    a *fresh process* pointed at the same store serves known digests with
    zero LLM calls.
    """

    def __init__(
        self,
        tool: str | DiagnosticTool = "ioagent",
        config: "IOAgentConfig | None" = None,
        max_workers: int | None = None,
        cache: bool = True,
        observers: Sequence[PipelineObserver] = (),
        store: "ResultStore | str | None" = None,
    ) -> None:
        if config is None:
            from repro.core.agent import IOAgentConfig

            config = IOAgentConfig()
        self.config = config
        if isinstance(tool, str):
            tool = get_tool(
                tool, config=config, model=config.model, seed=config.seed
            )
        self.tool: DiagnosticTool = tool
        self.max_workers = max_workers if max_workers is not None else config.max_workers
        self.observers = tuple(observers)
        self._cache_enabled = cache
        self._cache: dict[tuple[str, str, str], DiagnosisReport] = {}
        self._cache_lock = Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        if isinstance(store, str):
            from repro.serve.store import ResultStore

            store = ResultStore(store)
        self.store = store

    # -- single trace ------------------------------------------------------

    def cache_key(self, log: DarshanLog) -> tuple[str, str, str]:
        """The content address of ``log`` under this service's tool.

        Keyed on the *tool's* effective config when it carries one: a tool
        instance built around a different config than the service default
        (an ablated use_dxt=False agent, say) must not alias the full
        tool's entries under the same trace digest.
        """
        config = getattr(self.tool, "config", None)
        if config is None:
            config = self.config
        return (trace_digest(log), self.tool.name, repr(config))

    # Pre-serving-layer name, kept for callers that bound to it.
    _cache_key = cache_key

    def lookup(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport | None:
        """Serve ``log`` from memory or the persistent store, or None.

        Never runs the tool — this is the probe the serving layer uses to
        resolve requests at submit time without burning a queue slot.
        Hits count toward ``cache_hits`` / ``store_hits``; misses count
        nothing (only an actual run records a miss).
        """
        if not self._cache_enabled:
            return None
        return self._lookup(self.cache_key(log), trace_id)

    def _lookup(self, key: tuple[str, str, str], trace_id: str) -> DiagnosisReport | None:
        with self._cache_lock:
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                return hit if hit.trace_id == trace_id else replace(hit, trace_id=trace_id)
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                with self._cache_lock:
                    self.store_hits += 1
                    # Promote: later identical requests hit memory.
                    self._cache.setdefault(key, stored)
                if stored.trace_id != trace_id:
                    stored = replace(stored, trace_id=trace_id)
                return stored
        return None

    def diagnose(
        self,
        log: DarshanLog,
        trace_id: str = "trace",
        observers: Sequence[PipelineObserver] = (),
    ) -> DiagnosisReport:
        """Diagnose one log, serving identical content from the cache/store.

        Caching is content-addressed — keyed by ``(trace digest, tool,
        config)`` — so resubmitting an identical log under a new name is a
        hit; the cached report is relabeled with the requested
        ``trace_id``.
        """
        key = self.cache_key(log) if self._cache_enabled else None
        if key is not None:
            hit = self._lookup(key, trace_id)
            if hit is not None:
                return hit
        report = self._run_tool(log, trace_id, observers)
        if key is not None:
            with self._cache_lock:
                self.cache_misses += 1
                # Never cache a degraded report: the degradation came from
                # transient weather (faults, outages), not from the trace
                # content the key is addressed by — a later clean run of
                # the same digest must not be served a degraded answer.
                if not report.degraded:
                    self._cache.setdefault(key, report)
            # Same rule for the persistent store (put() enforces it too);
            # the atomic write happens outside the cache lock.
            if self.store is not None and not report.degraded:
                self.store.put(key, report)
        return report

    def _run_tool(
        self, log: DarshanLog, trace_id: str, observers: Sequence[PipelineObserver]
    ) -> DiagnosisReport:
        all_observers = self.observers + tuple(observers)
        if all_observers and _observable_runner(self.tool) is not None:
            # Pipeline-backed tools expose an observer-aware `run`; the
            # full context feeds the per-stage telemetry.
            ctx = self.tool.run(log, trace_id, observers=all_observers)
            return ctx.build_report()
        return self.tool.diagnose(log, trace_id=trace_id)

    # -- stats (the one coherent accessor; see ServiceStats) ---------------

    def stats(self) -> ServiceStats:
        """One consistent :class:`ServiceStats` snapshot of this service.

        Counters and the cached-report tuple are read under the cache
        lock, so a snapshot taken mid-batch is internally consistent.
        """
        usage = self.tool.usage()
        with self._cache_lock:
            return ServiceStats(
                tool=self.tool.name,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                store_hits=self.store_hits,
                cached_reports=tuple(self._cache.values()),
                usage=Usage(
                    prompt_tokens=usage.prompt_tokens,
                    completion_tokens=usage.completion_tokens,
                    cost_usd=usage.cost_usd,
                    calls=usage.calls,
                ),
            )

    def cached_reports(self) -> tuple[DiagnosisReport, ...]:
        """Deprecated: use ``stats().cached_reports`` (kept as a thin wrapper)."""
        return self.stats().cached_reports

    def clear_cache(self) -> None:
        """Drop the in-memory cache and reset counters (the store persists)."""
        with self._cache_lock:
            self._cache.clear()
            self.cache_hits = 0
            self.cache_misses = 0
            self.store_hits = 0

    def usage(self) -> Usage:
        """Deprecated: use ``stats().usage`` (kept as a thin wrapper)."""
        return self.tool.usage()

    # -- batches -----------------------------------------------------------

    def diagnose_batch(
        self,
        traces: "Sequence[LabeledTrace]",
        max_workers: int | None = None,
    ) -> "BatchResult":
        """Diagnose every trace concurrently; returns scored, metered results."""
        from repro.core.batch import BatchResult
        from repro.evaluation.accuracy import f1_by_difficulty, match_stats

        metrics = _MetricsCollector()
        workers = max_workers if max_workers is not None else self.max_workers
        usage_before = self.usage()
        hits_before = self.cache_hits

        def one(trace: "LabeledTrace") -> tuple:
            report = self.diagnose(trace.log, trace_id=trace.trace_id, observers=(metrics,))
            stats = match_stats(report.text, trace.labels)
            return trace.trace_id, report, stats, getattr(trace, "difficulty", "medium")

        rows = parallel_map(one, traces, max_workers=workers)

        result = BatchResult(model=self.config.model, tool=self.tool.name)
        f1_total = 0.0
        for trace_id, report, stats, _difficulty in rows:
            result.reports[trace_id] = report
            f1_total += stats.f1
        usage = self.usage()
        result.mean_f1 = f1_total / max(1, len(rows))
        result.f1_by_difficulty = f1_by_difficulty(
            [(difficulty, stats) for _, _, stats, difficulty in rows]
        )
        result.llm_calls = usage.calls - usage_before.calls
        result.prompt_tokens = usage.prompt_tokens - usage_before.prompt_tokens
        result.completion_tokens = usage.completion_tokens - usage_before.completion_tokens
        result.cost_usd = usage.cost_usd - usage_before.cost_usd
        result.cache_hits = self.cache_hits - hits_before
        result.stage_metrics = metrics.stages
        return result
