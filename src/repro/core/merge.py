"""Tree-based pairwise merging (paper §IV-C) and the 1-step ablation.

IOAgent merges diagnosis fragments strictly two at a time; all pairs at a
tree level are independent, so each level runs in parallel — the structure
of paper Fig. 2.  The 1-step merge (everything in one prompt) exists only
to reproduce the Fig. 6 comparison, where mid-positioned findings and
their references get lost.
"""

from __future__ import annotations

from repro.llm.client import LLMClient
from repro.llm.tasks.merge import build_merge_prompt
from repro.util.parallel import parallel_map

__all__ = ["tree_merge", "one_step_merge"]


def tree_merge(
    summaries: list[str],
    client: LLMClient,
    model: str,
    call_id_prefix: str = "",
    max_workers: int | None = None,
) -> str:
    """Merge summaries pairwise, level by level, pairs in parallel."""
    if not summaries:
        raise ValueError("nothing to merge")
    level = list(summaries)
    depth = 0
    while len(level) > 1:
        pairs = [(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        carry = [level[-1]] if len(level) % 2 == 1 else []

        def merge_pair(indexed: tuple[int, tuple[str, str]]) -> str:
            i, (a, b) = indexed
            prompt = build_merge_prompt([a, b])
            return client.complete(
                prompt, model=model, call_id=f"{call_id_prefix}/merge/L{depth}/{i}"
            ).text

        level = parallel_map(merge_pair, list(enumerate(pairs)), max_workers=max_workers)
        level.extend(carry)
        depth += 1
    return level[0]


def one_step_merge(
    summaries: list[str],
    client: LLMClient,
    model: str,
    call_id_prefix: str = "",
) -> str:
    """Merge everything in a single prompt (the Fig. 6 failure mode)."""
    if not summaries:
        raise ValueError("nothing to merge")
    prompt = build_merge_prompt(list(summaries))
    return client.complete(prompt, model=model, call_id=f"{call_id_prefix}/merge/1step").text
