"""Domain Knowledge Integrator (paper §IV-B): retrieve + self-reflect.

For each fragment description: retrieve the top-15 nearest knowledge
chunks, then run the self-reflection filter — a cheaper model judging each
source's true relevance — *in parallel over all retrieved sources*, as the
paper describes.  Roughly half the sources are expected to be ruled out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.client import LLMClient
from repro.rag.index import SearchHit
from repro.rag.reflection import reflect_filter
from repro.rag.retriever import Retriever

__all__ = ["IntegrationResult", "integrate_fragment"]


@dataclass(frozen=True)
class IntegrationResult:
    """Sources that survived retrieval + reflection for one fragment."""

    retrieved: tuple[SearchHit, ...]
    kept_sources: tuple[str, ...]  # rendered source blocks fed to diagnosis

    @property
    def filtered_count(self) -> int:
        return len(self.retrieved) - len(self.kept_sources)


def integrate_fragment(
    description: str,
    retriever: Retriever,
    client: LLMClient,
    reflection_model: str,
    call_id: str,
    use_reflection: bool = True,
    max_workers: int | None = None,
) -> IntegrationResult:
    """Retrieve knowledge for a fragment and filter it by self-reflection."""
    hits = retriever.retrieve(description)
    rendered = [Retriever.render_source(h) for h in hits]
    if not use_reflection:
        return IntegrationResult(retrieved=tuple(hits), kept_sources=tuple(rendered))
    kept = reflect_filter(
        description=description,
        sources=rendered,
        client=client,
        model=reflection_model,
        call_id_prefix=call_id,
        max_workers=max_workers,
    )
    return IntegrationResult(retrieved=tuple(hits), kept_sources=tuple(kept))
