"""The `DiagnosticTool` protocol and the tool registry.

Every diagnosis tool in the repo — IOAgent, the Drishti heuristic
baseline, the plain-prompt ION baseline, and anything a future PR adds —
satisfies one uniform protocol:

* ``name`` — the row label used by the Table IV harness and the CLI;
* ``diagnose(log, trace_id) -> DiagnosisReport`` — one trace in, one
  structured report out;
* ``usage() -> Usage`` — cumulative LLM token/cost spend (zero for
  heuristic tools).

Tools register a *factory* under a short name, so callers construct them
uniformly (``get_tool("ioagent", model="llama-3.1-70b")``) and discovery
is programmatic (``available_tools()`` drives the CLI subcommands and
``--list-tools``).  Factories receive only the keyword arguments their
signature accepts, so generic callers can offer common knobs (``seed``,
``model``, ``max_workers``) without every tool having to take them.
"""

from __future__ import annotations

import inspect
from typing import Callable, Protocol, runtime_checkable

from repro.core.report import DiagnosisReport
from repro.darshan.log import DarshanLog
from repro.llm.client import Usage
from repro.util.lookup import RegistryLookupError

__all__ = [
    "DiagnosticTool",
    "ToolNotFoundError",
    "register_tool",
    "unregister_tool",
    "get_tool",
    "get_tool_factory",
    "available_tools",
]


@runtime_checkable
class DiagnosticTool(Protocol):
    """Anything that can diagnose a Darshan log into a structured report."""

    @property
    def name(self) -> str: ...

    def diagnose(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport: ...

    def usage(self) -> Usage: ...


ToolFactory = Callable[..., DiagnosticTool]


class ToolNotFoundError(RegistryLookupError):
    """Raised when ``get_tool`` is asked for a name nobody registered."""

    noun = "tool"
    available_label = "available tools"

    @property
    def tool_name(self) -> str:
        return self.unknown[0]

    def available_cli_line(self) -> str:
        return "available tools: " + (", ".join(self.available) or "<none>")


_REGISTRY: dict[str, ToolFactory] = {}

# Built-in tools are resolved lazily so importing the registry stays cheap
# and free of cycles (agent → pipeline → core, baselines → llm).
_BUILTIN_MODULES = (
    "repro.core.agent",
    "repro.baselines.drishti.tool",
    "repro.baselines.ion",
    "repro.regression.series",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Flag only set once every builtin imported cleanly, so a failed
    # import surfaces again on the next call instead of leaving the
    # registry silently partial.
    _builtins_loaded = True


def register_tool(name: str, factory: ToolFactory, *, replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Registering an existing name raises unless ``replace=True`` — silent
    shadowing of a comparison tool would corrupt evaluations.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"tool {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = factory


def unregister_tool(name: str) -> None:
    """Remove a registration (no-op if absent); used by tests and plugins."""
    _REGISTRY.pop(name, None)


def available_tools() -> tuple[str, ...]:
    """Registered tool names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_tool_factory(name: str) -> ToolFactory:
    """The raw factory for ``name`` (mainly for introspection)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ToolNotFoundError(name, available_tools()) from None


def get_tool(name: str, **kwargs) -> DiagnosticTool:
    """Instantiate the tool registered under ``name``.

    Keyword arguments the factory's signature does not accept are dropped,
    so generic drivers (CLI, harness) can pass their full knob set to any
    tool.  Factories with a ``**kwargs`` catch-all receive everything.
    """
    factory = get_tool_factory(name)
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / C callables: pass through
        return factory(**kwargs)
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return factory(**kwargs)
    accepted = {
        k: v
        for k, v in kwargs.items()
        if k in params
        and params[k].kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return factory(**accepted)
