"""IOAgent: the end-to-end orchestrator (paper Fig. 2).

Pipeline per trace:

1. split the Darshan log by module (pre-processor);
2. extract categorized JSON summary fragments (Table I);
3. per fragment, in parallel: describe (JSON → NL), retrieve top-15
   knowledge chunks, self-reflect-filter them, diagnose;
4. merge the fragment diagnoses pairwise up a tree;
5. wrap the merged text in a :class:`DiagnosisReport`.

Every LLM interaction goes through :class:`repro.llm.client.LLMClient`, so
the agent is model-agnostic — the paper's headline claim — and the RAG /
reflection / merge-strategy switches exist so the ablation benchmarks can
turn each design element off individually.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.describe import context_sentences, describe_fragment
from repro.core.diagnose import diagnose_fragment
from repro.core.integrate import integrate_fragment
from repro.core.merge import one_step_merge, tree_merge
from repro.core.preprocess import split_modules
from repro.core.report import DiagnosisReport
from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.log import DarshanLog
from repro.llm.client import LLMClient
from repro.rag.index import build_default_index
from repro.rag.retriever import Retriever
from repro.util.parallel import parallel_map

__all__ = ["IOAgentConfig", "IOAgent"]


@dataclass(frozen=True)
class IOAgentConfig:
    """Tunable design switches (defaults reproduce the paper's system)."""

    model: str = "gpt-4o"
    reflection_model: str = "gpt-4o-mini"
    use_rag: bool = True
    use_reflection: bool = True
    merge_strategy: str = "tree"  # 'tree' | 'one-step'
    top_k: int = 15
    max_workers: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.merge_strategy not in ("tree", "one-step"):
            raise ValueError("merge_strategy must be 'tree' or 'one-step'")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")


class IOAgent:
    """The LLM-based I/O diagnosis agent."""

    def __init__(
        self,
        config: IOAgentConfig | None = None,
        client: LLMClient | None = None,
        retriever: Retriever | None = None,
    ) -> None:
        self.config = config or IOAgentConfig()
        self.client = client or LLMClient(seed=self.config.seed)
        if retriever is None and self.config.use_rag:
            retriever = Retriever(build_default_index(), top_k=self.config.top_k)
        self.retriever = retriever

    # -- pipeline ---------------------------------------------------------

    def diagnose(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport:
        """Run the full pipeline over one Darshan log."""
        cfg = self.config
        split_modules(log)  # the pre-processor CSV split (artifact stage)
        fragments = extract_fragments(log)
        app_facts = app_context_facts(log)
        context = context_sentences(app_facts)
        retrieved_total = 0
        kept_total = 0

        def process_fragment(fragment) -> tuple[str, int, int]:
            fid = fragment.fragment_id
            description = describe_fragment(
                fragment, app_facts, self.client, cfg.model, call_id=f"{trace_id}/{fid}/describe"
            )
            sources: list[str] = []
            n_retrieved = 0
            if cfg.use_rag and self.retriever is not None:
                result = integrate_fragment(
                    description,
                    self.retriever,
                    self.client,
                    reflection_model=cfg.reflection_model,
                    call_id=f"{trace_id}/{fid}",
                    use_reflection=cfg.use_reflection,
                    max_workers=cfg.max_workers,
                )
                sources = list(result.kept_sources)
                n_retrieved = len(result.retrieved)
            diagnosis = diagnose_fragment(
                description,
                sources,
                context,
                self.client,
                cfg.model,
                call_id=f"{trace_id}/{fid}/diagnose",
            )
            return diagnosis, n_retrieved, len(sources)

        results = parallel_map(process_fragment, fragments, max_workers=cfg.max_workers)
        summaries = [r[0] for r in results]
        retrieved_total = sum(r[1] for r in results)
        kept_total = sum(r[2] for r in results)

        if not summaries:
            text = "No I/O activity was found in the trace; nothing to diagnose."
        elif cfg.merge_strategy == "tree":
            text = tree_merge(
                summaries,
                self.client,
                cfg.model,
                call_id_prefix=trace_id,
                max_workers=cfg.max_workers,
            )
        else:
            text = one_step_merge(summaries, self.client, cfg.model, call_id_prefix=trace_id)

        return DiagnosisReport(
            trace_id=trace_id,
            model=cfg.model,
            text=text,
            n_fragments=len(fragments),
            sources_retrieved=retrieved_total,
            sources_kept=kept_total,
        )
