"""IOAgent: a thin facade over the default diagnosis pipeline (Fig. 2).

Pipeline per trace (each step a :class:`repro.core.pipeline.Stage`):

1. split the Darshan log by module (pre-processor);
2. extract categorized JSON summary fragments (Table I);
3. describe every fragment (JSON → NL), fragments in parallel;
4. retrieve top-15 knowledge chunks per fragment and self-reflect-filter
   them (skipped entirely when ``use_rag=False``);
5. diagnose every fragment from its description + surviving knowledge;
6. merge the fragment diagnoses pairwise up a tree (or in one step).

``IOAgent`` owns no orchestration logic of its own: it builds the default
:class:`~repro.core.pipeline.DiagnosisPipeline` from its config and
implements the :class:`~repro.core.registry.DiagnosticTool` protocol, so
the CLI, the batch runner, and the Table IV harness all drive it the same
way they drive the baselines.  Every LLM interaction goes through
:class:`repro.llm.client.LLMClient`, so the agent is model-agnostic — the
paper's headline claim — and ablations swap pipeline stages instead of
threading booleans through one long method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.pipeline import (
    DiagnosisPipeline,
    PipelineContext,
    PipelineObserver,
    build_default_pipeline,
)
from repro.core.registry import register_tool
from repro.core.report import DiagnosisReport
from repro.darshan.log import DarshanLog
from repro.llm.client import LLMClient, Usage
from repro.rag.index import build_default_index
from repro.rag.retriever import Retriever

__all__ = ["IOAgentConfig", "IOAgent"]


@dataclass(frozen=True)
class IOAgentConfig:
    """Tunable design switches (defaults reproduce the paper's system)."""

    model: str = "gpt-4o"
    reflection_model: str = "gpt-4o-mini"
    use_rag: bool = True
    use_reflection: bool = True
    # Consume the DXT temporal evidence channel when the log carries it.
    # False reproduces the paper's counter-only system byte-for-byte.
    use_dxt: bool = True
    merge_strategy: str = "tree"  # 'tree' | 'one-step'
    top_k: int = 15
    max_workers: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.merge_strategy not in ("tree", "one-step"):
            raise ValueError("merge_strategy must be 'tree' or 'one-step'")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")


class IOAgent:
    """The LLM-based I/O diagnosis agent (a `DiagnosticTool`)."""

    def __init__(
        self,
        config: IOAgentConfig | None = None,
        client: LLMClient | None = None,
        retriever: Retriever | None = None,
        pipeline: DiagnosisPipeline | None = None,
        observers: Sequence[PipelineObserver] = (),
    ) -> None:
        self.config = config or IOAgentConfig()
        self.client = client or LLMClient(seed=self.config.seed)
        if retriever is None and self.config.use_rag:
            retriever = Retriever(build_default_index(), top_k=self.config.top_k)
        self.retriever = retriever
        self.pipeline = pipeline or build_default_pipeline(self.config, observers=observers)

    # -- DiagnosticTool protocol ------------------------------------------

    @property
    def name(self) -> str:
        return f"ioagent-{self.config.model}"

    def diagnose(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport:
        """Run the full pipeline over one Darshan log."""
        return self.run(log, trace_id).build_report()

    def usage(self) -> Usage:
        """Cumulative LLM spend across every diagnosis this agent ran."""
        return self.client.total_usage()

    # -- pipeline access ---------------------------------------------------

    def run(
        self,
        log: DarshanLog,
        trace_id: str = "trace",
        observers: Sequence[PipelineObserver] = (),
    ) -> PipelineContext:
        """Like :meth:`diagnose` but returns the full pipeline context
        (stage timings, per-stage usage, intermediate products)."""
        return self.pipeline.run(
            log,
            trace_id,
            config=self.config,
            client=self.client,
            retriever=self.retriever,
            observers=observers,
        )


def _build_ioagent(
    model: str = "gpt-4o",
    reflection_model: str | None = None,
    seed: int = 0,
    config: IOAgentConfig | None = None,
    client: LLMClient | None = None,
    retriever: Retriever | None = None,
    **config_kwargs,
) -> IOAgent:
    """Registry factory: build an IOAgent from flat keyword knobs."""
    if config is None:
        if reflection_model is None:
            reflection_model = IOAgentConfig.reflection_model
        config = IOAgentConfig(
            model=model, reflection_model=reflection_model, seed=seed, **config_kwargs
        )
    return IOAgent(config, client=client, retriever=retriever)


register_tool("ioagent", _build_ioagent, replace=True)
