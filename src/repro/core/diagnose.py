"""Fragment-level diagnosis step (paper §IV-B3, last paragraph)."""

from __future__ import annotations

from repro.llm.client import LLMClient
from repro.llm.tasks.diagnose import build_diagnose_prompt

__all__ = ["diagnose_fragment"]


def diagnose_fragment(
    description: str,
    sources: list[str],
    context: str,
    client: LLMClient,
    model: str,
    call_id: str,
) -> str:
    """Produce one fragment's diagnosis from its description + knowledge."""
    prompt = build_diagnose_prompt(
        context_sentences=context, description=description, sources=sources
    )
    return client.complete(prompt, model=model, call_id=call_id).text
