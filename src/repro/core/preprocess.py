"""Module-based pre-processor (paper §IV-A, first stage).

Splits a Darshan log into one CSV table per module — "a set of CSV files,
with each file containing the counters and values from a single Darshan
module" — keeping every module's data intact regardless of total trace
length.  The CSVs are both an intermediate artifact (written to disk on
request, like the real tool) and the input the summary-extraction
functions operate on.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from repro.darshan.log import MODULE_ORDER, DarshanLog

__all__ = ["ModuleTable", "split_modules", "write_module_csvs"]


@dataclass(frozen=True)
class ModuleTable:
    """Per-module tabular view: one row per (file, rank) record."""

    module: str
    columns: tuple[str, ...]  # counter names, in canonical order
    rows: tuple[dict, ...]  # each: {'file', 'rank', counter: value, ...}

    def to_csv(self) -> str:
        """Render as CSV (the pre-processor's on-disk artifact)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(("file", "rank") + self.columns)
        for row in self.rows:
            writer.writerow(
                [row["file"], row["rank"]] + [row.get(col, 0) for col in self.columns]
            )
        return buf.getvalue()


def split_modules(log: DarshanLog) -> dict[str, ModuleTable]:
    """Split ``log`` into per-module tables, in canonical module order."""
    tables: dict[str, ModuleTable] = {}
    for module in MODULE_ORDER:
        records = log.records_for(module)
        if not records:
            continue
        # Union of counter names across records, preserving first-seen
        # order (records of one module share the canonical ordering; the
        # union accommodates variable-length LUSTRE_OST_ID_<k> columns).
        columns: dict[str, None] = {}
        for rec in records:
            for name in rec.counters:
                columns.setdefault(name, None)
            for name in rec.fcounters:
                columns.setdefault(name, None)
        rows = []
        for rec in records:
            row: dict = {"file": rec.path, "rank": rec.rank}
            row.update(rec.counters)
            row.update(rec.fcounters)
            rows.append(row)
        tables[module] = ModuleTable(
            module=module, columns=tuple(columns), rows=tuple(rows)
        )
    return tables


def write_module_csvs(log: DarshanLog, directory: str) -> list[str]:
    """Write one ``<module>.csv`` per module into ``directory``.

    Returns the written paths.  Mirrors the paper's pre-processor output
    layout; used by the quickstart example and the CLI-style workflows.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for module, table in split_modules(log).items():
        path = os.path.join(directory, f"{module.lower()}.csv")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(table.to_csv())
        paths.append(path)
    return paths
