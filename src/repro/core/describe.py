"""JSON-fragment → natural-language transformation (paper §IV-B1, Fig. 3).

The paper's insight: JSON summaries embed poorly against prose-form domain
knowledge, so each fragment is first turned into descriptive natural
language by the LLM — prompted with the extraction code, the JSON values,
and the broader application context — and *that* text becomes the RAG
query.
"""

from __future__ import annotations

from repro.core.summaries import SummaryFragment
from repro.llm.client import LLMClient
from repro.llm.facts import Fact, render_fact
from repro.llm.tasks.describe import build_describe_prompt

__all__ = ["context_sentences", "describe_fragment"]


def context_sentences(app_facts: list[Fact]) -> str:
    """Render the application-context facts into one context string."""
    return " ".join(render_fact(f) for f in app_facts)


def describe_fragment(
    fragment: SummaryFragment,
    app_facts: list[Fact],
    client: LLMClient,
    model: str,
    call_id: str,
) -> str:
    """Run the describe step for one fragment."""
    prompt = build_describe_prompt(
        fragment_json=fragment.to_json(),
        code=fragment.code,
        context_sentences=context_sentences(app_facts),
    )
    return client.complete(prompt, model=model, call_id=call_id).text
