"""Post-diagnosis interactive session (paper §VI-E, Fig. 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import DiagnosisReport
from repro.llm.client import LLMClient
from repro.llm.tasks.chat import build_chat_prompt

__all__ = ["InteractiveSession"]


@dataclass
class InteractiveSession:
    """Chat continuation grounded in a finished diagnosis.

    Each question is answered against the diagnosis text plus the running
    conversation, mirroring how IOAgent "effectively utilized the context
    of the diagnosis and its referenced sources" in the paper's example.
    """

    report: DiagnosisReport
    client: LLMClient
    model: str = "gpt-4o"
    history: list[tuple[str, str]] = field(default_factory=list)  # (question, answer)

    def ask(self, question: str) -> str:
        """Ask a follow-up question; returns (and records) the answer."""
        context_parts = [self.report.text]
        for q, a in self.history:
            context_parts.append(f"Earlier question: {q}\nEarlier answer: {a}")
        prompt = build_chat_prompt("\n\n".join(context_parts), question)
        answer = self.client.complete(
            prompt,
            model=self.model,
            call_id=f"{self.report.trace_id}/chat/{len(self.history)}",
        ).text
        self.history.append((question, answer))
        return answer
