"""Composable diagnosis pipeline (the paper's Fig. 2, as an API).

The IOAgent flow — ``preprocess → summarize → describe → integrate →
diagnose → merge`` — used to live inside one method.  This module breaks
it into pluggable :class:`Stage` objects composed by a
:class:`DiagnosisPipeline`, so ablations swap stages instead of threading
booleans, new backbones plug in without touching orchestration, and every
stage's latency and token spend is observable.

Key pieces:

* :class:`PipelineContext` — the typed carrier threaded through stages:
  the Darshan log, summary fragments, per-fragment intermediate products,
  per-stage wall-clock timings, and per-stage LLM usage;
* :class:`Stage` — the protocol every stage implements (``name`` +
  ``run(ctx)``); the six default stages live here too;
* :class:`PipelineObserver` — event hooks (``on_stage_start``,
  ``on_stage_end``, ``on_llm_call``) for telemetry and progress UIs;
* :class:`DiagnosisPipeline` — runs stages in order, times them, and
  attributes every LLM call made during a stage to that stage;
* :func:`build_default_pipeline` — the paper-default stage list derived
  from an :class:`~repro.core.agent.IOAgentConfig`.

Determinism note: every LLM call is keyed by an explicit ``call_id``, so
re-grouping the per-fragment work into stage-wide parallel sweeps produces
byte-identical reports to the original fused loop.

Failure semantics (the resilience contract):

* every stage declares ``failure_mode`` — ``"abort"`` (its output is
  load-bearing; an exception still fails the run) or ``"degrade"`` (the
  pipeline records a :class:`StageFailure`, the report loses the stage's
  ``channel``, and diagnosis continues on the remaining evidence);
* the per-fragment stages (describe / integrate / diagnose) isolate
  *recovery-layer* failures (:class:`~repro.resilience.errors.
  ResilienceError` only — a genuine bug still propagates): the affected
  fragment is dropped and recorded, the rest of the trace is diagnosed;
* the merge stage falls back to plain concatenation when merging calls
  fail, so a report is always produced once fragment diagnoses exist;
* recovery-layer incidents (retries, circuit trips, injected faults) are
  attributed to the running stage via the client's fault listener and
  surfaced through ``PipelineContext.stage_faults`` and the
  ``on_fault_event`` observer hook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.core.describe import context_sentences, describe_fragment
from repro.core.diagnose import diagnose_fragment
from repro.core.integrate import IntegrationResult, integrate_fragment
from repro.core.merge import one_step_merge, tree_merge
from repro.core.preprocess import ModuleTable, split_modules
from repro.core.report import DiagnosisReport
from repro.core.summaries import SummaryFragment, app_context_facts, extract_fragments
from repro.darshan.log import DarshanLog
from repro.llm.client import FaultEvent, LLMClient, Usage
from repro.llm.facts import Fact
from repro.rag.retriever import Retriever
from repro.resilience.errors import ResilienceError
from repro.util.parallel import parallel_map

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.agent import IOAgentConfig

__all__ = [
    "PipelineContext",
    "StageFailure",
    "Stage",
    "PipelineObserver",
    "DiagnosisPipeline",
    "PreprocessStage",
    "SummarizeStage",
    "TemporalStage",
    "DescribeStage",
    "IntegrateStage",
    "DiagnoseStage",
    "MergeStage",
    "DEFAULT_STAGE_ORDER",
    "DEFAULT_STAGE_CLASSES",
    "build_default_pipeline",
]

DEFAULT_STAGE_ORDER = (
    "preprocess",
    "summarize",
    "temporal",
    "describe",
    "integrate",
    "diagnose",
    "merge",
)


@dataclass(frozen=True)
class StageFailure:
    """One absorbed failure: what broke, and which evidence it cost.

    ``channel`` names the lost evidence — a whole channel for a degraded
    stage (``"dxt-temporal"``, ``"knowledge"``, ``"merge"``) or
    ``"fragment:<id>"`` for a dropped fragment — and feeds the report's
    ``degraded`` annotation.
    """

    stage: str
    channel: str
    error: str
    fragment_id: str = ""


@dataclass
class PipelineContext:
    """Everything a stage may read or write while diagnosing one trace.

    Stages communicate exclusively through this object: earlier stages
    populate fields that later stages consume (``fragments`` feeds
    ``descriptions`` feeds ``integrations`` feeds ``diagnoses`` feeds
    ``merged_text``).  The pipeline itself fills the telemetry fields
    (``stage_seconds``, ``stage_usage``).
    """

    log: DarshanLog
    trace_id: str
    config: "IOAgentConfig"
    client: LLMClient
    retriever: Retriever | None = None

    # Stage products, in pipeline order.
    module_tables: dict[str, ModuleTable] = field(default_factory=dict)
    fragments: list[SummaryFragment] = field(default_factory=list)
    app_facts: list[Fact] = field(default_factory=list)
    context: str = ""
    descriptions: dict[str, str] = field(default_factory=dict)
    integrations: dict[str, IntegrationResult] = field(default_factory=dict)
    diagnoses: dict[str, str] = field(default_factory=dict)
    merged_text: str = ""

    # Telemetry: wall-clock seconds and LLM usage attributed per stage.
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stage_usage: dict[str, Usage] = field(default_factory=dict)

    # Resilience: absorbed failures and per-stage fault-event counts
    # (stage -> fault kind -> count).
    stage_failures: list[StageFailure] = field(default_factory=list)
    stage_faults: dict[str, dict[str, int]] = field(default_factory=dict)
    failure_lock: Lock = field(default_factory=Lock, repr=False)

    def record_failure(
        self, stage: str, channel: str, error: str, fragment_id: str = ""
    ) -> None:
        """Log one absorbed failure (thread-safe: fragments run in parallel)."""
        failure = StageFailure(
            stage=stage, channel=channel, error=error, fragment_id=fragment_id
        )
        with self.failure_lock:
            self.stage_failures.append(failure)

    @property
    def degraded_channels(self) -> tuple[str, ...]:
        """Evidence channels lost to absorbed failures (sorted, unique).

        Sorted rather than arrival-ordered so the report stays
        byte-identical across thread schedules.
        """
        with self.failure_lock:
            channels = {f.channel for f in self.stage_failures if f.channel}
        return tuple(sorted(channels))

    @property
    def sources_retrieved(self) -> int:
        return sum(len(r.retrieved) for r in self.integrations.values())

    @property
    def sources_kept(self) -> int:
        return sum(len(r.kept_sources) for r in self.integrations.values())

    def fragment_sources(self, fragment_id: str) -> list[str]:
        """Knowledge sources kept for one fragment ([] when RAG is off)."""
        result = self.integrations.get(fragment_id)
        return list(result.kept_sources) if result is not None else []

    def build_report(self) -> DiagnosisReport:
        """Assemble the final report from the accumulated stage products."""
        return DiagnosisReport(
            trace_id=self.trace_id,
            model=self.config.model,
            text=self.merged_text,
            n_fragments=len(self.fragments),
            sources_retrieved=self.sources_retrieved,
            sources_kept=self.sources_kept,
            degraded=self.degraded_channels,
        )


@runtime_checkable
class Stage(Protocol):
    """One pipeline step: reads/writes the context, nothing else.

    Stages additionally declare their failure contract via two (class)
    attributes, defaulted by the pipeline when absent: ``failure_mode``
    (``"abort"`` — the default — or ``"degrade"``) and ``channel`` (the
    evidence channel a degraded stage costs; required non-empty when
    ``failure_mode == "degrade"``, enforced by the analysis suite's
    resilience-contract check).
    """

    name: str

    def run(self, ctx: PipelineContext) -> None: ...


class PipelineObserver:
    """Event-hook base class; subclass and override what you need.

    All hooks are no-ops by default.  ``on_llm_call`` may fire from worker
    threads (stages parallelize per-fragment work), so stateful observers
    must synchronize their own accumulation.
    """

    def on_stage_start(self, stage: str, ctx: PipelineContext) -> None: ...

    def on_stage_end(self, stage: str, ctx: PipelineContext, seconds: float) -> None: ...

    def on_llm_call(
        self, stage: str, ctx: PipelineContext, model: str, usage: Usage, call_id: str
    ) -> None: ...

    def on_fault_event(
        self, stage: str, ctx: PipelineContext, event: FaultEvent
    ) -> None: ...


# -- the six default stages ----------------------------------------------


class PreprocessStage:
    """Module-based pre-processor: split the log into per-module tables."""

    name = "preprocess"
    failure_mode = "abort"  # everything downstream reads its tables
    channel = ""

    def run(self, ctx: PipelineContext) -> None:
        ctx.module_tables = split_modules(ctx.log)


class SummarizeStage:
    """Extract categorized JSON summary fragments + application context."""

    name = "summarize"
    failure_mode = "abort"  # without fragments there is nothing to diagnose
    channel = ""

    def run(self, ctx: PipelineContext) -> None:
        ctx.fragments = extract_fragments(ctx.log)
        ctx.app_facts = app_context_facts(ctx.log)
        ctx.context = context_sentences(ctx.app_facts)


class TemporalStage:
    """Fold DXT temporal evidence into the fragment stream.

    When the log carries DXT segments (simulated runs always do; parsed
    ``darshan-parser`` text never does), the timeline analysis —
    burst/phase structure, per-rank time skew, concurrency, idle gaps,
    per-file throughput skew — becomes one more summary fragment
    (``DXT.timeline``) that the describe/diagnose stages treat exactly
    like a counter-derived one.  Without segments the stage is a no-op,
    so counter-only traces flow through unchanged.

    Temporal evidence is additive, so this stage *degrades*: if it fails,
    the run continues on counter evidence alone and the report is marked
    degraded on the ``dxt-temporal`` channel — exactly the ``use_dxt=False``
    ablation, arrived at involuntarily.
    """

    name = "temporal"
    failure_mode = "degrade"
    channel = "dxt-temporal"

    def run(self, ctx: PipelineContext) -> None:
        import inspect

        from repro.darshan.dxt import cached_temporal_facts, dxt_temporal_facts

        facts = cached_temporal_facts(ctx.log)
        if not facts:
            return
        ctx.fragments.append(
            SummaryFragment(
                module="DXT",
                category="timeline",
                facts=tuple(facts),
                code=inspect.getsource(dxt_temporal_facts),
            )
        )


class DescribeStage:
    """JSON fragment → natural-language description, fragments in parallel.

    Per-fragment isolation: a fragment whose calls exhaust the recovery
    layer (``ResilienceError`` only — real bugs still propagate) is
    dropped and recorded as a lost ``fragment:<id>`` channel; the rest of
    the trace is still diagnosed.
    """

    name = "describe"
    failure_mode = "abort"  # whole-stage crashes are real bugs
    channel = ""

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config

        def describe(fragment: SummaryFragment) -> tuple[str, str | None]:
            fid = fragment.fragment_id
            try:
                text: str | None = describe_fragment(
                    fragment,
                    ctx.app_facts,
                    ctx.client,
                    cfg.model,
                    call_id=f"{ctx.trace_id}/{fid}/describe",
                )
            except ResilienceError as exc:
                ctx.record_failure(self.name, f"fragment:{fid}", repr(exc), fragment_id=fid)
                text = None
            return fid, text

        ctx.descriptions = {
            fid: text
            for fid, text in parallel_map(describe, ctx.fragments, max_workers=cfg.max_workers)
            if text is not None
        }


class IntegrateStage:
    """Retrieve + self-reflection-filter domain knowledge per fragment.

    Knowledge is an enhancement, not a prerequisite (``use_rag=False`` is
    a paper ablation) — so both a whole-stage failure and a per-fragment
    recovery exhaustion degrade to diagnosis-without-knowledge, recorded
    on the ``knowledge`` channel.
    """

    name = "integrate"
    failure_mode = "degrade"
    channel = "knowledge"

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        if ctx.retriever is None:
            ctx.integrations = {}
            return

        def integrate(fragment: SummaryFragment) -> tuple[str, IntegrationResult | None]:
            fid = fragment.fragment_id
            if fid not in ctx.descriptions:  # fragment already dropped upstream
                return fid, None
            try:
                result: IntegrationResult | None = integrate_fragment(
                    ctx.descriptions[fid],
                    ctx.retriever,
                    ctx.client,
                    reflection_model=cfg.reflection_model,
                    call_id=f"{ctx.trace_id}/{fid}",
                    use_reflection=cfg.use_reflection,
                    max_workers=cfg.max_workers,
                )
            except ResilienceError as exc:
                ctx.record_failure(self.name, self.channel, repr(exc), fragment_id=fid)
                result = None
            return fid, result

        ctx.integrations = {
            fid: result
            for fid, result in parallel_map(
                integrate, ctx.fragments, max_workers=cfg.max_workers
            )
            if result is not None
        }


class DiagnoseStage:
    """Per-fragment diagnosis from description + surviving knowledge.

    Fragments dropped upstream are skipped; a fragment whose diagnosis
    calls exhaust recovery is dropped here with the same isolation as
    :class:`DescribeStage`.
    """

    name = "diagnose"
    failure_mode = "abort"
    channel = ""

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config

        def diagnose(fragment: SummaryFragment) -> tuple[str, str | None]:
            fid = fragment.fragment_id
            if fid not in ctx.descriptions:  # fragment already dropped upstream
                return fid, None
            try:
                text: str | None = diagnose_fragment(
                    ctx.descriptions[fid],
                    ctx.fragment_sources(fid),
                    ctx.context,
                    ctx.client,
                    cfg.model,
                    call_id=f"{ctx.trace_id}/{fid}/diagnose",
                )
            except ResilienceError as exc:
                ctx.record_failure(self.name, f"fragment:{fid}", repr(exc), fragment_id=fid)
                text = None
            return fid, text

        ctx.diagnoses = {
            fid: text
            for fid, text in parallel_map(diagnose, ctx.fragments, max_workers=cfg.max_workers)
            if text is not None
        }


class MergeStage:
    """Merge fragment diagnoses into the final text (tree or one-step).

    A report must exist whenever fragment diagnoses exist, so merge never
    aborts on recovery-layer failure: if the merging calls exhaust
    recovery, the stage falls back to plain concatenation of the fragment
    diagnoses and records the lost ``merge`` channel (the findings are all
    there — only the cross-fragment synthesis is missing).
    """

    name = "merge"
    failure_mode = "abort"  # fallback below handles recovery-layer failures
    channel = ""

    def __init__(self, strategy: str = "tree") -> None:
        if strategy not in ("tree", "one-step"):
            raise ValueError("merge strategy must be 'tree' or 'one-step'")
        self.strategy = strategy

    def run(self, ctx: PipelineContext) -> None:
        cfg = ctx.config
        summaries = [
            ctx.diagnoses[f.fragment_id]
            for f in ctx.fragments
            if f.fragment_id in ctx.diagnoses
        ]
        if not summaries:
            if ctx.fragments:
                ctx.merged_text = (
                    "Diagnosis unavailable: every summary fragment was lost to "
                    "backend failures; no evidence survived to analyze."
                )
            else:
                ctx.merged_text = (
                    "No I/O activity was found in the trace; nothing to diagnose."
                )
            return
        try:
            if self.strategy == "tree":
                ctx.merged_text = tree_merge(
                    summaries,
                    ctx.client,
                    cfg.model,
                    call_id_prefix=ctx.trace_id,
                    max_workers=cfg.max_workers,
                )
            else:
                ctx.merged_text = one_step_merge(
                    summaries, ctx.client, cfg.model, call_id_prefix=ctx.trace_id
                )
        except ResilienceError as exc:
            ctx.record_failure(self.name, "merge", repr(exc))
            ctx.merged_text = "\n\n".join(summaries)


# -- the pipeline itself --------------------------------------------------


class DiagnosisPipeline:
    """Runs stages in order over a :class:`PipelineContext`.

    The pipeline times each stage and attributes every LLM completion made
    while a stage runs to that stage (stages execute sequentially, so a
    single "current stage" marker is sound even though a stage fans its
    own work out across threads).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        observers: Sequence[PipelineObserver] = (),
    ) -> None:
        self.stages: tuple[Stage, ...] = tuple(stages)
        self.observers: tuple[PipelineObserver, ...] = tuple(observers)
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def run(
        self,
        log: DarshanLog,
        trace_id: str,
        *,
        config: "IOAgentConfig",
        client: LLMClient,
        retriever: Retriever | None = None,
        observers: Sequence[PipelineObserver] = (),
    ) -> PipelineContext:
        """Execute every stage over one trace; returns the full context.

        ``observers`` extends (per call) the observers bound at
        construction — the service layer uses this to attach per-batch
        metric collectors without mutating a shared pipeline.
        """
        ctx = PipelineContext(
            log=log, trace_id=trace_id, config=config, client=client, retriever=retriever
        )
        all_observers = self.observers + tuple(observers)
        current_stage = ""
        usage_lock = Lock()
        # Concurrent runs may share one client; every call this run makes
        # is namespaced under its trace_id, so filter out other runs' calls
        # (otherwise usage would be cross-attributed between traces).
        call_prefix = f"{trace_id}/"

        def on_usage(model: str, usage: Usage, call_id: str) -> None:
            if not call_id.startswith(call_prefix):
                return
            with usage_lock:
                ctx.stage_usage.setdefault(current_stage, Usage()).add(usage)
            for obs in all_observers:
                obs.on_llm_call(current_stage, ctx, model, usage, call_id)

        def on_fault(event: FaultEvent) -> None:
            if event.call_id and not event.call_id.startswith(call_prefix):
                return
            with usage_lock:
                per_stage = ctx.stage_faults.setdefault(current_stage, {})
                per_stage[event.kind] = per_stage.get(event.kind, 0) + 1
            if event.kind == "garbled":
                # A mangled completion is corrupted evidence the pipeline
                # cannot repair: mark the channel lost so the report says
                # degraded and the service refuses to cache it.
                ctx.record_failure(
                    current_stage,
                    "llm-completions",
                    f"garbled completion in call {event.call_id!r}",
                )
            for obs in all_observers:
                obs.on_fault_event(current_stage, ctx, event)

        client.add_usage_listener(on_usage)
        client.add_fault_listener(on_fault)
        try:
            for stage in self.stages:
                current_stage = stage.name
                for obs in all_observers:
                    obs.on_stage_start(stage.name, ctx)
                started = time.perf_counter()
                try:
                    stage.run(ctx)
                except Exception as exc:
                    if getattr(stage, "failure_mode", "abort") != "degrade":
                        raise
                    # Degradable stage: absorb ANY failure (its evidence is
                    # additive), record the lost channel, keep diagnosing.
                    channel = getattr(stage, "channel", "") or stage.name
                    ctx.record_failure(stage.name, channel, repr(exc))
                finally:
                    elapsed = time.perf_counter() - started
                    ctx.stage_seconds[stage.name] = (
                        ctx.stage_seconds.get(stage.name, 0.0) + elapsed
                    )
                    for obs in all_observers:
                        obs.on_stage_end(stage.name, ctx, elapsed)
        finally:
            client.remove_usage_listener(on_usage)
            client.remove_fault_listener(on_fault)
        return ctx


# The default stage classes in pipeline order (the analysis suite's
# resilience-contract check audits their failure_mode/channel declarations).
DEFAULT_STAGE_CLASSES: tuple[type, ...] = (
    PreprocessStage,
    SummarizeStage,
    TemporalStage,
    DescribeStage,
    IntegrateStage,
    DiagnoseStage,
    MergeStage,
)


def build_default_pipeline(
    config: "IOAgentConfig",
    observers: Sequence[PipelineObserver] = (),
) -> DiagnosisPipeline:
    """The paper-default stage list for one config.

    Ablation switches map to stage composition: ``use_rag=False`` drops
    the integrate stage entirely, ``use_dxt=False`` drops the temporal
    stage (reproducing the paper's counter-only system exactly);
    ``merge_strategy`` picks the merge variant.  (``use_reflection``
    stays a parameter of the integrate stage because it alters behavior
    *within* the stage.)
    """
    stages: list[Stage] = [PreprocessStage(), SummarizeStage()]
    if config.use_dxt:
        stages.append(TemporalStage())
    stages.append(DescribeStage())
    if config.use_rag:
        stages.append(IntegrateStage())
    stages.append(DiagnoseStage())
    stages.append(MergeStage(strategy=config.merge_strategy))
    return DiagnosisPipeline(stages, observers=observers)
