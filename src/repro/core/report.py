"""The final diagnosis report object."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.llm.findings import Finding, parse_findings

__all__ = ["DiagnosisReport"]


@dataclass(frozen=True)
class DiagnosisReport:
    """IOAgent's end product for one trace.

    ``text`` is the full merged diagnosis (what a user reads and what the
    evaluation judges); the structured views are parsed from it.
    """

    trace_id: str
    model: str
    text: str
    n_fragments: int = 0
    sources_retrieved: int = 0
    sources_kept: int = 0
    # Evidence channels lost to stage failures/faults while diagnosing
    # (e.g. ``("dxt-temporal",)``); empty for a clean, full-fidelity run.
    degraded: tuple[str, ...] = ()

    @cached_property
    def findings(self) -> tuple[Finding, ...]:
        """Structured findings parsed back out of the report text."""
        return tuple(parse_findings(self.text))

    @cached_property
    def issue_keys(self) -> frozenset[str]:
        """The set of diagnosed issue keys."""
        return frozenset(f.issue_key for f in self.findings)

    @cached_property
    def references(self) -> tuple[str, ...]:
        """Union of all cited references, first-seen order."""
        seen: dict[str, None] = {}
        for finding in self.findings:
            for ref in finding.references:
                seen.setdefault(ref, None)
        return tuple(seen)

    def render(self) -> str:
        """Human-facing rendering with a short header."""
        header = (
            f"I/O performance diagnosis for trace '{self.trace_id}' "
            f"(model: {self.model}; {len(self.findings)} issue(s) identified; "
            f"{len(self.references)} reference(s))."
        )
        if self.degraded:
            header += (
                " DEGRADED: produced without the "
                f"{', '.join(self.degraded)} evidence channel(s)."
            )
        return f"{header}\n\n{self.text}"
