"""Summary-extraction functions (paper §IV-A, Table I).

Each Darshan module exposes a set of *summary categories*; each category
has its own extraction function computing a compact JSON fragment (a list
of typed facts) from the module's counters.  Coverage reproduces Table I:

===========  ======================================================
Module       Categories
===========  ======================================================
POSIX        io_size, request_count, file_metadata, rank, alignment,
             order, mount
MPIIO        io_size, request_count, file_metadata, rank, alignment
STDIO        io_size, request_count, file_metadata
LUSTRE       mount, stripe_setting, server_usage
===========  ======================================================

Everything here is computed *exactly* from counters — the paper's point is
that metadata extraction should not rely on "the limited capabilities of
LLMs for metadata retrieval".
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from repro.darshan.counters import SIZE_BIN_SUFFIXES
from repro.darshan.log import DarshanLog
from repro.llm.facts import Fact
from repro.util.stats import gini

__all__ = [
    "SummaryFragment",
    "SUMMARY_COVERAGE",
    "extract_fragments",
    "app_context_facts",
]

# Table I coverage matrix.
SUMMARY_COVERAGE: dict[str, tuple[str, ...]] = {
    "POSIX": (
        "io_size",
        "request_count",
        "file_metadata",
        "rank",
        "alignment",
        "order",
        "mount",
    ),
    "MPIIO": ("io_size", "request_count", "file_metadata", "rank", "alignment"),
    "STDIO": ("io_size", "request_count", "file_metadata"),
    "LUSTRE": ("mount", "stripe_setting", "server_usage"),
}

# Representative byte size per Darshan histogram bin (midpoint-ish).
_BIN_MID = np.array(
    [50, 562, 5_632, 56_320, 575_488, 2_621_440, 7_340_032, 57_671_680, 589_299_712, 2_147_483_648],
    dtype=np.float64,
)
# Bins whose entire range lies below 128 KiB.
_SMALL_BINS = 4


@dataclass(frozen=True)
class SummaryFragment:
    """One (module, category) JSON summary fragment."""

    module: str
    category: str
    facts: tuple[Fact, ...]
    code: str  # source of the extraction function (goes into the prompt)

    @property
    def fragment_id(self) -> str:
        return f"{self.module}.{self.category}"

    def to_json(self) -> dict:
        """JSON view of the fragment (the pre-processor artifact)."""
        return {
            "module": self.module,
            "category": self.category,
            "facts": [{"kind": f.kind, **f.data} for f in self.facts],
        }


# ---------------------------------------------------------------------------
# Helpers over records
# ---------------------------------------------------------------------------


def _size_hist(records, module: str, direction: str) -> np.ndarray:
    agg = "_AGG" if module == "MPIIO" else ""
    names = [f"{module}_SIZE_{direction.upper()}{agg}_{s}" for s in SIZE_BIN_SUFFIXES]
    hist = np.zeros(len(names), dtype=np.float64)
    for rec in records:
        for i, name in enumerate(names):
            hist[i] += rec.counters.get(name, 0)
    return hist


def _hist_p50(hist: np.ndarray) -> int:
    total = hist.sum()
    if total == 0:
        return 0
    cdf = np.cumsum(hist)
    idx = int(np.searchsorted(cdf, total / 2.0))
    return int(_BIN_MID[min(idx, len(_BIN_MID) - 1)])


def _dir_ops(rec, module: str, direction: str) -> int:
    if module == "MPIIO":
        stem = "READS" if direction == "read" else "WRITES"
        return sum(
            rec.counters.get(f"MPIIO_{kind}_{stem}", 0) for kind in ("INDEP", "COLL", "NB")
        )
    return rec.counters.get(f"{module}_{'READS' if direction == 'read' else 'WRITES'}", 0)


# ---------------------------------------------------------------------------
# Category extraction functions (one per Table I cell)
# ---------------------------------------------------------------------------


def extract_io_size(log: DarshanLog, module: str) -> list[Fact]:
    """I/O size distribution per direction (plus STDIO's volume share)."""
    records = log.records_for(module)
    facts: list[Fact] = []
    if module == "STDIO":
        # STDIO has no size histogram; report its share of total volume.
        for direction, word in (("read", "read"), ("write", "written")):
            stdio = sum(r.counters.get(f"STDIO_BYTES_{word.upper()}", 0) for r in records)
            total = int(log.total(f"POSIX_BYTES_{word.upper()}")) + stdio
            if total > 0:
                facts.append(
                    Fact(
                        "stdio_share",
                        {
                            "direction": word,
                            "share": stdio / total,
                            "stdio_bytes": int(stdio),
                            "total_bytes": int(total),
                        },
                    )
                )
        return facts
    for direction in ("read", "write"):
        hist = _size_hist(records, module, direction)
        n = int(hist.sum())
        if n == 0:
            continue
        facts.append(
            Fact(
                "size_hist",
                {
                    "module": module,
                    "direction": direction,
                    "p50_bytes": _hist_p50(hist),
                    "n_requests": n,
                    "small_fraction": float(hist[:_SMALL_BINS].sum() / n),
                },
            )
        )
    return facts


def extract_request_count(log: DarshanLog, module: str) -> list[Fact]:
    """Operation counts, volumes, and (for MPI-IO) collective usage."""
    records = log.records_for(module)
    reads = sum(_dir_ops(r, module, "read") for r in records)
    writes = sum(_dir_ops(r, module, "write") for r in records)
    facts = [
        Fact(
            "counts",
            {"module": module, "reads": int(reads), "writes": int(writes), "n_files": len(records)},
        ),
        Fact(
            "volume",
            {
                "module": module,
                "bytes_read": int(log.total(f"{module}_BYTES_READ")),
                "bytes_written": int(log.total(f"{module}_BYTES_WRITTEN")),
            },
        ),
    ]
    if module == "MPIIO":
        facts.append(
            Fact(
                "mpi_ops",
                {
                    "indep_reads": int(log.total("MPIIO_INDEP_READS")),
                    "indep_writes": int(log.total("MPIIO_INDEP_WRITES")),
                    "coll_reads": int(log.total("MPIIO_COLL_READS")),
                    "coll_writes": int(log.total("MPIIO_COLL_WRITES")),
                },
            )
        )
    return facts


def extract_file_metadata(log: DarshanLog, module: str) -> list[Fact]:
    """Metadata time/ops and shared-file accounting."""
    records = log.records_for(module)
    meta_time = sum(r.fcounters.get(f"{module}_F_META_TIME", 0.0) for r in records)
    data_time = sum(
        r.fcounters.get(f"{module}_F_READ_TIME", 0.0)
        + r.fcounters.get(f"{module}_F_WRITE_TIME", 0.0)
        for r in records
    )
    if module == "POSIX":
        meta_ops = int(
            log.total("POSIX_OPENS")
            + log.total("POSIX_STATS")
            + log.total("POSIX_SEEKS")
            + log.total("POSIX_FSYNCS")
        )
    elif module == "MPIIO":
        meta_ops = int(
            log.total("MPIIO_INDEP_OPENS") + log.total("MPIIO_COLL_OPENS") + log.total("MPIIO_SYNCS")
        )
    else:
        meta_ops = int(
            log.total("STDIO_OPENS") + log.total("STDIO_SEEKS") + log.total("STDIO_FLUSHES")
        )
    total_time = meta_time + data_time
    facts = [
        Fact(
            "meta",
            {
                "module": module,
                "meta_time_s": float(meta_time),
                "data_time_s": float(data_time),
                "meta_ops": meta_ops,
                "meta_fraction": float(meta_time / total_time) if total_time > 0 else 0.0,
            },
        )
    ]
    if module == "POSIX":
        # Only files carrying substantial traffic count: small shared
        # config/header files are normal, not a Shared File Access issue.
        shared = [
            (r.path, r.counters.get("POSIX_BYTES_READ", 0) + r.counters.get("POSIX_BYTES_WRITTEN", 0))
            for r in records
            if r.shared
        ]
        shared = [(p, b) for p, b in shared if b >= 16 * 1024 * 1024]
        if shared:
            shared.sort(key=lambda pb: -pb[1])
            total = int(log.total("POSIX_BYTES_READ") + log.total("POSIX_BYTES_WRITTEN"))
            facts.append(
                Fact(
                    "shared",
                    {
                        "n_shared_files": len(shared),
                        "shared_bytes": int(sum(b for _, b in shared)),
                        "total_bytes": total,
                        "example_path": shared[0][0],
                    },
                )
            )
    return facts


def extract_rank(log: DarshanLog, module: str) -> list[Fact]:
    """Per-rank balance: Gini over per-rank volume + shared-record variance.

    Files collapsed into shared records hide their per-rank distribution;
    for those, Darshan's variance counters are normalized by the squared
    per-rank mean and folded in as the variance signal, exactly the way an
    expert reads ``*_F_VARIANCE_RANK_BYTES``.
    """
    records = log.records_for(module)
    nprocs = log.header.nprocs
    per_rank = np.zeros(max(nprocs, 1), dtype=np.float64)
    norm_var = 0.0
    for rec in records:
        nbytes = rec.counters.get(f"{module}_BYTES_READ", 0) + rec.counters.get(
            f"{module}_BYTES_WRITTEN", 0
        )
        if nbytes == 0:
            continue
        if rec.shared:
            per_rank += nbytes / nprocs  # balanced-share approximation
            mean = nbytes / nprocs
            var = rec.fcounters.get(f"{module}_F_VARIANCE_RANK_BYTES", 0.0)
            if mean > 0:
                norm_var = max(norm_var, var / (mean * mean))
        elif rec.rank < nprocs:
            per_rank[rec.rank] += nbytes
    if per_rank.sum() == 0:
        return []
    return [
        Fact(
            "rank_balance",
            {
                "module": module,
                "gini": float(gini(per_rank)),
                "norm_variance": float(norm_var),
                "nprocs": nprocs,
            },
        )
    ]


def extract_alignment(log: DarshanLog, module: str) -> list[Fact]:
    """Per-direction misalignment estimate.

    POSIX tracks ``POSIX_FILE_NOT_ALIGNED`` per record but not per
    direction; the per-file unaligned fraction is apportioned to reads and
    writes by their op counts.  MPI-IO (which has no alignment counters)
    falls back to divisibility of the dominant aggregate request size.
    """
    records = log.records_for(module)
    facts: list[Fact] = []
    if module == "POSIX":
        unaligned = {"read": 0.0, "write": 0.0}
        ops = {"read": 0, "write": 0}
        common: dict[str, dict[int, int]] = {"read": {}, "write": {}}
        alignment = 4096
        for rec in records:
            reads = rec.counters.get("POSIX_READS", 0)
            writes = rec.counters.get("POSIX_WRITES", 0)
            total = reads + writes
            if total == 0:
                continue
            alignment = rec.counters.get("POSIX_FILE_ALIGNMENT", alignment) or alignment
            frac = rec.counters.get("POSIX_FILE_NOT_ALIGNED", 0) / total
            unaligned["read"] += frac * reads
            unaligned["write"] += frac * writes
            ops["read"] += reads
            ops["write"] += writes
            size = rec.counters.get("POSIX_ACCESS1_ACCESS", 0)
            count = rec.counters.get("POSIX_ACCESS1_COUNT", 0)
            direction = "read" if reads >= writes else "write"
            if size:
                common[direction][size] = common[direction].get(size, 0) + count
        for direction in ("read", "write"):
            if ops[direction] == 0:
                continue
            sizes = common[direction] or common["write" if direction == "read" else "read"]
            common_size = max(sizes, key=sizes.get) if sizes else 0
            facts.append(
                Fact(
                    "alignment",
                    {
                        "module": module,
                        "direction": direction,
                        "unaligned_fraction": float(unaligned[direction] / ops[direction]),
                        "alignment": int(alignment),
                        "common_size": int(common_size),
                    },
                )
            )
        return facts
    # MPI-IO carries no alignment counters of its own; the analyst's move
    # (and ours) is to read the lowered POSIX records of the same files.
    mpiio_paths = {rec.path for rec in records}
    posix = [r for r in log.records_for("POSIX") if r.path in mpiio_paths]
    if not posix:
        return []
    sub = DarshanLog(header=log.header, records=posix)
    for fact in extract_alignment(sub, "POSIX"):
        facts.append(
            Fact(
                "alignment",
                {**fact.data, "module": "MPIIO"},
            )
        )
    return facts


def extract_order(log: DarshanLog, module: str) -> list[Fact]:
    """Sequentiality per direction, plus the strongest re-read signal.

    Darshan's SEQ counters can never count a stream's *first* operation
    (there is no predecessor), so the denominator excludes one op per
    access stream — one per rank per shared record, one per single-rank
    record — otherwise one-shot-per-file workloads look spuriously random.
    """
    records = log.records_for(module)
    nprocs = log.header.nprocs
    facts: list[Fact] = []
    for direction, stem in (("read", "READ"), ("write", "WRITE")):
        ops = 0
        seq = 0.0
        consec = 0.0
        streams = 0
        for rec in records:
            rec_ops = rec.counters.get(f"POSIX_{stem}S", 0)
            if rec_ops == 0:
                continue
            ops += rec_ops
            seq += rec.counters.get(f"POSIX_SEQ_{stem}S", 0)
            consec += rec.counters.get(f"POSIX_CONSEC_{stem}S", 0)
            streams += min(nprocs if rec.shared else 1, rec_ops)
        effective = ops - streams
        if effective < 20:
            continue  # too few follow-on ops for an order judgment
        facts.append(
            Fact(
                "order",
                {
                    "module": module,
                    "direction": direction,
                    "seq_fraction": min(1.0, seq / effective),
                    "consec_fraction": min(1.0, consec / effective),
                },
            )
        )
    best_ratio, best = 0.0, None
    for rec in records:
        bytes_read = rec.counters.get("POSIX_BYTES_READ", 0)
        extent = rec.counters.get("POSIX_MAX_BYTE_READ", 0) + 1
        if bytes_read >= 8 * 1024 * 1024 and extent > 1:
            ratio = bytes_read / extent
            if ratio > best_ratio:
                best_ratio, best = ratio, rec
    if best is not None and best_ratio >= 1.5:
        facts.append(
            Fact(
                "repetition",
                {
                    "path": best.path,
                    "ratio": float(best_ratio),
                    "bytes_read": int(best.counters.get("POSIX_BYTES_READ", 0)),
                    "extent": int(best.counters.get("POSIX_MAX_BYTE_READ", 0) + 1),
                },
            )
        )
    return facts


def extract_mount(log: DarshanLog, module: str) -> list[Fact]:
    """Mount point / filesystem type of the module's records."""
    records = log.records_for(module)
    seen: dict[tuple[str, str], None] = {}
    for rec in records:
        seen.setdefault((rec.fs_type, rec.mount_point), None)
    return [
        Fact("mount", {"fs_type": fs_type, "mount": mount}) for fs_type, mount in seen
    ]


def extract_stripe_setting(log: DarshanLog, module: str) -> list[Fact]:
    """Stripe layouts, grouped by (width, size), largest groups first."""
    records = log.records_for("LUSTRE")
    groups: dict[tuple[int, int, str], int] = {}
    for rec in records:
        key = (
            rec.counters.get("LUSTRE_STRIPE_WIDTH", 0),
            rec.counters.get("LUSTRE_STRIPE_SIZE", 0),
            rec.mount_point,
        )
        groups[key] = groups.get(key, 0) + 1
    facts = []
    for (width, size, mount), n_files in sorted(groups.items(), key=lambda kv: -kv[1])[:3]:
        facts.append(
            Fact(
                "stripe",
                {"n_files": n_files, "mount": mount, "stripe_width": width, "stripe_size": size},
            )
        )
    return facts


def extract_server_usage(log: DarshanLog, module: str) -> list[Fact]:
    """Effective OST utilization from stripe maps and per-file volume.

    Per-file bytes (POSIX + STDIO, which carry the actual data movement)
    are spread evenly over the file's OST list — round-robin striping makes
    that a good approximation — then summarized as the effective number of
    OSTs (inverse Herfindahl index) and the busiest OST's share.
    """
    lustre = {rec.path: rec for rec in log.records_for("LUSTRE")}
    if not lustre:
        return []
    num_osts = max(rec.counters.get("LUSTRE_OSTS", 0) for rec in lustre.values())
    if num_osts <= 0:
        return []
    ost_bytes = np.zeros(num_osts, dtype=np.float64)
    for mod in ("POSIX", "STDIO"):
        for rec in log.records_for(mod):
            lrec = lustre.get(rec.path)
            if lrec is None:
                continue
            nbytes = rec.counters.get(f"{mod}_BYTES_READ", 0) + rec.counters.get(
                f"{mod}_BYTES_WRITTEN", 0
            )
            if nbytes == 0:
                continue
            width = lrec.counters.get("LUSTRE_STRIPE_WIDTH", 1)
            osts = [
                lrec.counters.get(f"LUSTRE_OST_ID_{i}", 0) % num_osts for i in range(width)
            ]
            for ost in osts:
                ost_bytes[ost] += nbytes / len(osts)
    total = ost_bytes.sum()
    if total == 0:
        return []
    shares = ost_bytes / total
    eff = 1.0 / float(np.square(shares).sum())
    return [
        Fact(
            "server_usage",
            {
                "eff_osts": eff,
                "num_osts": int(num_osts),
                "utilization": eff / num_osts,
                "top_share": float(shares.max()),
                "total_bytes": int(total),
            },
        )
    ]


_EXTRACTORS = {
    "io_size": extract_io_size,
    "request_count": extract_request_count,
    "file_metadata": extract_file_metadata,
    "rank": extract_rank,
    "alignment": extract_alignment,
    "order": extract_order,
    "mount": extract_mount,
    "stripe_setting": extract_stripe_setting,
    "server_usage": extract_server_usage,
}


def app_context_facts(log: DarshanLog) -> list[Fact]:
    """The broader application context attached to every prompt (§IV-B1)."""
    posix_bytes = int(log.total("POSIX_BYTES_READ") + log.total("POSIX_BYTES_WRITTEN"))
    stdio_bytes = int(log.total("STDIO_BYTES_READ") + log.total("STDIO_BYTES_WRITTEN"))
    mpiio_bytes = int(log.total("MPIIO_BYTES_READ") + log.total("MPIIO_BYTES_WRITTEN"))
    mpiio_used = bool(log.records_for("MPIIO"))
    return [
        Fact(
            "app_context",
            {
                "runtime_s": float(log.header.run_time),
                "nprocs": log.header.nprocs,
                "total_bytes": posix_bytes + stdio_bytes,
            },
        ),
        Fact(
            "mpi_presence",
            {
                "mpiio_used": mpiio_used,
                "nprocs": log.header.nprocs,
                "mpiio_bytes": mpiio_bytes,
                "posix_bytes": posix_bytes,
            },
        ),
    ]


def extract_fragments(log: DarshanLog) -> list[SummaryFragment]:
    """Run every applicable extraction function (Table I coverage)."""
    fragments: list[SummaryFragment] = []
    for module, categories in SUMMARY_COVERAGE.items():
        if not log.records_for(module):
            continue
        for category in categories:
            fn = _EXTRACTORS[category]
            facts = fn(log, module)
            if not facts:
                continue
            fragments.append(
                SummaryFragment(
                    module=module,
                    category=category,
                    facts=tuple(facts),
                    code=inspect.getsource(fn),
                )
            )
    return fragments
