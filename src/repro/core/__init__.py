"""IOAgent core: the paper's primary contribution.

The pipeline (paper Fig. 2), one module per stage plus the composition
layer:

1. :mod:`repro.core.preprocess` — module-based pre-processor splitting a
   Darshan log into per-module CSV tables;
2. :mod:`repro.core.summaries` — per-module summary-extraction functions
   producing categorized JSON fragments (Table I coverage);
3. :mod:`repro.core.describe` — LLM transformation of JSON fragments into
   natural-language descriptions (Fig. 3);
4. :mod:`repro.core.integrate` — RAG retrieval + self-reflection filtering
   of domain knowledge per fragment;
5. :mod:`repro.core.diagnose` — fragment-level diagnosis with references;
6. :mod:`repro.core.merge` — pairwise tree merge (and the 1-step merge
   used only as the Fig. 6 ablation);
7. :mod:`repro.core.pipeline` — the composable Stage/DiagnosisPipeline
   subsystem that wires 1-6 together with observer hooks;
8. :mod:`repro.core.registry` — the `DiagnosticTool` protocol + registry;
9. :mod:`repro.core.agent` — IOAgent, a facade over the default pipeline;
10. :mod:`repro.core.service` — DiagnosisService: concurrency, caching,
    per-stage metrics;
11. :mod:`repro.core.session` — post-diagnosis interactive Q&A (Fig. 5).
"""

from repro.core.issues import ISSUE_KEYS, ISSUES, Issue, issue_by_key

__all__ = [
    "Issue",
    "ISSUES",
    "ISSUE_KEYS",
    "issue_by_key",
    "IOAgent",
    "IOAgentConfig",
    "DiagnosisReport",
    "DiagnosisPipeline",
    "PipelineContext",
    "PipelineObserver",
    "DiagnosisService",
    "DiagnosticTool",
    "register_tool",
    "get_tool",
    "available_tools",
    "InteractiveSession",
]


def __getattr__(name: str) -> object:
    # Lazy imports keep `import repro.core` cheap and avoid import cycles
    # with subpackages that only need the issue taxonomy.
    if name in ("IOAgent", "IOAgentConfig"):
        from repro.core.agent import IOAgent, IOAgentConfig

        return {"IOAgent": IOAgent, "IOAgentConfig": IOAgentConfig}[name]
    if name == "DiagnosisReport":
        from repro.core.report import DiagnosisReport

        return DiagnosisReport
    if name in ("DiagnosisPipeline", "PipelineContext", "PipelineObserver"):
        from repro.core import pipeline

        return getattr(pipeline, name)
    if name == "DiagnosisService":
        from repro.core.service import DiagnosisService

        return DiagnosisService
    if name in ("DiagnosticTool", "register_tool", "get_tool", "available_tools"):
        from repro.core import registry

        return getattr(registry, name)
    if name == "InteractiveSession":
        from repro.core.session import InteractiveSession

        return InteractiveSession
    raise AttributeError(name)
