"""TraceBench in-memory dataset containers."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from functools import cached_property

from repro.darshan.log import DarshanLog
from repro.darshan.writer import render_darshan_text

__all__ = ["LabeledTrace", "TraceBench"]


@dataclass(frozen=True)
class LabeledTrace:
    """One generated Darshan trace plus its expert labels.

    ``difficulty`` carries the scenario registry's tier (``easy`` /
    ``medium`` / ``hard`` / ``control``) so the evaluation can split
    Table IV accuracy per tier.
    """

    trace_id: str
    source: str
    log: DarshanLog
    labels: frozenset[str]
    description: str = ""
    difficulty: str = "medium"

    @cached_property
    def text(self) -> str:
        """darshan-parser text rendering (what plain-LLM tools consume)."""
        return render_darshan_text(self.log)


@dataclass
class TraceBench:
    """The full benchmark suite."""

    traces: list[LabeledTrace] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> "Iterator[LabeledTrace]":
        return iter(self.traces)

    def by_source(self, source: str) -> list[LabeledTrace]:
        """Traces from one source ('simple-bench', 'io500', 'real-applications')."""
        return [t for t in self.traces if t.source == source]

    def get(self, trace_id: str) -> LabeledTrace:
        """Look up a trace by id; raises KeyError if absent."""
        for t in self.traces:
            if t.trace_id == trace_id:
                return t
        raise KeyError(trace_id)

    def total_labels(self) -> int:
        """Total number of labeled issues across the suite (paper: 182)."""
        return sum(len(t.labels) for t in self.traces)

    def sources(self) -> list[str]:
        """Distinct sources in suite order."""
        seen: dict[str, None] = {}
        for t in self.traces:
            seen.setdefault(t.source, None)
        return list(seen)
