"""Trace specifications: workload + expert labels for all 40 traces.

The label sets were assigned per trace such that (a) every label is an
actual behaviour of the generating workload's operation stream, and (b)
the per-source counts sum exactly to paper Table III.  The invariant is
enforced by :func:`table3_counts` plus the test suite.

Importing this module registers every trace as a
:class:`~repro.workloads.scenarios.Scenario` tagged ``tracebench`` (plus
its source), which is how the suite build, harness, and CLI enumerate it;
``TRACE_SPECS`` remains the Table III ground-truth view of the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.issues import ISSUE_KEYS
from repro.workloads.base import Workload
from repro.workloads.io500 import IO500_BUILDERS, IO500_CONFIGS
from repro.workloads.real_apps import REAL_APP_BUILDERS
from repro.workloads.scenarios import Scenario, register_scenario
from repro.workloads.simple_bench import SIMPLE_BENCH_BUILDERS

__all__ = ["TraceSpec", "TRACE_SPECS", "table3_counts", "TABLE3_EXPECTED"]

SOURCES = ("simple-bench", "io500", "real-applications")


@dataclass(frozen=True, slots=True)
class TraceSpec:
    """One TraceBench entry: how to generate it and what experts labeled."""

    trace_id: str
    source: str
    builder: Callable[[], Workload]
    labels: frozenset[str]

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValueError(f"unknown source {self.source!r}")
        unknown = self.labels - set(ISSUE_KEYS)
        if unknown:
            raise ValueError(f"unknown labels for {self.trace_id}: {sorted(unknown)}")


def _sb(trace_id: str, *labels: str) -> TraceSpec:
    return TraceSpec(trace_id, "simple-bench", SIMPLE_BENCH_BUILDERS[trace_id], frozenset(labels))


def _io(trace_id: str, *labels: str) -> TraceSpec:
    return TraceSpec(trace_id, "io500", IO500_BUILDERS[trace_id], frozenset(labels))


def _ra(trace_id: str, *labels: str) -> TraceSpec:
    return TraceSpec(trace_id, "real-applications", REAL_APP_BUILDERS[trace_id], frozenset(labels))


TRACE_SPECS: tuple[TraceSpec, ...] = (
    # ---------------- Simple-Bench (10 traces, 32 labels) ----------------
    _sb("sb01-small-writes", "small_write", "misaligned_write", "server_imbalance",
        "no_collective_write"),
    _sb("sb02-small-reads", "small_read", "misaligned_read", "server_imbalance",
        "no_collective_read"),
    _sb("sb03-misaligned-writes", "misaligned_write", "server_imbalance",
        "no_collective_write"),
    _sb("sb04-misaligned-reads", "misaligned_read", "server_imbalance",
        "no_collective_read"),
    _sb("sb05-metadata-storm", "high_metadata_load"),
    _sb("sb06-shared-file", "shared_file_access", "no_collective_read",
        "no_collective_write", "server_imbalance"),
    _sb("sb07-repetitive-read", "repetitive_read", "no_collective_read",
        "server_imbalance"),
    _sb("sb08-rank-imbalance", "rank_imbalance", "small_write", "no_collective_read",
        "no_collective_write", "server_imbalance"),
    _sb("sb09-stdio-write", "low_level_write", "no_collective_write"),
    _sb("sb10-stdio-read", "low_level_read", "no_collective_read", "small_read"),
    # ---------------- IO500 (21 traces, 110 labels) ----------------------
    _io("io500-01-posix-4k-fpp", "no_mpi", "small_read", "small_write",
        "server_imbalance"),
    _io("io500-02-posix-8k-shared", "no_mpi", "small_read", "small_write",
        "shared_file_access", "server_imbalance"),
    _io("io500-03-posix-hard-47008", "no_mpi", "small_read", "small_write",
        "misaligned_read", "misaligned_write", "shared_file_access", "server_imbalance"),
    _io("io500-04-posix-hard-10000", "no_mpi", "small_read", "small_write",
        "misaligned_read", "misaligned_write", "shared_file_access", "server_imbalance"),
    _io("io500-05-posix-hard-30000", "no_mpi", "small_read", "small_write",
        "misaligned_read", "misaligned_write", "shared_file_access", "server_imbalance"),
    _io("io500-06-posix-random-1m", "no_mpi", "misaligned_read", "misaligned_write",
        "random_read", "random_write", "shared_file_access", "server_imbalance"),
    _io("io500-07-posix-random-1m-8p", "no_mpi", "misaligned_read", "misaligned_write",
        "random_read", "random_write", "shared_file_access", "server_imbalance"),
    _io("io500-08-posix-random-1m-32p", "no_mpi", "misaligned_read", "misaligned_write",
        "random_read", "random_write", "shared_file_access", "server_imbalance"),
    _io("io500-09-posix-tuned-4m", "no_mpi"),
    _io("io500-10-posix-tuned-8m", "no_mpi"),
    _io("io500-11-posix-tuned-4m-32p", "no_mpi"),
    _io("io500-12-posix-tuned-16m", "no_mpi"),
    _io("io500-13-posix-mdtest", "no_mpi", "high_metadata_load"),
    _io("io500-14-mpiio-8k-shared", "no_collective_read", "no_collective_write",
        "small_read", "small_write", "shared_file_access", "server_imbalance"),
    _io("io500-15-mpiio-16k-shared", "no_collective_read", "no_collective_write",
        "small_read", "small_write", "shared_file_access", "server_imbalance"),
    _io("io500-16-mpiio-4k-shared", "no_collective_read", "no_collective_write",
        "small_read", "small_write", "shared_file_access", "server_imbalance"),
    _io("io500-17-mpiio-hard-47008", "no_collective_read", "no_collective_write",
        "small_read", "small_write", "misaligned_read", "misaligned_write",
        "shared_file_access", "server_imbalance"),
    _io("io500-18-mpiio-hard-23504", "no_collective_read", "no_collective_write",
        "small_read", "small_write", "misaligned_read", "misaligned_write",
        "shared_file_access", "server_imbalance"),
    _io("io500-19-mpiio-random-1m", "no_collective_read", "no_collective_write",
        "misaligned_read", "misaligned_write", "random_read", "random_write",
        "shared_file_access", "server_imbalance"),
    _io("io500-20-mpiio-random-1m-32p", "no_collective_read", "no_collective_write",
        "misaligned_read", "misaligned_write", "random_read", "random_write",
        "shared_file_access", "server_imbalance"),
    _io("io500-21-mpiio-mdtest", "no_collective_read", "no_collective_write",
        "high_metadata_load"),
    # ---------------- Real-Applications (9 traces, 40 labels) ------------
    _ra("ra01-amrex", "no_collective_write", "small_write", "misaligned_write",
        "server_imbalance"),
    _ra("ra02-e2e-original", "no_collective_write", "small_write", "misaligned_write",
        "shared_file_access", "rank_imbalance"),
    _ra("ra03-e2e-recollected", "shared_file_access", "misaligned_write",
        "no_collective_read"),
    _ra("ra04-openpmd-original", "no_collective_read", "small_read", "misaligned_read",
        "random_read", "shared_file_access"),
    _ra("ra05-openpmd-recollected", "no_collective_read", "misaligned_read"),
    _ra("ra06-hacc-io", "small_write", "random_write", "misaligned_write",
        "server_imbalance", "small_read"),
    _ra("ra07-montage", "high_metadata_load", "small_read", "small_write",
        "misaligned_read"),
    _ra("ra08-qmcpack", "high_metadata_load", "small_write", "small_read",
        "misaligned_write"),
    _ra("ra09-post-analysis", "no_collective_read", "small_read", "random_read",
        "random_write", "misaligned_read", "misaligned_write", "small_write",
        "shared_file_access"),
)

# Paper Table III: issue -> (SB, IO500, RA) counts.
TABLE3_EXPECTED: dict[str, tuple[int, int, int]] = {
    "high_metadata_load": (1, 2, 2),
    "misaligned_read": (2, 10, 4),
    "misaligned_write": (2, 10, 6),
    "random_write": (0, 5, 2),
    "random_read": (0, 5, 2),
    "shared_file_access": (1, 14, 4),
    "small_read": (2, 10, 5),
    "small_write": (2, 10, 6),
    "repetitive_read": (1, 0, 0),
    "server_imbalance": (7, 15, 2),
    "rank_imbalance": (1, 0, 1),
    "no_mpi": (0, 13, 0),
    "no_collective_read": (6, 8, 4),
    "no_collective_write": (5, 8, 2),
    "low_level_read": (1, 0, 0),
    "low_level_write": (1, 0, 0),
}


# The paper's own difficulty gradient: Simple-Bench traces are "the
# easiest to diagnose", IO500 models realistic mis-tunings, and the
# real-application traces are the multi-issue hard tier.
_SOURCE_DIFFICULTY = {
    "simple-bench": "easy",
    "io500": "medium",
    "real-applications": "hard",
}

_DESCRIPTIONS = {c.trace_id: c.description for c in IO500_CONFIGS}

for _spec in TRACE_SPECS:
    register_scenario(
        Scenario(
            name=_spec.trace_id,
            source=_spec.source,
            builder=_spec.builder,
            root_causes=_spec.labels,
            difficulty=_SOURCE_DIFFICULTY[_spec.source],
            tags=("tracebench", _spec.source),
            description=_DESCRIPTIONS.get(_spec.trace_id, ""),
        )
    )


def table3_counts() -> dict[str, tuple[int, int, int]]:
    """Label counts per (issue, source) actually present in TRACE_SPECS.

    Scoped to the paper's Table II/III vocabulary: extension issues (the
    time-domain keys) belong to the pathology tier, not to the 40-trace
    TraceBench reproduction this table describes.
    """
    out: dict[str, list[int]] = {key: [0, 0, 0] for key in TABLE3_EXPECTED}
    col = {"simple-bench": 0, "io500": 1, "real-applications": 2}
    for spec in TRACE_SPECS:
        for label in spec.labels:
            out[label][col[spec.source]] += 1
    return {key: tuple(v) for key, v in out.items()}
