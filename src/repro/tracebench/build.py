"""Build trace suites by running registered scenarios under Darshan.

The scenario registry (:mod:`repro.workloads.scenarios`) is the single
source of workloads: the 40-trace TraceBench build is just the
``tracebench`` selector, and any other selector (a tag like
``pathology``, a difficulty tier, or explicit names) builds the same way.
Building all 40 traces executes a few hundred thousand simulated I/O
operations; the full-suite build is memoized per seed so tests and
benchmarks share one run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from repro.tracebench.dataset import LabeledTrace, TraceBench
from repro.tracebench.spec import TRACE_SPECS, TraceSpec
from repro.workloads.scenarios import build_scenario, select_scenarios

__all__ = ["build_trace", "build_tracebench", "build_scenario_suite"]


def build_trace(spec: TraceSpec, seed: int = 0) -> LabeledTrace:
    """Generate one labeled trace from its spec."""
    from repro.workloads.scenarios import ScenarioNotFoundError, get_scenario

    workload = spec.builder()
    log, _result = workload.run(seed=seed)
    try:
        difficulty = get_scenario(spec.trace_id).difficulty
    except ScenarioNotFoundError:  # spec built outside the registry
        difficulty = "medium"
    return LabeledTrace(
        trace_id=spec.trace_id,
        source=spec.source,
        log=log,
        labels=spec.labels,
        description=workload.exe,
        difficulty=difficulty,
    )


def build_scenario_suite(selectors: Iterable[str], seed: int = 0) -> TraceBench:
    """Build a suite from registry selectors (names and/or tags), in order.

    Raises :class:`~repro.workloads.scenarios.ScenarioNotFoundError` when a
    selector matches nothing.  The bare ``tracebench`` selector is served
    from the memoized :func:`build_tracebench` rather than rebuilt.
    """
    selectors = tuple(selectors)
    if selectors == ("tracebench",):
        return build_tracebench(seed)
    traces = [build_scenario(s, seed=seed) for s in select_scenarios(selectors)]
    return TraceBench(traces=traces, seed=seed)


@lru_cache(maxsize=4)
def build_tracebench(seed: int = 0) -> TraceBench:
    """Build (and memoize) the paper's 40-trace suite for ``seed``.

    The suite is pinned to the trace ids in :data:`TRACE_SPECS` (which
    register themselves as scenarios on import) and each id resolves
    through the scenario registry — so a plugin *replacing* a TraceBench
    scenario is honored, while an unrelated scenario squatting on the
    ``tracebench`` tag cannot silently grow the paper's 40-trace suite.
    """
    traces = [build_scenario(spec.trace_id, seed=seed) for spec in TRACE_SPECS]
    return TraceBench(traces=traces, seed=seed)
