"""Build the TraceBench suite by running every workload under Darshan.

Building all 40 traces executes a few hundred thousand simulated I/O
operations; results are memoized per seed so tests and benchmarks share
one build.
"""

from __future__ import annotations

from functools import lru_cache

from repro.tracebench.dataset import LabeledTrace, TraceBench
from repro.tracebench.spec import TRACE_SPECS, TraceSpec

__all__ = ["build_trace", "build_tracebench"]


def build_trace(spec: TraceSpec, seed: int = 0) -> LabeledTrace:
    """Generate one labeled trace from its spec."""
    workload = spec.builder()
    log, _result = workload.run(seed=seed)
    return LabeledTrace(
        trace_id=spec.trace_id,
        source=spec.source,
        log=log,
        labels=spec.labels,
        description=workload.exe,
    )


@lru_cache(maxsize=4)
def build_tracebench(seed: int = 0) -> TraceBench:
    """Build (and memoize) the full 40-trace suite for ``seed``."""
    traces = [build_trace(spec, seed=seed) for spec in TRACE_SPECS]
    return TraceBench(traces=traces, seed=seed)
