"""TraceBench: the labeled I/O-diagnosis benchmark suite (paper §V).

40 Darshan traces from three sources — Simple-Bench (10), IO500 (21), and
Real-Applications (9) — each annotated with expert issue labels drawn from
the Table II taxonomy.  The per-source label counts reproduce paper
Table III exactly (182 labeled issues in total), which
``tests/test_tracebench.py`` asserts.
"""

from repro.tracebench.build import build_scenario_suite, build_trace, build_tracebench
from repro.tracebench.dataset import LabeledTrace, TraceBench
from repro.tracebench.spec import TRACE_SPECS, TraceSpec, table3_counts

__all__ = [
    "TraceSpec",
    "TRACE_SPECS",
    "table3_counts",
    "LabeledTrace",
    "TraceBench",
    "build_tracebench",
    "build_trace",
    "build_scenario_suite",
]
