"""Diagnostics: the analyzer's one output type.

Every checker returns a list of :class:`Diagnostic`; the CLI renders them
in the familiar ``file:line: severity: [check] message`` shape so editors
and CI annotations pick them up, and exits non-zero iff any diagnostic is
an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Diagnostic", "error", "warning", "has_errors"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of one check.

    ``file``/``line`` locate the offending declaration when the check can
    point at source (AST lint rules always can; registry invariants point
    at the module that owns the registry).
    """

    check: str
    message: str
    file: str | None = None
    line: int | None = None
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; expected {SEVERITIES}")

    def format(self) -> str:
        location = self.file or "<registry>"
        if self.line is not None:
            location = f"{location}:{self.line}"
        return f"{location}: {self.severity}: [{self.check}] {self.message}"


def error(check: str, message: str, *, file: str | None = None, line: int | None = None) -> Diagnostic:
    return Diagnostic(check=check, message=message, file=file, line=line, severity="error")


def warning(check: str, message: str, *, file: str | None = None, line: int | None = None) -> Diagnostic:
    return Diagnostic(check=check, message=message, file=file, line=line, severity="warning")


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == "error" for d in diagnostics)
