"""Domain invariant checks over the diagnosis knowledge base.

Each check verifies, without running a single simulation, that the
registries agree with each other:

* ``fact-grammar-roundtrip`` — every fact kind renders to NL and extracts
  back to the same data (the describe→diagnose contract), unambiguously;
* ``fact-kind-flow`` — every kind is produced by an extractor and either
  consumed by an expert rule or declared context-only (exact partition);
* ``suppression-dag`` — the deepest-cause suppression relation is a DAG
  with a declared total topological order and no unreachable rule;
* ``scenario-ground-truth`` — scenario labels are canonical issue keys and
  every issue key is grounded by at least one scenario;
* ``fuzz-ground-truth`` — the registered generated tier matches a
  deterministic regeneration of the pinned fuzz stream, labels included;
* ``issue-reachability`` — every issue key is reachable by at least one
  tool (expert rule, temporal fact path, or Drishti trigger);
* ``trigger-issue-map`` — the Drishti trigger↔issue mapping covers exactly
  the registered triggers and its coverage gap is the declared one;
* ``tool-registry`` — tool registrations are well-formed, collision-free,
  and reachable from the CLI;
* ``resilience-contract`` — fault plans reference only registered fault
  kinds, every kind is exercised by a pinned plan, stage-crash scopes
  name degradable stages, and every pipeline stage declares a coherent
  failure contract.
"""

from __future__ import annotations

import math

from repro.analysis.context import CheckContext
from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.analysis.registry import register_check
from repro.llm.facts import Fact

__all__ = ["check_fact_grammar_roundtrip", "check_fact_kind_flow", "check_suppression_dag"]

_FLOAT_TOL = 1e-9


def _values_match(expected: object, got: object) -> bool:
    if isinstance(expected, float) and isinstance(got, (int, float)) and not isinstance(got, bool):
        return math.isclose(expected, float(got), rel_tol=_FLOAT_TOL, abs_tol=1e-12)
    return bool(expected == got)


@register_check(
    "fact-grammar-roundtrip",
    description="every fact kind has an example that survives render -> extract unchanged",
    tags=("facts",),
)
def check_fact_grammar_roundtrip(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    file = ctx.location("facts")
    for kind in ctx.fact_kinds:
        example = ctx.fact_examples.get(kind)
        if example is None:
            out.append(error("fact-grammar-roundtrip", f"fact kind {kind!r} has no example payload", file=file))
            continue
        try:
            text = ctx.render(Fact(kind=kind, data=dict(example)))
        except Exception as exc:  # noqa: BLE001 - a crashing template is the finding
            out.append(
                error(
                    "fact-grammar-roundtrip",
                    f"fact kind {kind!r}: renderer crashed on its example: {exc}",
                    file=file,
                )
            )
            continue
        recovered = ctx.extract(text)
        same_kind = [f for f in recovered if f.kind == kind]
        others = sorted({f.kind for f in recovered} - {kind})
        if not same_kind:
            out.append(
                error(
                    "fact-grammar-roundtrip",
                    f"fact kind {kind!r}: extraction regex does not match its own "
                    f"rendering {text!r}",
                    file=file,
                )
            )
            continue
        if others:
            out.append(
                error(
                    "fact-grammar-roundtrip",
                    f"fact kind {kind!r}: rendering is ambiguous — also matched by "
                    f"{', '.join(repr(o) for o in others)}",
                    file=file,
                )
            )
        if len(same_kind) > 1:
            out.append(
                error(
                    "fact-grammar-roundtrip",
                    f"fact kind {kind!r}: rendering matched its own regex "
                    f"{len(same_kind)} times",
                    file=file,
                )
            )
        got = same_kind[0].data
        for name, expected in example.items():
            if name not in got:
                out.append(
                    error(
                        "fact-grammar-roundtrip",
                        f"fact kind {kind!r}: field {name!r} is lost in the round-trip",
                        file=file,
                    )
                )
            elif not _values_match(expected, got[name]):
                out.append(
                    error(
                        "fact-grammar-roundtrip",
                        f"fact kind {kind!r}: field {name!r} drifts in the round-trip "
                        f"({expected!r} -> {got[name]!r})",
                        file=file,
                    )
                )
        for name in set(got) - set(example):
            out.append(
                error(
                    "fact-grammar-roundtrip",
                    f"fact kind {kind!r}: extractor invents field {name!r} absent "
                    f"from the example payload",
                    file=file,
                )
            )
    for kind in set(ctx.fact_examples) - set(ctx.fact_kinds):
        out.append(
            error(
                "fact-grammar-roundtrip",
                f"example payload for unknown fact kind {kind!r}",
                file=file,
            )
        )
    return out


@register_check(
    "fact-kind-flow",
    description="every fact kind has a producer and is consumed by a rule or declared context-only",
    tags=("facts", "rules"),
)
def check_fact_kind_flow(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    facts_file = ctx.location("facts")
    reasoning_file = ctx.location("reasoning")
    kinds = set(ctx.fact_kinds)

    for kind in sorted(kinds - ctx.produced_kinds):
        out.append(
            error(
                "fact-kind-flow",
                f"fact kind {kind!r} has no producer: no extractor constructs it",
                file=facts_file,
            )
        )
    for kind in sorted(ctx.produced_kinds - kinds):
        out.append(
            error(
                "fact-kind-flow",
                f"extractors construct unknown fact kind {kind!r} (not in the grammar)",
                file=facts_file,
            )
        )

    rule_kinds = set(ctx.rule_issues)
    support = set(ctx.support_kinds)
    context_only = set(ctx.context_only_kinds)

    for name, group in (("RULE_ISSUES", rule_kinds), ("SUPPORT_KINDS", support)):
        for kind in sorted(group - kinds):
            out.append(
                error(
                    "fact-kind-flow",
                    f"{name} names unknown fact kind {kind!r}",
                    file=reasoning_file,
                )
            )
    for kind in sorted(context_only - kinds):
        out.append(
            error("fact-kind-flow", f"CONTEXT_ONLY_KINDS names unknown fact kind {kind!r}", file=facts_file)
        )

    for kind in sorted((rule_kinds & context_only) | (support & context_only) | (rule_kinds & support)):
        out.append(
            error(
                "fact-kind-flow",
                f"fact kind {kind!r} is declared in more than one role "
                f"(rule / support / context-only must be disjoint)",
                file=reasoning_file,
            )
        )

    orphans = kinds - rule_kinds - support - context_only
    for kind in sorted(orphans):
        out.append(
            error(
                "fact-kind-flow",
                f"orphan fact kind {kind!r}: no consuming rule and not declared "
                f"context-only — either add a rule in repro.llm.reasoning or add it "
                f"to CONTEXT_ONLY_KINDS",
                file=facts_file,
            )
        )

    declared_consumed = rule_kinds | support
    for kind in sorted(declared_consumed - ctx.consumed_kinds - (declared_consumed - kinds)):
        out.append(
            error(
                "fact-kind-flow",
                f"fact kind {kind!r} is declared consumed (RULE_ISSUES/SUPPORT_KINDS) "
                f"but no rule code reads it",
                file=reasoning_file,
            )
        )
    for kind in sorted(ctx.consumed_kinds - declared_consumed):
        out.append(
            error(
                "fact-kind-flow",
                f"rule code consumes fact kind {kind!r} that is not declared in "
                f"RULE_ISSUES or SUPPORT_KINDS",
                file=reasoning_file,
            )
        )
    return out


@register_check(
    "suppression-dag",
    description="the deepest-cause suppression relation is a DAG with a total topological order",
    tags=("rules",),
)
def check_suppression_dag(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    file = ctx.location("reasoning")
    rules = list(ctx.temporal_rules)
    rule_set = set(rules)

    if len(rules) != len(rule_set):
        dupes = sorted({r for r in rules if rules.count(r) > 1})
        out.append(
            error("suppression-dag", f"duplicate temporal rules declared: {dupes}", file=file)
        )

    for rule in rules:
        if rule not in ctx.fact_kinds:
            out.append(
                error(
                    "suppression-dag",
                    f"temporal rule {rule!r} is unreachable: no such fact kind exists "
                    f"to ever trigger it",
                    file=file,
                )
            )
        if rule not in ctx.rule_issues:
            out.append(
                error(
                    "suppression-dag",
                    f"temporal rule {rule!r} is unreachable: it emits no issue "
                    f"(missing from RULE_ISSUES)",
                    file=file,
                )
            )

    edges = list(ctx.suppressions)
    for winner, loser in edges:
        if winner == loser:
            out.append(
                error("suppression-dag", f"rule {winner!r} suppresses itself", file=file)
            )
        for endpoint in (winner, loser):
            if endpoint not in rule_set:
                out.append(
                    error(
                        "suppression-dag",
                        f"suppression edge ({winner!r} -> {loser!r}) references "
                        f"undeclared rule {endpoint!r}",
                        file=file,
                    )
                )

    # Cycle detection over the declared edges (restricted to known rules).
    graph: dict[str, list[str]] = {r: [] for r in rule_set}
    for winner, loser in edges:
        if winner in rule_set and loser in rule_set and winner != loser:
            graph[winner].append(loser)
    state: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
    cycle: list[str] = []

    def visit(node: str, path: list[str]) -> bool:
        state[node] = 1
        path.append(node)
        for nxt in graph[node]:
            if state.get(nxt, 0) == 1:
                cycle.extend(path[path.index(nxt):] + [nxt])
                return True
            if state.get(nxt, 0) == 0 and visit(nxt, path):
                return True
        path.pop()
        state[node] = 2
        return False

    for node in graph:
        if state.get(node, 0) == 0 and visit(node, []):
            break
    if cycle:
        out.append(
            error(
                "suppression-dag",
                f"suppression relation is cyclic: {' -> '.join(cycle)} — no "
                f"deepest cause exists",
                file=file,
            )
        )

    # The declared order must be a *total* topological linearization.
    order = list(ctx.deepest_cause_order)
    if sorted(order) != sorted(rule_set):
        missing = sorted(rule_set - set(order))
        extra = sorted(set(order) - rule_set)
        dupes = sorted({r for r in order if order.count(r) > 1})
        detail = "; ".join(
            part
            for part in (
                f"missing {missing}" if missing else "",
                f"undeclared {extra}" if extra else "",
                f"duplicated {dupes}" if dupes else "",
            )
            if part
        )
        out.append(
            error(
                "suppression-dag",
                f"DEEPEST_CAUSE_ORDER is not a total order over the temporal rules ({detail})",
                file=file,
            )
        )
    else:
        position = {rule: i for i, rule in enumerate(order)}
        for winner, loser in edges:
            if winner in position and loser in position and position[winner] >= position[loser]:
                out.append(
                    error(
                        "suppression-dag",
                        f"DEEPEST_CAUSE_ORDER contradicts suppression edge "
                        f"({winner!r} suppresses {loser!r} but is ordered after it)",
                        file=file,
                    )
                )
    return out


@register_check(
    "scenario-ground-truth",
    description="scenario labels are canonical issue keys; every issue key is grounded",
    tags=("scenarios",),
)
def check_scenario_ground_truth(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    file = ctx.location("scenarios")
    issue_keys = set(ctx.issue_keys)
    grounded: set[str] = set()
    for scenario in ctx.scenarios:
        unknown = sorted(set(scenario.root_causes) - issue_keys)
        if unknown:
            out.append(
                error(
                    "scenario-ground-truth",
                    f"scenario {scenario.name!r} labels unknown root cause(s): {unknown}",
                    file=file,
                )
            )
        grounded |= set(scenario.root_causes) & issue_keys
    for key in sorted(issue_keys - grounded):
        out.append(
            error(
                "scenario-ground-truth",
                f"issue key {key!r} is grounded by no scenario: nothing in the "
                f"benchmark can ever test its detection",
                file=file,
            )
        )
    if not ctx.scenarios:
        out.append(error("scenario-ground-truth", "no scenarios are registered", file=file))
    return out


@register_check(
    "fuzz-ground-truth",
    description="the registered fuzz tier matches a deterministic regeneration of the pinned stream",
    tags=("scenarios", "fuzz"),
)
def check_fuzz_ground_truth(ctx: CheckContext) -> list[Diagnostic]:
    """Extend the ground-truth invariant to *generated* scenarios.

    Regenerates the pinned fuzz stream (sampling only, no trace builds)
    and verifies the registry holds exactly those scenarios with exactly
    the derived labels — any drift between the sampler and what tests and
    CI actually evaluate is an error.  Also checks each adversarial
    pair's declared masked keys are labels its bare twin carries.
    """
    from repro.workloads import fuzz

    out: list[Diagnostic] = []
    file = "src/repro/workloads/fuzz.py"
    registered = {s.name: s for s in ctx.scenarios if s.source == fuzz.FUZZ_SOURCE}
    expected = {
        s.name: frozenset(s.root_causes)
        for s in fuzz.generate_scenarios() + fuzz.adversarial_scenarios()
    }
    for name, causes in sorted(expected.items()):
        info = registered.pop(name, None)
        if info is None:
            out.append(
                error(
                    "fuzz-ground-truth",
                    f"fuzz scenario {name!r} is in the pinned stream but not registered",
                    file=file,
                )
            )
        elif frozenset(info.root_causes) != causes:
            out.append(
                error(
                    "fuzz-ground-truth",
                    f"fuzz scenario {name!r} registered with labels "
                    f"{sorted(info.root_causes)} but the pinned stream derives "
                    f"{sorted(causes)}",
                    file=file,
                )
            )
    for name in sorted(registered):
        out.append(
            error(
                "fuzz-ground-truth",
                f"registered fuzz scenario {name!r} is not part of the pinned "
                f"stream regeneration",
                file=file,
            )
        )
    adversarial = {s.name: frozenset(s.root_causes) for s in fuzz.adversarial_scenarios()}
    for pair in fuzz.ADVERSARIAL_PAIRS:
        stray = pair.masked_keys - adversarial.get(pair.bare_name, frozenset())
        if stray:
            out.append(
                error(
                    "fuzz-ground-truth",
                    f"adversarial pair {pair.name!r} declares masked keys "
                    f"{sorted(stray)} its bare twin does not even carry",
                    file=file,
                )
            )
    return out


@register_check(
    "issue-reachability",
    description="every issue key is reachable by at least one tool",
    tags=("rules", "triggers"),
)
def check_issue_reachability(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    issue_keys = set(ctx.issue_keys)
    by_rules: set[str] = set()
    for kind, keys in ctx.rule_issues.items():
        for key in keys:
            if key not in issue_keys:
                out.append(
                    error(
                        "issue-reachability",
                        f"expert rule for {kind!r} emits unknown issue key {key!r}",
                        file=ctx.location("reasoning"),
                    )
                )
            else:
                by_rules.add(key)
    by_triggers = {
        key for keys in ctx.trigger_issues.values() for key in keys if key in issue_keys
    }
    for key in sorted(issue_keys - by_rules - by_triggers):
        out.append(
            error(
                "issue-reachability",
                f"issue key {key!r} is unreachable: no expert rule, temporal fact "
                f"path, or Drishti trigger can ever assert it",
                file=ctx.location("issues"),
            )
        )
    return out


@register_check(
    "trigger-issue-map",
    description="the Drishti trigger<->issue mapping is total, canonical, and gap-declared",
    tags=("triggers",),
)
def check_trigger_issue_map(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    file = ctx.location("triggers")
    registered = set(ctx.trigger_names)
    mapped = set(ctx.trigger_issues)
    for code in sorted(registered - mapped):
        out.append(
            error(
                "trigger-issue-map",
                f"trigger {code!r} is registered but missing from TRIGGER_ISSUES",
                file=file,
            )
        )
    for code in sorted(mapped - registered):
        out.append(
            error(
                "trigger-issue-map",
                f"TRIGGER_ISSUES maps unregistered trigger {code!r}",
                file=file,
            )
        )
    issue_keys = set(ctx.issue_keys)
    covered: set[str] = set()
    for code, keys in ctx.trigger_issues.items():
        for key in keys:
            if key not in issue_keys:
                out.append(
                    error(
                        "trigger-issue-map",
                        f"trigger {code!r} maps to unknown issue key {key!r}",
                        file=file,
                    )
                )
            else:
                covered.add(key)
    declared_gap = set(ctx.untriggered_issues)
    actual_gap = issue_keys - covered
    for key in sorted(actual_gap - declared_gap):
        out.append(
            error(
                "trigger-issue-map",
                f"issue key {key!r} has no trigger but is not declared in "
                f"UNTRIGGERED_ISSUES",
                file=file,
            )
        )
    for key in sorted(declared_gap - actual_gap):
        out.append(
            error(
                "trigger-issue-map",
                f"UNTRIGGERED_ISSUES declares {key!r} untriggered, but a trigger "
                f"maps to it (stale declaration)" if key in issue_keys else
                f"UNTRIGGERED_ISSUES names unknown issue key {key!r}",
                file=file,
            )
        )
    return out


_REQUIRED_TOOLS = ("drishti", "ioagent", "ion")


@register_check(
    "tool-registry",
    description="tool registrations are well-formed, complete, and CLI-reachable",
    tags=("tools",),
)
def check_tool_registry(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    file = ctx.location("tools")
    for name in _REQUIRED_TOOLS:
        if name not in ctx.tool_names:
            out.append(
                error(
                    "tool-registry",
                    f"built-in tool {name!r} is not registered — a Table IV row is gone",
                    file=file,
                )
            )
    for name in ctx.tool_names:
        if not name or not all(c.isalnum() or c in "-_" for c in name) or not name[0].isalpha():
            out.append(
                error(
                    "tool-registry",
                    f"tool name {name!r} is not a valid CLI token "
                    f"(letters, digits, '-', '_'; starts with a letter)",
                    file=file,
                )
            )
        if name in ctx.reserved_cli_commands and name != "diagnose":
            out.append(
                warning(
                    "tool-registry",
                    f"tool name {name!r} collides with a reserved CLI command and "
                    f"gets no subcommand",
                    file=file,
                )
            )
    return out


@register_check(
    "resilience-contract",
    description="fault plans use registered kinds, every kind is exercised, stages declare coherent failure contracts",
    tags=("resilience",),
)
def check_resilience_contract(ctx: CheckContext) -> list[Diagnostic]:
    """The chaos gate is only as honest as this wiring.

    A plan referencing an unregistered kind silently injects nothing; a
    registered kind no plan exercises is untested weather; a
    ``stage-crash`` aimed at an abort stage would crash the service the
    gate promises never crashes; and a stage declaring ``degrade`` with
    no channel would produce degraded reports that cannot say what they
    lost.
    """
    out: list[Diagnostic] = []
    faults_file = ctx.location("faults")
    stages_file = ctx.location("stages")
    kinds = set(ctx.fault_kinds)
    stage_by_name = {p.name: p for p in ctx.stage_policies}

    if not ctx.fault_plans:
        out.append(
            error("resilience-contract", "no fault plans are registered: the chaos gate sweeps nothing", file=faults_file)
        )
    exercised: set[str] = set()
    for plan in ctx.fault_plans:
        if not plan.specs:
            out.append(
                error(
                    "resilience-contract",
                    f"fault plan {plan.name!r} has no fault specs",
                    file=faults_file,
                )
            )
        for kind, rate, scope in plan.specs:
            if kind not in kinds:
                out.append(
                    error(
                        "resilience-contract",
                        f"fault plan {plan.name!r} uses unregistered fault kind {kind!r}",
                        file=faults_file,
                    )
                )
                continue
            exercised.add(kind)
            if not 0.0 <= rate <= 1.0:
                out.append(
                    error(
                        "resilience-contract",
                        f"fault plan {plan.name!r}: {kind!r} rate {rate} outside [0, 1]",
                        file=faults_file,
                    )
                )
            if kind == "stage-crash":
                policy = stage_by_name.get(scope)
                if policy is None:
                    out.append(
                        error(
                            "resilience-contract",
                            f"fault plan {plan.name!r}: stage-crash scope {scope!r} "
                            f"names no pipeline stage",
                            file=faults_file,
                        )
                    )
                elif policy.failure_mode != "degrade":
                    out.append(
                        error(
                            "resilience-contract",
                            f"fault plan {plan.name!r}: stage-crash targets "
                            f"{scope!r}, an abort stage — the sweep would crash the "
                            f"service the chaos gate asserts never crashes",
                            file=faults_file,
                        )
                    )
    for kind in sorted(kinds - exercised):
        out.append(
            error(
                "resilience-contract",
                f"fault kind {kind!r} is registered but exercised by no pinned "
                f"plan: that failure mode is never chaos-tested",
                file=faults_file,
            )
        )

    if not ctx.stage_policies:
        out.append(
            error("resilience-contract", "no stage failure contracts declared", file=stages_file)
        )
    for policy in ctx.stage_policies:
        if policy.failure_mode not in ("abort", "degrade"):
            out.append(
                error(
                    "resilience-contract",
                    f"stage {policy.name!r} declares unknown failure_mode "
                    f"{policy.failure_mode!r} (expected 'abort' or 'degrade')",
                    file=stages_file,
                )
            )
        if policy.failure_mode == "degrade" and not policy.channel:
            out.append(
                error(
                    "resilience-contract",
                    f"stage {policy.name!r} degrades but names no evidence channel — "
                    f"its degraded reports could not say what they lost",
                    file=stages_file,
                )
            )
    return out
