"""Leg 2 of the analyzer: the strict-typing ratchet gate.

Runs ``mypy`` over ``src/repro`` with the configuration in
``pyproject.toml``, buckets errors per top-level ``repro.*`` module, and
compares the counts against the checked-in budgets in
``mypy-ratchet.json``.  The gate fails when

* any module exceeds its budget (a typing regression), or
* the checked-in budget file is *looser* than the one at ``HEAD`` (the
  ratchet only ever tightens), or
* mypy itself cannot run and ``require=True`` (the CI leg).

Locally, a container without mypy gets a clean SKIP — the analyzer's
domain legs stay usable everywhere; CI installs mypy from
requirements-dev.txt and passes ``--require-mypy``.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TypingGateResult", "bucket_errors", "check_ratchet_monotonic", "run_typing_gate"]

RATCHET_FILE = "mypy-ratchet.json"

# "src/repro/core/service.py:12: error: ..." -> module bucket "core"
_ERROR_LINE = re.compile(
    r"^(?P<path>[^:\n]+\.py):(?P<line>\d+)(?::\d+)?: error: (?P<msg>.*)$"
)


@dataclass
class TypingGateResult:
    """Outcome of one typing-gate run."""

    ok: bool
    skipped: bool = False
    messages: list[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.skipped:
            return "typing gate: SKIPPED (mypy not installed; CI installs it)"
        return "typing gate: OK" if self.ok else "typing gate: FAILED"


def module_bucket(path: str) -> str:
    """Bucket a reported file path under its top-level ``repro`` package."""
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        idx = parts.index("repro")
        rest = parts[idx + 1:]
        if len(rest) > 1:
            return rest[0]
        if rest:
            return Path(rest[0]).stem  # top-level module file, e.g. cli.py
    return "<other>"


def bucket_errors(mypy_output: str) -> dict[str, int]:
    """Per-module error counts from raw mypy stdout."""
    counts: dict[str, int] = {}
    for line in mypy_output.splitlines():
        match = _ERROR_LINE.match(line.strip())
        if match:
            bucket = module_bucket(match.group("path"))
            counts[bucket] = counts.get(bucket, 0) + 1
    return counts


def load_ratchet(root: Path) -> dict[str, int]:
    path = root / RATCHET_FILE
    data = json.loads(path.read_text(encoding="utf-8"))
    budgets = data.get("budgets", data)
    return {str(k): int(v) for k, v in budgets.items()}


def check_ratchet_monotonic(root: Path) -> list[str]:
    """The checked-in ratchet may only tighten relative to ``HEAD``.

    Returns a list of violation messages (empty = monotonic).  Outside a
    git checkout, or for a freshly added file, there is nothing to compare
    against and the gate passes vacuously.

    Locally the working tree is compared against ``HEAD``; in CI the
    working tree *is* HEAD, so when they match the comparison falls back
    to the parent commit (for a PR merge commit, the base branch).
    """
    current_text = (root / RATCHET_FILE).read_text(encoding="utf-8") if (
        root / RATCHET_FILE
    ).is_file() else ""
    previous = None
    for ref in ("HEAD", "HEAD~1"):
        try:
            proc = subprocess.run(
                ["git", "show", f"{ref}:{RATCHET_FILE}"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=30,
                check=False,
            )
        except (OSError, subprocess.TimeoutExpired):
            return []
        if proc.returncode != 0:
            break  # new file, shallow clone, or not a git checkout
        if ref == "HEAD" and proc.stdout == current_text:
            continue  # working tree == HEAD: compare against the parent
        try:
            previous = json.loads(proc.stdout)
        except ValueError:
            return []
        break
    if not isinstance(previous, dict):
        return []
    previous = previous.get("budgets", previous)
    current = load_ratchet(root) if (root / RATCHET_FILE).is_file() else {}
    violations: list[str] = []
    for module, old_budget in previous.items():
        new_budget = current.get(module)
        if new_budget is None:
            # Dropping a module entry entirely is fine only at zero: the
            # module either reached strictness or no longer exists.
            if int(old_budget) != 0:
                violations.append(
                    f"ratchet: module {module!r} (budget {old_budget}) removed "
                    f"without first reaching 0"
                )
        elif int(new_budget) > int(old_budget):
            violations.append(
                f"ratchet: module {module!r} loosened {old_budget} -> {new_budget}; "
                f"the ratchet only tightens"
            )
    return violations


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(root: Path) -> tuple[int, str]:
    """Run mypy over src/repro; returns (returncode, stdout)."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", "src/repro"],
        cwd=root,
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    return proc.returncode, proc.stdout + ("\n" + proc.stderr if proc.stderr else "")


def evaluate_budgets(counts: dict[str, int], budgets: dict[str, int]) -> list[str]:
    """Compare observed per-module error counts against the ratchet budgets."""
    failures: list[str] = []
    for module, count in sorted(counts.items()):
        budget = budgets.get(module, 0)
        if count > budget:
            failures.append(
                f"typing: module repro/{module} has {count} mypy errors "
                f"(budget {budget}) — fix them or they stay forever"
            )
    return failures


def run_typing_gate(root: Path, *, require: bool = False) -> TypingGateResult:
    """Run the full typing gate: ratchet monotonicity + mypy vs budgets."""
    messages = check_ratchet_monotonic(root)
    if not (root / RATCHET_FILE).is_file():
        messages.append(f"typing: {RATCHET_FILE} is missing from the repo root")
        return TypingGateResult(ok=False, messages=messages)
    if not mypy_available():
        if require:
            messages.append(
                "typing: mypy is required (--require-mypy) but not installed; "
                "install requirements-dev.txt"
            )
            return TypingGateResult(ok=False, messages=messages)
        return TypingGateResult(ok=not messages, skipped=True, messages=messages)
    try:
        returncode, output = run_mypy(root)
    except (OSError, subprocess.TimeoutExpired) as exc:
        messages.append(f"typing: mypy failed to run: {exc}")
        return TypingGateResult(ok=False, messages=messages)
    if returncode not in (0, 1):  # 2 = usage/config error, not type errors
        messages.append(f"typing: mypy exited with status {returncode}:\n{output.strip()}")
        return TypingGateResult(ok=False, messages=messages)
    counts = bucket_errors(output)
    messages.extend(evaluate_budgets(counts, load_ratchet(root)))
    return TypingGateResult(ok=not messages, messages=messages)
