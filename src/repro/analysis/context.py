"""The analyzer's view of the knowledge base.

:class:`CheckContext` bundles every registry the checkers inspect — the
fact grammar, the expert-rule declarations, the Drishti trigger map, the
issue taxonomy, the scenario ground truth, and the tool registry — as
plain data plus two callables.  Checks never import the live modules
themselves: they see only the context, so tests can hand them a
deliberately broken context (a cyclic suppression relation, an orphan
fact kind, a scenario with a bogus root cause) and assert the precise
diagnostics.

``CheckContext.from_repo()`` builds the real context from the live
registries plus a light AST scan of the fact producers/consumers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.llm.facts import Fact

__all__ = [
    "ScenarioInfo",
    "FaultPlanInfo",
    "StagePolicy",
    "CheckContext",
    "produced_fact_kinds",
    "consumed_fact_kinds",
]


@dataclass(frozen=True)
class ScenarioInfo:
    """The slice of a registered Scenario the invariant checks need."""

    name: str
    root_causes: frozenset[str]
    difficulty: str = "medium"
    source: str = ""


@dataclass(frozen=True)
class FaultPlanInfo:
    """The slice of a registered FaultPlan the resilience check needs."""

    name: str
    # (kind, rate, scope) per spec, in plan order.
    specs: tuple[tuple[str, float, str], ...]


@dataclass(frozen=True)
class StagePolicy:
    """One pipeline stage's declared failure contract."""

    name: str
    failure_mode: str  # 'abort' | 'degrade'
    channel: str  # evidence channel lost on degrade ('' for abort stages)


def _fact_kind_of_call(node: ast.Call) -> str | None:
    """The constant kind of a ``Fact(...)`` constructor call, if any."""
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "Fact":
        return None
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(node.args[0].value, str):
        return node.args[0].value
    for kw in node.keywords:
        if kw.arg == "kind" and isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
            return kw.value.value
    return None


def produced_fact_kinds(sources: Sequence[Path]) -> frozenset[str]:
    """Fact kinds constructed (``Fact("kind", ...)``) in the given files."""
    kinds: set[str] = set()
    for path in sources:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                kind = _fact_kind_of_call(node)
                if kind is not None:
                    kinds.add(kind)
    return frozenset(kinds)


def consumed_fact_kinds(sources: Sequence[Path]) -> frozenset[str]:
    """Fact kinds read via ``kinds.get("kind")`` in the given files."""
    kinds: set[str] = set()
    for path in sources:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "kinds"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                kinds.add(node.args[0].value)
    return frozenset(kinds)


@dataclass(frozen=True)
class CheckContext:
    """Everything the built-in checks look at, as inert data."""

    # -- fact grammar ------------------------------------------------------
    fact_kinds: tuple[str, ...]
    fact_examples: Mapping[str, dict]
    render: Callable[[Fact], str]
    extract: Callable[[str], list[Fact]]
    context_only_kinds: frozenset[str]
    produced_kinds: frozenset[str]
    consumed_kinds: frozenset[str]

    # -- expert rules ------------------------------------------------------
    rule_issues: Mapping[str, tuple[str, ...]]
    support_kinds: tuple[str, ...]
    temporal_rules: tuple[str, ...]
    suppressions: tuple[tuple[str, str], ...]
    deepest_cause_order: tuple[str, ...]

    # -- issue taxonomy ----------------------------------------------------
    issue_keys: tuple[str, ...]

    # -- Drishti baseline --------------------------------------------------
    trigger_names: tuple[str, ...]
    trigger_issues: Mapping[str, tuple[str, ...]]
    untriggered_issues: tuple[str, ...]

    # -- scenarios + tools -------------------------------------------------
    scenarios: tuple[ScenarioInfo, ...]
    tool_names: tuple[str, ...]
    reserved_cli_commands: frozenset[str]

    # -- resilience surface (fault registry + stage failure contracts) -----
    fault_kinds: tuple[str, ...] = ()
    fault_plans: tuple[FaultPlanInfo, ...] = ()
    stage_policies: tuple[StagePolicy, ...] = ()

    # -- source tree (for the AST lint rules) ------------------------------
    src_root: Path = Path("src")

    # Logical registry name -> repo-relative file, for diagnostics.
    locations: Mapping[str, str] = field(default_factory=dict)

    def location(self, registry: str) -> str | None:
        return self.locations.get(registry)

    @classmethod
    def from_repo(cls, root: Path | str | None = None) -> "CheckContext":
        """Build the context from the live registries of this checkout."""
        from repro.baselines.drishti import triggers as drishti_triggers
        from repro.core import issues as core_issues
        from repro.core.registry import available_tools
        from repro.llm import facts as llm_facts
        from repro.llm import reasoning as llm_reasoning
        from repro.workloads.scenarios import iter_scenarios, iter_series_scenarios

        if root is None:
            # src/repro/analysis/context.py -> repo root three levels up.
            root = Path(__file__).resolve().parents[3]
        root = Path(root)
        src_root = root / "src"
        repro_root = src_root / "repro"

        producer_files = (
            repro_root / "core" / "summaries.py",
            repro_root / "darshan" / "dxt.py",
            repro_root / "regression" / "drift.py",
        )
        consumer_files = (repro_root / "llm" / "reasoning.py",)

        # Series scenarios ground the longitudinal issue family; to the
        # checks they are just more scenarios with root causes.
        scenarios = tuple(
            ScenarioInfo(
                name=s.name,
                root_causes=frozenset(s.root_causes),
                difficulty=s.difficulty,
                source=s.source,
            )
            for s in (*iter_scenarios(), *iter_series_scenarios())
        )

        # Keep in sync with the reserved set in repro.cli.build_parser.
        reserved = frozenset(
            {
                "diagnose",
                "chat",
                "tracebench",
                "evaluate",
                "list-scenarios",
                "series",
                "serve",
                "fuzz",
                "chaos",
            }
        )

        from repro.core.pipeline import DEFAULT_STAGE_CLASSES
        from repro.resilience.faults import available_fault_kinds, iter_fault_plans

        fault_plans = tuple(
            FaultPlanInfo(
                name=plan.name,
                specs=tuple((s.kind, s.rate, s.scope) for s in plan.specs),
            )
            for plan in iter_fault_plans()
        )
        stage_policies = tuple(
            StagePolicy(
                name=stage_cls.name,
                failure_mode=getattr(stage_cls, "failure_mode", "abort"),
                channel=getattr(stage_cls, "channel", ""),
            )
            for stage_cls in DEFAULT_STAGE_CLASSES
        )

        return cls(
            fact_kinds=tuple(llm_facts.FACT_KINDS),
            fact_examples=dict(llm_facts.FACT_EXAMPLES),
            render=llm_facts.render_fact,
            extract=llm_facts.extract_facts,
            context_only_kinds=frozenset(llm_facts.CONTEXT_ONLY_KINDS),
            produced_kinds=produced_fact_kinds(producer_files),
            consumed_kinds=consumed_fact_kinds(consumer_files),
            rule_issues=dict(llm_reasoning.RULE_ISSUES),
            support_kinds=tuple(llm_reasoning.SUPPORT_KINDS),
            temporal_rules=tuple(llm_reasoning.TEMPORAL_RULES),
            suppressions=tuple(llm_reasoning.SUPPRESSIONS),
            deepest_cause_order=tuple(llm_reasoning.DEEPEST_CAUSE_ORDER),
            issue_keys=tuple(core_issues.ISSUE_KEYS),
            trigger_names=tuple(drishti_triggers.TRIGGERS),
            trigger_issues=dict(drishti_triggers.TRIGGER_ISSUES),
            untriggered_issues=tuple(drishti_triggers.UNTRIGGERED_ISSUES),
            scenarios=scenarios,
            tool_names=available_tools(),
            reserved_cli_commands=reserved,
            fault_kinds=available_fault_kinds(),
            fault_plans=fault_plans,
            stage_policies=stage_policies,
            src_root=src_root,
            locations={
                "facts": "src/repro/llm/facts.py",
                "reasoning": "src/repro/llm/reasoning.py",
                "issues": "src/repro/core/issues.py",
                "triggers": "src/repro/baselines/drishti/triggers.py",
                "scenarios": "src/repro/workloads/scenarios.py",
                "tools": "src/repro/core/registry.py",
                "faults": "src/repro/resilience/faults.py",
                "stages": "src/repro/core/pipeline.py",
            },
        )
