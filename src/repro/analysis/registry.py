"""The check registry: `register_check` mirrors `repro.core.registry`.

A *check* is a named, pure function from a :class:`~repro.analysis.context.
CheckContext` to a list of :class:`~repro.analysis.diagnostics.Diagnostic`.
Built-in checks live in :mod:`repro.analysis.invariants` (registry/domain
invariants) and :mod:`repro.analysis.lint` (AST convention rules) and load
lazily, exactly like tools and scenarios do, so a future evidence channel
ships its own checks with one ``register_check`` call and CI runs them for
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, overload

from repro.analysis.diagnostics import Diagnostic
from repro.util.lookup import RegistryLookupError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import CheckContext

__all__ = [
    "Check",
    "CheckFn",
    "CheckNotFoundError",
    "register_check",
    "unregister_check",
    "get_check",
    "available_checks",
    "iter_checks",
    "run_checks",
]

CheckFn = Callable[["CheckContext"], "list[Diagnostic]"]


@dataclass(frozen=True)
class Check:
    """One registered static check."""

    name: str
    fn: CheckFn
    description: str = ""
    tags: tuple[str, ...] = ()

    def run(self, ctx: "CheckContext") -> list[Diagnostic]:
        return list(self.fn(ctx))


class CheckNotFoundError(RegistryLookupError):
    """Raised for a check name nobody registered."""

    noun = "check"
    available_label = "available checks"

    @property
    def check_name(self) -> str:
        return self.unknown[0]


_REGISTRY: dict[str, Check] = {}

# Built-in checks resolve lazily so importing the registry stays cheap and
# cycle-free (invariants imports the registries it inspects).
_BUILTIN_MODULES = ("repro.analysis.invariants", "repro.analysis.lint")
_builtins_loaded = False
_builtins_loading = False  # reentrancy guard: builtins register during import


def _ensure_builtins() -> None:
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    import importlib

    _builtins_loading = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        # Set only once every builtin imported cleanly, so a failed import
        # surfaces again instead of leaving the registry silently partial.
        _builtins_loaded = True
    finally:
        _builtins_loading = False


@overload
def register_check(
    name: str,
    fn: CheckFn,
    *,
    description: str = ...,
    tags: Iterable[str] = ...,
    replace: bool = ...,
) -> CheckFn: ...


@overload
def register_check(
    name: str,
    fn: None = ...,
    *,
    description: str = ...,
    tags: Iterable[str] = ...,
    replace: bool = ...,
) -> Callable[[CheckFn], CheckFn]: ...


def register_check(
    name: str,
    fn: CheckFn | None = None,
    *,
    description: str = "",
    tags: Iterable[str] = (),
    replace: bool = False,
) -> Callable[[CheckFn], CheckFn] | CheckFn:
    """Register a check function under ``name``; usable as a decorator.

    Registering an existing name raises unless ``replace=True`` — a check
    silently shadowed is an invariant silently un-enforced.
    """

    def _register(fn: CheckFn) -> CheckFn:
        _ensure_builtins()
        if not replace and name in _REGISTRY:
            raise ValueError(f"check {name!r} is already registered (pass replace=True)")
        _REGISTRY[name] = Check(name=name, fn=fn, description=description, tags=tuple(tags))
        return fn

    if fn is not None:
        return _register(fn)
    return _register


def unregister_check(name: str) -> None:
    """Remove a registration (no-op if absent); used by tests and plugins."""
    _REGISTRY.pop(name, None)


def available_checks(tag: str | None = None) -> tuple[str, ...]:
    """Registered check names in registration order."""
    return tuple(c.name for c in iter_checks(tag))


def iter_checks(tag: str | None = None) -> tuple[Check, ...]:
    """Registered :class:`Check` objects, optionally filtered by tag."""
    _ensure_builtins()
    checks = tuple(_REGISTRY.values())
    if tag is None:
        return checks
    return tuple(c for c in checks if tag in c.tags or tag == c.name)


def get_check(name: str) -> Check:
    """Look up one check by exact name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CheckNotFoundError(name, available_checks()) from None


def run_checks(
    ctx: "CheckContext",
    names: Iterable[str] | None = None,
) -> dict[str, list[Diagnostic]]:
    """Run the named checks (default: all) and collect their diagnostics.

    A check that *raises* is itself a finding: the exception is reported
    as an error diagnostic for that check instead of aborting the run, so
    one broken checker cannot mask the others' results.
    """
    _ensure_builtins()
    selected = [get_check(n) for n in names] if names is not None else list(iter_checks())
    results: dict[str, list[Diagnostic]] = {}
    for check in selected:
        try:
            results[check.name] = check.run(ctx)
        except Exception as exc:  # noqa: BLE001 - a crashing check is a finding
            results[check.name] = [
                Diagnostic(
                    check=check.name,
                    message=f"check crashed: {type(exc).__name__}: {exc}",
                    severity="error",
                )
            ]
    return results
