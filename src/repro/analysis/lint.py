"""AST convention rules that ruff's generic rule set cannot express.

Three repo-specific rules, each scanning ``ctx.src_root``:

* ``unseeded-random`` — stochastic code must draw from a seeded generator
  (``util.rng.derive_seed`` feeding ``numpy.random.default_rng``); the
  stdlib ``random`` module and legacy global numpy RNG are banned outside
  ``repro/util/rng.py``, as is a zero-argument ``default_rng()``.
* ``segtable-private`` — code outside ``repro/darshan/`` must not reach
  into ``_``-prefixed internals of the segment store (column layout is an
  implementation detail of :class:`SegmentTable`), and must not import the
  scalar ``dxt_reference`` module (it is the spec oracle, not a fast path).
* ``service-locked-mutation`` — ``DiagnosisService`` cache state may only
  be mutated under ``self._cache_lock`` (outside ``__init__``).

Rules point at exact file:line positions.  They deliberately run on the
*source tree path* (not imported modules) so tests can aim them at
fixture trees containing seeded violations.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.context import CheckContext
from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.registry import register_check

__all__ = [
    "check_unseeded_random",
    "check_segtable_private",
    "check_service_locked_mutation",
]

# numpy.random attributes that are fine: constructing an explicitly seeded
# generator is the sanctioned pattern, everything else is hidden global state.
_NP_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "BitGenerator", "SeedSequence"})

# Modules whose private names are off-limits outside repro/darshan/.
_SEGMENT_MODULES = ("repro.darshan.segtable", "repro.darshan.dxt")
_REFERENCE_MODULE = "repro.darshan.dxt_reference"


def _iter_py_files(src_root: Path) -> Iterator[tuple[Path, str]]:
    """Yield (path, repo-relative posix path) for every repro source file."""
    pkg_root = src_root / "repro"
    if not pkg_root.is_dir():
        return
    repo_root = src_root.parent
    for path in sorted(pkg_root.rglob("*.py")):
        try:
            rel = path.relative_to(repo_root).as_posix()
        except ValueError:  # pragma: no cover - src_root outside repo root
            rel = path.as_posix()
        yield path, rel


def _parse(path: Path, rel: str, check: str) -> ast.Module | Diagnostic:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:
        return error(check, f"cannot parse: {exc.msg}", file=rel, line=exc.lineno)


def _is_np_random(node: ast.expr) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@register_check(
    "unseeded-random",
    description="no stdlib random or unseeded numpy global RNG outside repro/util/rng.py",
    tags=("lint", "determinism"),
)
def check_unseeded_random(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for path, rel in _iter_py_files(ctx.src_root):
        if rel.endswith("repro/util/rng.py"):
            continue
        tree = _parse(path, rel, "unseeded-random")
        if isinstance(tree, Diagnostic):
            out.append(tree)
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        out.append(
                            error(
                                "unseeded-random",
                                "stdlib random is banned: derive a seed with "
                                "repro.util.rng.derive_seed and use "
                                "numpy.random.default_rng",
                                file=rel,
                                line=node.lineno,
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    out.append(
                        error(
                            "unseeded-random",
                            "stdlib random is banned: derive a seed with "
                            "repro.util.rng.derive_seed and use "
                            "numpy.random.default_rng",
                            file=rel,
                            line=node.lineno,
                        )
                    )
            elif isinstance(node, ast.Attribute) and _is_np_random(node.value):
                if node.attr not in _NP_RANDOM_ALLOWED:
                    out.append(
                        error(
                            "unseeded-random",
                            f"numpy.random.{node.attr} uses the hidden global RNG; "
                            f"construct numpy.random.default_rng(derive_seed(...)) "
                            f"instead",
                            file=rel,
                            line=node.lineno,
                        )
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "default_rng"
                and not node.args
                and not node.keywords
            ):
                out.append(
                    error(
                        "unseeded-random",
                        "default_rng() without a seed is entropy-seeded and "
                        "non-reproducible; pass derive_seed(...)",
                        file=rel,
                        line=node.lineno,
                    )
                )
    return out


@register_check(
    "segtable-private",
    description="no access to segment-store internals outside repro/darshan/",
    tags=("lint", "encapsulation"),
)
def check_segtable_private(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for path, rel in _iter_py_files(ctx.src_root):
        if "repro/darshan/" in rel:
            continue
        tree = _parse(path, rel, "segtable-private")
        if isinstance(tree, Diagnostic):
            out.append(tree)
            continue
        # Names that alias a segment-store module in this file.
        module_aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _SEGMENT_MODULES:
                        module_aliases.add(alias.asname or alias.name.rsplit(".", 1)[-1])
                    if alias.name == _REFERENCE_MODULE or (
                        alias.name.startswith(_REFERENCE_MODULE + ".")
                    ):
                        out.append(
                            error(
                                "segtable-private",
                                "dxt_reference is the scalar spec oracle; production "
                                "code must use the vectorized SegmentTable kernels",
                                file=rel,
                                line=node.lineno,
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == _REFERENCE_MODULE:
                    out.append(
                        error(
                            "segtable-private",
                            "dxt_reference is the scalar spec oracle; production "
                            "code must use the vectorized SegmentTable kernels",
                            file=rel,
                            line=node.lineno,
                        )
                    )
                elif node.module in _SEGMENT_MODULES:
                    for alias in node.names:
                        if alias.name.startswith("_"):
                            out.append(
                                error(
                                    "segtable-private",
                                    f"{alias.name!r} is a private name of "
                                    f"{node.module}; use the public SegmentTable "
                                    f"API",
                                    file=rel,
                                    line=node.lineno,
                                )
                            )
        if not module_aliases:
            continue
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr.startswith("_")
                and not node.attr.startswith("__")
                and isinstance(node.value, ast.Name)
                and node.value.id in module_aliases
            ):
                out.append(
                    error(
                        "segtable-private",
                        f"{node.value.id}.{node.attr} reaches into segment-store "
                        f"internals; use the public SegmentTable API",
                        file=rel,
                        line=node.lineno,
                    )
                )
    return out


# (relative path, class, lock attribute, guarded attributes)
_LOCK_RULES = (
    (
        "repro/core/service.py",
        "DiagnosisService",
        "_cache_lock",
        frozenset({"_cache", "cache_hits", "cache_misses", "store_hits"}),
    ),
)


def _is_self_attr(node: ast.expr, attrs: frozenset[str]) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_holds_lock(node: ast.With, lock: str) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == lock
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return True
    return False


_MUTATING_METHODS = frozenset({"clear", "pop", "popitem", "setdefault", "update", "__setitem__"})


class _LockVisitor(ast.NodeVisitor):
    """Flag mutations of guarded ``self.<attr>`` outside ``with self.<lock>``."""

    def __init__(self, lock: str, attrs: frozenset[str], rel: str) -> None:
        self.lock = lock
        self.attrs = attrs
        self.rel = rel
        self.locked = 0
        self.diagnostics: list[Diagnostic] = []

    def _flag(self, attr: str, node: ast.AST, how: str) -> None:
        if not self.locked:
            self.diagnostics.append(
                error(
                    "service-locked-mutation",
                    f"self.{attr} {how} outside `with self.{self.lock}`",
                    file=self.rel,
                    line=getattr(node, "lineno", None),
                )
            )

    def visit_With(self, node: ast.With) -> None:
        if _with_holds_lock(node, self.lock):
            self.locked += 1
            self.generic_visit(node)
            self.locked -= 1
        else:
            self.generic_visit(node)

    def _flag_target(self, target: ast.expr, node: ast.AST) -> None:
        attr = _is_self_attr(target, self.attrs)
        if attr is not None:
            self._flag(attr, node, "assigned")
        elif isinstance(target, ast.Subscript):
            # self._cache[key] = ... mutates through a subscript.
            inner = _is_self_attr(target.value, self.attrs)
            if inner is not None:
                self._flag(inner, node, "item-assigned")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._flag_target(element, node)
        elif isinstance(target, ast.Starred):
            self._flag_target(target.value, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _is_self_attr(node.target, self.attrs)
        if attr is not None:
            self._flag(attr, node, "augmented")
        if isinstance(node.target, ast.Subscript):
            inner = _is_self_attr(node.target.value, self.attrs)
            if inner is not None:
                self._flag(inner, node, "item-augmented")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _is_self_attr(func.value, self.attrs)
            if attr is not None:
                self._flag(attr, node, f"mutated via .{func.attr}()")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _is_self_attr(target, self.attrs)
            if attr is not None:
                self._flag(attr, node, "deleted")
            if isinstance(target, ast.Subscript):
                inner = _is_self_attr(target.value, self.attrs)
                if inner is not None:
                    self._flag(inner, node, "item-deleted")
        self.generic_visit(node)


@register_check(
    "service-locked-mutation",
    description="DiagnosisService cache state is only mutated under _cache_lock",
    tags=("lint", "concurrency"),
)
def check_service_locked_mutation(ctx: CheckContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for rel_path, class_name, lock, attrs in _LOCK_RULES:
        path = ctx.src_root / rel_path
        if not path.is_file():
            continue
        rel = f"src/{rel_path}"
        tree = _parse(path, rel, "service-locked-mutation")
        if isinstance(tree, Diagnostic):
            out.append(tree)
            continue
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef) and node.name == class_name):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    continue  # construction happens before the object is shared
                visitor = _LockVisitor(lock, attrs, rel)
                for stmt in item.body:
                    visitor.visit(stmt)
                out.extend(visitor.diagnostics)
    return out
