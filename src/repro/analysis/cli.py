"""``python -m repro.analysis`` — run the knowledge-base analyzer.

Two legs: the domain invariant/lint checks (fast, dependency-free) and
the mypy typing ratchet (skipped cleanly where mypy is absent unless
``--require-mypy``).  Exit status is non-zero iff any error diagnostic
was produced or the typing gate failed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import CheckNotFoundError, iter_checks, run_checks
from repro.analysis.typing_gate import run_typing_gate

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analyzer for the diagnosis knowledge base.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root to analyze (default: this checkout)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_checks",
        help="list registered checks and exit",
    )
    parser.add_argument(
        "--checks",
        nargs="+",
        metavar="NAME",
        default=None,
        help="run only these checks (default: all)",
    )
    parser.add_argument(
        "--no-mypy",
        action="store_true",
        help="skip the typing gate (domain checks only)",
    )
    parser.add_argument(
        "--only-typing",
        action="store_true",
        help="run only the typing gate",
    )
    parser.add_argument(
        "--require-mypy",
        action="store_true",
        help="fail (instead of skipping) when mypy is not installed",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print only diagnostics, no summary",
    )
    return parser


def _print_diagnostics(results: dict[str, list[Diagnostic]]) -> tuple[int, int]:
    errors = warnings = 0
    for diags in results.values():
        for diag in diags:
            print(diag.format())
            if diag.severity == "error":
                errors += 1
            else:
                warnings += 1
    return errors, warnings


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checks:
        for check in iter_checks():
            tags = f" [{', '.join(check.tags)}]" if check.tags else ""
            print(f"{check.name}{tags}: {check.description}")
        return 0

    started = time.perf_counter()
    failed = False
    checks_run = 0

    if not args.only_typing:
        from repro.analysis.context import CheckContext

        ctx = CheckContext.from_repo(args.root)
        try:
            results = run_checks(ctx, args.checks)
        except CheckNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        checks_run = len(results)
        errors, warnings = _print_diagnostics(results)
        failed = failed or errors > 0
        if not args.quiet:
            elapsed = time.perf_counter() - started
            print(
                f"analysis: {checks_run} checks, {errors} error(s), "
                f"{warnings} warning(s) in {elapsed:.2f}s"
            )

    if not args.no_mypy:
        root = args.root if args.root is not None else Path(__file__).resolve().parents[3]
        gate = run_typing_gate(Path(root), require=args.require_mypy)
        for message in gate.messages:
            print(message)
        failed = failed or not gate.ok
        if not args.quiet:
            print(gate.summary())

    return 1 if failed else 0
