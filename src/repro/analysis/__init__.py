"""Static analysis for the diagnosis knowledge base.

Run with ``python -m repro.analysis``.  Register additional checks with
:func:`repro.analysis.registry.register_check` — see ``docs/analysis.md``.
"""

from repro.analysis.context import CheckContext, ScenarioInfo
from repro.analysis.diagnostics import Diagnostic, error, has_errors, warning
from repro.analysis.registry import (
    Check,
    CheckNotFoundError,
    available_checks,
    get_check,
    iter_checks,
    register_check,
    run_checks,
    unregister_check,
)

__all__ = [
    "Check",
    "CheckContext",
    "CheckNotFoundError",
    "Diagnostic",
    "ScenarioInfo",
    "available_checks",
    "error",
    "get_check",
    "has_errors",
    "iter_checks",
    "register_check",
    "run_checks",
    "unregister_check",
    "warning",
]
