"""The immutable per-series baseline.

Following the deterministic drift-engine design (an immutable baseline
derived from early runs, no statistical modeling): a :class:`Baseline` is
computed once from the first K profiles of a run series and never
updated.  Per feature it keeps only two numbers —

* ``center`` — the median of the K baseline observations (deterministic
  for even K too: the mean of the two middle values), and
* ``scale`` — the maximum absolute deviation from that center among the
  baseline runs, i.e. the *observed* healthy spread, not a fitted one.

Serialization is canonical JSON (sorted keys, fixed separators, shortest
float repr), so the same series produces byte-identical baseline files in
every process — cross-process reuse is a file copy, and auditing a drift
verdict never requires re-running the early jobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.regression.profile import FEATURE_NAMES, TraceProfile, canonical_json

__all__ = ["Baseline", "build_baseline"]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class Baseline:
    """Immutable per-feature center/scale derived from the first K runs."""

    n_runs: int
    center: Mapping[str, float]
    scale: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError("a baseline needs at least one run")
        for name, mapping in (("center", self.center), ("scale", self.scale)):
            if set(mapping) != set(FEATURE_NAMES):
                raise ValueError(f"baseline {name} must cover FEATURE_NAMES exactly")

    def to_json(self) -> str:
        """Canonical JSON rendering (byte-stable across processes)."""
        return canonical_json(
            {
                "n_runs": self.n_runs,
                "center": {k: float(v) for k, v in self.center.items()},
                "scale": {k: float(v) for k, v in self.scale.items()},
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        data = json.loads(text)
        return cls(
            n_runs=int(data["n_runs"]),
            center=dict(data["center"]),
            scale=dict(data["scale"]),
        )

    @property
    def digest(self) -> str:
        """Stable content hash of the serialized baseline."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def build_baseline(profiles: Sequence[TraceProfile]) -> Baseline:
    """Compute the immutable baseline from the first K profiles of a series."""
    if not profiles:
        raise ValueError("cannot build a baseline from zero profiles")
    center: dict[str, float] = {}
    scale: dict[str, float] = {}
    for name in FEATURE_NAMES:
        values = [p.get(name) for p in profiles]
        mid = _median(values)
        center[name] = mid
        scale[name] = max(abs(v - mid) for v in values)
    return Baseline(n_runs=len(profiles), center=center, scale=scale)
