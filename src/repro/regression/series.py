"""The series diagnostic tool: fleet-level regression as a `DiagnosticTool`.

:class:`SeriesDiagnosticTool` wraps any registered single-trace tool
(IOAgent by default) and adds the longitudinal evidence channel on top:
profile every run, freeze a baseline from the first K, score drift, find
the inflection run, and — when the series regressed — merge a
``trend_regression`` finding into the diagnosis of the inflection run.

The trend fact goes through the same NL round trip as every other fact
kind (render → extract → expert rules), so the longitudinal channel is
graded by exactly the machinery that grades counter and temporal
evidence; nothing here writes findings by hand.

Registered under the tool name ``series``; per-trace ``diagnose`` calls
pass straight through to the wrapped tool, so the protocol contract
("one trace in, one report out") holds even for the series tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.registry import get_tool, register_tool
from repro.core.report import DiagnosisReport
from repro.darshan.log import DarshanLog
from repro.llm.client import Usage
from repro.llm.facts import extract_facts, render_fact
from repro.llm.findings import render_findings
from repro.llm.reasoning import infer_findings
from repro.regression.baseline import Baseline, build_baseline
from repro.regression.drift import (
    DRIFT_THRESHOLD,
    DriftScore,
    InflectionPoint,
    find_inflection,
    score_series,
    trend_regression_fact,
)
from repro.regression.profile import TraceProfile, profile_trace

__all__ = ["SeriesReport", "SeriesDiagnosticTool"]


@dataclass(frozen=True)
class SeriesReport:
    """The longitudinal verdict for one run series."""

    series_id: str
    profiles: tuple[TraceProfile, ...]
    baseline: Baseline
    scores: tuple[DriftScore, ...]
    inflection: InflectionPoint | None
    report: DiagnosisReport

    def render(self) -> str:
        """Human-facing rendering: per-run drift table, then the diagnosis."""
        lines = [
            f"Run series '{self.series_id}': {len(self.profiles)} runs, "
            f"baseline frozen over the first {self.baseline.n_runs}."
        ]
        for index, score in enumerate(self.scores):
            at_inflection = self.inflection is not None and index == self.inflection.run_index
            marker = " <-- inflection" if at_inflection else ""
            lines.append(
                f"  run {index:2d}  drift {score.total:7.3f}  top {score.top_feature}{marker}"
            )
        if self.inflection is None:
            lines.append("No run crossed the drift threshold: series is steady.")
        return "\n".join(lines) + "\n\n" + self.report.render()


class SeriesDiagnosticTool:
    """Longitudinal regression monitoring over a trace series.

    ``baseline`` pins a previously serialized :class:`Baseline` (loaded
    with ``Baseline.from_json``) so a long-lived fleet monitor never
    recomputes — or accidentally re-anchors — its reference window.
    """

    def __init__(
        self,
        inner: str = "ioagent",
        baseline_runs: int = 3,
        threshold: float = DRIFT_THRESHOLD,
        baseline: Baseline | None = None,
        **inner_kwargs: object,
    ) -> None:
        if baseline_runs < 1:
            raise ValueError("baseline_runs must be positive")
        self.baseline_runs = baseline_runs
        self.threshold = threshold
        self.baseline = baseline
        self._inner = get_tool(inner, **inner_kwargs)

    @property
    def name(self) -> str:
        return "series"

    def usage(self) -> Usage:
        return self._inner.usage()

    def diagnose(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport:
        """Single-trace passthrough to the wrapped tool (protocol contract)."""
        return self._inner.diagnose(log, trace_id=trace_id)

    def diagnose_series(
        self,
        logs: Sequence[DarshanLog],
        series_id: str = "series",
        trace_ids: Sequence[str] | None = None,
    ) -> SeriesReport:
        """Profile, score, and diagnose a whole run series.

        Requires strictly more runs than the baseline window (a pinned
        ``baseline`` lifts that floor to one run).  The returned report's
        ``DiagnosisReport`` is the wrapped tool's diagnosis of the
        inflection run — or of the last run, for a steady series — with
        the ``trend_regression`` finding appended when drift crossed the
        threshold.
        """
        floor = 1 if self.baseline is not None else self.baseline_runs + 1
        if len(logs) < floor:
            raise ValueError(
                f"a series needs at least {floor} runs "
                f"(got {len(logs)}; baseline window is {self.baseline_runs})"
            )
        if trace_ids is None:
            trace_ids = [f"{series_id}/run{i:02d}" for i in range(len(logs))]
        if len(trace_ids) != len(logs):
            raise ValueError("trace_ids must match logs one-to-one")

        profiles = tuple(
            profile_trace(log, trace_id) for log, trace_id in zip(logs, trace_ids)
        )
        baseline = self.baseline or build_baseline(profiles[: self.baseline_runs])
        scores = tuple(score_series(profiles, baseline))
        inflection = find_inflection(profiles, baseline, self.threshold)

        focus = inflection.run_index if inflection is not None else len(logs) - 1
        report = self._inner.diagnose(logs[focus], trace_id=trace_ids[focus])

        if inflection is not None:
            fact = trend_regression_fact(
                inflection, n_runs=len(logs), baseline_runs=baseline.n_runs
            )
            # Through the NL grammar and back: the longitudinal evidence is
            # graded by the same describe -> extract -> rules path as any
            # counter or temporal fact.
            trend_findings = infer_findings(extract_facts(render_fact(fact)))
            if trend_findings:
                report = DiagnosisReport(
                    trace_id=series_id,
                    model=report.model,
                    text=report.text + "\n\n" + render_findings(trend_findings),
                    n_fragments=report.n_fragments,
                    sources_retrieved=report.sources_retrieved,
                    sources_kept=report.sources_kept,
                )

        return SeriesReport(
            series_id=series_id,
            profiles=profiles,
            baseline=baseline,
            scores=scores,
            inflection=inflection,
            report=report,
        )


register_tool("series", SeriesDiagnosticTool, replace=True)
