"""Deterministic per-trace summary vectors for longitudinal monitoring.

A :class:`TraceProfile` reduces one trace's evidence — counter facts from
:mod:`repro.core.summaries` plus temporal/OST facts from the columnar DXT
kernels — to a *fixed* named feature vector.  Fixed means every profile
carries exactly :data:`FEATURE_NAMES`, with absent evidence pinned to
``0.0``, so two profiles are always comparable feature-by-feature and a
baseline never has to reconcile schemas.

Everything here is deterministic given the log: no randomness, no
wall-clock, no cross-run state.  ``digest`` is a stable content hash over
the canonical JSON rendering, so "same trace → same profile" is checkable
byte-for-byte across processes (the same reproducibility stance as the
service cache's trace digest).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.dxt import cached_temporal_facts
from repro.darshan.log import DarshanLog
from repro.llm.facts import Fact

__all__ = ["TraceProfile", "FEATURE_NAMES", "profile_trace", "canonical_json"]


def _by_kind(facts: list[Fact]) -> dict[str, list[Fact]]:
    out: dict[str, list[Fact]] = {}
    for fact in facts:
        out.setdefault(fact.kind, []).append(fact)
    return out


def _float(fact: Fact | None, name: str) -> float:
    if fact is None:
        return 0.0
    value = fact.get(name, 0.0)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return 0.0


def _agg(
    kinds: dict[str, list[Fact]], kind: str, name: str, reduce: Callable[[list[float]], float]
) -> float:
    values = [_float(f, name) for f in kinds.get(kind, [])]
    return reduce(values) if values else 0.0


# ---------------------------------------------------------------------------
# The feature schema.  Each entry: feature name -> extractor over the
# by-kind fact index.  Names are namespaced by evidence family so a drift
# report reads like a diagnosis ("dxt.idle_fraction shifted"), and the
# tuple order is the canonical vector order everywhere (JSON, digests,
# drift decomposition).
# ---------------------------------------------------------------------------

_Extractor = Callable[[dict[str, list[Fact]]], float]

_FEATURES: tuple[tuple[str, _Extractor], ...] = (
    # -- application shape (app_context / volumes / counts) -----------------
    ("app.runtime_s", lambda k: _agg(k, "app_context", "runtime_s", max)),
    ("app.nprocs", lambda k: _agg(k, "app_context", "nprocs", max)),
    ("app.total_bytes", lambda k: _agg(k, "app_context", "total_bytes", max)),
    ("volume.bytes_read", lambda k: _agg(k, "volume", "bytes_read", sum)),
    ("volume.bytes_written", lambda k: _agg(k, "volume", "bytes_written", sum)),
    ("counts.reads", lambda k: _agg(k, "counts", "reads", sum)),
    ("counts.writes", lambda k: _agg(k, "counts", "writes", sum)),
    ("counts.files", lambda k: _agg(k, "counts", "n_files", max)),
    # -- counter-channel pathology signals ---------------------------------
    ("meta.ops", lambda k: _agg(k, "meta", "meta_ops", sum)),
    ("meta.time_s", lambda k: _agg(k, "meta", "meta_time_s", sum)),
    ("meta.fraction", lambda k: _agg(k, "meta", "meta_fraction", max)),
    ("size.small_fraction", lambda k: _agg(k, "size_hist", "small_fraction", max)),
    ("order.seq_fraction", lambda k: _agg(k, "order", "seq_fraction", min)),
    ("align.unaligned_fraction", lambda k: _agg(k, "alignment", "unaligned_fraction", max)),
    ("rank.gini", lambda k: _agg(k, "rank_balance", "gini", max)),
    ("shared.bytes", lambda k: _agg(k, "shared", "shared_bytes", max)),
    ("server.utilization", lambda k: _agg(k, "server_usage", "utilization", max)),
    ("server.top_share", lambda k: _agg(k, "server_usage", "top_share", max)),
    ("stdio.share", lambda k: _agg(k, "stdio_share", "share", max)),
    ("reread.ratio", lambda k: _agg(k, "repetition", "ratio", max)),
    # -- temporal channel (columnar DXT kernels) ---------------------------
    ("dxt.span_s", lambda k: _agg(k, "dxt_timeline", "span_s", max)),
    ("dxt.peak_to_mean", lambda k: _agg(k, "dxt_timeline", "peak_to_mean", max)),
    ("dxt.rank_time_skew", lambda k: _agg(k, "dxt_rank_skew", "time_skew", max)),
    ("dxt.rank_span_skew", lambda k: _agg(k, "dxt_rank_skew", "span_skew", max)),
    ("dxt.mean_inflight", lambda k: _agg(k, "dxt_concurrency", "mean_inflight", max)),
    ("dxt.idle_fraction", lambda k: _agg(k, "dxt_idle", "idle_fraction", max)),
    ("dxt.n_gaps", lambda k: _agg(k, "dxt_idle", "n_gaps", max)),
    ("dxt.stalled_ranks", lambda k: _agg(k, "dxt_idle", "stalled_ranks", max)),
    ("dxt.file_skew_ratio", lambda k: _agg(k, "dxt_file_skew", "ratio", max)),
    # -- server-attribution channel (per-OST kernels) ----------------------
    ("ost.latency_ratio", lambda k: _agg(k, "dxt_ost_latency", "ratio", max)),
    (
        "ost.n_slow",
        lambda k: max(
            (float(len(f.data.get("slow_osts", []))) for f in k.get("dxt_ost_latency", [])),
            default=0.0,
        ),
    ),
    ("ost.time_skew", lambda k: _agg(k, "dxt_ost_skew", "skew", max)),
)

FEATURE_NAMES: tuple[str, ...] = tuple(name for name, _ in _FEATURES)


def canonical_json(payload: object) -> str:
    """The one JSON rendering used for digests and serialized artifacts.

    Keys are sorted, separators are fixed, and floats go through Python's
    shortest-repr float formatting — identical input, identical bytes, on
    every platform and in every process.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class TraceProfile:
    """One run's deterministic feature vector.

    ``features`` maps every name in :data:`FEATURE_NAMES` to a float;
    construction through :func:`profile_trace` guarantees the schema.
    """

    trace_id: str
    features: Mapping[str, float]

    def __post_init__(self) -> None:
        missing = set(FEATURE_NAMES) - set(self.features)
        extra = set(self.features) - set(FEATURE_NAMES)
        if missing or extra:
            raise ValueError(
                f"profile features must match FEATURE_NAMES exactly "
                f"(missing {sorted(missing)}, unknown {sorted(extra)})"
            )

    def get(self, name: str) -> float:
        return float(self.features[name])

    def to_json(self) -> str:
        """Canonical JSON rendering (byte-stable across processes)."""
        return canonical_json(
            {"trace_id": self.trace_id, "features": {k: float(v) for k, v in self.features.items()}}
        )

    @classmethod
    def from_json(cls, text: str) -> "TraceProfile":
        data = json.loads(text)
        return cls(trace_id=data["trace_id"], features=dict(data["features"]))

    @property
    def digest(self) -> str:
        """Stable content hash of the profile (trace id excluded, so the
        same I/O behavior under a different run name hashes the same)."""
        body = canonical_json({k: float(v) for k, v in self.features.items()})
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


def profile_trace(log: DarshanLog, trace_id: str = "trace") -> TraceProfile:
    """Reduce one log's evidence (both channels) to a :class:`TraceProfile`."""
    facts = app_context_facts(log)
    for fragment in extract_fragments(log):
        facts.extend(fragment.facts)
    facts.extend(cached_temporal_facts(log))
    kinds = _by_kind(facts)
    features = {name: float(extract(kinds)) for name, extract in _FEATURES}
    return TraceProfile(trace_id=trace_id, features=features)
