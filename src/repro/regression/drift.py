"""Diff-based drift scoring and first-deviation inflection finding.

The score is deterministic arithmetic over one profile and one baseline —
no learning, no cross-series normalization, no randomness.  Per feature:

    contribution(f) = |x_f - center_f| / tolerance_f
    tolerance_f     = max(TOLERANCE * scale_f,
                          REL_FLOOR * |center_f|,
                          ABS_FLOOR)

i.e. a feature drifts when it moves several times farther from the
baseline center than the baseline runs ever did, *and* by more than a
small relative/absolute floor (which absorbs zero-variance baselines).
The total score is the **maximum** contribution, not a blended norm, so
every verdict is explainable by pointing at one named feature — the same
philosophy as the fact grammar: no number without a sentence behind it.

The inflection point is the earliest run whose score crosses the declared
threshold (first deviation, not best split): production operators ask
"when did this start", and the first crossing is the auditable answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.llm.facts import Fact
from repro.regression.baseline import Baseline
from repro.regression.profile import FEATURE_NAMES, TraceProfile

__all__ = [
    "DriftScore",
    "InflectionPoint",
    "drift_score",
    "score_series",
    "find_inflection",
    "trend_regression_fact",
    "DRIFT_THRESHOLD",
    "TOLERANCE",
    "REL_FLOOR",
    "ABS_FLOOR",
]

# A feature must move this many times beyond the baseline's own observed
# spread before it counts at all...
TOLERANCE = 4.0
# ...and by at least 5% of the baseline magnitude / 0.05 absolute units,
# so a zero-variance baseline cannot make noise look like drift.
REL_FLOOR = 0.05
ABS_FLOOR = 0.05

# Default verdict threshold on the total (max-contribution) score: 1.0
# means "some feature crossed its tolerance band", which is already a
# multiple of anything the baseline runs did.
DRIFT_THRESHOLD = 1.0


@dataclass(frozen=True)
class DriftScore:
    """One run's drift verdict, decomposed into named contributions."""

    trace_id: str
    total: float
    contributions: Mapping[str, float]
    top_feature: str

    def top(self, n: int = 3) -> list[tuple[str, float]]:
        """The ``n`` largest contributions (ties broken by feature name)."""
        ranked = sorted(self.contributions.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]


@dataclass(frozen=True)
class InflectionPoint:
    """The earliest run whose drift crossed the threshold."""

    run_index: int
    score: DriftScore
    threshold: float


def _tolerance(center: float, scale: float) -> float:
    return max(TOLERANCE * scale, REL_FLOOR * abs(center), ABS_FLOOR)


def drift_score(profile: TraceProfile, baseline: Baseline) -> DriftScore:
    """Deterministic diff of one profile against the immutable baseline."""
    contributions: dict[str, float] = {}
    for name in FEATURE_NAMES:
        center = float(baseline.center[name])
        deviation = abs(profile.get(name) - center)
        contributions[name] = deviation / _tolerance(center, float(baseline.scale[name]))
    # Max, with lexicographic tie-breaking: the verdict names one feature.
    top_feature = min(
        (name for name in FEATURE_NAMES if contributions[name] == max(contributions.values())),
    )
    return DriftScore(
        trace_id=profile.trace_id,
        total=contributions[top_feature],
        contributions=contributions,
        top_feature=top_feature,
    )


def score_series(profiles: Sequence[TraceProfile], baseline: Baseline) -> list[DriftScore]:
    """Drift score for every run of a series, in run order."""
    return [drift_score(p, baseline) for p in profiles]


def find_inflection(
    profiles: Sequence[TraceProfile],
    baseline: Baseline,
    threshold: float = DRIFT_THRESHOLD,
) -> InflectionPoint | None:
    """The earliest run whose drift score reaches ``threshold``, if any.

    Scans the whole series (baseline runs included — by construction they
    sit inside the tolerance band, so a hit there is itself a finding).
    """
    for index, profile in enumerate(profiles):
        score = drift_score(profile, baseline)
        if score.total >= threshold:
            return InflectionPoint(run_index=index, score=score, threshold=threshold)
    return None


def trend_regression_fact(
    inflection: InflectionPoint,
    n_runs: int,
    baseline_runs: int,
) -> Fact:
    """The ``trend_regression`` fact asserting a series-level regression.

    Like every fact kind, it round-trips through the NL grammar
    (:mod:`repro.llm.facts`), so the describe → diagnose flow treats the
    longitudinal evidence exactly like counter or temporal evidence.
    """
    return Fact(
        "trend_regression",
        {
            "n_runs": int(n_runs),
            "baseline_runs": int(baseline_runs),
            "run_index": int(inflection.run_index),
            "drift": float(inflection.score.total),
            "threshold": float(inflection.threshold),
            "top_feature": inflection.score.top_feature,
        },
    )
