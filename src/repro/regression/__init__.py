"""Fleet-level regression evidence: the longitudinal channel.

Where the counter channel asks "what did this run do" and the temporal
channel asks "when did it do it", this package asks "when did the *series*
stop looking like itself": deterministic per-run profiles
(:mod:`repro.regression.profile`), an immutable early-run baseline
(:mod:`repro.regression.baseline`), diff-based drift scores with named
per-feature contributions and a first-crossing inflection finder
(:mod:`repro.regression.drift`), and a ``DiagnosticTool`` that folds the
verdict back into the standard diagnosis flow
(:mod:`repro.regression.series`).  See ``docs/regression.md``.
"""

from repro.regression.baseline import Baseline, build_baseline
from repro.regression.drift import (
    DRIFT_THRESHOLD,
    DriftScore,
    InflectionPoint,
    drift_score,
    find_inflection,
    score_series,
    trend_regression_fact,
)
from repro.regression.profile import FEATURE_NAMES, TraceProfile, profile_trace
from repro.regression.series import SeriesDiagnosticTool, SeriesReport

__all__ = [
    "FEATURE_NAMES",
    "TraceProfile",
    "profile_trace",
    "Baseline",
    "build_baseline",
    "DriftScore",
    "InflectionPoint",
    "DRIFT_THRESHOLD",
    "drift_score",
    "score_series",
    "find_inflection",
    "trend_regression_fact",
    "SeriesDiagnosticTool",
    "SeriesReport",
]
