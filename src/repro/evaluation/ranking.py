"""LLM-judge ranking with the paper's anti-bias augmentations (§VI-B).

For each (trace, criterion) the judge ranks the anonymized tool outputs
1..K.  Three augmentations fight positional bias:

A. tool names are replaced by anonymous ids (seeded assignment);
B. the rank-slot order stated in the response-format instruction rotates;
C. the order the candidate contents appear in the prompt rotates.

Each sample is ranked ``permutations`` times (the paper uses 4, ensuring
every rotation appears), and the per-tool rank is averaged.  Because the
judge's positional bias favours whatever sits first in the prompt,
rotation C is the one that actually cancels it — disabling these switches
is how the judge-ablation benchmark reproduces the bias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.client import LLMClient
from repro.llm.tasks.judge import build_judge_prompt, parse_ranking
from repro.util.rng import rng_for

__all__ = ["JudgeConfig", "rank_candidates"]


@dataclass(frozen=True)
class JudgeConfig:
    """Judging protocol configuration (defaults = the paper's protocol)."""

    judge_model: str = "gpt-4o"
    permutations: int = 4
    anonymize: bool = True
    rotate_rank_slots: bool = True
    rotate_content: bool = True
    seed: int = 0


def rank_candidates(
    candidates: dict[str, str],  # tool name -> diagnosis text
    criterion: str,
    client: LLMClient,
    config: JudgeConfig | None = None,
    truth_labels: frozenset[str] | set[str] | None = None,
    call_id: str = "",
) -> dict[str, float]:
    """Mean rank (1 = best) per tool over all judge permutations."""
    config = config or JudgeConfig()
    tools = list(candidates)
    k = len(tools)
    if k == 0:
        return {}

    # Augmentation A: anonymous ids, assignment shuffled per sample.
    rng = rng_for(config.seed, "judge-anon", call_id)
    order = rng.permutation(k) if config.anonymize else range(k)
    anon_ids = {tools[int(j)]: f"Tool-{i + 1}" for i, j in enumerate(order)}
    if not config.anonymize:
        anon_ids = {t: t for t in tools}
    by_anon = {anon_ids[t]: t for t in tools}

    rank_sums = {t: 0.0 for t in tools}
    counts = {t: 0 for t in tools}
    for p in range(config.permutations):
        # Augmentation C: rotate the order candidates appear in.
        shift_c = p % k if config.rotate_content else 0
        presented = [tools[(i + shift_c) % k] for i in range(k)]
        # Augmentation B: rotate the rank-slot order in the format section.
        shift_b = p % k if config.rotate_rank_slots else 0
        slots = [anon_ids[tools[(i + shift_b) % k]] for i in range(k)]
        prompt = build_judge_prompt(
            criterion=criterion,
            candidates=[(anon_ids[t], candidates[t]) for t in presented],
            rank_slots=slots,
            truth_labels=sorted(truth_labels) if truth_labels is not None else None,
        )
        response = client.complete(
            prompt, model=config.judge_model, call_id=f"{call_id}/{criterion}/perm{p}"
        )
        ranked = parse_ranking(response.text)
        for rank, anon in enumerate(ranked, start=1):
            tool = by_anon.get(anon)
            if tool is None:
                continue
            rank_sums[tool] += rank
            counts[tool] += 1
        # Tools the judge failed to rank (e.g. truncated away) get last place.
        for tool in tools:
            if anon_ids[tool] not in ranked:
                rank_sums[tool] += k
                counts[tool] += 1
    return {t: rank_sums[t] / max(1, counts[t]) for t in tools}
