"""Rank → score conversion and normalization (paper §VI-C, Eq. 1-2).

``S(T,C,L) = 4 − Rank(T,C,L)`` per trace; summed over a data source D
(Eq. 1) and normalized by the maximum attainable ``(4−1)·|D|`` (Eq. 2).
With four tools the per-cell normalized scores of all tools sum to ~2.0
— a structural invariant of rank-based scoring the tests assert.
"""

from __future__ import annotations

__all__ = ["score_from_rank", "normalized_scores", "MAX_RANK"]

MAX_RANK = 4


def score_from_rank(rank: float, max_rank: int = MAX_RANK) -> float:
    """Eq. S = (max_rank − Rank); accepts fractional (averaged) ranks."""
    return float(max_rank - rank)


def normalized_scores(
    ranks_per_trace: list[dict[str, float]], max_rank: int = MAX_RANK
) -> dict[str, float]:
    """Eq. (1)+(2): sum per-trace scores, normalize by (max_rank−1)·|D|."""
    if not ranks_per_trace:
        return {}
    tools = list(ranks_per_trace[0])
    n = len(ranks_per_trace)
    out: dict[str, float] = {}
    for tool in tools:
        total = sum(score_from_rank(tr[tool], max_rank) for tr in ranks_per_trace)
        out[tool] = total / ((max_rank - 1) * n)
    return out
