"""The deterministic expert-rule detector over both evidence channels.

One function: run the counter summaries and the DXT temporal kernels over
a trace and apply the expert rules — no LLM, no sampling, no tools.  This
is the grounding oracle the evaluation gate, the fuzz sweep, and the
confusion-matrix surface all share: what the *rules* can recover from a
log, independent of any agent built on top of them.
"""

from __future__ import annotations

from repro.core.summaries import app_context_facts, extract_fragments
from repro.darshan.dxt import dxt_temporal_facts
from repro.darshan.log import DarshanLog
from repro.llm.reasoning import infer_findings

__all__ = ["detected_issues"]


def detected_issues(log: DarshanLog) -> set[str]:
    """Issue keys the expert rules recover from both evidence channels."""
    facts = app_context_facts(log)
    for fragment in extract_fragments(log):
        facts.extend(fragment.facts)
    facts.extend(dxt_temporal_facts(log.dxt_segments or []))
    return {f.issue_key for f in infer_findings(facts)}
