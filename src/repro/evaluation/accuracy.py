"""Issue-assertion detection and accuracy statistics.

Diagnosis tools emit free text; to count matched and mismatched issues
(the paper's accuracy notion) the text is scanned for (a) the structured
``[issue_key]`` finding tags our LLM outputs carry and (b) the Table II
alias phrases, which also catch Drishti's canned wording and any prose
assertion of an issue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.issues import ISSUES
from repro.llm.findings import parse_findings

__all__ = ["issue_assertions", "MatchStats", "match_stats", "f1_by_difficulty"]


def issue_assertions(text: str) -> set[str]:
    """Issue keys asserted anywhere in ``text``."""
    asserted = {f.issue_key for f in parse_findings(text)}
    lowered = text.lower()
    for issue in ISSUES:
        if issue.key in asserted:
            continue
        if any(alias in lowered for alias in issue.aliases):
            asserted.add(issue.key)
    return asserted


@dataclass(frozen=True, slots=True)
class MatchStats:
    """Confusion counts of asserted vs labeled issues for one trace."""

    matched: int
    false_positives: int
    missed: int

    @property
    def precision(self) -> float:
        total = self.matched + self.false_positives
        return self.matched / total if total else 1.0

    @property
    def recall(self) -> float:
        total = self.matched + self.missed
        return self.matched / total if total else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r > 0 else 0.0


def match_stats(text: str, labels: frozenset[str] | set[str]) -> MatchStats:
    """Compare a diagnosis text against expert labels."""
    asserted = issue_assertions(text)
    labels = set(labels)
    return MatchStats(
        matched=len(asserted & labels),
        false_positives=len(asserted - labels),
        missed=len(labels - asserted),
    )


def f1_by_difficulty(rows: list[tuple[str, MatchStats]]) -> dict[str, float]:
    """Mean F1 per difficulty tier from (difficulty, stats) pairs.

    Tiers appear in canonical registry order (easy, medium, hard,
    control) so rendered splits are stable regardless of trace order.
    """
    from repro.workloads.scenarios import DIFFICULTIES

    grouped: dict[str, list[float]] = {}
    for difficulty, stats in rows:
        grouped.setdefault(difficulty, []).append(stats.f1)
    ordered = [d for d in DIFFICULTIES if d in grouped]
    ordered += sorted(set(grouped) - set(ordered))
    return {d: sum(grouped[d]) / len(grouped[d]) for d in ordered}
