"""The Table IV harness: run every tool over TraceBench and score it.

Tools evaluated (paper Table IV rows): Drishti, ION (gpt-4o backbone),
IOAgent-gpt-4o, and IOAgent-llama-3.1-70B.  Every tool is resolved from
the :mod:`repro.core.registry` and driven solely through the
:class:`~repro.core.registry.DiagnosticTool` protocol — the harness has
no tool-specific code, so adding a row to Table IV is one
``register_tool`` call.  For each trace the diagnosis texts are ranked by
the gpt-4o judge on accuracy, utility, and interpretability with four
prompt permutations, then normalized per data source via Eq. (1)-(2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.registry import DiagnosticTool, get_tool
from repro.evaluation.ranking import JudgeConfig, rank_candidates
from repro.evaluation.scoring import normalized_scores
from repro.llm.client import LLMClient
from repro.tracebench.dataset import TraceBench

__all__ = [
    "default_tools",
    "EvaluationResult",
    "evaluate_tools",
    "evaluate_scenarios",
    "CRITERIA",
]

CRITERIA = ("accuracy", "utility", "interpretability")
SOURCE_TITLES = {
    "simple-bench": "Simple-Bench",
    "io500": "IO500",
    "real-applications": "Real-Applications",
    "pathology": "Pathology",
    "fuzz": "Fuzz",
}


def default_tools(seed: int = 0, max_workers: int | None = None) -> list[DiagnosticTool]:
    """The paper's four Table IV rows, resolved from the registry."""
    return [
        get_tool("drishti"),
        get_tool("ion", model="gpt-4o", seed=seed),
        get_tool("ioagent", model="gpt-4o", seed=seed, max_workers=max_workers),
        get_tool("ioagent", model="llama-3.1-70b", seed=seed, max_workers=max_workers),
    ]


@dataclass
class EvaluationResult:
    """Everything the Table IV renderer (and the tests) need."""

    tool_names: list[str]
    # trace_id -> tool -> diagnosis text
    texts: dict[str, dict[str, str]] = field(default_factory=dict)
    # criterion -> trace_id -> tool -> mean rank
    ranks: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    # trace_id -> source
    trace_sources: dict[str, str] = field(default_factory=dict)
    # trace_id -> difficulty tier ('easy' | 'medium' | 'hard' | 'control')
    trace_difficulties: dict[str, str] = field(default_factory=dict)

    def sources(self) -> list[str]:
        seen: dict[str, None] = {}
        for src in self.trace_sources.values():
            seen.setdefault(src, None)
        return list(seen)

    def difficulties(self) -> list[str]:
        """Difficulty tiers present, in canonical easy→control order."""
        present = set(self.trace_difficulties.values())
        from repro.workloads.scenarios import DIFFICULTIES

        ordered = [d for d in DIFFICULTIES if d in present]
        return ordered + sorted(present - set(ordered))

    def normalized(
        self,
        criterion: str,
        source: str | None = None,
        difficulty: str | None = None,
    ) -> dict[str, float]:
        """NS(T, criterion, D) for D = one source/difficulty or the suite."""
        per_trace = [
            ranks
            for trace_id, ranks in self.ranks[criterion].items()
            if (source is None or self.trace_sources[trace_id] == source)
            and (
                difficulty is None
                or self.trace_difficulties.get(trace_id, "medium") == difficulty
            )
        ]
        return normalized_scores(per_trace)

    def accuracy_by_difficulty(self) -> dict[str, dict[str, float]]:
        """Normalized accuracy per difficulty tier: tier -> tool -> score."""
        return {
            tier: self.normalized("accuracy", difficulty=tier)
            for tier in self.difficulties()
        }

    def table4(self) -> dict[str, dict[str, dict[str, float]]]:
        """criterion (+ 'average') -> column -> tool -> normalized score."""
        columns = self.sources() + [None]  # None = Overall
        table: dict[str, dict[str, dict[str, float]]] = {}
        for criterion in CRITERIA:
            table[criterion] = {}
            for source in columns:
                key = SOURCE_TITLES.get(source, source) if source else "Overall"
                table[criterion][key] = self.normalized(criterion, source)
        # Average across the three criteria.
        table["average"] = {}
        for source in columns:
            key = SOURCE_TITLES.get(source, source) if source else "Overall"
            avg: dict[str, float] = {}
            for tool in self.tool_names:
                avg[tool] = sum(table[c][key][tool] for c in CRITERIA) / len(CRITERIA)
            table["average"][key] = avg
        return table


def evaluate_tools(
    bench: TraceBench,
    tools: Sequence[DiagnosticTool] | None = None,
    judge_config: JudgeConfig | None = None,
    judge_client: LLMClient | None = None,
    progress: Callable[[str], None] | None = None,
) -> EvaluationResult:
    """Run the full §VI evaluation and return scored results."""
    tools = list(tools) if tools is not None else default_tools(seed=bench.seed)
    judge_config = judge_config or JudgeConfig(seed=bench.seed)
    judge_client = judge_client or LLMClient(seed=bench.seed)
    result = EvaluationResult(tool_names=[t.name for t in tools])
    for criterion in CRITERIA:
        result.ranks[criterion] = {}

    for trace in bench:
        if progress:
            progress(f"diagnosing {trace.trace_id}")
        texts = {
            tool.name: tool.diagnose(trace.log, trace_id=trace.trace_id).text
            for tool in tools
        }
        result.texts[trace.trace_id] = texts
        result.trace_sources[trace.trace_id] = trace.source
        result.trace_difficulties[trace.trace_id] = getattr(trace, "difficulty", "medium")
        for criterion in CRITERIA:
            truth = trace.labels if criterion == "accuracy" else None
            result.ranks[criterion][trace.trace_id] = rank_candidates(
                texts,
                criterion,
                client=judge_client,
                config=judge_config,
                truth_labels=truth,
                call_id=f"{trace.trace_id}",
            )
    return result


def evaluate_scenarios(
    selectors: Sequence[str] = ("tracebench",),
    seed: int = 0,
    tools: Sequence[DiagnosticTool] | None = None,
    judge_config: JudgeConfig | None = None,
    judge_client: LLMClient | None = None,
    progress: Callable[[str], None] | None = None,
) -> EvaluationResult:
    """Run the evaluation over scenarios picked from the registry.

    ``selectors`` are scenario names and/or tags (``"tracebench"``,
    ``"pathology"``, a difficulty tier, a source, ...); the suite is built
    fresh from the registry, so plugin scenarios registered before the
    call are first-class rows of the resulting table.
    """
    from repro.tracebench.build import build_scenario_suite

    suite = build_scenario_suite(selectors, seed=seed)
    return evaluate_tools(
        suite,
        tools=tools,
        judge_config=judge_config,
        judge_client=judge_client,
        progress=progress,
    )
