"""Per-pathology confusion matrices over labeled scenario sweeps.

Table IV scores each *tool* over each *trace*; this module pivots the
same confusion counts the other way: one row per **issue key**, counting
across a whole sweep how often that pathology was recovered when
injected (true positives), reported when absent (false positives), and
missed when present (false negatives).  Each cell reuses
:class:`~repro.evaluation.accuracy.MatchStats`, so precision/recall/F1
carry the exact same semantics as the per-trace accuracy numbers.

This is the natural rendering for the generated fuzz tier, where the
question is not "how good is tool X on trace Y" but "which *rules* hold
up across a distribution of compositions" (see ``repro fuzz sweep`` and
the fuzz gate in ``benchmarks/eval_gate.py``).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.issues import ISSUE_KEYS
from repro.evaluation.accuracy import MatchStats

__all__ = ["ConfusionMatrix"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Per-issue confusion counts aggregated over many (detected, labels) pairs."""

    cells: dict[str, MatchStats]
    n_traces: int

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[Iterable[str], Iterable[str]]]
    ) -> ConfusionMatrix:
        """Aggregate ``(detected, labels)`` pairs, one per trace.

        For each issue key, a trace contributes one true positive if the
        key is both detected and labeled, one false positive if detected
        only, and one miss if labeled only.
        """
        tp: dict[str, int] = {}
        fp: dict[str, int] = {}
        fn: dict[str, int] = {}
        n = 0
        for detected_it, labels_it in pairs:
            n += 1
            detected, labels = set(detected_it), set(labels_it)
            for key in detected & labels:
                tp[key] = tp.get(key, 0) + 1
            for key in detected - labels:
                fp[key] = fp.get(key, 0) + 1
            for key in labels - detected:
                fn[key] = fn.get(key, 0) + 1
        cells = {
            key: MatchStats(
                matched=tp.get(key, 0),
                false_positives=fp.get(key, 0),
                missed=fn.get(key, 0),
            )
            for key in set(tp) | set(fp) | set(fn)
        }
        return cls(cells=cells, n_traces=n)

    def totals(self) -> MatchStats:
        """Micro-average: confusion counts summed over every issue key."""
        return MatchStats(
            matched=sum(s.matched for s in self.cells.values()),
            false_positives=sum(s.false_positives for s in self.cells.values()),
            missed=sum(s.missed for s in self.cells.values()),
        )

    def recall_for(self, key: str) -> float:
        """Recall for one issue key (1.0 when the key never occurs)."""
        stats = self.cells.get(key)
        return stats.recall if stats is not None else 1.0

    def render(self, title: str = "Per-pathology confusion matrix") -> str:
        """A fixed-width table, issue keys in canonical taxonomy order."""
        ordered = [k for k in ISSUE_KEYS if k in self.cells]
        ordered += sorted(set(self.cells) - set(ordered))
        header = (
            f"{'issue':24s} {'tp':>4s} {'fp':>4s} {'fn':>4s} "
            f"{'prec':>6s} {'recall':>6s} {'f1':>6s}"
        )
        lines = [f"{title} ({self.n_traces} traces)", header, "-" * len(header)]
        for key in ordered:
            s = self.cells[key]
            lines.append(
                f"{key:24s} {s.matched:4d} {s.false_positives:4d} {s.missed:4d} "
                f"{s.precision:6.2f} {s.recall:6.2f} {s.f1:6.2f}"
            )
        t = self.totals()
        lines.append("-" * len(header))
        lines.append(
            f"{'(micro total)':24s} {t.matched:4d} {t.false_positives:4d} {t.missed:4d} "
            f"{t.precision:6.2f} {t.recall:6.2f} {t.f1:6.2f}"
        )
        return "\n".join(lines)
