"""Evaluation: metrics, LLM-judge ranking, scoring, and the Table IV harness.

Implements the paper's §VI protocol: three criteria (accuracy, utility,
interpretability), an anonymized LLM ranking with the three positional-
bias augmentations and four prompt permutations per sample, the
``S = 4 − Rank`` / Eq. (1)–(2) normalized scoring, and a harness that runs
every registered :class:`~repro.core.registry.DiagnosticTool` over
TraceBench and renders Table IV.
"""

from repro.evaluation.accuracy import issue_assertions, match_stats
from repro.evaluation.ranking import JudgeConfig, rank_candidates
from repro.evaluation.scoring import normalized_scores, score_from_rank
from repro.evaluation.harness import (
    EvaluationResult,
    default_tools,
    evaluate_scenarios,
    evaluate_tools,
)
from repro.evaluation.tables import render_table3, render_table4

__all__ = [
    "issue_assertions",
    "match_stats",
    "JudgeConfig",
    "rank_candidates",
    "score_from_rank",
    "normalized_scores",
    "EvaluationResult",
    "evaluate_tools",
    "evaluate_scenarios",
    "default_tools",
    "render_table3",
    "render_table4",
]
