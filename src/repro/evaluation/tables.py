"""Text renderers for the paper's tables."""

from __future__ import annotations

from repro.evaluation.harness import CRITERIA, EvaluationResult
from repro.tracebench.spec import TABLE3_EXPECTED, table3_counts

__all__ = ["render_table3", "render_table4", "render_table4_difficulty", "TOOL_TITLES"]

TOOL_TITLES = {
    "drishti": "Drishti",
    "ion": "ION",
    "ioagent-gpt-4o": "IOAgent-gpt-4o",
    "ioagent-llama-3.1-70b": "IOAgent-llama-3.1-70B",
}

_ISSUE_TITLES = {
    "high_metadata_load": "High Metadata Load",
    "misaligned_read": "Misaligned Read requests",
    "misaligned_write": "Misaligned Write requests",
    "random_write": "Random Access Patterns on Write",
    "random_read": "Random Access Patterns on Read",
    "shared_file_access": "Shared File Access",
    "small_read": "Small Read I/O Requests",
    "small_write": "Small Write I/O Requests",
    "repetitive_read": "Repetitive Data Access on Read",
    "server_imbalance": "Server Load Imbalance",
    "rank_imbalance": "Rank Load Imbalance",
    "no_mpi": "Multi-Process W/O MPI",
    "no_collective_read": "No Collective I/O on Read",
    "no_collective_write": "No Collective I/O on Write",
    "low_level_read": "Low-Level Library on Read",
    "low_level_write": "Low-Level Library on Write",
}


def render_table3() -> str:
    """Paper Table III: traces and labeled issues per source."""
    counts = table3_counts()
    lines = [
        "Table III: Summary of traces and labeled issues.",
        f"{'Labeled Issue':38s} {'SB':>4s} {'IO500':>6s} {'RA':>4s} {'Total':>6s}",
        "-" * 62,
    ]
    totals = [0, 0, 0]
    for key in TABLE3_EXPECTED:  # paper row order
        sb, io5, ra = counts[key]
        totals[0] += sb
        totals[1] += io5
        totals[2] += ra
        lines.append(
            f"{_ISSUE_TITLES[key]:38s} {sb:>4d} {io5:>6d} {ra:>4d} {sb + io5 + ra:>6d}"
        )
    lines.append("-" * 62)
    lines.append(
        f"{'Total':38s} {totals[0]:>4d} {totals[1]:>6d} {totals[2]:>4d} {sum(totals):>6d}"
    )
    return "\n".join(lines)


def render_table4(result: EvaluationResult) -> str:
    """Paper Table IV: normalized scores per metric / source / tool."""
    table = result.table4()
    canonical = ["Simple-Bench", "IO500", "Real-Applications", "Pathology", "Overall"]
    present = set(table["accuracy"])
    # Canonical columns first (paper order), then any other source a
    # plugin scenario contributed, with Overall always last.
    columns = [c for c in canonical if c in present and c != "Overall"]
    columns += sorted(c for c in present if c not in canonical)
    columns.append("Overall")
    lines = [
        "Table IV: Performance Results for Diagnosis Tools on TraceBench Subsets",
        f"{'Metric':>16s} {'Diagnosis Tool':24s} "
        + " ".join(f"{c:>18s}" for c in columns),
        "-" * 118,
    ]
    for criterion in (*CRITERIA, "average"):
        block = table[criterion]
        for i, tool in enumerate(result.tool_names):
            metric = criterion.capitalize() if i == 0 else ""
            title = TOOL_TITLES.get(tool, tool)
            row = f"{metric:>16s} {title:24s} "
            row += " ".join(f"{block[c].get(tool, float('nan')):>18.3f}" for c in columns)
            lines.append(row)
        lines.append("-" * 118)
    lines.append("")
    lines.append(render_table4_difficulty(result))
    return "\n".join(lines)


def render_table4_difficulty(result: EvaluationResult) -> str:
    """The Table IV accuracy column, split per difficulty tier.

    The hard tier holds the counter-invisible pathologies (see
    docs/evidence.md); a tool's easy-vs-hard gap here is the headline
    number for how much the temporal evidence channel buys it.
    """
    tiers = result.difficulties()
    by_tier = result.accuracy_by_difficulty()
    lines = [
        "Table IV(b): Accuracy by scenario difficulty (normalized scores)",
        f"{'Diagnosis Tool':24s} " + " ".join(f"{t:>10s}" for t in tiers),
        "-" * (25 + 11 * len(tiers)),
    ]
    for tool in result.tool_names:
        title = TOOL_TITLES.get(tool, tool)
        row = f"{title:24s} "
        row += " ".join(f"{by_tier[t].get(tool, float('nan')):>10.3f}" for t in tiers)
        lines.append(row)
    return "\n".join(lines)
