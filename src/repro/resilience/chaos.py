"""The chaos harness: run the diagnosis service under a fault plan.

One :func:`run_chaos_plan` call is one weather experiment: build the
scenario traces, damage them per the plan's trace faults (through the
*lenient* parser, as a real ingest path would), build an
:class:`~repro.core.agent.IOAgent` around a
:class:`~repro.resilience.client.FaultyLLMClient` (plus circuit breaker
and stage-crash wrapping), and diagnose through a real
:class:`~repro.core.service.DiagnosisService` — the same facade a
deployment uses, so cache behavior is exercised too.

Everything is serial (``max_workers=1``) and seeded, so the resulting
:class:`ChaosReport` is byte-identical across processes for the same
``(plans, scenarios, seed)`` — :func:`chaos_report_digest` is the
fingerprint the chaos gate compares across a subprocess re-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.resilience.client import FaultyLLMClient
from repro.resilience.errors import InjectedStageError
from repro.resilience.faults import FaultPlan, corrupt_trace_text, get_fault_plan
from repro.resilience.retry import CircuitBreaker, RetryPolicy

__all__ = [
    "DEFAULT_CHAOS_SCENARIOS",
    "ChaosRun",
    "ChaosReport",
    "run_chaos_plan",
    "run_chaos",
    "chaos_report_digest",
]

# Counter-grounded pathology scenarios: their labels survive the loss of
# the DXT temporal channel, so single-channel-loss floors are meaningful.
DEFAULT_CHAOS_SCENARIOS = (
    "path01-random-small-reads",
    "path05-bursty-checkpoint",
    "path09-fsync-per-write",
)


@dataclass(frozen=True)
class ChaosRun:
    """Outcome of diagnosing one scenario under one fault plan."""

    plan: str
    scenario: str
    trace_id: str
    completed: bool  # the service returned a report (crash-free)
    error: str  # repr of the escaping exception when not completed
    degraded: tuple[str, ...]  # the report's lost evidence channels
    f1: float  # label accuracy of the (possibly degraded) report
    damage_applied: tuple[str, ...]  # trace fault kinds that actually fired
    parse_skipped: int  # lines the lenient parser dropped
    trace_digest: str  # digest of the log actually diagnosed
    clean_trace_digest: str  # digest of the undamaged log
    retries: int
    circuit_trips: int
    faults: tuple[tuple[str, int], ...]  # (fault kind, count), sorted
    cached_degraded: int  # degraded reports found in the service cache (must be 0)


@dataclass(frozen=True)
class ChaosReport:
    """The full sweep: every (plan, scenario) run plus its fingerprint."""

    seed: int
    plans: tuple[str, ...]
    scenarios: tuple[str, ...]
    runs: tuple[ChaosRun, ...]

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "plans": list(self.plans),
            "scenarios": list(self.scenarios),
            "runs": [asdict(run) for run in self.runs],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators) — digest input."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def digest(self) -> str:
        return chaos_report_digest(self)

    @property
    def all_completed(self) -> bool:
        return all(run.completed for run in self.runs)


def chaos_report_digest(report: ChaosReport) -> str:
    """SHA-256 of the canonical report JSON (no wall-clock inside)."""
    return hashlib.sha256(report.to_json().encode("utf-8")).hexdigest()


class _CrashWrappedStage:
    """A pipeline stage that raises per the plan's ``stage-crash`` specs.

    Transparent otherwise: it forwards ``name`` and the failure contract,
    so the pipeline's degradation policy applies to the inner stage's
    declaration, not the wrapper's.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name: str = inner.name
        self.failure_mode: str = getattr(inner, "failure_mode", "abort")
        self.channel: str = getattr(inner, "channel", "")

    def run(self, ctx) -> None:
        for spec in self.plan.specs_for("stage"):
            if spec.scope != self.name:
                continue
            if spec.fires_for(self.plan.seed, f"{ctx.trace_id}/{self.name}"):
                raise InjectedStageError(
                    f"injected crash of stage {self.name!r} for trace "
                    f"{ctx.trace_id!r} ({self.plan.name})"
                )
        self.inner.run(ctx)


def _build_faulty_service(plan: FaultPlan, seed: int):
    """An IOAgent + DiagnosisService wired for chaos: serial, seeded, breakered."""
    from repro.core.agent import IOAgent, IOAgentConfig
    from repro.core.pipeline import DiagnosisPipeline, build_default_pipeline
    from repro.core.service import DiagnosisService

    config = IOAgentConfig(max_workers=1, seed=seed)
    client = FaultyLLMClient(
        plan,
        seed=seed,
        retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(),
    )
    pipeline = build_default_pipeline(config)
    if plan.specs_for("stage"):
        pipeline = DiagnosisPipeline(
            [_CrashWrappedStage(stage, plan) for stage in pipeline.stages]
        )
    agent = IOAgent(config, client=client, pipeline=pipeline)
    service = DiagnosisService(tool=agent, config=config, max_workers=1)
    return service, client


def run_chaos_plan(
    plan: str | FaultPlan,
    scenarios: tuple[str, ...] = DEFAULT_CHAOS_SCENARIOS,
    seed: int = 0,
) -> tuple[ChaosRun, ...]:
    """Diagnose every scenario under one fault plan; never raises per-run."""
    from repro.core.service import trace_digest
    from repro.darshan.parser import parse_darshan_text_with_report
    from repro.darshan.writer import render_darshan_text
    from repro.evaluation.accuracy import match_stats
    from repro.tracebench.build import build_scenario

    if isinstance(plan, str):
        plan = get_fault_plan(plan)

    runs: list[ChaosRun] = []
    for scenario in scenarios:
        trace = build_scenario(scenario, seed=seed)
        clean_digest = trace_digest(trace.log)
        log = trace.log
        damage_applied: tuple[str, ...] = ()
        parse_skipped = 0
        if plan.specs_for("trace"):
            text = render_darshan_text(trace.log, include_dxt=True)
            damage = corrupt_trace_text(text, plan, trace.trace_id)
            if damage.damaged:
                log, parse_report = parse_darshan_text_with_report(
                    damage.text, lenient=True
                )
                damage_applied = damage.applied
                parse_skipped = parse_report.skipped_count

        service, client = _build_faulty_service(plan, seed)
        completed = True
        error = ""
        degraded: tuple[str, ...] = ()
        f1 = 0.0
        try:
            report = service.diagnose(log, trace_id=trace.trace_id)
            degraded = report.degraded
            f1 = match_stats(report.text, trace.labels).f1
        except Exception as exc:  # the gate asserts this never happens
            completed = False
            error = repr(exc)
        metrics = client.resilience_metrics()
        fault_counts = {k: v for k, v in metrics.as_dict().items() if v}
        runs.append(
            ChaosRun(
                plan=plan.name,
                scenario=scenario,
                trace_id=trace.trace_id,
                completed=completed,
                error=error,
                degraded=degraded,
                f1=round(f1, 6),
                damage_applied=damage_applied,
                parse_skipped=parse_skipped,
                trace_digest=trace_digest(log),
                clean_trace_digest=clean_digest,
                retries=metrics.retries,
                circuit_trips=metrics.circuit_trips,
                faults=tuple(sorted(fault_counts.items())),
                cached_degraded=sum(1 for r in service.cached_reports() if r.degraded),
            )
        )
    return tuple(runs)


def run_chaos(
    plans: tuple[str, ...] | None = None,
    scenarios: tuple[str, ...] = DEFAULT_CHAOS_SCENARIOS,
    seed: int = 0,
) -> ChaosReport:
    """Sweep fault plans over scenarios; default sweep = every pinned plan."""
    from repro.resilience.faults import available_fault_plans

    plan_names = plans if plans is not None else available_fault_plans()
    runs: list[ChaosRun] = []
    for name in plan_names:
        runs.extend(run_chaos_plan(name, scenarios=scenarios, seed=seed))
    return ChaosReport(
        seed=seed, plans=tuple(plan_names), scenarios=tuple(scenarios), runs=tuple(runs)
    )
