"""Resilience layer: fault injection, recovery policy, chaos evaluation.

Three planes, deliberately decoupled:

* **failure taxonomy + recovery** (:mod:`.errors`, :mod:`.retry`) — leaf
  modules the production client (:mod:`repro.llm.client`) builds on;
* **fault injection** (:mod:`.faults`, :mod:`.client`) — seeded
  :class:`FaultPlan` registry plus the :class:`FaultyLLMClient` that
  replays a plan's weather deterministically;
* **chaos harness** (:mod:`.chaos`) — runs a service under a plan and
  produces the digestable :class:`ChaosReport` the gate pins.

``.client`` and ``.chaos`` import the LLM/core layers, which themselves
import ``.errors``/``.retry`` — so this package loads those two lazily
(module ``__getattr__``) to keep the import graph acyclic.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.errors import (
    CircuitOpenError,
    InjectedStageError,
    LLMTimeoutError,
    PermanentLLMError,
    ResilienceError,
    TransientLLMError,
)
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultPlanNotFoundError,
    FaultSpec,
    available_fault_kinds,
    available_fault_plans,
    corrupt_trace_text,
    get_fault_kind,
    get_fault_plan,
    iter_fault_plans,
    register_fault_kind,
    register_fault_plan,
    unregister_fault_kind,
    unregister_fault_plan,
)
from repro.resilience.retry import CircuitBreaker, ResilienceMetrics, RetryPolicy

__all__ = [
    "ResilienceError",
    "TransientLLMError",
    "LLMTimeoutError",
    "PermanentLLMError",
    "CircuitOpenError",
    "InjectedStageError",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceMetrics",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultPlanNotFoundError",
    "register_fault_kind",
    "unregister_fault_kind",
    "available_fault_kinds",
    "get_fault_kind",
    "register_fault_plan",
    "unregister_fault_plan",
    "available_fault_plans",
    "get_fault_plan",
    "iter_fault_plans",
    "corrupt_trace_text",
    # lazy (imported on first access to avoid llm/core import cycles):
    "FaultyLLMClient",
    "ChaosReport",
    "ChaosRun",
    "run_chaos_plan",
    "chaos_report_digest",
]

_LAZY = {
    "FaultyLLMClient": "repro.resilience.client",
    "ChaosReport": "repro.resilience.chaos",
    "ChaosRun": "repro.resilience.chaos",
    "run_chaos_plan": "repro.resilience.chaos",
    "chaos_report_digest": "repro.resilience.chaos",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
