"""The resilience error taxonomy: how an LLM backend is allowed to fail.

Every failure the recovery layer knows how to handle is a subclass of
:class:`ResilienceError`.  A production deployment would map its provider
SDK's exceptions onto this taxonomy (an OpenAI ``RateLimitError`` becomes
:class:`TransientLLMError`, an auth failure :class:`PermanentLLMError`,
…); the simulated fault plane (:mod:`repro.resilience.faults`) raises them
directly.  The split drives recovery policy:

* **transient** (:class:`TransientLLMError`, :class:`LLMTimeoutError`) —
  retried under the client's :class:`~repro.resilience.retry.RetryPolicy`;
* **permanent** (:class:`PermanentLLMError`) — never retried, surfaced
  immediately (and counted against the circuit breaker);
* **fast-fail** (:class:`CircuitOpenError`) — the breaker refused to even
  place the call;
* **injected stage crash** (:class:`InjectedStageError`) — the chaos
  harness's simulated stage failure, exercised by the degradation path in
  :class:`~repro.core.pipeline.DiagnosisPipeline`.

The pipeline's per-fragment isolation catches exactly this taxonomy: a
fragment whose calls exhaust recovery is dropped (and recorded), while any
*other* exception type still propagates — a genuine bug must never be
silently reclassified as weather.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "TransientLLMError",
    "LLMTimeoutError",
    "PermanentLLMError",
    "CircuitOpenError",
    "InjectedStageError",
]


class ResilienceError(RuntimeError):
    """Base class for every failure the recovery layer understands."""


class TransientLLMError(ResilienceError):
    """A call failed in a way expected to heal on retry (rate limit, 5xx)."""


class LLMTimeoutError(TransientLLMError):
    """A call exceeded its deadline; retryable like any transient failure."""


class PermanentLLMError(ResilienceError):
    """A call failed in a way no retry can fix (bad auth, invalid model)."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open: the call was fast-failed, not placed."""


class InjectedStageError(ResilienceError):
    """A chaos-plan stage crash (see ``stage-crash`` fault kind)."""
