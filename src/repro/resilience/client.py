"""The fault-injecting LLM client: weather for the recovery layer to survive.

:class:`FaultyLLMClient` subclasses :class:`~repro.llm.client.LLMClient`
and overrides its :meth:`~repro.llm.client.LLMClient._attempt` hook — the
single point where a physical call is placed — so everything above it
(retry loop, circuit breaker, accounting, listeners) is *exactly* the
production code path.  Which calls fail, how deeply, and how completions
are garbled all derive from the plan's seed via ``rng_for``, never from
call order or wall clock, so a chaos run replays byte-identically.

Injection semantics per LLM-target fault kind:

* ``llm-transient`` / ``llm-timeout`` — an affected ``call_id`` fails its
  first *k* physical attempts (``k`` drawn in ``[1, param]``) and then
  heals, modelling rate limits and slow backends.  With a retry policy
  allowing more than *k* attempts the call recovers; with a tight budget
  it surfaces, and per-fragment isolation in the pipeline absorbs it.
* ``llm-permanent`` — every attempt of an affected call raises; these are
  what trips the breaker in the ``describe-outage`` plan.
* ``llm-garble`` — the attempt *succeeds* but its text is mangled
  (:func:`~repro.resilience.faults.garble_text`), exercising the fact
  extractors' tolerance and counted as a ``garbled`` fault event.
"""

from __future__ import annotations

from typing import Callable

from repro.llm.client import FaultEvent, LLMClient
from repro.llm.models import ModelProfile
from repro.resilience.errors import LLMTimeoutError, PermanentLLMError, TransientLLMError
from repro.resilience.faults import FaultPlan, garble_text
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.util.rng import rng_for

__all__ = ["FaultyLLMClient"]


def _no_sleep(_seconds: float) -> None:
    """Chaos runs never really sleep; backoff is still computed and counted."""


class FaultyLLMClient(LLMClient):
    """An :class:`LLMClient` whose backend misbehaves per a :class:`FaultPlan`."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        *,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        timeout_s: float = 1.0,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        super().__init__(
            seed=seed,
            retry_policy=retry_policy,
            breaker=breaker,
            timeout_s=timeout_s,
            sleep=sleep if sleep is not None else _no_sleep,
        )
        self.plan = plan

    def _attempt(
        self, text: str, profile: ModelProfile, call_id: str, attempt: int
    ) -> tuple[str, bool, int]:
        for spec in self.plan.specs_for("llm"):
            if not spec.fires_for(self.plan.seed, call_id):
                continue
            if spec.kind == "llm-permanent":
                raise PermanentLLMError(
                    f"injected permanent failure for call {call_id!r} ({self.plan.name})"
                )
            if spec.kind in ("llm-transient", "llm-timeout"):
                depth = spec.depth_for(self.plan.seed, call_id)
                if attempt <= depth:
                    if spec.kind == "llm-timeout":
                        raise LLMTimeoutError(
                            f"injected timeout (> {self.timeout_s:g}s) on attempt "
                            f"{attempt} of call {call_id!r} ({self.plan.name})"
                        )
                    raise TransientLLMError(
                        f"injected transient failure on attempt {attempt} of call "
                        f"{call_id!r} ({self.plan.name})"
                    )
        response, truncated, visible_tokens = super()._attempt(
            text, profile, call_id, attempt
        )
        for spec in self.plan.specs_for("llm"):
            if spec.kind == "llm-garble" and spec.fires_for(self.plan.seed, call_id):
                rng = rng_for(self.plan.seed, "garble", call_id)
                response = garble_text(response, rng)
                self._note_fault(
                    "garbled", FaultEvent("garbled", call_id, profile.name, attempt)
                )
        return response, truncated, visible_tokens
