"""Recovery policy primitives: retry/backoff, circuit breaking, metrics.

All three classes are backend-agnostic and deterministic:

* :class:`RetryPolicy` — exponential backoff with *deterministic* jitter
  (derived from ``(seed, call_id, attempt)`` via :func:`repro.util.rng.
  rng_for`, never from wall clock or a global RNG) and a per-call sleep
  budget, so a chaos run replays byte-identically across processes;
* :class:`CircuitBreaker` — a call-count-based breaker (consecutive
  failures trip it, a fixed number of fast-failed calls later a half-open
  probe is allowed through).  Counting *calls* instead of wall-clock
  seconds keeps the state machine deterministic under a serial driver,
  which is what the chaos gate pins;
* :class:`ResilienceMetrics` — the counter block every
  :class:`~repro.llm.client.LLMClient` maintains (retries, trips,
  injected faults, isolated listener crashes), snapshotted by the service
  layer and asserted by the chaos gate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.util.rng import rng_for

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilienceMetrics"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a sleep budget.

    ``backoff(attempt, ...)`` returns the delay *before* retry number
    ``attempt`` (1-based: the delay after the first failed attempt is
    ``backoff(1, ...)``).  The raw curve is ``base_delay * multiplier**
    (attempt-1)`` capped at ``max_delay``; jitter then scales it into
    ``[raw * (1 - jitter), raw]``.  ``budget`` caps the *total* seconds a
    single logical call may spend sleeping — once the next delay would
    exceed what remains, the caller gives up and surfaces the last error.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5
    budget: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.budget < 0:
            raise ValueError("delays and budget must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, *, seed: int = 0, call_id: str = "") -> float:
        """Deterministic delay before retry ``attempt`` of ``call_id``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = rng_for(seed, "backoff", call_id, attempt)
        return raw * (1.0 - self.jitter * float(rng.random()))


class CircuitBreaker:
    """Trip after consecutive failures; fast-fail, then probe half-open.

    States: **closed** (calls flow; ``failure_threshold`` *consecutive*
    failures trip it), **open** (the next ``cooldown_calls`` calls are
    refused without being placed), **half-open** (one probe call is
    allowed; success closes the breaker, failure re-opens it for another
    cooldown).  Thread-safe; deterministic when calls arrive in a
    deterministic order (the chaos gate drives everything serially).
    """

    def __init__(self, failure_threshold: int = 5, cooldown_calls: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._open_remaining = 0  # >0: open; fast-fail this many calls
        self._half_open = False
        self.trips = 0

    def allow(self) -> bool:
        """Whether the next call may be placed (False = fast-fail it)."""
        with self._lock:
            if self._open_remaining > 0:
                self._open_remaining -= 1
                if self._open_remaining == 0:
                    self._half_open = True  # the *next* call is the probe
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._half_open = False

    def record_failure(self) -> bool:
        """Count a failure; returns True when this one tripped the breaker."""
        with self._lock:
            if self._half_open:  # failed probe: straight back to open
                self._half_open = False
                self._open_remaining = self.cooldown_calls
                self.trips += 1
                return True
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._consecutive_failures = 0
                self._open_remaining = self.cooldown_calls
                self.trips += 1
                return True
            return False

    @property
    def state(self) -> str:
        with self._lock:
            if self._open_remaining > 0:
                return "open"
            return "half-open" if self._half_open else "closed"


@dataclass(frozen=True)
class ResilienceMetrics:
    """Immutable snapshot of a client's recovery/fault counters."""

    retries: int = 0
    transient_errors: int = 0
    timeouts: int = 0
    permanent_errors: int = 0
    circuit_trips: int = 0
    circuit_fast_fails: int = 0
    garbled: int = 0
    listener_errors: int = 0

    @property
    def total_faults(self) -> int:
        """Injected/observed failures (excluding the recovery actions)."""
        return (
            self.transient_errors
            + self.timeouts
            + self.permanent_errors
            + self.circuit_fast_fails
            + self.garbled
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "transient_errors": self.transient_errors,
            "timeouts": self.timeouts,
            "permanent_errors": self.permanent_errors,
            "circuit_trips": self.circuit_trips,
            "circuit_fast_fails": self.circuit_fast_fails,
            "garbled": self.garbled,
            "listener_errors": self.listener_errors,
        }
