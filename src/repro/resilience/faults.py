"""The seeded fault-injection plane: fault kinds, fault plans, trace damage.

Mirrors the scenario registry (:mod:`repro.workloads.scenarios`): where a
``Scenario`` is "nothing in, one labeled trace out", a :class:`FaultPlan`
is "one healthy system in, one *specific weather pattern* out" — a named,
seeded bundle of :class:`FaultSpec` entries that the chaos harness applies
to the LLM client (:class:`~repro.resilience.client.FaultyLLMClient`), the
trace ingest path (:func:`corrupt_trace_text`), and the pipeline stages
(the ``stage-crash`` kind).  Every injection decision derives from
``rng_for(plan.seed, kind, ..., key)``, so a chaos run is byte-reproducible
across processes for the same seed — the gate pins exactly that.

Fault *kinds* are themselves registered (:func:`register_fault_kind`), so
a future failure mode ships with one call and the knowledge-base analyzer
(``resilience-contract`` check) verifies that every registered kind is
exercised by at least one pinned plan and that every plan references only
registered kinds.

Built-in kinds:

========================  =======  ==============================================
kind                      target   behavior (``param`` meaning)
========================  =======  ==============================================
``llm-transient``         llm      fail the first *k* attempts of an affected
                                   call, *k* drawn in ``[1, param]`` — guaranteed
                                   to heal within a retry policy allowing
                                   ``param + 1`` attempts
``llm-timeout``           llm      same shape, raising ``LLMTimeoutError``
``llm-permanent``         llm      every attempt of an affected call fails
``llm-garble``            llm      the completion text is deterministically
                                   mangled (a slice replaced by noise)
``trace-truncate``        trace    keep only the leading ``param`` fraction of
                                   the trace text, cutting mid-line
``trace-truncate-dxt``    trace    same, but only inside the DXT section
``trace-garble-lines``    trace    mangle a ``param`` fraction of data lines
``stage-crash``           stage    the scoped pipeline stage raises
                                   ``InjectedStageError`` for affected traces
========================  =======  ==============================================

``rate`` is the fraction of *keys* (call ids, traces) a spec affects;
``scope`` is a substring filter on the key (``"/describe"`` hits only
describe-stage calls; for ``stage-crash`` it names the stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.lookup import RegistryLookupError
from repro.util.rng import rng_for

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultPlanNotFoundError",
    "FAULT_TARGETS",
    "register_fault_kind",
    "unregister_fault_kind",
    "available_fault_kinds",
    "get_fault_kind",
    "register_fault_plan",
    "unregister_fault_plan",
    "available_fault_plans",
    "get_fault_plan",
    "iter_fault_plans",
    "corrupt_trace_text",
    "garble_text",
]

# Where a fault kind bites: the LLM call path, the trace ingest path, or a
# pipeline stage.  The analyzer's resilience-contract check leans on this.
FAULT_TARGETS = ("llm", "trace", "stage")


@dataclass(frozen=True)
class FaultKind:
    """One registered failure mode."""

    name: str
    target: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault kind name must be non-empty")
        if self.target not in FAULT_TARGETS:
            raise ValueError(
                f"unknown fault target {self.target!r}; expected one of {FAULT_TARGETS}"
            )


_KIND_REGISTRY: dict[str, FaultKind] = {}


def register_fault_kind(
    name: str, target: str, description: str = "", *, replace: bool = False
) -> FaultKind:
    """Register a failure mode; mirrors ``register_scenario`` semantics."""
    if not replace and name in _KIND_REGISTRY:
        raise ValueError(f"fault kind {name!r} is already registered (pass replace=True)")
    kind = FaultKind(name=name, target=target, description=description)
    _KIND_REGISTRY[name] = kind
    return kind


def unregister_fault_kind(name: str) -> None:
    """Remove a registration (no-op if absent); used by tests and plugins."""
    _KIND_REGISTRY.pop(name, None)


def available_fault_kinds() -> tuple[str, ...]:
    """Registered fault kind names, registration order."""
    return tuple(_KIND_REGISTRY)


def get_fault_kind(name: str) -> FaultKind:
    try:
        return _KIND_REGISTRY[name]
    except KeyError:
        options = ", ".join(_KIND_REGISTRY) or "<none>"
        raise KeyError(f"unknown fault kind {name!r}; available: {options}") from None


# -- built-in kinds --------------------------------------------------------

register_fault_kind(
    "llm-transient", "llm", "call fails the first k attempts, then heals (rate-limit/5xx)"
)
register_fault_kind("llm-timeout", "llm", "call exceeds its deadline for the first k attempts")
register_fault_kind("llm-permanent", "llm", "call fails on every attempt (auth/invalid-request)")
register_fault_kind("llm-garble", "llm", "completion text is deterministically mangled")
register_fault_kind("trace-truncate", "trace", "trace text cut mid-line at a fraction")
register_fault_kind("trace-truncate-dxt", "trace", "DXT section cut mid-line at a fraction")
register_fault_kind("trace-garble-lines", "trace", "a fraction of data lines mangled")
register_fault_kind("stage-crash", "stage", "the scoped pipeline stage raises for affected traces")


@dataclass(frozen=True)
class FaultSpec:
    """One failure mode inside a plan, with its intensity and scope."""

    kind: str
    rate: float = 1.0  # fraction of keys (call ids / traces) affected
    scope: str = ""  # substring filter on the key; stage name for stage-crash
    param: float = 0.0  # kind-specific knob (see module docstring table)

    def __post_init__(self) -> None:
        get_fault_kind(self.kind)  # unknown kinds fail at construction
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    @property
    def target(self) -> str:
        return get_fault_kind(self.kind).target

    def affects(self, key: str) -> bool:
        """Scope filter: does this spec even consider ``key``?"""
        return self.scope in key

    def fires_for(self, plan_seed: int, key: str) -> bool:
        """Deterministic per-key decision: is ``key`` in the affected set?

        Independent of call order and thread schedule — the draw is keyed
        purely by ``(plan_seed, kind, scope, key)``.
        """
        if not self.affects(key):
            return False
        if self.rate >= 1.0:
            return True
        rng = rng_for(plan_seed, "fault", self.kind, self.scope, key)
        return float(rng.random()) < self.rate

    def depth_for(self, plan_seed: int, key: str) -> int:
        """How many leading attempts fail (transient/timeout kinds)."""
        limit = max(1, int(self.param))
        rng = rng_for(plan_seed, "fault-depth", self.kind, self.scope, key)
        return 1 + int(rng.integers(0, limit))


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded weather pattern: which faults, how hard, where."""

    name: str
    specs: tuple[FaultSpec, ...]
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault plan name must be non-empty")
        if not self.specs:
            raise ValueError(f"fault plan {self.name!r} has no fault specs")

    def specs_for(self, target: str) -> tuple[FaultSpec, ...]:
        """The plan's specs aimed at one target family."""
        return tuple(s for s in self.specs if s.target == target)

    @property
    def kinds(self) -> tuple[str, ...]:
        """Every fault kind the plan uses, first-seen order."""
        seen: dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.kind, None)
        return tuple(seen)


class FaultPlanNotFoundError(RegistryLookupError):
    """Raised for a plan name nobody registered."""

    noun = "fault plan"
    available_label = "available plans"

    @property
    def plan_name(self) -> str:
        return self.unknown[0]

    def available_cli_line(self) -> str:
        return f"available fault plans: {self.options()}"


_PLAN_REGISTRY: dict[str, FaultPlan] = {}


def register_fault_plan(plan: FaultPlan, *, replace: bool = False) -> FaultPlan:
    """Register a plan; a silently shadowed plan would un-pin a chaos gate."""
    if not replace and plan.name in _PLAN_REGISTRY:
        raise ValueError(f"fault plan {plan.name!r} is already registered (pass replace=True)")
    _PLAN_REGISTRY[plan.name] = plan
    return plan


def unregister_fault_plan(name: str) -> None:
    """Remove a registration (no-op if absent); used by tests and plugins."""
    _PLAN_REGISTRY.pop(name, None)


def available_fault_plans() -> tuple[str, ...]:
    """Registered plan names, registration order."""
    return tuple(_PLAN_REGISTRY)


def get_fault_plan(name: str) -> FaultPlan:
    try:
        return _PLAN_REGISTRY[name]
    except KeyError:
        raise FaultPlanNotFoundError(name, available_fault_plans()) from None


def iter_fault_plans() -> tuple[FaultPlan, ...]:
    return tuple(_PLAN_REGISTRY.values())


# -- built-in pinned plans (the chaos gate sweeps exactly these) -----------

register_fault_plan(
    FaultPlan(
        name="flaky-llm",
        specs=(
            FaultSpec("llm-transient", rate=0.45, param=2),
            FaultSpec("llm-timeout", rate=0.2, param=1),
        ),
        description="garden-variety flakiness: rate limits and slow calls that heal on retry",
    )
)
register_fault_plan(
    FaultPlan(
        name="llm-brownout",
        specs=(
            FaultSpec("llm-transient", rate=0.7, param=3),
            FaultSpec("llm-garble", rate=0.3),
        ),
        description="degraded backend: heavy transient failures plus mangled completions",
    )
)
register_fault_plan(
    FaultPlan(
        name="describe-outage",
        specs=(FaultSpec("llm-permanent", rate=1.0, scope="/describe"),),
        description="hard outage of every describe call: trips the breaker, drops fragments",
    )
)
register_fault_plan(
    FaultPlan(
        name="merge-outage",
        specs=(FaultSpec("llm-permanent", rate=1.0, scope="/merge"),),
        description="merge calls hard-fail: the report falls back to concatenation",
    )
)
register_fault_plan(
    FaultPlan(
        name="temporal-crash",
        specs=(FaultSpec("stage-crash", rate=1.0, scope="temporal"),),
        description="the temporal stage crashes: the DXT channel is lost, diagnosis continues",
    )
)
register_fault_plan(
    FaultPlan(
        name="truncated-dxt",
        specs=(FaultSpec("trace-truncate-dxt", rate=1.0, param=0.5),),
        description="the DXT section of the ingested trace is cut mid-line at 50%",
    )
)
register_fault_plan(
    FaultPlan(
        name="garbled-trace",
        specs=(
            FaultSpec("trace-garble-lines", rate=1.0, param=0.1),
            FaultSpec("trace-truncate", rate=1.0, param=0.95),
        ),
        description="ingest damage: mangled counter lines plus a mid-line tail truncation",
    )
)


# -- deterministic damage primitives ---------------------------------------


def garble_text(text: str, rng: np.random.Generator) -> str:
    """Deterministically mangle ``text``: replace a slice with noise.

    Mimics a provider returning a half-encoded or truncated body: a
    contiguous chunk (up to half the text) is replaced by a replacement-
    character run, so downstream fact extraction loses whatever the chunk
    carried while the rest still parses.
    """
    if not text:
        return text
    start = int(rng.integers(0, max(1, len(text) // 2)))
    width = int(rng.integers(1, max(2, len(text) // 2)))
    return text[:start] + "�" * min(width, 16) + text[start + width :]


_DXT_MARKER = "# DXT trace"


def _truncate_lines(lines: list[str], fraction: float, rng: np.random.Generator) -> list[str]:
    """Keep the leading ``fraction`` of lines, cutting the last kept line mid-way."""
    keep = max(1, int(len(lines) * fraction))
    kept = lines[:keep]
    if kept and len(kept[-1]) > 1:
        cut = int(rng.integers(1, len(kept[-1])))
        kept[-1] = kept[-1][:cut]
    return kept


@dataclass(frozen=True)
class TraceDamage:
    """What :func:`corrupt_trace_text` actually did to one trace."""

    text: str
    applied: tuple[str, ...] = field(default_factory=tuple)

    @property
    def damaged(self) -> bool:
        return bool(self.applied)


def corrupt_trace_text(text: str, plan: FaultPlan, trace_id: str) -> TraceDamage:
    """Apply the plan's trace-target faults to darshan-parser text.

    Deterministic per ``(plan.seed, trace_id)``; returns the damaged text
    plus the list of fault kinds that actually fired, so the chaos harness
    can assert the lenient parser skipped-and-counted rather than crashed.
    """
    applied: list[str] = []
    for spec in plan.specs_for("trace"):
        if not spec.fires_for(plan.seed, trace_id):
            continue
        rng = rng_for(plan.seed, "trace-damage", spec.kind, trace_id)
        lines = text.splitlines()
        if spec.kind == "trace-truncate":
            fraction = spec.param if spec.param > 0 else 0.7
            lines = _truncate_lines(lines, fraction, rng)
        elif spec.kind == "trace-truncate-dxt":
            marker = next((i for i, ln in enumerate(lines) if ln.startswith(_DXT_MARKER)), None)
            if marker is None:
                continue  # counter-only trace: nothing to truncate
            fraction = spec.param if spec.param > 0 else 0.5
            lines = lines[:marker] + _truncate_lines(lines[marker:], fraction, rng)
        elif spec.kind == "trace-garble-lines":
            fraction = spec.param if spec.param > 0 else 0.1
            data_idx = [
                i for i, ln in enumerate(lines) if ln.strip() and not ln.startswith("#")
            ]
            n_damage = max(1, int(len(data_idx) * fraction))
            chosen = rng.choice(len(data_idx), size=min(n_damage, len(data_idx)), replace=False)
            for j in sorted(int(c) for c in chosen):
                idx = data_idx[j]
                line = lines[idx]
                cut = int(rng.integers(0, max(1, len(line))))
                lines[idx] = line[:cut] + "�<corrupt>"
        else:  # pragma: no cover - unreachable while kinds and targets agree
            raise ValueError(f"unhandled trace fault kind {spec.kind!r}")
        text = "\n".join(lines) + ("\n" if text.endswith("\n") else "")
        applied.append(spec.kind)
    return TraceDamage(text=text, applied=tuple(applied))
