"""Typed I/O operations issued by workloads and executed by the runtime.

An operation stream is the ground truth of an application's I/O behaviour;
Darshan counters are a lossy projection of it.  Workloads build lists of
:class:`IOOp`; the runtime executes them in rank-interleaved program order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["API", "OpKind", "IOOp", "compute", "barrier"]


class API(str, enum.Enum):
    """The I/O interface an operation goes through (Darshan module)."""

    POSIX = "POSIX"
    MPIIO = "MPIIO"
    STDIO = "STDIO"


class OpKind(str, enum.Enum):
    """Operation kinds the runtime knows how to execute and time."""

    OPEN = "open"
    READ = "read"
    WRITE = "write"
    SEEK = "seek"
    STAT = "stat"
    SYNC = "sync"
    CLOSE = "close"
    COMPUTE = "compute"  # advances the rank clock without touching the FS
    BARRIER = "barrier"  # synchronizes every rank's clock (MPI_Barrier)


# Kinds that Darshan counts as metadata operations.
METADATA_KINDS = frozenset({OpKind.OPEN, OpKind.SEEK, OpKind.STAT, OpKind.SYNC, OpKind.CLOSE})


@dataclass(slots=True)
class IOOp:
    """One I/O call issued by one rank.

    ``offset``/``size`` are in bytes and only meaningful for READ/WRITE
    (and SEEK's target offset).  ``collective`` marks MPI-IO collective
    calls; the runtime lowers them through two-phase collective buffering.
    ``mem_aligned`` models whether the user buffer is aligned to the
    memory alignment Darshan checks (``POSIX_MEM_NOT_ALIGNED``).
    ``duration`` is only used by COMPUTE ops.
    """

    kind: OpKind
    api: API
    rank: int
    path: str = ""
    offset: int = 0
    size: int = 0
    collective: bool = False
    nonblocking: bool = False
    mem_aligned: bool = True
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.size < 0 or self.offset < 0:
            raise ValueError("offset/size must be non-negative")
        if self.kind in (OpKind.READ, OpKind.WRITE) and not self.path:
            raise ValueError("data operations require a path")
        if self.collective and self.api is not API.MPIIO:
            raise ValueError("only MPI-IO operations can be collective")

    @property
    def end_offset(self) -> int:
        """First byte past the extent this operation touches."""
        return self.offset + self.size


def compute(rank: int, seconds: float) -> IOOp:
    """Convenience constructor for a compute phase on ``rank``."""
    return IOOp(kind=OpKind.COMPUTE, api=API.POSIX, rank=rank, duration=seconds)


def barrier() -> IOOp:
    """Convenience constructor for a job-wide barrier.

    Like COMPUTE, a barrier never reaches the filesystem or any observer —
    MPI synchronization is invisible to Darshan — but it aligns every
    rank's clock, which is how workloads model cross-rank dependencies
    (producer/consumer handoffs, lock-token passing) whose cost shows up
    only in the time domain.
    """
    return IOOp(kind=OpKind.BARRIER, api=API.POSIX, rank=0)
