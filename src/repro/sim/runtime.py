"""The I/O runtime: executes operation streams and notifies observers.

This plays the role of the application + MPI-IO library + OS on a real
system.  It maintains per-rank clocks, lowers MPI-IO collectives through
two-phase collective buffering into large aligned POSIX writes by
aggregator ranks (so "collective I/O turns many small requests into few
large ones" is an emergent property, as on real ROMIO), tracks per-OST
traffic, and reports every executed operation to registered observers —
the Darshan instrumentation among them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.timing import PerfModel

__all__ = ["JobSpec", "JobResult", "IORuntime", "OpObserver"]


class OpObserver(Protocol):
    """Anything that wants to see executed operations (e.g. Darshan)."""

    def on_op(self, op: IOOp, t_start: float, t_end: float, fs: LustreFileSystem | None) -> None:
        """Called after each executed op with its simulated time span."""


@dataclass(frozen=True, slots=True)
class JobSpec:
    """Static description of one application run."""

    exe: str
    nprocs: int
    jobid: int = 0
    uid: int = 1001
    start_time: int = 1_700_000_000  # fixed epoch keeps logs reproducible
    uses_mpi: bool = True

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")


@dataclass(slots=True)
class JobResult:
    """Aggregates produced by executing a job's operation stream."""

    runtime: float
    ops_executed: int
    bytes_read: int
    bytes_written: int
    ost_bytes: dict[int, int]
    rank_busy: np.ndarray  # seconds of I/O+compute per rank


# Number of ranks per collective-buffering aggregator (ROMIO-like default:
# one aggregator per node; we use a fixed fan-in).
_CB_RANKS_PER_AGGREGATOR = 4
# Collective buffering buffer size (ROMIO default 16 MiB).
_CB_BUFFER_SIZE = 16 * 1024 * 1024


class IORuntime:
    """Executes an :class:`IOOp` stream for one job against one filesystem.

    Operations are supplied in program order per rank (any interleaving
    across ranks is accepted; per-rank order is what matters).  The runtime
    keeps a clock per rank; collective operations synchronize the clocks of
    all participating ranks, as an MPI barrier would.
    """

    def __init__(
        self,
        spec: JobSpec,
        fs: LustreFileSystem,
        perf: PerfModel | None = None,
    ) -> None:
        self.spec = spec
        self.fs = fs
        self.perf = perf or PerfModel()
        self._observers: list[OpObserver] = []
        self._clock = np.zeros(spec.nprocs, dtype=np.float64)
        # (rank, path) -> offset one past the last byte touched, for
        # sequentiality/seek detection in the timing model.
        self._last_end: dict[tuple[int, str], int] = {}
        self._ost_bytes: dict[int, int] = {}
        self._bytes_read = 0
        self._bytes_written = 0
        self._ops = 0

    def add_observer(self, obs: OpObserver) -> None:
        """Register an observer; order of registration = order of callbacks."""
        self._observers.append(obs)

    # -- execution -------------------------------------------------------

    def run(self, ops: Iterable[IOOp]) -> JobResult:
        """Execute the stream and return job-level aggregates."""
        for op in ops:
            self._execute(op)
        return JobResult(
            runtime=float(self._clock.max(initial=0.0)),
            ops_executed=self._ops,
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            ost_bytes=dict(self._ost_bytes),
            rank_busy=self._clock.copy(),
        )

    # -- internals ---------------------------------------------------------

    def _execute(self, op: IOOp) -> None:
        if op.rank >= self.spec.nprocs:
            raise ValueError(f"op rank {op.rank} out of range for nprocs={self.spec.nprocs}")
        if op.kind is OpKind.COMPUTE:
            self._clock[op.rank] += op.duration
            return
        if op.kind is OpKind.BARRIER:
            # MPI_Barrier: every rank waits for the slowest.  Invisible to
            # observers (Darshan sees no I/O), but the waiting time shapes
            # the DXT timeline — which is the point.
            self._clock[:] = self._clock.max(initial=0.0)
            return
        if op.collective:
            self._execute_collective(op)
            return
        t0 = float(self._clock[op.rank])
        dt = self._time_op(op)
        t1 = t0 + dt
        self._clock[op.rank] = t1
        self._notify(op, t0, t1)
        if op.api is API.MPIIO and op.kind in (OpKind.READ, OpKind.WRITE):
            # Independent MPI-IO lowers 1:1 to POSIX on the same rank.
            self._emit_lowered_posix(op, t0, t1)

    def _execute_collective(self, op: IOOp) -> None:
        """Execute one rank's share of a collective MPI-IO operation.

        Each rank's collective call is reported to observers individually
        (Darshan counts MPIIO_COLL_* per rank), but the data movement is
        lowered through aggregators: every ``_CB_RANKS_PER_AGGREGATOR``-th
        rank issues the combined, stripe-aligned POSIX transfers.  A
        synchronization round is charged to the calling rank.
        """
        t0 = float(self._clock[op.rank])
        dt = self.perf.collective_overhead + self._time_op(op)
        t1 = t0 + dt
        self._clock[op.rank] = t1
        self._notify(op, t0, t1)
        if op.kind not in (OpKind.READ, OpKind.WRITE):
            return
        if op.rank % _CB_RANKS_PER_AGGREGATOR == 0:
            # This rank aggregates its group's buffers: one large aligned
            # POSIX transfer per CB buffer's worth of data.
            group = min(_CB_RANKS_PER_AGGREGATOR, self.spec.nprocs - op.rank)
            total = op.size * group
            layout = self.fs.layout_for(op.path) if self.fs.contains(op.path) else None
            align = layout.stripe_size if layout else self.fs.block_size
            base = (op.offset // align) * align
            done = 0
            while done < total:
                chunk = min(_CB_BUFFER_SIZE, total - done)
                posix = IOOp(
                    kind=op.kind,
                    api=API.POSIX,
                    rank=op.rank,
                    path=op.path,
                    offset=base + done,
                    size=chunk,
                    mem_aligned=True,
                )
                pt0 = float(self._clock[op.rank])
                pdt = self._time_op(posix)
                pt1 = pt0 + pdt
                self._clock[op.rank] = pt1
                self._notify(posix, pt0, pt1)
                done += chunk

    def _emit_lowered_posix(self, op: IOOp, t0: float, t1: float) -> None:
        posix = IOOp(
            kind=op.kind,
            api=API.POSIX,
            rank=op.rank,
            path=op.path,
            offset=op.offset,
            size=op.size,
            mem_aligned=op.mem_aligned,
        )
        self._notify(posix, t0, t1)
        # The MPI-IO op already accounted for the data movement in the
        # caller; the lowered POSIX op is recorded without extra time.

    def _time_op(self, op: IOOp) -> float:
        if op.kind in (OpKind.READ, OpKind.WRITE):
            key = (op.rank, op.path)
            sequential = self._last_end.get(key, 0) == op.offset
            self._last_end[key] = op.end_offset
            osts_used = 1
            slowdown = 1.0
            if self.fs.contains(op.path):
                layout = self.fs.layout_for(op.path)
                per_ost = layout.bytes_per_ost(op.offset, op.size)
                osts_used = max(1, len(per_ost))
                slowdown = self.fs.ost_slowdown(per_ost)
                for ost, nbytes in per_ost.items():
                    self._ost_bytes[ost] = self._ost_bytes.get(ost, 0) + nbytes
                self.fs.record_extent(op.path, op.end_offset)
            if op.kind is OpKind.READ:
                self._bytes_read += op.size
            else:
                self._bytes_written += op.size
            self._ops += 1
            return self.perf.transfer_time(op.size, osts_used, sequential) * slowdown
        # Metadata operations.
        if op.kind is OpKind.SEEK:
            self._last_end[(op.rank, op.path)] = op.offset
        if op.kind is OpKind.OPEN and self.fs.contains(op.path):
            self.fs.layout_for(op.path)  # materialize layout on first open
        self._ops += 1
        if op.kind is OpKind.SYNC:
            return self.perf.sync_time()
        return self.perf.metadata_time()

    def _notify(self, op: IOOp, t0: float, t1: float) -> None:
        fs = self.fs if self.fs.contains(op.path) else None
        for obs in self._observers:
            obs.on_op(op, t0, t1, fs)
