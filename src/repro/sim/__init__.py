"""Simulated HPC I/O substrate.

The paper's traces come from real machines (NERSC Lustre systems); this
package is the synthetic equivalent: a cluster of MPI ranks issuing typed
I/O operations (:mod:`repro.sim.ops`) against a Lustre-like parallel
filesystem (:mod:`repro.sim.filesystem`) through a runtime
(:mod:`repro.sim.runtime`) with a bandwidth/latency/contention timing model
(:mod:`repro.sim.timing`).  The Darshan instrumentation layer in
:mod:`repro.darshan` observes every executed operation, exactly as the real
Darshan library interposes on I/O calls.
"""

from repro.sim.filesystem import LustreFileSystem, StripeLayout
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import IORuntime, JobResult, JobSpec
from repro.sim.timing import PerfModel

__all__ = [
    "API",
    "OpKind",
    "IOOp",
    "StripeLayout",
    "LustreFileSystem",
    "PerfModel",
    "JobSpec",
    "JobResult",
    "IORuntime",
]
