"""I/O timing model.

A deliberately simple analytic model — per-operation latency plus
size/bandwidth transfer time with stripe-parallel transfers, a seek penalty
for non-sequential access, and an MDT service time for metadata ops.  The
goal is *plausible relative* timings (small ops dominated by latency, wide
stripes faster than width-1, metadata storms visible in F_META_TIME), not
absolute fidelity; Darshan diagnosis reasons about ratios and proportions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MiB

__all__ = ["PerfModel"]


@dataclass(frozen=True, slots=True)
class PerfModel:
    """Cluster performance constants used to time operations.

    ``ost_bandwidth`` is per-OST streaming bandwidth; a transfer striped
    over *k* OSTs proceeds at ``k``× that rate (up to the extent actually
    covered).  ``op_latency`` is the fixed software/network cost of any
    data op; ``seek_penalty`` is added when an op is not sequential with
    the rank's previous op on the same file; ``mdt_latency`` is the cost
    of one metadata operation; ``collective_overhead`` is the
    synchronization cost of one collective round.
    """

    ost_bandwidth: float = 500.0 * MiB  # bytes/s per OST
    op_latency: float = 50e-6  # s
    seek_penalty: float = 2e-3  # s
    mdt_latency: float = 400e-6  # s
    collective_overhead: float = 1.5e-3  # s per collective round
    stdio_buffer: int = 4096  # stdio's user-space buffering granularity
    # fsync/flush commit latency; None means "same as any metadata op".
    # Real clusters sit well above that (a sync waits on device durability,
    # not just an MDT round-trip), which fsync-heavy scenarios model by
    # overriding this.
    sync_latency: float | None = None

    def transfer_time(self, size: int, osts_used: int, sequential: bool) -> float:
        """Seconds to move ``size`` bytes over ``osts_used`` parallel OSTs."""
        if size < 0:
            raise ValueError("size must be non-negative")
        lanes = max(1, osts_used)
        t = self.op_latency + size / (self.ost_bandwidth * lanes)
        if not sequential:
            t += self.seek_penalty
        return t

    def metadata_time(self) -> float:
        """Seconds for one metadata operation (open/stat/seek/close)."""
        return self.mdt_latency

    def sync_time(self) -> float:
        """Seconds for one sync/flush (falls back to the metadata cost)."""
        return self.mdt_latency if self.sync_latency is None else self.sync_latency
