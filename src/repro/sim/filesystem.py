"""Lustre-like parallel filesystem model.

Only the properties that shape Darshan counters and diagnoses are modelled:
stripe layout per file (size / width / starting OST / OST id list), block
alignment, OST and MDT population, and the mapping from a byte extent to
the set of OSTs that serve it.  This is what the LUSTRE Darshan module
records and what stripe-related diagnoses ("stripe width 1 limits
parallelism") reason about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for
from repro.util.units import MiB

__all__ = ["StripeLayout", "LustreFileSystem"]


@dataclass(frozen=True, slots=True)
class StripeLayout:
    """Striping of one file: ``stripe_width`` OSTs, round-robin chunks."""

    stripe_size: int
    stripe_width: int
    stripe_offset: int
    ost_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if self.stripe_width != len(self.ost_ids):
            raise ValueError("stripe_width must match the number of OSTs")

    def ost_for_offset(self, offset: int) -> int:
        """OST id that stores the stripe containing byte ``offset``."""
        return self.ost_ids[(offset // self.stripe_size) % self.stripe_width]

    def bytes_per_ost(self, offset: int, size: int) -> dict[int, int]:
        """Distribute the extent ``[offset, offset+size)`` over OSTs.

        Vectorized over the stripes the extent crosses; returns
        ``{ost_id: bytes}`` for the OSTs that receive any data.
        """
        if size <= 0:
            return {}
        first = offset // self.stripe_size
        last = (offset + size - 1) // self.stripe_size
        stripes = np.arange(first, last + 1)
        starts = np.maximum(stripes * self.stripe_size, offset)
        ends = np.minimum((stripes + 1) * self.stripe_size, offset + size)
        lengths = ends - starts
        osts = np.asarray(self.ost_ids)[stripes % self.stripe_width]
        out: dict[int, int] = {}
        for ost, length in zip(osts.tolist(), lengths.tolist()):
            out[ost] = out.get(ost, 0) + int(length)
        return out


class LustreFileSystem:
    """A mounted Lustre-like filesystem with per-file stripe layouts.

    Layouts are assigned lazily: the first touch of a path materializes a
    layout using the filesystem defaults (or a per-path override installed
    with :meth:`set_stripe`, mirroring ``lfs setstripe``).  OST selection is
    deterministic per (fs seed, path).
    """

    def __init__(
        self,
        mount_point: str = "/scratch",
        fs_type: str = "lustre",
        num_osts: int = 64,
        num_mdts: int = 1,
        default_stripe_size: int = 1 * MiB,
        default_stripe_width: int = 1,
        block_size: int = 4096,
        memory_alignment: int = 8,
        seed: int = 0,
        slow_osts: dict[int, float] | None = None,
    ) -> None:
        if num_osts <= 0:
            raise ValueError("num_osts must be positive")
        if default_stripe_width > num_osts:
            raise ValueError("default stripe width cannot exceed OST count")
        if slow_osts and any(f < 1.0 for f in slow_osts.values()):
            raise ValueError("slow_osts factors must be >= 1.0")
        self.mount_point = mount_point.rstrip("/") or "/"
        self.fs_type = fs_type
        self.num_osts = num_osts
        self.num_mdts = num_mdts
        self.default_stripe_size = default_stripe_size
        self.default_stripe_width = default_stripe_width
        self.block_size = block_size
        self.memory_alignment = memory_alignment
        # Degraded servers: OST id -> service-time multiplier (>= 1.0).
        # A slow OST serves the same bytes, just slower — traffic counters
        # stay perfectly balanced, which is what makes the resulting
        # hotspot invisible to counter-only diagnosis.
        self.slow_osts: dict[int, float] = dict(slow_osts or {})
        self._seed = seed
        self._overrides: dict[str, tuple[int, int, int | None]] = {}
        self._layouts: dict[str, StripeLayout] = {}
        self._file_sizes: dict[str, int] = {}

    # -- configuration -------------------------------------------------

    def set_stripe(
        self,
        path: str,
        stripe_size: int,
        stripe_width: int,
        stripe_offset: int | None = None,
    ) -> None:
        """Install an ``lfs setstripe``-style override for ``path``.

        Must be called before the file is first touched, as on real Lustre
        (striping cannot be changed on a non-empty file).  ``stripe_offset``
        pins the starting OST (``lfs setstripe -i``); ``None`` keeps the
        deterministic per-path pseudo-random placement.
        """
        if path in self._layouts:
            raise ValueError(f"cannot restripe already-materialized file {path!r}")
        if stripe_width > self.num_osts:
            raise ValueError("stripe width cannot exceed OST count")
        if stripe_offset is not None and not 0 <= stripe_offset < self.num_osts:
            raise ValueError("stripe offset must name a valid OST")
        self._overrides[path] = (int(stripe_size), int(stripe_width), stripe_offset)

    def serving_ost(self, path: str, offset: int) -> int | None:
        """OST id attributed to a transfer starting at ``offset`` of ``path``.

        The attribution rule of the DXT ``ost`` column: the OST storing the
        stripe that holds the transfer's first byte.  A multi-stripe
        transfer touches further OSTs too (``bytes_per_ost`` has the full
        map), but segment attribution keeps the O(1) leading-OST
        convention; workloads that need exact attribution issue
        stripe-aligned, stripe-sized requests.  ``None`` for paths outside
        the mount point — the column's "unattributed" value, matching
        parsed text traces that never carried server info.
        """
        if not self.contains(path):
            return None
        return self.layout_for(path).ost_for_offset(offset)

    def ost_slowdown(self, ost_ids) -> float:
        """Service-time multiplier for a transfer touching ``ost_ids``.

        A striped transfer completes when its slowest stripe does, so the
        worst touched OST's factor applies to the whole operation.
        """
        if not self.slow_osts:
            return 1.0
        return max((self.slow_osts.get(ost, 1.0) for ost in ost_ids), default=1.0)

    # -- layout / geometry ----------------------------------------------

    def contains(self, path: str) -> bool:
        """True if ``path`` lives under this filesystem's mount point."""
        return path.startswith(self.mount_point + "/") or path == self.mount_point

    def layout_for(self, path: str) -> StripeLayout:
        """Materialize (or fetch) the stripe layout of ``path``."""
        layout = self._layouts.get(path)
        if layout is None:
            size, width, start = self._overrides.get(
                path, (self.default_stripe_size, self.default_stripe_width, None)
            )
            if start is None:
                rng = rng_for(self._seed, "layout", path)
                start = int(rng.integers(0, self.num_osts))
            ost_ids = tuple((start + i) % self.num_osts for i in range(width))
            layout = StripeLayout(
                stripe_size=size, stripe_width=width, stripe_offset=start, ost_ids=ost_ids
            )
            self._layouts[path] = layout
        return layout

    def record_extent(self, path: str, end_offset: int) -> None:
        """Grow the tracked file size to cover a written/read extent."""
        if end_offset > self._file_sizes.get(path, 0):
            self._file_sizes[path] = end_offset

    def file_size(self, path: str) -> int:
        """Current size of ``path`` as observed through the runtime."""
        return self._file_sizes.get(path, 0)

    def known_files(self) -> list[str]:
        """Paths with materialized layouts, in first-touch order."""
        return list(self._layouts)
