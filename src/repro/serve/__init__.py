"""The serving layer: always-on diagnosis as a queued, cached backend.

Public surface (re-exported at the top level by :mod:`repro`):

* :class:`DiagnosisServer` — bounded work queue with typed backpressure
  (:class:`QueueFullError`), in-flight coalescing of identical requests,
  worker pool, per-stage latency + queue-depth histograms;
* :class:`PendingDiagnosis` — the future-like handle ``submit`` returns;
* :class:`ResultStore` — the persistent content-addressed result store
  (atomic canonical-JSON records; degraded reports are never persisted);
* :class:`~repro.serve.metrics.FixedBucketHistogram` /
  :class:`~repro.serve.metrics.LatencyModel` /
  :class:`~repro.serve.metrics.ServeSnapshot` — the deterministic
  telemetry schema.

See ``docs/serving.md`` for the executable walkthrough and
``benchmarks/bench_serve.py`` for the coalescing/throughput gate.
"""

from repro.serve.metrics import (
    LATENCY_BUCKET_BOUNDS,
    QUEUE_DEPTH_BUCKET_BOUNDS,
    FixedBucketHistogram,
    LatencyModel,
    ServeCounters,
    ServeSnapshot,
)
from repro.serve.server import (
    DiagnosisServer,
    PendingDiagnosis,
    QueueFullError,
    ServeError,
    ServerClosedError,
)
from repro.serve.store import ResultStore, report_from_dict, report_to_dict

__all__ = [
    "DiagnosisServer",
    "PendingDiagnosis",
    "QueueFullError",
    "ServeError",
    "ServerClosedError",
    "ResultStore",
    "FixedBucketHistogram",
    "LatencyModel",
    "ServeCounters",
    "ServeSnapshot",
    "LATENCY_BUCKET_BOUNDS",
    "QUEUE_DEPTH_BUCKET_BOUNDS",
    "report_to_dict",
    "report_from_dict",
]
