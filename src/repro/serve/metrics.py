"""Deterministic serving telemetry: fixed-bucket histograms + latency model.

The serving layer exports two kinds of numbers:

* **counters** — submitted / executed / coalesced / rejected / cache-hit
  totals, plain ints;
* **histograms** — per-stage latency and queue-depth distributions over
  *fixed* bucket boundaries (:class:`FixedBucketHistogram`).

Fixed buckets are the point: the bucket ladder is part of the schema, so
two runs of the same workload produce snapshots that are comparable
bucket-for-bucket — and, because a snapshot contains only order-independent
values (integer bucket counts, the observation count, and the min/max of
the observed multiset), *byte-identical* when the observed values are
deterministic, regardless of worker-thread interleaving.

Wall-clock latency is never deterministic, so the serving layer defaults to
**modeled latency**: :class:`LatencyModel` maps a stage's (deterministic,
seeded) LLM usage to a service time, the way a capacity model would — a
fixed per-call overhead plus token throughput terms.  A serve run over a
fixed seed/workload then snapshots byte-identically across processes,
which CI pins.  Pass ``wall_clock=True`` to the server to histogram real
measured seconds instead (operations mode; snapshots stop being
reproducible, the schema stays identical).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from threading import Lock
from typing import Mapping

from repro.llm.client import Usage

__all__ = [
    "LATENCY_BUCKET_BOUNDS",
    "QUEUE_DEPTH_BUCKET_BOUNDS",
    "FixedBucketHistogram",
    "LatencyModel",
    "ServeCounters",
    "ServeSnapshot",
]

# 1-2-5 ladder from 1 ms to 100 s: wide enough for modeled and measured
# latencies alike.  Part of the snapshot schema — change it and every
# pinned snapshot changes with it.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = (
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
    10.0, 20.0, 50.0, 100.0,
)  # fmt: skip

# Powers of two up to a deep backlog; depth 0 (empty queue at sample time)
# lands in the first bucket.
QUEUE_DEPTH_BUCKET_BOUNDS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


class FixedBucketHistogram:
    """Thread-safe histogram over fixed, inclusive upper-bound buckets.

    ``bounds`` are the upper edges: an observation lands in the first
    bucket whose bound is ``>= value``; values beyond the last bound land
    in a final overflow bucket.  The snapshot (:meth:`as_dict`) carries
    only order-independent state, so concurrent observers cannot make two
    runs of the same value multiset differ.
    """

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKET_BOUNDS, unit: str = "s") -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.bounds = tuple(float(b) for b in bounds)
        self.unit = unit
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = Lock()

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to the first bucket)."""
        value = float(value)
        index = len(self.bounds)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def as_dict(self) -> dict[str, object]:
        """Order-independent snapshot: bounds, bucket counts, count, min/max."""
        with self._lock:
            return {
                "unit": self.unit,
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "min": self._min,
                "max": self._max,
            }

    def render(self, label: str, width: int = 40) -> str:
        """Fixed-width text rendering (one row per non-empty bucket)."""
        return _render_hist(label, self.as_dict(), unit=self.unit, width=width)


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic stage-service-time model over LLM usage.

    Mirrors how a capacity plan prices a stage: a fixed floor for the
    non-LLM work, a per-call round-trip overhead, and token-throughput
    terms for prompt ingestion and completion generation.  Applied to the
    (seeded, deterministic) SimLLM usage, the modeled latency of a fixed
    workload is a pure function of its content — the property the
    byte-identical snapshot gate rests on.
    """

    base_seconds: float = 0.002
    seconds_per_call: float = 0.08
    prompt_tokens_per_second: float = 10_000.0
    completion_tokens_per_second: float = 2_000.0

    def stage_seconds(self, usage: Usage) -> float:
        """Modeled service time of one stage execution with ``usage`` spend."""
        return (
            self.base_seconds
            + usage.calls * self.seconds_per_call
            + usage.prompt_tokens / self.prompt_tokens_per_second
            + usage.completion_tokens / self.completion_tokens_per_second
        )


@dataclass
class ServeCounters:
    """Request-accounting totals for one server lifetime (all ints)."""

    submitted: int = 0  # accepted submissions (executed + coalesced + served)
    executed: int = 0  # pipeline runs actually performed
    coalesced: int = 0  # submissions that joined an in-flight run
    cache_served: int = 0  # submissions resolved at submit time (memory/store)
    rejected: int = 0  # typed queue-full rejections
    failed: int = 0  # executed runs that raised
    store_writes: int = 0  # reports persisted to the result store

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "cache_served": self.cache_served,
            "rejected": self.rejected,
            "failed": self.failed,
            "store_writes": self.store_writes,
        }


@dataclass(frozen=True)
class ServeSnapshot:
    """One frozen export of a server's metrics.

    ``stage_latency`` maps stage name to histogram dict; ``queue_depth``
    and ``request_latency`` are histogram dicts; ``counters`` the totals.
    ``to_json`` is canonical (sorted keys, fixed separators), so equal
    snapshots serialize to equal bytes.
    """

    counters: dict[str, int]
    queue_depth: dict[str, object]
    request_latency: dict[str, object]
    stage_latency: dict[str, dict[str, object]] = field(default_factory=dict)
    latency_mode: str = "modeled"

    def to_json(self) -> str:
        payload = {
            "counters": self.counters,
            "latency_mode": self.latency_mode,
            "queue_depth": self.queue_depth,
            "request_latency": self.request_latency,
            "stage_latency": self.stage_latency,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)

    def render(self) -> str:
        """The human-facing metrics report the ``serve`` CLI prints."""
        c = self.counters
        lines = [
            "serve metrics"
            f"  ({self.latency_mode} latency)",
            "  requests: "
            f"submitted={c['submitted']} executed={c['executed']} "
            f"coalesced={c['coalesced']} cache={c['cache_served']} "
            f"rejected={c['rejected']} failed={c['failed']} "
            f"store_writes={c['store_writes']}",
            _render_hist("queue depth at enqueue", self.queue_depth, unit=""),
            _render_hist("request latency", self.request_latency, unit="s"),
        ]
        for stage, hist in self.stage_latency.items():
            lines.append(_render_hist(f"stage {stage!r} latency", hist, unit="s"))
        return "\n".join(lines)


def _render_hist(label: str, snap: Mapping[str, object], unit: str, width: int = 40) -> str:
    """Render a histogram dict (the snapshot-side twin of ``render``)."""
    bounds: list[float] = snap["bounds"]  # type: ignore[assignment]
    counts: list[int] = snap["counts"]  # type: ignore[assignment]
    total: int = snap["count"]  # type: ignore[assignment]
    lines = [f"{label}  (n={total})"]
    if not total:
        return lines[0]
    peak = max(counts)
    edges = [*[f"<= {b:g}{unit}" for b in bounds], f" > {bounds[-1]:g}{unit}"]
    for edge, n in zip(edges, counts):
        if not n:
            continue
        bar = "#" * max(1, round(width * n / peak))
        lines.append(f"  {edge:>12s}  {n:6d}  {bar}")
    return "\n".join(lines)
