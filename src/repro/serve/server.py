"""The always-on serving core: bounded queue, coalescing, worker pool.

:class:`DiagnosisServer` turns the synchronous
:class:`~repro.core.service.DiagnosisService` facade into an asynchronous
request path:

* **bounded work queue with explicit backpressure** — ``submit`` either
  accepts a request or raises the typed :class:`QueueFullError`; nothing
  is ever silently dropped.  Accepted work drains through a fixed pool of
  worker threads;
* **in-flight coalescing** — concurrent requests for the same ``(trace
  digest, tool, config)`` key share one execution: the first request
  enqueues a run, every duplicate that arrives before it resolves attaches
  to the same :class:`PendingDiagnosis` entry.  A thundering herd of N
  identical requests costs exactly one pipeline run (and one LLM bill);
* **submit-time cache service** — requests whose key is already in the
  service's memory cache or persistent store resolve immediately without
  consuming a queue slot;
* **deterministic telemetry** — per-stage latency histograms (modeled from
  the run's LLM usage by default, measured wall seconds with
  ``wall_clock=True``), a queue-depth histogram sampled at every enqueue,
  and the request-accounting counters, exported as one
  :class:`~repro.serve.metrics.ServeSnapshot`.

Every result a caller receives is relabeled with *its* requested
``trace_id`` — coalescing and caching are invisible to response content.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.core.pipeline import PipelineContext, PipelineObserver
from repro.core.report import DiagnosisReport
from repro.core.service import DiagnosisService
from repro.darshan.log import DarshanLog
from repro.llm.client import Usage
from repro.serve.metrics import (
    LATENCY_BUCKET_BOUNDS,
    QUEUE_DEPTH_BUCKET_BOUNDS,
    FixedBucketHistogram,
    LatencyModel,
    ServeCounters,
    ServeSnapshot,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import IOAgentConfig
    from repro.serve.store import ResultStore

__all__ = [
    "ServeError",
    "QueueFullError",
    "ServerClosedError",
    "PendingDiagnosis",
    "DiagnosisServer",
]


class ServeError(RuntimeError):
    """Base of every serving-layer failure."""


class QueueFullError(ServeError):
    """Typed backpressure rejection: the bounded work queue is at capacity.

    The canonical load-shedding signal — callers retry with backoff or
    shed the request themselves.  Carries the configured ``queue_depth``
    so the caller can report the limit it hit.
    """

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"work queue is full ({queue_depth} pending requests); retry later"
        )
        self.queue_depth = queue_depth


class ServerClosedError(ServeError):
    """The server no longer accepts submissions."""


class _Entry:
    """One unit of queued work, shared by every coalesced request."""

    __slots__ = ("key", "log", "event", "report", "error")

    def __init__(self, key: tuple[str, str, str], log: DarshanLog) -> None:
        self.key = key
        self.log = log
        self.event = threading.Event()
        self.report: DiagnosisReport | None = None
        self.error: BaseException | None = None

    def resolve(self, report: DiagnosisReport | None, error: BaseException | None) -> None:
        self.report = report
        self.error = error
        self.event.set()


class PendingDiagnosis:
    """A caller's handle on one submitted request (future-like).

    ``coalesced`` is True when this submission attached to an already
    in-flight run for the same key; ``served_from_cache`` when it resolved
    at submit time from the service's memory cache or persistent store.
    """

    def __init__(self, entry: _Entry, trace_id: str, *, coalesced: bool, cached: bool) -> None:
        self._entry = entry
        self.trace_id = trace_id
        self.coalesced = coalesced
        self.served_from_cache = cached

    def done(self) -> bool:
        return self._entry.event.is_set()

    def result(self, timeout: float | None = None) -> DiagnosisReport:
        """Block until resolved; the report is relabeled with our trace_id.

        Re-raises the run's exception for every attached request if the
        execution failed.
        """
        if not self._entry.event.wait(timeout):
            raise TimeoutError(f"diagnosis of {self.trace_id!r} still pending")
        if self._entry.error is not None:
            raise self._entry.error
        report = self._entry.report
        assert report is not None  # resolve() set exactly one of the two
        if report.trace_id != self.trace_id:
            report = replace(report, trace_id=self.trace_id)
        return report


class _StageUsageObserver(PipelineObserver):
    """Per-run collector: stage -> accumulated usage + measured seconds."""

    def __init__(self) -> None:
        self.stage_usage: dict[str, Usage] = {}
        self.stage_seconds: dict[str, float] = {}
        self._lock = threading.Lock()

    def on_stage_end(self, stage: str, ctx: PipelineContext, seconds: float) -> None:
        with self._lock:
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def on_llm_call(
        self, stage: str, ctx: PipelineContext, model: str, usage: Usage, call_id: str
    ) -> None:
        with self._lock:
            self.stage_usage.setdefault(stage, Usage()).add(usage)


class DiagnosisServer:
    """Queued, coalescing, metered serving front-end over a service.

    Either wraps an existing :class:`DiagnosisService` (``service=...``)
    or builds one from ``tool`` / ``config`` / ``store``.  Workers start
    immediately unless ``autostart=False`` — the deterministic driving
    mode (used by the CLI, the benchmark, and the byte-identical snapshot
    gate) submits the whole workload first, then calls :meth:`start`, so
    queue-depth observations and coalescing membership are pure functions
    of the workload, not of thread timing.
    """

    def __init__(
        self,
        service: DiagnosisService | None = None,
        *,
        tool: str = "ioagent",
        config: "IOAgentConfig | None" = None,
        store: "ResultStore | str | None" = None,
        queue_depth: int = 64,
        workers: int = 4,
        latency_model: LatencyModel | None = None,
        wall_clock: bool = False,
        autostart: bool = True,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        if service is None:
            service = DiagnosisService(tool=tool, config=config, store=store)
        self.service = service
        self.queue_depth = queue_depth
        self.n_workers = workers
        self.latency_model = latency_model if latency_model is not None else LatencyModel()
        self.wall_clock = wall_clock

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: deque[_Entry] = deque()
        self._inflight: dict[tuple[str, str, str], _Entry] = {}
        self._active = 0  # entries popped but not yet resolved
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self._started = False
        self._threads: list[threading.Thread] = []

        self.counters = ServeCounters()
        self._queue_depth_hist = FixedBucketHistogram(QUEUE_DEPTH_BUCKET_BOUNDS, unit="")
        self._request_hist = FixedBucketHistogram(LATENCY_BUCKET_BOUNDS)
        self._stage_hists: dict[str, FixedBucketHistogram] = {}

        if autostart:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._started or self._closed:
                return
            self._started = True
            for i in range(self.n_workers):
                thread = threading.Thread(
                    target=self._worker, name=f"diagnosis-worker-{i}", daemon=True
                )
                self._threads.append(thread)
                thread.start()

    def close(self) -> None:
        """Stop accepting work, drain the queue, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        started = self._started
        if started:
            for thread in self._threads:
                thread.join()
        else:
            # Never-started server: nothing will drain; fail the queue.
            with self._lock:
                pending = list(self._queue)
                self._queue.clear()
            for entry in pending:
                self._finish(entry, None, ServerClosedError("server closed before start"))

    def __enter__(self) -> "DiagnosisServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, log: DarshanLog, trace_id: str = "trace") -> PendingDiagnosis:
        """Accept one diagnosis request (or reject it, typed).

        Resolution order: memory cache / persistent store (immediate),
        in-flight coalescing (free), queue admission (backpressure:
        :class:`QueueFullError` when ``queue_depth`` requests are already
        pending).
        """
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is closed")
        key = self.service.cache_key(log)

        cached = self.service.lookup(log, trace_id=trace_id)
        if cached is not None:
            entry = _Entry(key, log)
            entry.resolve(cached, None)
            with self._lock:
                self.counters.submitted += 1
                self.counters.cache_served += 1
            return PendingDiagnosis(entry, trace_id, coalesced=False, cached=True)

        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                self.counters.submitted += 1
                self.counters.coalesced += 1
                return PendingDiagnosis(inflight, trace_id, coalesced=True, cached=False)
            if len(self._queue) >= self.queue_depth:
                self.counters.rejected += 1
                raise QueueFullError(self.queue_depth)
            entry = _Entry(key, log)
            self._inflight[key] = entry
            self._queue.append(entry)
            self.counters.submitted += 1
            self._queue_depth_hist.observe(len(self._queue))
            self._not_empty.notify()
            return PendingDiagnosis(entry, trace_id, coalesced=False, cached=False)

    def drain(self) -> None:
        """Block until every accepted request has resolved."""
        with self._idle:
            self._idle.wait_for(lambda: not self._queue and self._active == 0)

    def serve_all(
        self, requests: Sequence[tuple[DarshanLog, str]]
    ) -> list[DiagnosisReport]:
        """Deterministic driver: submit everything, then start and drain.

        On a not-yet-started server this makes queue depths and coalescing
        membership schedule-independent (the byte-identical snapshot mode);
        on a running server it degrades gracefully to submit-and-wait.
        Requests rejected by backpressure propagate as
        :class:`QueueFullError` — size ``queue_depth`` to the workload.
        """
        handles = [self.submit(log, trace_id) for log, trace_id in requests]
        self.start()
        return [handle.result() for handle in handles]

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue and self._closed:
                    return
                entry = self._queue.popleft()
                self._active += 1
            observer = _StageUsageObserver()
            report: DiagnosisReport | None = None
            error: BaseException | None = None
            try:
                report = self.service.diagnose(
                    entry.log, trace_id=entry.key[0][:12], observers=(observer,)
                )
            except BaseException as exc:  # noqa: BLE001 - delivered to every waiter
                error = exc
            self._record_run(observer, report, error)
            self._finish(entry, report, error)

    def _finish(
        self, entry: _Entry, report: DiagnosisReport | None, error: BaseException | None
    ) -> None:
        with self._lock:
            self._inflight.pop(entry.key, None)
            self._active = max(0, self._active - 1)
            self._idle.notify_all()
        entry.resolve(report, error)

    def _record_run(
        self,
        observer: _StageUsageObserver,
        report: DiagnosisReport | None,
        error: BaseException | None,
    ) -> None:
        with self._lock:
            self.counters.executed += 1
            if error is not None:
                self.counters.failed += 1
            # Mirrors the service's persistence rule: clean results only.
            if self.service.store is not None and report is not None and not report.degraded:
                self.counters.store_writes += 1
        total = 0.0
        stages = sorted(set(observer.stage_seconds) | set(observer.stage_usage))
        for stage in stages:
            if self.wall_clock:
                seconds = observer.stage_seconds.get(stage, 0.0)
            else:
                usage = observer.stage_usage.get(stage, Usage())
                seconds = self.latency_model.stage_seconds(usage)
            total += seconds
            hist = self._stage_hist(stage)
            hist.observe(seconds)
        if not stages and not self.wall_clock:
            # Tools without pipeline observers still cost the model floor.
            total = self.latency_model.base_seconds
        self._request_hist.observe(total)

    def _stage_hist(self, stage: str) -> FixedBucketHistogram:
        with self._lock:
            hist = self._stage_hists.get(stage)
            if hist is None:
                hist = FixedBucketHistogram(LATENCY_BUCKET_BOUNDS)
                self._stage_hists[stage] = hist
            return hist

    # -- telemetry ---------------------------------------------------------

    def metrics_snapshot(self) -> ServeSnapshot:
        """The current :class:`ServeSnapshot` (canonical-JSON exportable)."""
        with self._lock:
            counters = dict(self.counters.as_dict())
            stage_names = sorted(self._stage_hists)
        return ServeSnapshot(
            counters=counters,
            queue_depth=self._queue_depth_hist.as_dict(),
            request_latency=self._request_hist.as_dict(),
            stage_latency={
                name: self._stage_hists[name].as_dict() for name in stage_names
            },
            latency_mode="wall" if self.wall_clock else "modeled",
        )
