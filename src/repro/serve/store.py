"""Persistent content-addressed result store.

The in-memory cache in :class:`~repro.core.service.DiagnosisService` dies
with the process; this store makes the same ``(trace digest, tool,
config)`` keying durable.  One entry is one canonical-JSON file under the
store root, named by the SHA-256 of the canonical key encoding, so any
process pointed at the same directory serves previously-diagnosed traces
with zero LLM calls.

Contracts:

* **atomic writes** — each entry is written to a temporary sibling and
  ``os.replace``-d into place, so a concurrent reader (another worker,
  another process) sees either the whole record or nothing;
* **degraded reports are never persisted** — degradation is transient
  weather (faults, outages), not trace content; persisting one would
  serve a degraded answer to every later clean request for that digest.
  :meth:`ResultStore.put` enforces this (the service additionally never
  calls it for degraded reports);
* **corrupt entries are misses** — a torn/garbage file (killed writer,
  disk trouble) is treated as absent, never as an error on the read path.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.core.report import DiagnosisReport

__all__ = ["ResultStore", "StoreKey", "report_to_dict", "report_from_dict"]

# (trace digest, tool name, config repr) — the service's cache key shape.
StoreKey = tuple[str, str, str]

_FORMAT_VERSION = 1


def report_to_dict(report: DiagnosisReport) -> dict[str, object]:
    """Serializable view of a report (inverse of :func:`report_from_dict`)."""
    return {
        "trace_id": report.trace_id,
        "model": report.model,
        "text": report.text,
        "n_fragments": report.n_fragments,
        "sources_retrieved": report.sources_retrieved,
        "sources_kept": report.sources_kept,
        "degraded": list(report.degraded),
    }


def report_from_dict(payload: dict[str, object]) -> DiagnosisReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    return DiagnosisReport(
        trace_id=str(payload["trace_id"]),
        model=str(payload["model"]),
        text=str(payload["text"]),
        n_fragments=int(payload["n_fragments"]),  # type: ignore[arg-type]
        sources_retrieved=int(payload["sources_retrieved"]),  # type: ignore[arg-type]
        sources_kept=int(payload["sources_kept"]),  # type: ignore[arg-type]
        degraded=tuple(str(c) for c in payload["degraded"]),  # type: ignore[union-attr]
    )


def store_filename(key: StoreKey) -> str:
    """Content-addressed entry name: SHA-256 of the canonical key encoding."""
    digest, tool, config = key
    encoded = json.dumps([digest, tool, config], separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest() + ".json"


class ResultStore:
    """Durable ``key -> DiagnosisReport`` map under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: StoreKey) -> Path:
        return self.root / store_filename(key)

    def get(self, key: StoreKey) -> DiagnosisReport | None:
        """The stored report for ``key``, or None (corrupt entries miss)."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None  # torn write / disk damage: a miss, never an error
        try:
            if payload.get("version") != _FORMAT_VERSION or list(payload["key"]) != list(key):
                return None
            return report_from_dict(payload["report"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: StoreKey, report: DiagnosisReport) -> Path:
        """Persist ``report`` under ``key`` atomically; returns the entry path.

        Raises ``ValueError`` for a degraded report — the store only holds
        full-fidelity answers (see module docstring).
        """
        if report.degraded:
            raise ValueError(
                f"refusing to persist degraded report for {report.trace_id!r} "
                f"(lost channels: {', '.join(report.degraded)})"
            )
        payload = {
            "version": _FORMAT_VERSION,
            "key": list(key),
            "report": report_to_dict(report),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, key: StoreKey) -> bool:
        return self.get(key) is not None

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
