"""repro — reproduction of *IOAgent: Democratizing Trustworthy HPC I/O
Performance Diagnosis Capability via LLMs* (IPDPS 2025).

Public API highlights:

* :class:`repro.core.agent.IOAgent` — the diagnosis agent (paper Fig. 2);
* :func:`repro.tracebench.build_tracebench` — the TraceBench suite (§V);
* :class:`repro.baselines.DrishtiTool` / :class:`repro.baselines.IONTool`
  — the comparison tools;
* :func:`repro.evaluation.evaluate_tools` — the Table IV harness;
* :mod:`repro.sim` + :mod:`repro.darshan` + :mod:`repro.workloads` — the
  simulated HPC substrate that generates Darshan traces offline;
* :mod:`repro.llm` — the deterministic, capability-tiered SimLLM substrate.
"""

__version__ = "1.0.0"

__all__ = [
    "IOAgent",
    "IOAgentConfig",
    "InteractiveSession",
    "DiagnosisReport",
    "DrishtiTool",
    "IONTool",
    "build_tracebench",
    "evaluate_tools",
    "LLMClient",
]


def __getattr__(name: str):
    # Lazy top-level exports: keep `import repro` light.
    if name in ("IOAgent", "IOAgentConfig"):
        from repro.core.agent import IOAgent, IOAgentConfig

        return {"IOAgent": IOAgent, "IOAgentConfig": IOAgentConfig}[name]
    if name == "InteractiveSession":
        from repro.core.session import InteractiveSession

        return InteractiveSession
    if name == "DiagnosisReport":
        from repro.core.report import DiagnosisReport

        return DiagnosisReport
    if name in ("DrishtiTool", "IONTool"):
        import repro.baselines as baselines

        return getattr(baselines, name)
    if name == "build_tracebench":
        from repro.tracebench import build_tracebench

        return build_tracebench
    if name == "evaluate_tools":
        from repro.evaluation import evaluate_tools

        return evaluate_tools
    if name == "LLMClient":
        from repro.llm.client import LLMClient

        return LLMClient
    raise AttributeError(name)
