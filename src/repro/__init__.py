"""repro — reproduction of *IOAgent: Democratizing Trustworthy HPC I/O
Performance Diagnosis Capability via LLMs* (IPDPS 2025).

Public API — three layers:

**Tools** (everything implements the
:class:`~repro.core.registry.DiagnosticTool` protocol: ``name``,
``diagnose(log, trace_id) -> DiagnosisReport``, ``usage()``):

* :class:`repro.core.agent.IOAgent` — the diagnosis agent (paper Fig. 2),
  a thin facade over the composable stage pipeline;
* :class:`repro.baselines.DrishtiTool` / :class:`repro.baselines.IONTool`
  — the comparison tools;
* :func:`repro.core.registry.get_tool` / ``register_tool`` /
  ``available_tools`` — the registry the CLI, batch runner, and Table IV
  harness resolve tools from; register your own tool and every driver
  picks it up.

**Pipeline** (:mod:`repro.core.pipeline`):

* :class:`DiagnosisPipeline` composes pluggable stages (``preprocess →
  summarize → temporal → describe → integrate → diagnose → merge``) over a typed
  :class:`PipelineContext`; :class:`PipelineObserver` hooks
  (``on_stage_start/end``, ``on_llm_call``) expose per-stage latency and
  token spend.  Ablations swap stages, not booleans.

**Service** (:mod:`repro.core.service`):

* :class:`DiagnosisService` — production-style facade: concurrent
  multi-trace execution, per-trace result caching keyed by ``(trace
  digest, config)``, shared memoized RAG index, and per-stage metrics on
  every :class:`~repro.core.batch.BatchResult`.

Substrate:

* :func:`repro.tracebench.build_tracebench` — the TraceBench suite (§V);
* :func:`repro.evaluation.evaluate_tools` — the Table IV harness;
* :mod:`repro.sim` + :mod:`repro.darshan` + :mod:`repro.workloads` — the
  simulated HPC substrate that generates Darshan traces offline;
* :mod:`repro.llm` — the deterministic, capability-tiered SimLLM substrate.
"""

__version__ = "2.2.0"  # minor: resilience layer (fault plans, recovery, chaos gate)

__all__ = [
    "IOAgent",
    "IOAgentConfig",
    "InteractiveSession",
    "DiagnosisReport",
    "DiagnosisPipeline",
    "DiagnosisService",
    "DiagnosticTool",
    "register_tool",
    "get_tool",
    "available_tools",
    "DrishtiTool",
    "IONTool",
    "build_tracebench",
    "evaluate_tools",
    "LLMClient",
]


def __getattr__(name: str) -> object:
    # Lazy top-level exports: keep `import repro` light.
    if name in ("IOAgent", "IOAgentConfig"):
        from repro.core.agent import IOAgent, IOAgentConfig

        return {"IOAgent": IOAgent, "IOAgentConfig": IOAgentConfig}[name]
    if name == "InteractiveSession":
        from repro.core.session import InteractiveSession

        return InteractiveSession
    if name == "DiagnosisReport":
        from repro.core.report import DiagnosisReport

        return DiagnosisReport
    if name == "DiagnosisPipeline":
        from repro.core.pipeline import DiagnosisPipeline

        return DiagnosisPipeline
    if name == "DiagnosisService":
        from repro.core.service import DiagnosisService

        return DiagnosisService
    if name in ("DiagnosticTool", "register_tool", "get_tool", "available_tools"):
        from repro.core import registry

        return getattr(registry, name)
    if name in ("DrishtiTool", "IONTool"):
        import repro.baselines as baselines

        return getattr(baselines, name)
    if name == "build_tracebench":
        from repro.tracebench import build_tracebench

        return build_tracebench
    if name == "evaluate_tools":
        from repro.evaluation import evaluate_tools

        return evaluate_tools
    if name == "LLMClient":
        from repro.llm.client import LLMClient

        return LLMClient
    raise AttributeError(name)
