"""repro — reproduction of *IOAgent: Democratizing Trustworthy HPC I/O
Performance Diagnosis Capability via LLMs* (IPDPS 2025).

Stable public API — ``repro.__all__`` is the blessed surface, pinned by
``tests/test_public_api.py``; everything else is internal and may move
between minor versions.  Four layers:

**Tools** (everything implements the
:class:`~repro.core.registry.DiagnosticTool` protocol: ``name``,
``diagnose(log, trace_id) -> DiagnosisReport``, ``usage()``):

* :class:`repro.core.agent.IOAgent` — the diagnosis agent (paper Fig. 2),
  a thin facade over the composable stage pipeline;
* :class:`repro.baselines.DrishtiTool` / :class:`repro.baselines.IONTool`
  — the comparison tools;
* :class:`repro.regression.series.SeriesDiagnosticTool` — the
  longitudinal wrapper (drift against an early-run baseline);
* :func:`repro.core.registry.get_tool` / ``register_tool`` /
  ``available_tools`` — the registry the CLI, batch runner, and Table IV
  harness resolve tools from; register your own tool and every driver
  picks it up.  Unknown names across *every* registry raise a
  :class:`repro.util.lookup.RegistryLookupError` subclass with one shared
  CLI rendering.

**Pipeline** (:mod:`repro.core.pipeline`):

* :class:`DiagnosisPipeline` composes pluggable stages (``preprocess →
  summarize → temporal → describe → integrate → diagnose → merge``) over a typed
  :class:`PipelineContext`; :class:`PipelineObserver` hooks
  (``on_stage_start/end``, ``on_llm_call``) expose per-stage latency and
  token spend.  Ablations swap stages, not booleans.

**Service** (:mod:`repro.core.service`):

* :class:`DiagnosisService` — production-style facade: concurrent
  multi-trace execution, content-addressed result caching keyed by
  ``(trace digest, tool, config)``, optional persistent
  :class:`~repro.serve.store.ResultStore` backing, shared memoized RAG
  index, and one coherent :class:`~repro.core.service.ServiceStats`
  snapshot.

**Serving** (:mod:`repro.serve`):

* :class:`~repro.serve.server.DiagnosisServer` — the always-on request
  path: bounded work queue with typed backpressure
  (:class:`~repro.serve.server.QueueFullError`), in-flight coalescing of
  identical requests, persistent content-addressed results, and
  deterministic fixed-bucket latency/queue-depth histograms
  (:class:`~repro.serve.metrics.ServeSnapshot`).

Substrate:

* :func:`repro.tracebench.build_tracebench` — the TraceBench suite (§V);
* :func:`repro.evaluation.evaluate_tools` — the Table IV harness;
* :func:`repro.workloads.scenarios.register_scenario` /
  ``select_scenarios`` — the scenario registry the evaluation and serve
  drivers select workloads from;
* :mod:`repro.sim` + :mod:`repro.darshan` — the simulated HPC substrate
  that generates Darshan traces offline;
* :mod:`repro.llm` — the deterministic, capability-tiered SimLLM substrate.
"""

__version__ = "2.3.0"  # minor: serving layer (queue, coalescing, store) + stable API

__all__ = [
    # tools
    "IOAgent",
    "IOAgentConfig",
    "InteractiveSession",
    "DiagnosticTool",
    "register_tool",
    "get_tool",
    "available_tools",
    "DrishtiTool",
    "IONTool",
    "SeriesDiagnosticTool",
    # pipeline + reports
    "DiagnosisReport",
    "DiagnosisPipeline",
    # service
    "DiagnosisService",
    "ServiceStats",
    "trace_digest",
    # serving layer
    "DiagnosisServer",
    "PendingDiagnosis",
    "QueueFullError",
    "ResultStore",
    "ServeSnapshot",
    # registries + errors
    "register_scenario",
    "select_scenarios",
    "RegistryLookupError",
    # substrate
    "build_tracebench",
    "evaluate_tools",
    "LLMClient",
]


def __getattr__(name: str) -> object:
    # Lazy top-level exports: keep `import repro` light.
    if name in ("IOAgent", "IOAgentConfig"):
        from repro.core.agent import IOAgent, IOAgentConfig

        return {"IOAgent": IOAgent, "IOAgentConfig": IOAgentConfig}[name]
    if name == "InteractiveSession":
        from repro.core.session import InteractiveSession

        return InteractiveSession
    if name == "DiagnosisReport":
        from repro.core.report import DiagnosisReport

        return DiagnosisReport
    if name == "DiagnosisPipeline":
        from repro.core.pipeline import DiagnosisPipeline

        return DiagnosisPipeline
    if name in ("DiagnosisService", "ServiceStats", "trace_digest"):
        from repro.core import service

        return getattr(service, name)
    if name in ("DiagnosticTool", "register_tool", "get_tool", "available_tools"):
        from repro.core import registry

        return getattr(registry, name)
    if name in ("DrishtiTool", "IONTool"):
        import repro.baselines as baselines

        return getattr(baselines, name)
    if name == "SeriesDiagnosticTool":
        from repro.regression.series import SeriesDiagnosticTool

        return SeriesDiagnosticTool
    if name in (
        "DiagnosisServer",
        "PendingDiagnosis",
        "QueueFullError",
        "ResultStore",
        "ServeSnapshot",
    ):
        import repro.serve as serve

        return getattr(serve, name)
    if name in ("register_scenario", "select_scenarios"):
        from repro.workloads import scenarios

        return getattr(scenarios, name)
    if name == "RegistryLookupError":
        from repro.util.lookup import RegistryLookupError

        return RegistryLookupError
    if name == "build_tracebench":
        from repro.tracebench import build_tracebench

        return build_tracebench
    if name == "evaluate_tools":
        from repro.evaluation import evaluate_tools

        return evaluate_tools
    if name == "LLMClient":
        from repro.llm.client import LLMClient

        return LLMClient
    raise AttributeError(name)
