"""Finding blocks: the structured unit of a diagnosis.

Diagnosis text is a sequence of finding blocks in a fixed markdown-ish
format.  The format is both rendered and parsed here (the merge task and
the judge must read findings back out of free text), with the issue key in
brackets acting as a stable tag — the same way the paper's outputs carry
explicit issue names that the evaluation counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.core.issues import issue_by_key

__all__ = ["Finding", "render_findings", "parse_findings"]


@dataclass(frozen=True)
class Finding:
    """One diagnosed issue with personalized evidence and guidance."""

    issue_key: str
    evidence: str
    assessment: str
    recommendation: str
    references: tuple[str, ...] = ()  # "[S07] Title ..." strings

    @property
    def title(self) -> str:
        return issue_by_key(self.issue_key).label

    def merged_with(self, other: "Finding") -> "Finding":
        """Merge a duplicate finding: keep the richer text, union refs."""
        if other.issue_key != self.issue_key:
            raise ValueError("can only merge findings about the same issue")
        refs: dict[str, None] = {}
        for ref in self.references + other.references:
            refs.setdefault(ref, None)
        return replace(
            self,
            evidence=max(self.evidence, other.evidence, key=len),
            assessment=max(self.assessment, other.assessment, key=len),
            recommendation=max(self.recommendation, other.recommendation, key=len),
            references=tuple(refs),
        )


_BLOCK_RE = re.compile(
    r"^### Finding: (?P<title>.+?) \[(?P<key>[a-z_]+)\]\s*$", re.MULTILINE
)
_FIELD_RE = re.compile(r"^(Evidence|Assessment|Recommendation|References): ?(.*)$")


def render_findings(findings: list[Finding]) -> str:
    """Render finding blocks in the canonical format."""
    blocks = []
    for f in findings:
        lines = [
            f"### Finding: {f.title} [{f.issue_key}]",
            f"Evidence: {f.evidence}",
            f"Assessment: {f.assessment}",
            f"Recommendation: {f.recommendation}",
        ]
        if f.references:
            lines.append("References: " + " ; ".join(f.references))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def parse_findings(text: str) -> list[Finding]:
    """Parse finding blocks out of arbitrary surrounding text.

    Unknown issue keys are skipped (defensive: merged text may contain
    hallucinated keys); malformed fields default to empty strings.
    """
    matches = list(_BLOCK_RE.finditer(text))
    findings: list[Finding] = []
    for i, m in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        body = text[m.end() : end]
        try:
            issue_by_key(m["key"])
        except KeyError:
            continue
        fields = {"Evidence": "", "Assessment": "", "Recommendation": "", "References": ""}
        current: str | None = None
        for line in body.splitlines():
            stripped = line.strip()
            fm = _FIELD_RE.match(stripped)
            if fm:
                current = fm.group(1)
                fields[current] = fm.group(2)
            elif not stripped or stripped.startswith(("Note:", "#")):
                # Blank lines, misconception notes, and headings end the
                # current field; they are not field continuations.
                current = None
            elif current:
                fields[current] += " " + stripped
        refs = tuple(r.strip() for r in fields["References"].split(" ; ") if r.strip())
        findings.append(
            Finding(
                issue_key=m["key"],
                evidence=fields["Evidence"].strip(),
                assessment=fields["Assessment"].strip(),
                recommendation=fields["Recommendation"].strip(),
                references=refs,
            )
        )
    return findings
