"""Token accounting for the SimLLM.

Real tokenizers are BPE; for context-window arithmetic all we need is a
stable, monotone estimate.  We use a character-based estimate (~4 chars
per token, the usual rule of thumb) because it is O(1) in text length —
important when ION feeds hundred-thousand-line darshan dumps to the model
and we must decide how much survives without tokenizing megabytes.
"""

from __future__ import annotations

__all__ = ["CHARS_PER_TOKEN", "approx_tokens", "take_tokens_front", "take_tokens_back"]

CHARS_PER_TOKEN = 4


def approx_tokens(text: str) -> int:
    """Estimated token count of ``text`` (ceil of chars / 4)."""
    return (len(text) + CHARS_PER_TOKEN - 1) // CHARS_PER_TOKEN


def take_tokens_front(text: str, budget: int) -> str:
    """The longest prefix of whole lines fitting in ``budget`` tokens.

    Cutting on line boundaries keeps darshan counter lines intact, so a
    truncated prompt never contains half a counter value.
    """
    if budget <= 0:
        return ""
    limit = budget * CHARS_PER_TOKEN
    if len(text) <= limit:
        return text
    cut = text.rfind("\n", 0, limit)
    return text[: cut + 1] if cut != -1 else text[:limit]


def take_tokens_back(text: str, budget: int) -> str:
    """The longest suffix of whole lines fitting in ``budget`` tokens."""
    if budget <= 0:
        return ""
    limit = budget * CHARS_PER_TOKEN
    if len(text) <= limit:
        return text
    cut = text.find("\n", len(text) - limit)
    return text[cut + 1 :] if cut != -1 else text[-limit:]
