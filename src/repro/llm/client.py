"""Chat-completions-style client over the SimLLM engine.

The rest of the codebase talks to language models exclusively through
:class:`LLMClient` — the same narrow interface a production IOAgent would
use against OpenAI/vLLM — so swapping the simulated engine for a real API
client is a one-class change.  The client also does usage and cost
accounting per model, which the cost-focused parts of the paper (§I, §III)
rely on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.llm.engine import SimLLMEngine
from repro.llm.models import ModelProfile, get_model
from repro.llm.tokenizer import approx_tokens

__all__ = ["ChatMessage", "Usage", "Completion", "LLMClient", "UsageListener"]


@dataclass(frozen=True, slots=True)
class ChatMessage:
    """One message in a chat transcript."""

    role: str  # 'system' | 'user' | 'assistant'
    content: str


@dataclass(slots=True)
class Usage:
    """Token/cost accounting (mutable accumulator)."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    calls: int = 0

    def add(self, other: "Usage") -> None:
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.cost_usd += other.cost_usd
        self.calls += other.calls


@dataclass(frozen=True, slots=True)
class Completion:
    """One model response."""

    text: str
    model: str
    usage: Usage
    truncated: bool  # whether the prompt overflowed the context window


# Callback fired after every completion: (model_name, usage, call_id).
UsageListener = Callable[[str, Usage, str], None]


class LLMClient:
    """Routes prompts to the engine; tracks usage per model.

    Observers (the pipeline's telemetry layer, cost dashboards, tests) can
    subscribe to every completion via :meth:`add_usage_listener`; listeners
    are invoked synchronously after accounting, under no lock, with
    ``(model_name, usage, call_id)``.  Accounting itself is guarded by a
    lock because stages fan completions out across threads.
    """

    def __init__(self, seed: int = 0) -> None:
        self.engine = SimLLMEngine(seed=seed)
        self.usage_by_model: dict[str, Usage] = {}
        self._usage_lock = threading.Lock()
        self._usage_listeners: list[UsageListener] = []

    # -- usage observation -------------------------------------------------

    def add_usage_listener(self, listener: UsageListener) -> None:
        """Subscribe ``listener`` to every subsequent completion."""
        with self._usage_lock:
            self._usage_listeners.append(listener)

    def remove_usage_listener(self, listener: UsageListener) -> None:
        """Unsubscribe a previously-added listener (no-op if absent)."""
        with self._usage_lock:
            try:
                self._usage_listeners.remove(listener)
            except ValueError:
                pass

    def complete(
        self,
        prompt: str | list[ChatMessage],
        model: str | ModelProfile,
        call_id: str = "",
    ) -> Completion:
        """Run one completion.  ``call_id`` scopes the deterministic RNG."""
        profile = model if isinstance(model, ModelProfile) else get_model(model)
        if isinstance(prompt, list):
            text = "\n\n".join(f"[{m.role}]\n{m.content}" for m in prompt)
        else:
            text = prompt
        response, truncated, visible_tokens = self.engine.run(text, profile, call_id)
        out_tokens = approx_tokens(response)
        usage = Usage(
            prompt_tokens=visible_tokens,
            completion_tokens=out_tokens,
            cost_usd=(
                visible_tokens * profile.usd_per_mtok_in
                + out_tokens * profile.usd_per_mtok_out
            )
            / 1e6,
            calls=1,
        )
        with self._usage_lock:
            self.usage_by_model.setdefault(profile.name, Usage()).add(usage)
            listeners = list(self._usage_listeners)
        for listener in listeners:
            listener(profile.name, usage, call_id)
        return Completion(text=response, model=profile.name, usage=usage, truncated=truncated)

    def total_usage(self) -> Usage:
        """Aggregate usage across all models."""
        total = Usage()
        with self._usage_lock:
            for usage in self.usage_by_model.values():
                total.add(usage)
        return total
