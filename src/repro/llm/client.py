"""Chat-completions-style client over the SimLLM engine.

The rest of the codebase talks to language models exclusively through
:class:`LLMClient` — the same narrow interface a production IOAgent would
use against OpenAI/vLLM — so swapping the simulated engine for a real API
client is a one-class change.  The client also does usage and cost
accounting per model, which the cost-focused parts of the paper (§I, §III)
rely on.

Since the resilience PR the client owns the *recovery layer* as well: one
logical :meth:`LLMClient.complete` may place several physical attempts
(:meth:`LLMClient._attempt`, the chaos plane's override point) under a
:class:`~repro.resilience.retry.RetryPolicy`, behind an optional
:class:`~repro.resilience.retry.CircuitBreaker`.  Failures follow the
taxonomy in :mod:`repro.resilience.errors`: transient errors and timeouts
are retried with deterministic backoff, permanent errors surface at once,
and an open breaker fast-fails the call without placing it.  Every
recovery action is counted (:meth:`resilience_metrics`) and published as a
:class:`FaultEvent` so the pipeline can attribute faults per stage.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.llm.engine import SimLLMEngine
from repro.llm.models import ModelProfile, get_model
from repro.llm.tokenizer import approx_tokens
from repro.resilience.errors import (
    CircuitOpenError,
    LLMTimeoutError,
    PermanentLLMError,
    TransientLLMError,
)
from repro.resilience.retry import CircuitBreaker, ResilienceMetrics, RetryPolicy

__all__ = [
    "ChatMessage",
    "Usage",
    "Completion",
    "LLMClient",
    "UsageListener",
    "FaultEvent",
    "FaultListener",
]


@dataclass(frozen=True, slots=True)
class ChatMessage:
    """One message in a chat transcript."""

    role: str  # 'system' | 'user' | 'assistant'
    content: str


@dataclass(slots=True)
class Usage:
    """Token/cost accounting (mutable accumulator)."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    calls: int = 0

    def add(self, other: "Usage") -> None:
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.cost_usd += other.cost_usd
        self.calls += other.calls


@dataclass(frozen=True, slots=True)
class Completion:
    """One model response."""

    text: str
    model: str
    usage: Usage
    truncated: bool  # whether the prompt overflowed the context window


# Callback fired after every completion: (model_name, usage, call_id).
UsageListener = Callable[[str, Usage, str], None]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One recovery-layer incident, published to fault listeners.

    ``kind`` is one of ``transient``, ``timeout``, ``permanent``,
    ``retry``, ``circuit-trip``, ``circuit-fast-fail``, ``garbled``,
    ``listener-error``.
    """

    kind: str
    call_id: str
    model: str
    attempt: int = 0
    detail: str = ""


# Callback fired for every FaultEvent (isolated: its own crashes are dropped).
FaultListener = Callable[[FaultEvent], None]


class LLMClient:
    """Routes prompts to the engine; tracks usage per model.

    Observers (the pipeline's telemetry layer, cost dashboards, tests) can
    subscribe to every completion via :meth:`add_usage_listener`; listeners
    are invoked synchronously after accounting, under no lock, with
    ``(model_name, usage, call_id)``.  A crashing listener is isolated —
    the completion still returns, and the crash is counted in
    ``resilience_metrics().listener_errors``.  Accounting itself is guarded
    by a lock because stages fan completions out across threads.

    ``retry_policy`` governs transient-failure recovery; the default base
    client never fails (the sim engine is deterministic), so the policy
    only bites in subclasses that inject faults or wrap flaky backends.
    ``breaker`` (optional) fast-fails calls after repeated failures;
    ``timeout_s`` is the per-attempt deadline a backend must honor (the
    fault plane enforces it by raising ``LLMTimeoutError``); ``sleep``
    lets harnesses replace real backoff sleeping with a no-op so chaos
    runs stay fast and byte-reproducible.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        timeout_s: float = 1.0,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.engine = SimLLMEngine(seed=seed)
        self.seed = seed
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker
        self.timeout_s = timeout_s
        self._sleep = sleep if sleep is not None else time.sleep
        self.usage_by_model: dict[str, Usage] = {}
        self._usage_lock = threading.Lock()
        self._usage_listeners: list[UsageListener] = []
        self._fault_listeners: list[FaultListener] = []
        self._fault_counts: dict[str, int] = {}

    # -- usage observation -------------------------------------------------

    def add_usage_listener(self, listener: UsageListener) -> None:
        """Subscribe ``listener`` to every subsequent completion."""
        with self._usage_lock:
            self._usage_listeners.append(listener)

    def remove_usage_listener(self, listener: UsageListener) -> None:
        """Unsubscribe a previously-added listener (no-op if absent)."""
        with self._usage_lock:
            try:
                self._usage_listeners.remove(listener)
            except ValueError:
                pass

    # -- fault observation -------------------------------------------------

    def add_fault_listener(self, listener: FaultListener) -> None:
        """Subscribe ``listener`` to every recovery-layer incident."""
        with self._usage_lock:
            self._fault_listeners.append(listener)

    def remove_fault_listener(self, listener: FaultListener) -> None:
        """Unsubscribe a previously-added fault listener (no-op if absent)."""
        with self._usage_lock:
            try:
                self._fault_listeners.remove(listener)
            except ValueError:
                pass

    def resilience_metrics(self) -> ResilienceMetrics:
        """Immutable snapshot of the recovery/fault counters."""
        with self._usage_lock:
            counts = dict(self._fault_counts)
        return ResilienceMetrics(**counts)

    def _note_fault(self, counter: str, event: FaultEvent) -> None:
        """Count one incident and publish it; listener crashes are dropped."""
        with self._usage_lock:
            self._fault_counts[counter] = self._fault_counts.get(counter, 0) + 1
            listeners = list(self._fault_listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - observers must never break recovery
                pass

    # -- completion --------------------------------------------------------

    def _attempt(
        self, text: str, profile: ModelProfile, call_id: str, attempt: int
    ) -> tuple[str, bool, int]:
        """Place one physical attempt; the fault plane's override point.

        Returns ``(response, truncated, visible_tokens)`` or raises from
        the :mod:`repro.resilience.errors` taxonomy.  The base engine is
        deterministic and never fails.
        """
        return self.engine.run(text, profile, call_id)

    def _record_failure(self, call_id: str, model: str, attempt: int) -> None:
        """Feed the breaker (if any); publishes the trip event."""
        if self.breaker is not None and self.breaker.record_failure():
            self._note_fault(
                "circuit_trips", FaultEvent("circuit-trip", call_id, model, attempt)
            )

    def complete(
        self,
        prompt: str | list[ChatMessage],
        model: str | ModelProfile,
        call_id: str = "",
    ) -> Completion:
        """Run one logical completion (possibly several physical attempts).

        ``call_id`` scopes the deterministic RNG — both the engine's and
        the backoff jitter's.  Raises :class:`CircuitOpenError` when the
        breaker refuses the call, :class:`PermanentLLMError` immediately on
        a non-retryable failure, or the last transient error once the
        retry policy's attempt/budget limits are exhausted.
        """
        profile = model if isinstance(model, ModelProfile) else get_model(model)
        if isinstance(prompt, list):
            text = "\n\n".join(f"[{m.role}]\n{m.content}" for m in prompt)
        else:
            text = prompt

        policy = self.retry_policy
        last_error: TransientLLMError | None = None
        slept = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            if self.breaker is not None and not self.breaker.allow():
                self._note_fault(
                    "circuit_fast_fails",
                    FaultEvent("circuit-fast-fail", call_id, profile.name, attempt),
                )
                raise CircuitOpenError(
                    f"circuit open: call {call_id!r} to {profile.name} fast-failed"
                )
            try:
                response, truncated, visible_tokens = self._attempt(
                    text, profile, call_id, attempt
                )
            except PermanentLLMError as exc:
                self._note_fault(
                    "permanent_errors",
                    FaultEvent("permanent", call_id, profile.name, attempt, repr(exc)),
                )
                self._record_failure(call_id, profile.name, attempt)
                raise
            except TransientLLMError as exc:
                counter, kind = (
                    ("timeouts", "timeout")
                    if isinstance(exc, LLMTimeoutError)
                    else ("transient_errors", "transient")
                )
                self._note_fault(
                    counter, FaultEvent(kind, call_id, profile.name, attempt, repr(exc))
                )
                self._record_failure(call_id, profile.name, attempt)
                last_error = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.backoff(attempt, seed=self.seed, call_id=call_id)
                if slept + delay > policy.budget:
                    break  # budget exhausted: surface the last error
                slept += delay
                self._note_fault(
                    "retries", FaultEvent("retry", call_id, profile.name, attempt)
                )
                self._sleep(delay)
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return self._account(response, profile, call_id, truncated, visible_tokens)
        assert last_error is not None  # loop only falls through after a failure
        raise last_error

    def _account(
        self,
        response: str,
        profile: ModelProfile,
        call_id: str,
        truncated: bool,
        visible_tokens: int,
    ) -> Completion:
        """Book usage for a successful attempt and notify usage listeners."""
        out_tokens = approx_tokens(response)
        usage = Usage(
            prompt_tokens=visible_tokens,
            completion_tokens=out_tokens,
            cost_usd=(
                visible_tokens * profile.usd_per_mtok_in
                + out_tokens * profile.usd_per_mtok_out
            )
            / 1e6,
            calls=1,
        )
        with self._usage_lock:
            self.usage_by_model.setdefault(profile.name, Usage()).add(usage)
            listeners = list(self._usage_listeners)
        for listener in listeners:
            try:
                listener(profile.name, usage, call_id)
            except Exception as exc:  # noqa: BLE001 - observers must never abort completions
                self._note_fault(
                    "listener_errors",
                    FaultEvent("listener-error", call_id, profile.name, detail=repr(exc)),
                )
        return Completion(text=response, model=profile.name, usage=usage, truncated=truncated)

    def total_usage(self) -> Usage:
        """Aggregate usage across all models."""
        total = Usage()
        with self._usage_lock:
            for usage in self.usage_by_model.values():
                total.add(usage)
        return total
