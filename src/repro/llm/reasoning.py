"""Expert diagnostic rules: facts in, findings out.

This module encodes the I/O-expert knowledge an LLM applies when reading
trace evidence — the thresholds an expert would use, with personalized,
quantified explanations rather than canned text (the paper's critique of
Drishti's fixed messages).  Both the plain-prompt task (ION) and IOAgent's
fragment diagnosis use these rules; what differs between tools is *which
facts survive* to be reasoned over, which is exactly the paper's thesis.

Thresholds (documented for DESIGN.md's experiment index):

* small requests: median below 128 KiB for >= 60% of >= 500 requests;
* misalignment: >= 50% of a direction's requests off block boundaries;
* randomness: < 70% of a direction's requests sequential;
* shared file: any multi-rank file moving >= 16 MiB;
* metadata load: metadata >= 40% of I/O time over >= 2000 metadata ops;
* server imbalance: effective-OST utilization < 30% with >= 16 MiB moved;
* rank imbalance: per-rank Gini >= 0.55, or >= 2.0 normalized variance on
  a shared record (MPI-IO level preferred over POSIX to see through
  collective-buffering aggregators);
* no MPI: > 1 process and no MPI-IO module data at all;
* no collective I/O: >= 4 independent MPI-IO ops with zero collectives;
* low-level library: STDIO carrying >= 30% of a direction's >= 1 MiB;
* repetitive reads: >= 3x re-read ratio on a file.

Temporal thresholds (DXT evidence channel, see docs/evidence.md):

* rank straggler: slowest rank's I/O window or busy time >= 3x the median
  while moving <= 1.5x the median bytes (time skew without byte skew);
* slow server (file-level): one file of >= 4 comparably-accessed files
  sustaining <= 1/3 of the median throughput (explains away a rank
  straggler);
* slow server (OST-level): attributed OST(s) sustaining <= 1/3 of the
  median OST's rate across >= 4 active OSTs (the deepest attribution:
  explains away both a file-level skew and a rank straggler);
* hot server: one OST absorbing >= 2.5x as large a share of service time
  as of bytes across >= 4 active OSTs;
* lock contention: mean in-flight ops <= 1.3 across >= 4 active ranks,
  with per-rank time balanced (a convoy, not a straggler's tail);
* I/O stalls: >= 6 repeated global pauses covering >= 25% of the span, or
  >= 2 ranks stalled while their peers kept doing I/O.
"""

from __future__ import annotations

from repro.llm.facts import Fact
from repro.llm.findings import Finding
from repro.util.units import format_bytes

__all__ = [
    "infer_findings",
    "THRESHOLDS",
    "RULE_ISSUES",
    "SUPPORT_KINDS",
    "TEMPORAL_RULES",
    "SUPPRESSIONS",
    "DEEPEST_CAUSE_ORDER",
]

# ---------------------------------------------------------------------------
# The knowledge base's declarative skeleton.  The static analyzer
# (`python -m repro.analysis`) checks these declarations against the issue
# taxonomy, the fact grammar, and each other, so drift between the code
# below and the knowledge it encodes is caught without running a trace.
# ---------------------------------------------------------------------------

# Which issue keys each rule family can emit, keyed by the fact kind that
# triggers it.  Every key must exist in repro.core.issues.ISSUE_KEYS and
# every consumed kind in repro.llm.facts.FACT_KINDS.
RULE_ISSUES: dict[str, tuple[str, ...]] = {
    "size_hist": ("small_read", "small_write"),
    "alignment": ("misaligned_read", "misaligned_write"),
    "order": ("random_read", "random_write"),
    "shared": ("shared_file_access",),
    "meta": ("high_metadata_load",),
    "server_usage": ("server_imbalance",),
    "rank_balance": ("rank_imbalance",),
    "mpi_presence": ("no_mpi",),
    "mpi_ops": ("no_collective_read", "no_collective_write"),
    "stdio_share": ("low_level_read", "low_level_write"),
    "repetition": ("repetitive_read",),
    "dxt_ost_latency": ("server_imbalance",),
    "dxt_ost_skew": ("server_imbalance",),
    "dxt_file_skew": ("server_imbalance",),
    "dxt_rank_skew": ("rank_imbalance",),
    "dxt_concurrency": ("lock_contention",),
    "dxt_idle": ("io_stall",),
    "trend_regression": ("trend_regression",),
}

# Kinds the rules read only for supporting values (nprocs), never to emit
# a finding of their own.  Together, RULE_ISSUES keys + SUPPORT_KINDS +
# repro.llm.facts.CONTEXT_ONLY_KINDS must exactly partition FACT_KINDS.
SUPPORT_KINDS: tuple[str, ...] = ("app_context",)

# The temporal rules, named by their triggering fact kind.
TEMPORAL_RULES: tuple[str, ...] = (
    "dxt_ost_latency",
    "dxt_ost_skew",
    "dxt_file_skew",
    "dxt_rank_skew",
    "dxt_concurrency",
    "dxt_idle",
)

# The deepest-cause suppression relation: (winner, loser) means "when the
# winner rule fires, the loser's symptom is explained away and it must stay
# quiet".  The guards in infer_findings below (and the mutual-exclusion
# logic of the DXT Drishti triggers) implement exactly these edges; the
# analyzer verifies the relation is a DAG and that DEEPEST_CAUSE_ORDER is
# a total topological order over TEMPORAL_RULES consistent with it.
SUPPRESSIONS: tuple[tuple[str, str], ...] = (
    ("dxt_ost_latency", "dxt_rank_skew"),  # slow server, not a slow rank
    ("dxt_file_skew", "dxt_rank_skew"),  # slow file's server, not the rank
    ("dxt_rank_skew", "dxt_concurrency"),  # a straggler's tail reads as serial
    ("dxt_rank_skew", "dxt_idle"),  # the straggler owns the gaps
    ("dxt_concurrency", "dxt_idle"),  # convoy waiting accounts for the idle
)

# One linearization of the DAG, deepest cause first — the order in which
# an expert attributes a temporal symptom.
DEEPEST_CAUSE_ORDER: tuple[str, ...] = (
    "dxt_ost_latency",
    "dxt_ost_skew",
    "dxt_file_skew",
    "dxt_rank_skew",
    "dxt_concurrency",
    "dxt_idle",
)

THRESHOLDS = {
    "small_fraction": 0.6,
    "small_min_requests": 500,
    "unaligned_fraction": 0.5,
    "seq_fraction": 0.7,
    "shared_min_bytes": 16 * 1024 * 1024,
    "meta_fraction": 0.4,
    "meta_min_ops": 2000,
    "server_utilization": 0.3,
    "server_min_bytes": 16 * 1024 * 1024,
    "rank_gini": 0.55,
    "rank_norm_variance": 2.0,
    "no_collective_min_ops": 4,
    "stdio_share": 0.3,
    "stdio_min_bytes": 1024 * 1024,
    "reread_ratio": 3.0,
    "dxt_time_skew": 3.0,
    "dxt_bytes_balanced": 1.5,
    "dxt_file_skew_ratio": 3.0,
    "dxt_ost_latency_ratio": 3.0,
    "dxt_ost_time_skew": 2.5,
    "dxt_serialized_inflight": 1.3,
    "dxt_stall_gaps": 6,
    "dxt_stall_idle_fraction": 0.25,
    "dxt_stalled_ranks": 2,
    "trend_drift": 1.0,
}


def _by_kind(facts: list[Fact]) -> dict[str, list[Fact]]:
    out: dict[str, list[Fact]] = {}
    for f in facts:
        out.setdefault(f.kind, []).append(f)
    return out


def infer_findings(facts: list[Fact]) -> list[Finding]:
    """Apply every rule to the visible facts; one finding per issue key."""
    kinds = _by_kind(facts)
    findings: dict[str, Finding] = {}

    def add(finding: Finding) -> None:
        if finding.issue_key in findings:
            findings[finding.issue_key] = findings[finding.issue_key].merged_with(finding)
        else:
            findings[finding.issue_key] = finding

    nprocs = 0
    for f in kinds.get("app_context", []) + kinds.get("mpi_presence", []):
        nprocs = max(nprocs, int(f.get("nprocs", 0)))

    # -- small requests ---------------------------------------------------
    for f in kinds.get("size_hist", []):
        if f.get("module") == "STDIO":
            continue
        if (
            f.get("small_fraction", 0.0) >= THRESHOLDS["small_fraction"]
            and f.get("n_requests", 0) >= THRESHOLDS["small_min_requests"]
        ):
            d = f.get("direction")
            add(
                Finding(
                    issue_key=f"small_{d}",
                    evidence=(
                        f"{f.get('n_requests')} {d} requests in the {f.get('module')} module "
                        f"with a median size of {format_bytes(f.get('p50_bytes', 0))}; "
                        f"{100 * f.get('small_fraction'):.0f}% are below 128 KiB."
                    ),
                    assessment=(
                        f"Each request pays a fixed software and network latency, so moving "
                        f"data in {format_bytes(f.get('p50_bytes', 0))} pieces leaves most of "
                        f"the file system's per-stream bandwidth unused."
                    ),
                    recommendation=(
                        f"Aggregate {d}s into at least 1 MiB requests, e.g. by buffering in "
                        f"the application or switching to collective MPI-IO so the library "
                        f"coalesces them."
                    ),
                )
            )

    # -- misalignment -----------------------------------------------------
    for f in kinds.get("alignment", []):
        if f.get("unaligned_fraction", 0.0) >= THRESHOLDS["unaligned_fraction"]:
            d = f.get("direction")
            add(
                Finding(
                    issue_key=f"misaligned_{d}",
                    evidence=(
                        f"{100 * f.get('unaligned_fraction'):.0f}% of {d} requests are not "
                        f"aligned to the {f.get('alignment')}-byte file system boundary "
                        f"(common request size {f.get('common_size')} bytes)."
                    ),
                    assessment=(
                        "Unaligned requests straddle file-system blocks and Lustre stripe "
                        "boundaries, forcing read-modify-write cycles and extra lock traffic."
                    ),
                    recommendation=(
                        f"Pad or restructure records so {d} offsets land on multiples of "
                        f"{f.get('alignment')} bytes (and ideally of the stripe size)."
                    ),
                )
            )

    # -- randomness ---------------------------------------------------------
    for f in kinds.get("order", []):
        if f.get("seq_fraction", 1.0) < THRESHOLDS["seq_fraction"]:
            d = f.get("direction")
            add(
                Finding(
                    issue_key=f"random_{d}",
                    evidence=(
                        f"Only {100 * f.get('seq_fraction'):.0f}% of {d} requests are "
                        f"sequential ({100 * f.get('consec_fraction'):.0f}% consecutive)."
                    ),
                    assessment=(
                        "A randomized access order defeats server-side prefetching and "
                        "turns streaming bandwidth into seek-dominated throughput."
                    ),
                    recommendation=(
                        f"Reorder {d}s to ascending offsets (sort work items by offset), or "
                        f"batch random accesses through MPI-IO collective buffering."
                    ),
                )
            )

    # -- shared file --------------------------------------------------------
    for f in kinds.get("shared", []):
        if f.get("shared_bytes", 0) >= THRESHOLDS["shared_min_bytes"]:
            add(
                Finding(
                    issue_key="shared_file_access",
                    evidence=(
                        f"{f.get('n_shared_files')} file(s), led by {f.get('example_path')}, "
                        f"are accessed by multiple ranks and carry "
                        f"{format_bytes(f.get('shared_bytes', 0))} of traffic."
                    ),
                    assessment=(
                        "Many ranks inside one file contend for extent locks on the same "
                        "servers; without collective coordination this serializes I/O."
                    ),
                    recommendation=(
                        "Either stripe the shared file widely and use collective MPI-IO, or "
                        "switch to file-per-process output with a post-hoc merge."
                    ),
                )
            )

    # -- metadata load -------------------------------------------------------
    meta_time = sum(f.get("meta_time_s", 0.0) for f in kinds.get("meta", []))
    data_time = sum(f.get("data_time_s", 0.0) for f in kinds.get("meta", []))
    meta_ops = sum(f.get("meta_ops", 0) for f in kinds.get("meta", []))
    if (
        meta_ops >= THRESHOLDS["meta_min_ops"]
        and meta_time + data_time > 0
        and meta_time / (meta_time + data_time) >= THRESHOLDS["meta_fraction"]
    ):
        share = 100 * meta_time / (meta_time + data_time)
        add(
            Finding(
                issue_key="high_metadata_load",
                evidence=(
                    f"{meta_ops} metadata operations consume {meta_time:.2f} s, "
                    f"{share:.0f}% of all I/O time."
                ),
                assessment=(
                    "The metadata server is the bottleneck: opens, stats, and creates are "
                    "serialized there regardless of how many OSTs exist."
                ),
                recommendation=(
                    "Batch file creation, keep files open across iterations, and prefer "
                    "fewer, larger files (or a container format like HDF5) over many tiny ones."
                ),
            )
        )

    # -- server imbalance ------------------------------------------------------
    for f in kinds.get("server_usage", []):
        if (
            f.get("total_bytes", 0) >= THRESHOLDS["server_min_bytes"]
            and f.get("utilization", 1.0) < THRESHOLDS["server_utilization"]
        ):
            add(
                Finding(
                    issue_key="server_imbalance",
                    evidence=(
                        f"{format_bytes(f.get('total_bytes', 0))} of traffic lands on an "
                        f"effective {f.get('eff_osts', 0):.1f} of {f.get('num_osts')} OSTs "
                        f"({100 * f.get('utilization'):.0f}% utilization); the busiest OST "
                        f"serves {100 * f.get('top_share'):.0f}% of all bytes."
                    ),
                    assessment=(
                        "Most storage servers sit idle while a few absorb the whole load — "
                        "typically a stripe width of 1 on the hot files — capping bandwidth "
                        "at a small multiple of a single OST."
                    ),
                    recommendation=(
                        "Increase the stripe width of the hot files (e.g. `lfs setstripe -c 16` "
                        "or `-c -1`) so traffic spreads across the available OSTs."
                    ),
                )
            )

    # -- rank imbalance ---------------------------------------------------------
    rank_facts = kinds.get("rank_balance", [])
    mpiio_rank = [f for f in rank_facts if f.get("module") == "MPIIO"]
    for f in mpiio_rank or rank_facts:
        gini_signal = f.get("gini", 0.0) >= THRESHOLDS["rank_gini"]
        # Normalized variance is only trustworthy at the MPI-IO level:
        # POSIX-level variance under collective buffering reflects the
        # aggregators, not the application.
        nv_signal = (
            f.get("module") == "MPIIO"
            and f.get("norm_variance", 0.0) >= THRESHOLDS["rank_norm_variance"]
        )
        if gini_signal or nv_signal:
            add(
                Finding(
                    issue_key="rank_imbalance",
                    evidence=(
                        f"Per-rank I/O volume is skewed (Gini {f.get('gini', 0):.2f}, "
                        f"normalized cross-rank variance {f.get('norm_variance', 0):.1f} "
                        f"over {f.get('nprocs')} ranks)."
                    ),
                    assessment=(
                        "The job ends when its slowest rank does; concentrating I/O on a "
                        "few ranks leaves the rest waiting at the next synchronization point."
                    ),
                    recommendation=(
                        "Repartition the output so every rank moves a similar volume, or "
                        "route I/O through collective operations with balanced aggregators."
                    ),
                )
            )
            break

    # -- MPI usage ----------------------------------------------------------------
    for f in kinds.get("mpi_presence", []):
        if f.get("nprocs", 1) > 1 and not f.get("mpiio_used", True):
            add(
                Finding(
                    issue_key="no_mpi",
                    evidence=(
                        f"{f.get('nprocs')} processes performed "
                        f"{format_bytes(f.get('posix_bytes', 0))} of I/O with no MPI-IO "
                        f"activity recorded at all."
                    ),
                    assessment=(
                        "Independent processes cannot coordinate their I/O; every "
                        "cross-process optimization (collective buffering, data sieving, "
                        "aggregation) is unavailable."
                    ),
                    recommendation=(
                        "Port the I/O phase to MPI (or a parallel library such as HDF5 or "
                        "PnetCDF layered on MPI-IO) so accesses can be coordinated."
                    ),
                )
            )

    mpi_ops = kinds.get("mpi_ops", [])
    for f in mpi_ops:
        for d, indep, coll in (
            ("read", f.get("indep_reads", 0), f.get("coll_reads", 0)),
            ("write", f.get("indep_writes", 0), f.get("coll_writes", 0)),
        ):
            if indep >= THRESHOLDS["no_collective_min_ops"] and coll == 0 and nprocs != 1:
                add(
                    Finding(
                        issue_key=f"no_collective_{d}",
                        evidence=(
                            f"The MPI-IO module shows {indep} independent {d}s and zero "
                            f"collective {d}s."
                        ),
                        assessment=(
                            f"Independent {d}s bypass collective buffering, so many small "
                            f"uncoordinated requests reach the file system instead of a few "
                            f"large aggregated ones."
                        ),
                        recommendation=(
                            f"Use the collective call (`MPI_File_{'read' if d == 'read' else 'write'}_all`, "
                            f"or enable collective transfers in HDF5/PnetCDF) for the {d} phase."
                        ),
                    )
                )

    # -- low-level library ---------------------------------------------------------
    for f in kinds.get("stdio_share", []):
        if (
            f.get("share", 0.0) >= THRESHOLDS["stdio_share"]
            and f.get("stdio_bytes", 0) >= THRESHOLDS["stdio_min_bytes"]
        ):
            d = "read" if f.get("direction") == "read" else "write"
            add(
                Finding(
                    issue_key=f"low_level_{d}",
                    evidence=(
                        f"STDIO carries {100 * f.get('share'):.0f}% of all bytes "
                        f"{f.get('direction')} ({format_bytes(f.get('stdio_bytes', 0))})."
                    ),
                    assessment=(
                        "The stdio layer caps request sizes at its user-space buffer and "
                        "cannot express parallel-I/O semantics, so it is a poor fit for "
                        "bulk data movement."
                    ),
                    recommendation=(
                        f"Move bulk {d}s from fread/fwrite to POSIX or, better, MPI-IO or "
                        f"a parallel I/O library."
                    ),
                )
            )

    # -- repetitive reads -------------------------------------------------------------
    for f in kinds.get("repetition", []):
        if f.get("ratio", 0.0) >= THRESHOLDS["reread_ratio"]:
            add(
                Finding(
                    issue_key="repetitive_read",
                    evidence=(
                        f"{f.get('path')} was read {f.get('ratio', 0):.1f}x over: "
                        f"{format_bytes(f.get('bytes_read', 0))} from an extent of "
                        f"{format_bytes(f.get('extent', 0))}."
                    ),
                    assessment=(
                        "The same bytes cross the network repeatedly; the working set fits "
                        "in memory many times over."
                    ),
                    recommendation=(
                        "Cache the region in application memory (or burst buffer) after the "
                        "first read instead of re-reading it from the file system."
                    ),
                )
            )

    # -- temporal (DXT) evidence --------------------------------------------
    # Ordering matters: an attributed slow OST explains away a file-level
    # skew and an apparent rank straggler (the rank is slow because its
    # server is), a slow file explains away a rank straggler, and a lock
    # convoy explains away apparent stalls (ranks idle because they queue on
    # the lock) — the expert attributes each symptom to its deepest cause.
    skew = next(iter(kinds.get("dxt_rank_skew", [])), None)
    time_skewed = skew is not None and (
        skew.get("time_skew", 1.0) >= THRESHOLDS["dxt_time_skew"]
        or skew.get("span_skew", 1.0) >= THRESHOLDS["dxt_time_skew"]
    )

    ost_latency_fired = False
    for f in kinds.get("dxt_ost_latency", []):
        if (
            f.get("ratio", 1.0) >= THRESHOLDS["dxt_ost_latency_ratio"]
            and f.get("n_osts", 0) >= 4
        ):
            ost_latency_fired = True
            ids = ", ".join(str(o) for o in f.get("slow_osts", []))
            add(
                Finding(
                    issue_key="server_imbalance",
                    evidence=(
                        f"Per-OST attribution shows OST(s) {ids} sustaining only "
                        f"{f.get('slow_mbps', 0):.1f} MiB/s while the median of "
                        f"{f.get('n_osts')} active OSTs reaches "
                        f"{f.get('median_mbps', 0):.1f} MiB/s "
                        f"({f.get('ratio', 0):.1f}x slower)."
                    ),
                    assessment=(
                        "Traffic is spread evenly across the storage servers, yet "
                        "the named OST(s) serve their share several times slower "
                        "than their peers — degraded or overloaded servers, "
                        "localized to the exact OST ids, which neither byte "
                        "counters nor file-level rates can attribute."
                    ),
                    recommendation=(
                        f"Check the health and external load of OST(s) {ids} "
                        f"(server-side stats, `lctl get_param obdfilter.*.stats`) "
                        f"and restripe the affected files away from them "
                        f"(`lfs setstripe -o`) until the servers recover."
                    ),
                )
            )

    for f in kinds.get("dxt_ost_skew", []):
        if (
            f.get("skew", 1.0) >= THRESHOLDS["dxt_ost_time_skew"]
            and f.get("n_osts", 0) >= 4
        ):
            add(
                Finding(
                    issue_key="server_imbalance",
                    evidence=(
                        f"Per-OST attribution shows OST {f.get('hot_ost')} absorbing "
                        f"{100 * f.get('time_share', 0):.0f}% of all server service "
                        f"time while receiving {100 * f.get('bytes_share', 0):.0f}% "
                        f"of the bytes ({f.get('skew', 0):.1f}x its byte share, "
                        f"across {f.get('n_osts')} active OSTs)."
                    ),
                    assessment=(
                        "One server soaks up service time far beyond its traffic "
                        "share: every request it touches waits on it, so the whole "
                        "job runs at that OST's pace while the byte distribution "
                        "looks perfectly balanced."
                    ),
                    recommendation=(
                        f"Investigate OST {f.get('hot_ost')} for degradation or "
                        f"competing load, and restripe hot files off it until its "
                        f"service time returns to parity."
                    ),
                )
            )

    file_skew_fired = False
    for f in kinds.get("dxt_file_skew", []):
        if (
            f.get("ratio", 1.0) >= THRESHOLDS["dxt_file_skew_ratio"]
            and f.get("n_files", 0) >= 4
        ):
            file_skew_fired = True
            add(
                Finding(
                    issue_key="server_imbalance",
                    evidence=(
                        f"Extended tracing shows {f.get('slow_path')} sustaining only "
                        f"{f.get('slow_mbps', 0):.1f} MiB/s while the median of "
                        f"{f.get('n_files')} comparably-accessed files reaches "
                        f"{f.get('median_mbps', 0):.1f} MiB/s ({f.get('ratio', 0):.1f}x slower)."
                    ),
                    assessment=(
                        "Byte traffic is spread evenly, yet one file's server lags its "
                        "peers — a slow or overloaded OST behind that file, which "
                        "aggregate volume counters can never show."
                    ),
                    recommendation=(
                        "Check the health/load of the OSTs serving the slow file "
                        "(`lfs getstripe`, server-side stats) and restripe it away "
                        "from the degraded server."
                    ),
                )
            )

    lock_fired = False
    for f in kinds.get("dxt_concurrency", []):
        if (
            f.get("active_ranks", 0) >= 4
            and f.get("mean_inflight", 99.0) <= THRESHOLDS["dxt_serialized_inflight"]
            and not time_skewed  # a straggler's lone tail also looks serial
        ):
            lock_fired = True
            add(
                Finding(
                    issue_key="lock_contention",
                    evidence=(
                        f"Extended tracing shows a mean of {f.get('mean_inflight', 0):.2f} "
                        f"operations in flight (peak {f.get('peak_inflight')}) although "
                        f"{f.get('active_ranks')} ranks perform I/O: accesses are "
                        f"serialized, one rank at a time."
                    ),
                    assessment=(
                        "This is the extent-lock convoy signature: ranks queue on the "
                        "shared file's locks and hand them around, so the file system "
                        "serves one stream while the rest wait — invisible in counters, "
                        "whose per-rank volumes stay perfectly balanced."
                    ),
                    recommendation=(
                        "Use collective MPI-IO so aggregators write disjoint, "
                        "stripe-aligned regions, align each rank's records to stripe "
                        "boundaries, or switch to file-per-process output."
                    ),
                )
            )

    if time_skewed and not file_skew_fired and not ost_latency_fired:
        if skew.get("bytes_ratio", 99.0) <= THRESHOLDS["dxt_bytes_balanced"]:
            add(
                Finding(
                    issue_key="rank_imbalance",
                    evidence=(
                        f"Extended tracing shows rank {skew.get('slowest_rank')} occupying "
                        f"an I/O window {skew.get('span_skew', 0):.1f}x the median rank's "
                        f"({skew.get('time_skew', 0):.1f}x the median I/O time) while "
                        f"moving only {skew.get('bytes_ratio', 0):.2f}x the median bytes."
                    ),
                    assessment=(
                        "One rank drags the whole job in time while byte volume stays "
                        "balanced — a straggler that per-rank volume counters cannot "
                        "distinguish from healthy ranks."
                    ),
                    recommendation=(
                        "Profile the slow rank (request sizes, interleaved compute, "
                        "placement); batch its small requests or rebalance its work, "
                        "and use collective I/O so stragglers are absorbed by "
                        "aggregators."
                    ),
                )
            )

    for f in kinds.get("dxt_idle", []):
        if lock_fired or time_skewed:
            # Convoy waiting (or one straggler's gaps) already accounts for
            # the idle structure; the deeper cause was reported above.
            break
        repeated_gaps = (
            f.get("n_gaps", 0) >= THRESHOLDS["dxt_stall_gaps"]
            and f.get("idle_fraction", 0.0) >= THRESHOLDS["dxt_stall_idle_fraction"]
        )
        stalled = f.get("stalled_ranks", 0) >= THRESHOLDS["dxt_stalled_ranks"]
        if repeated_gaps or stalled:
            add(
                Finding(
                    issue_key="io_stall",
                    evidence=(
                        f"Extended tracing shows the I/O stream pausing "
                        f"{f.get('n_gaps')} time(s) for "
                        f"{100 * f.get('idle_fraction', 0):.0f}% of its "
                        f"{f.get('span_s', 0):.1f} s span (longest pause "
                        f"{f.get('longest_gap_s', 0):.3f} s; {f.get('stalled_ranks')} "
                        f"rank(s) stalled while their peers kept doing I/O)."
                    ),
                    assessment=(
                        "Repeated mid-run pauses point at I/O stalls — interference "
                        "from other jobs or congestion when the whole job pauses "
                        "together, or ranks blocked on data produced by other ranks "
                        "when only some stall. Aggregate counters collapse this "
                        "timeline into totals and cannot show it."
                    ),
                    recommendation=(
                        "Overlap I/O with computation (non-blocking or "
                        "double-buffered I/O), stage through a burst buffer to "
                        "decouple from shared-system congestion, and pipeline "
                        "producer/consumer phases instead of strict hand-offs."
                    ),
                )
            )

    # -- longitudinal (series) evidence -------------------------------------
    # The trend_regression fact is asserted by the series channel
    # (repro.regression) against an immutable baseline; the rule's job is
    # only to translate the already-deterministic drift verdict into a
    # finding with the run index and the dominating feature named.
    for f in kinds.get("trend_regression", []):
        if f.get("drift", 0.0) >= f.get("threshold", THRESHOLDS["trend_drift"]):
            add(
                Finding(
                    issue_key="trend_regression",
                    evidence=(
                        f"Across {f.get('n_runs')} monitored runs, the I/O profile "
                        f"departs from its {f.get('baseline_runs')}-run baseline at "
                        f"run {f.get('run_index')} with a drift score of "
                        f"{f.get('drift', 0):.2f} (threshold "
                        f"{f.get('threshold', 0):.2f}), led by the "
                        f"{f.get('top_feature')} feature."
                    ),
                    assessment=(
                        "The application itself changed behavior — or its "
                        "environment did — at a specific, auditable run: every "
                        "earlier run matches the baseline profile and every "
                        "conclusion is reproducible from the stored profiles, "
                        "with no statistical model in the loop."
                    ),
                    recommendation=(
                        f"Diagnose the inflection run (run {f.get('run_index')}) "
                        f"in isolation, diff its configuration and environment "
                        f"against a baseline run, and start from the "
                        f"{f.get('top_feature')} feature the drift decomposition "
                        f"names."
                    ),
                )
            )

    # Stable order: by issue key for deterministic rendering.
    return [findings[k] for k in sorted(findings)]
