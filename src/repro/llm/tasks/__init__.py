"""SimLLM task handlers.

Importing this package registers every handler with the engine.  Each
handler receives only the *visible* (post-truncation) prompt text, the
model profile, and a deterministic RNG scoped to the call.
"""

from repro.llm.tasks import chat, describe, diagnose, judge, merge, plain, relevance  # noqa: F401

__all__ = ["describe", "diagnose", "merge", "relevance", "judge", "chat", "plain"]
