"""Post-diagnosis interactive chat (paper §VI-E, Fig. 5).

The user asks follow-up questions against the context of the final
diagnosis and its referenced sources.  The handler grounds its answer in
the findings present in the prompt: it picks the finding(s) the question
targets and responds with concrete, issue-specific remediation — including
runnable command/code samples, like the ``lfs setstripe -S 4M`` example
the paper highlights.
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.issues import ISSUES
from repro.llm.engine import register_task
from repro.llm.findings import parse_findings
from repro.llm.models import ModelProfile

__all__ = ["build_chat_prompt"]

_QUESTION_RE = re.compile(r"^USER QUESTION: (.*)$", re.MULTILINE | re.DOTALL)

# Issue-specific remediation playbooks: concrete actions + code samples.
_PLAYBOOKS: dict[str, str] = {
    "server_imbalance": (
        "Restripe the hot files so traffic spreads across OSTs. For 4 MiB "
        "transfers, match the stripe size to the transfer size and widen the "
        "stripe count before the file is created:\n"
        "```\nlfs setstripe -S 4M -c 16 /path/to/output/dir\n```\n"
        "Files inherit the directory's layout, so set it on the output "
        "directory in the job script. Verify with `lfs getstripe`."
    ),
    "small_write": (
        "Aggregate writes before they reach the file system. Either buffer in "
        "the application:\n"
        "```c\nsetvbuf(fp, buf, _IOFBF, 8*1024*1024); /* or build records in memory */\n```\n"
        "or switch the write phase to collective MPI-IO so the library "
        "aggregates across ranks:\n"
        "```c\nMPI_File_write_at_all(fh, off, buf, n, MPI_BYTE, &st);\n```"
    ),
    "small_read": (
        "Batch small reads: read a large block once and serve the small "
        "requests from memory, or use MPI-IO collective reads "
        "(`MPI_File_read_at_all`) so two-phase I/O coalesces them."
    ),
    "no_collective_write": (
        "Replace independent writes with their collective forms and enable "
        "collective buffering:\n"
        "```c\nMPI_Info_create(&info);\nMPI_Info_set(info, \"romio_cb_write\", \"enable\");\n"
        "MPI_File_open(comm, path, amode, info, &fh);\nMPI_File_write_at_all(...);\n```"
    ),
    "no_collective_read": (
        "Use `MPI_File_read_at_all` (and `romio_cb_read=enable`) so the MPI "
        "library aggregates the read phase instead of each rank going to the "
        "file system alone."
    ),
    "no_mpi": (
        "Introduce an MPI layer for the I/O phase (or adopt HDF5/PnetCDF, "
        "which layer on MPI-IO), so the processes can coordinate their "
        "accesses instead of competing."
    ),
    "misaligned_write": (
        "Pad each record so offsets land on stripe boundaries, e.g. round the "
        "per-rank region up to the stripe size:\n"
        "```c\nsize_t region = ((bytes_per_rank + stripe - 1) / stripe) * stripe;\n```"
    ),
    "misaligned_read": (
        "Align read offsets to the file system boundary (pad records, or read "
        "whole aligned blocks and slice in memory)."
    ),
    "high_metadata_load": (
        "Reduce file-system metadata pressure: keep files open across steps, "
        "batch creates, or pack objects into one container file (HDF5) instead "
        "of thousands of small files."
    ),
    "shared_file_access": (
        "Either stripe the shared file widely (`lfs setstripe -c -1`) and use "
        "collective I/O, or switch to file-per-process output with a "
        "post-processing merge."
    ),
    "random_write": (
        "Sort the work items by target offset before the write loop so the "
        "stream becomes sequential, or route the phase through collective "
        "buffering which reorders it for you."
    ),
    "random_read": (
        "Reorder reads to ascending offsets, or prefetch the region "
        "sequentially into memory and serve the random accesses from there."
    ),
    "rank_imbalance": (
        "Repartition output volume across ranks, or funnel I/O through "
        "collective operations so ROMIO's aggregators balance the traffic."
    ),
    "low_level_write": (
        "Move bulk output from fprintf/fwrite to POSIX `pwrite` or MPI-IO; "
        "keep stdio only for logs and small configuration files."
    ),
    "low_level_read": (
        "Move bulk input from fread to POSIX `pread` or MPI-IO with large "
        "requests."
    ),
    "repetitive_read": (
        "Cache the re-read region after the first pass:\n"
        "```c\nif (!cached) { pread(fd, cache, region, 0); cached = 1; }\n```\n"
        "or stage the file into node-local storage once per job."
    ),
}


def build_chat_prompt(report_text: str, question: str) -> str:
    """Assemble the follow-up prompt over the diagnosis context."""
    return (
        "TASK: chat\n"
        "You are continuing a conversation about the I/O diagnosis below. "
        "Answer the user's question concretely, referring to the diagnosis "
        "and its references where helpful.\n\n"
        "DIAGNOSIS CONTEXT:\n"
        f"{report_text}\n\n"
        f"USER QUESTION: {question}\n"
    )


@register_task("chat")
def handle_chat(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    m = _QUESTION_RE.search(visible)
    question = (m.group(1).strip() if m else "").lower()
    findings = parse_findings(visible)
    if not findings:
        return (
            "I don't see any diagnosed issues in our conversation so far, so "
            "there is nothing specific to fix. If you share the diagnosis, I "
            "can walk you through concrete remediation steps."
        )

    # Which finding is the user asking about?  Match issue labels/aliases in
    # the question; default to the first finding ("this issue", "fix it").
    targets = []
    for finding in findings:
        issue = next(i for i in ISSUES if i.key == finding.issue_key)
        hit = any(alias in question for alias in issue.aliases) or (
            issue.label.lower() in question
        )
        if hit:
            targets.append(finding)
    if not targets:
        targets = findings[:2] if "issues" in question or "all" in question else findings[:1]

    lines = []
    for finding in targets:
        playbook = _PLAYBOOKS.get(finding.issue_key, finding.recommendation)
        lines.append(f"To address the \"{finding.title}\" issue:")
        lines.append(playbook)
        if finding.evidence:
            lines.append(
                f"This targets exactly what the diagnosis observed: {finding.evidence}"
            )
        if finding.references:
            lines.append("See: " + " ; ".join(finding.references))
    return "\n\n".join(lines)
