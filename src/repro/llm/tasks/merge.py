"""Merge task: combine diagnosis summaries (paper §IV-C and Fig. 6).

Merging exactly two summaries is within every model's capability: the
handler deduplicates findings by issue, unions references, and carries
notes through.  Merging *more than two* at once triggers the documented
failure: the first and last summaries anchor the model's attention, and
findings from mid-positioned summaries survive only with probability
``(1 - merge_retention_decay)^(N-2)`` — lost along with their references.
IOAgent therefore only ever asks for pairwise merges; the 1-step merge
path exists to reproduce the Fig. 6 comparison.
"""

from __future__ import annotations

import re

import numpy as np

from repro.llm.engine import register_task
from repro.llm.findings import Finding, parse_findings, render_findings
from repro.llm.models import ModelProfile

__all__ = ["build_merge_prompt"]

_SECTION_RE = re.compile(r"^<<< SUMMARY (\d+) >>>$", re.MULTILINE)
_NOTE_RE = re.compile(r"^Note: .*$", re.MULTILINE)

MERGED_HEADER = "# Merged I/O Performance Diagnosis"


def build_merge_prompt(summaries: list[str]) -> str:
    """Assemble a merge prompt over ``summaries`` (2 for tree, N for 1-step)."""
    blocks = []
    for i, summary in enumerate(summaries):
        blocks.append(f"<<< SUMMARY {i} >>>\n{summary}")
    return (
        "TASK: merge\n"
        "Merge the following diagnosis summaries into a single comprehensive "
        "diagnosis. Remove redundancy, resolve contradictions, and retain "
        "every distinct finding together with its references.\n\n"
        + "\n\n".join(blocks)
    )


def _split_sections(visible: str) -> list[str]:
    marks = list(_SECTION_RE.finditer(visible))
    sections = []
    for i, m in enumerate(marks):
        end = marks[i + 1].start() if i + 1 < len(marks) else len(visible)
        sections.append(visible[m.end() : end])
    return sections


def _dedupe(findings: list[Finding]) -> list[Finding]:
    merged: dict[str, Finding] = {}
    order: list[str] = []
    for f in findings:
        if f.issue_key in merged:
            merged[f.issue_key] = merged[f.issue_key].merged_with(f)
        else:
            merged[f.issue_key] = f
            order.append(f.issue_key)
    return [merged[k] for k in order]


@register_task("merge")
def handle_merge(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    sections = _split_sections(visible)
    if not sections:
        return "There are no summaries to merge in the provided context."
    n = len(sections)
    kept_findings: list[Finding] = []
    kept_notes: list[str] = []
    retention = (1.0 - model.merge_retention_decay) ** max(0, n - 2)
    parsed_sections = [parse_findings(section) for section in sections]
    # Even pairwise merges are not perfectly lossless for weaker tiers
    # once cognitive load rises: with more than a handful of findings in
    # play, a small per-finding drop probability appears and compounds
    # over the depth of the tree.  Quadratic in the decay, so frontier
    # models barely lose anything; merging two short summaries (the Fig. 6
    # setting) is lossless for every tier.
    total_findings = sum(len(p) for p in parsed_sections)
    pair_retention = 1.0
    if total_findings > 4:
        pair_retention = 1.0 - (model.merge_retention_decay**2) * 0.15
    for i, section in enumerate(sections):
        anchored = i == 0 or i == n - 1  # first/last summaries anchor attention
        for finding in parsed_sections[i]:
            if n <= 2:
                if rng.random() < pair_retention:
                    kept_findings.append(finding)
            elif anchored or rng.random() < retention:
                kept_findings.append(finding)
        for note in _NOTE_RE.findall(section):
            if n <= 2 or anchored or rng.random() < retention:
                if note not in kept_notes:
                    kept_notes.append(note)
    merged = _dedupe(kept_findings)
    if model.verbosity > 0.7 and merged:
        # Verbose tiers elaborate most when there is least to say: a
        # simple case gets extra paragraphs per finding (the paper's
        # explanation for gpt-4o losing to llama on Simple-Bench), while
        # a complex case naturally budgets the wordiness across findings.
        # Each merge re-decides from its current view (stripping padding
        # applied at earlier tree levels), so the root merge's view — the
        # whole report — is what finally counts.
        pad_n = 2 if len(merged) <= 2 else (1 if len(merged) <= 4 else 0)
        repadded = []
        for f in merged:
            assessment = f.assessment
            for pad in _PADDING:
                assessment = assessment.replace(pad.strip(), "").strip()
            repadded.append(
                Finding(
                    issue_key=f.issue_key,
                    evidence=f.evidence,
                    assessment=assessment + " " + " ".join(p.strip() for p in _PADDING[:pad_n]),
                    recommendation=f.recommendation,
                    references=f.references,
                )
            )
        merged = repadded
    parts = [MERGED_HEADER]
    if model.verbosity > 0.7 and merged:
        parts.append(
            f"This report consolidates the per-aspect analyses of the trace "
            f"into {len(merged)} distinct finding(s), each with its supporting "
            f"evidence and the literature that informs the recommendation."
        )
    if merged:
        parts.append(render_findings(merged))
    else:
        parts.append(
            "No significant I/O performance issues were identified across the "
            "merged summaries."
        )
    parts.extend(kept_notes)
    return "\n\n".join(parts)


_PADDING = [
    " In the broader context of this application's configuration, this "
    "behaviour interacts with the other aspects discussed in this report "
    "and is worth addressing before scaling up further production runs of "
    "the workload.",
    " It is also advisable to re-examine the surrounding I/O phases after "
    "applying the change, since shifts in one access characteristic "
    "frequently expose secondary effects in adjacent layers of the storage "
    "stack that were previously masked.",
]
