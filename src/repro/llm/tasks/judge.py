"""LLM-as-judge ranking task (paper §VI-B).

The judge receives a criterion, (for the accuracy criterion) the trace's
ground-truth issue labels, and K anonymized diagnosis candidates.  It
scores each candidate with criterion-specific heuristics a domain-user
judge would apply, adds its **positional bias** — a bonus for the first
candidate in the prompt, the bias the paper's three augmentations exist to
cancel — plus seeded jitter, and answers with a ranking and explanation.
"""

from __future__ import annotations

import re

import numpy as np

from repro.llm.engine import register_task
from repro.llm.findings import parse_findings
from repro.llm.misconceptions import misconception_in_text
from repro.llm.models import ModelProfile
from repro.llm.tokenizer import approx_tokens
from repro.util.text import sentence_split

__all__ = ["build_judge_prompt", "parse_ranking"]

_CAND_RE = re.compile(r"^<<< CANDIDATE (?P<id>[A-Za-z0-9_-]+) >>>$", re.MULTILINE)
_TRUTH_RE = re.compile(r"^GROUND TRUTH ISSUES: (.*)$", re.MULTILINE)
_CRIT_RE = re.compile(r"^CRITERION: (\w+)$", re.MULTILINE)
_NUMBER_RE = re.compile(r"\d[\d,.]*")
_JARGON_RE = re.compile(r"\b[A-Z]{3,}_[A-Z0-9_]+\b")
_CMD_RE = re.compile(r"`[^`]+`")

CRITERIA = ("accuracy", "utility", "interpretability")


def build_judge_prompt(
    criterion: str,
    candidates: list[tuple[str, str]],  # (anonymous id, diagnosis text)
    rank_slots: list[str],
    truth_labels: list[str] | None = None,
) -> str:
    """Assemble the ranking prompt.

    ``rank_slots`` carries the order in which the response format lists the
    rank positions (the paper's augmentation B rotates it); ``candidates``
    arrive in presentation order (augmentation C rotates that); ids are
    anonymized by the harness (augmentation A).
    """
    if criterion not in CRITERIA:
        raise ValueError(f"unknown criterion {criterion!r}")
    parts = [
        "TASK: judge",
        f"CRITERION: {criterion}",
        (
            "Rank the following anonymized diagnosis outputs from best (rank 1) "
            "to worst on the stated criterion. Respond with a line "
            "'RANKING: <id> > <id> > ...' followed by a brief explanation of "
            "each assigned position."
        ),
        "Response format: assign ranks in the order " + ", ".join(rank_slots) + ".",
    ]
    if truth_labels is not None:
        parts.append("GROUND TRUTH ISSUES: " + ", ".join(sorted(truth_labels)))
    for cid, text in candidates:
        parts.append(f"<<< CANDIDATE {cid} >>>\n{text}")
    return "\n\n".join(parts)


def _asserted_issues(text: str) -> set[str]:
    # Late import to avoid a module cycle at package-import time.
    from repro.evaluation.accuracy import issue_assertions

    return issue_assertions(text)


def _score_accuracy(text: str, truth: set[str]) -> float:
    asserted = _asserted_issues(text)
    matched = len(asserted & truth)
    false_pos = len(asserted - truth)
    wrong_claims = 0
    clutter = 0
    for mis in misconception_in_text(text):
        if set(mis.contradicts) & truth:
            wrong_claims += 1
        else:
            clutter += 1
    raw = matched - 0.5 * false_pos - 0.5 * wrong_claims - 0.2 * clutter
    return raw / max(1, len(truth))


def _issue_blocks(text: str) -> int:
    """Rough count of per-issue blocks across all tools' output styles."""
    findings = parse_findings(text)
    if findings:
        return len(findings)
    return text.count("▶ HIGH") + text.count("▶ WARN")


def _score_utility(text: str, typical_tokens: float) -> float:
    findings = parse_findings(text)
    n_blocks = _issue_blocks(text)
    # Count recommendations in the raw text so canned (Drishti-style)
    # recommendation lines register too; diminishing returns past a few.
    n_rec = min(text.count("Recommendation:"), 7)
    n_refs = sum(len(f.references) for f in findings)
    numbers = min(len(_NUMBER_RE.findall(text)), 40)
    commands = len(_CMD_RE.findall(text))
    tokens = approx_tokens(text)
    # A diagnosis much longer than its peers on the same trace reads as
    # over-detailed for the case at hand — the paper's explanation for
    # llama beating gpt-4o on Simple-Bench.
    allowance = max(400.0, 1.45 * typical_tokens)
    verbosity_penalty = max(0, tokens - allowance) / 200.0 * 1.2
    base = (
        1.2 * n_rec
        + 0.05 * numbers
        + 0.6 * commands
        + 0.25 * min(n_refs, 10)
        + 0.3 * min(len(findings), 7)  # issue-specific action pairing
        - 0.35 * text.count("Note:")  # confusing asides reduce usability
    )
    if n_blocks == 0:
        base *= 0.2  # plans and vague advice help little
    return base - verbosity_penalty


def _score_interpretability(text: str, typical_tokens: float) -> float:
    findings = parse_findings(text)
    if findings:
        structured = 1.8  # titled issue blocks with labeled fields
    elif "▶" in text or re.search(r"^[-*•] ", text, re.MULTILINE):
        structured = 1.5  # bulleted insight list: terse and scannable
    else:
        structured = 0.0
    sentences = sentence_split(text)
    if sentences:
        mean_len = float(np.mean([len(s.split()) for s in sentences]))
    else:
        mean_len = 40.0
    readability = max(0.0, 2.0 - max(0.0, mean_len - 22.0) / 8.0)
    jargon_penalty = min(len(_JARGON_RE.findall(text)) * 0.04, 0.5)
    # Confusing, self-contradictory asides (the Fig. 1 "efficient I/O size"
    # inconsistency) hurt a reader's trust and comprehension.
    note_penalty = min(text.count("Note:") * 1.1, 2.2)
    # Citations make the reasoning transparent and checkable.
    ref_bonus = min(0.15 * sum(len(f.references) for f in findings), 0.9)
    # A framing overview before the first finding orients the reader.
    intro_bonus = 0.0
    if findings:
        first_block = text.find("### Finding")
        if first_block > 0 and len(text[:first_block].strip()) > 60:
            intro_bonus = 0.35
    tokens = approx_tokens(text)
    allowance = max(400.0, 1.45 * typical_tokens)
    length_penalty = max(0, tokens - allowance) / 250.0 * 0.8
    return (
        structured
        + readability
        + ref_bonus
        + intro_bonus
        - jargon_penalty
        - note_penalty
        - length_penalty
    )


@register_task("judge")
def handle_judge(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    crit_m = _CRIT_RE.search(visible)
    criterion = crit_m.group(1) if crit_m else "accuracy"
    truth_m = _TRUTH_RE.search(visible)
    truth = (
        {t.strip() for t in truth_m.group(1).split(",") if t.strip()} if truth_m else set()
    )
    marks = list(_CAND_RE.finditer(visible))
    candidates: list[tuple[str, str]] = []
    for i, m in enumerate(marks):
        end = marks[i + 1].start() if i + 1 < len(marks) else len(visible)
        candidates.append((m["id"], visible[m.end() : end]))
    if not candidates:
        return "RANKING:\nExplanation: no candidates were found in the context."

    # Length norms are judged relative to the candidate pool: the same
    # level of detail that suits a complex trace reads as bloat on a
    # simple one, and the judge sees all candidates side by side.
    typical_tokens = float(np.median([approx_tokens(t) for _, t in candidates]))
    raw: dict[str, float] = {}
    for cid, text in candidates:
        if criterion == "accuracy":
            raw[cid] = _score_accuracy(text, truth)
        elif criterion == "utility":
            raw[cid] = _score_utility(text, typical_tokens)
        else:
            raw[cid] = _score_interpretability(text, typical_tokens)
    # Judgment noise and positional bias both act relative to how spread
    # out the candidates are: a judge flips close calls, not clear ones.
    # The noise level is calibrated so that the best tool wins most but
    # not all comparisons — matching the moderate score separation the
    # paper's Table IV exhibits (normalized spreads of ~0.25, not ~0.6).
    spread = float(np.std(list(raw.values()))) or 1.0
    scores: dict[str, float] = {}
    for position, (cid, _) in enumerate(candidates):
        score = raw[cid]
        if position == 0:  # positional bias toward the first candidate
            score += model.positional_bias * 2.4 * spread
        score += float(rng.normal(0.0, 2.0 * spread))
        scores[cid] = score

    ordered = sorted(scores, key=lambda cid: -scores[cid])
    lines = ["RANKING: " + " > ".join(ordered), ""]
    for rank, cid in enumerate(ordered, start=1):
        lines.append(
            f"Rank {rank}: candidate {cid} scored {scores[cid]:.2f} on {criterion} "
            f"based on the issues identified, the support given for each, and the "
            f"presentation of the output."
        )
    return "\n".join(lines)


def parse_ranking(response: str) -> list[str]:
    """Recover the ranked candidate ids from a judge response."""
    for line in response.splitlines():
        if line.startswith("RANKING:"):
            body = line[len("RANKING:") :].strip()
            return [part.strip() for part in body.split(">") if part.strip()]
    return []
