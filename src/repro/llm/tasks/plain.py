"""Plain-prompt diagnosis over a raw darshan-parser dump (paper §III, ION).

This is what happens when a trace is pasted straight into a chat window:

* only the text that survives the context window is readable — for large
  traces that means the header plus the start of the POSIX section and the
  tail of the LUSTRE section, with MPI-IO lost in the middle;
* the model must tabulate counters itself; we model a bounded "attention
  budget" of records it can actually aggregate, plus a raw-reading penalty
  on fact recall;
* there is no retrieved knowledge, so every topically-triggered
  misconception fires at the model's full rate and nothing is cited;
* the gpt-4 tier produces an analysis *plan* instead of a diagnosis, as in
  the left half of Fig. 1.
"""

from __future__ import annotations

import re

import numpy as np

from repro.darshan.log import DarshanLog, JobHeader
from repro.darshan.records import DarshanRecord
from repro.llm.engine import register_task
from repro.llm.findings import render_findings
from repro.llm.misconceptions import triggered_misconceptions
from repro.llm.models import ModelProfile
from repro.llm.reasoning import infer_findings
from repro.llm.tasks.diagnose import sample_facts

__all__ = ["build_plain_prompt", "RAW_READING_PENALTY", "ATTENTION_RECORDS"]

# Reading facts out of raw counter tables is harder than reading prose.
RAW_READING_PENALTY = 0.78
# How many per-file records a model can realistically tabulate from text.
ATTENTION_RECORDS = 64

_HEADER_RE = re.compile(r"^# ([a-z_ ]+): (.*)$")


def build_plain_prompt(trace_text: str) -> str:
    """The engineered direct prompt (ION-style) over the full trace text."""
    return (
        "TASK: plain\n"
        "You are an expert in HPC I/O performance analysis. The following is "
        "the darshan-parser output of an application run. Check the I/O "
        "behaviour in detail — request sizes, access patterns, alignment, "
        "metadata activity, MPI-IO usage, and Lustre striping — and report "
        "every I/O performance issue you can identify, with justification "
        "and recommendations.\n\n"
        + trace_text
    )


def _parse_partial_log(visible: str) -> DarshanLog:
    """Lenient parse of whatever counter lines survived truncation."""
    header_fields: dict[str, str] = {}
    records: dict[tuple[str, str], DarshanRecord] = {}
    per_module_files: dict[str, set] = {}
    for raw in visible.splitlines():
        line = raw.rstrip()
        if line.startswith("#"):
            m = _HEADER_RE.match(line)
            if m:
                header_fields[m.group(1).strip()] = m.group(2).strip()
            continue
        parts = line.split("\t")
        if len(parts) != 8:
            continue
        module, rank_s, _rid, counter, value_s, path, mount, fs_type = parts
        files = per_module_files.setdefault(module, set())
        key = (module, path)
        if key not in records and len(files) >= ATTENTION_RECORDS:
            continue  # beyond what the model can tabulate
        files.add(path)
        rec = records.get(key)
        if rec is None:
            try:
                rank = int(rank_s)
            except ValueError:
                continue
            rec = DarshanRecord(
                module=module, path=path, rank=rank, mount_point=mount, fs_type=fs_type
            )
            records[key] = rec
        try:
            if "." in value_s or "e" in value_s or "E" in value_s:
                rec.fcounters[counter] = float(value_s)
            else:
                rec.counters[counter] = int(value_s)
        except ValueError:
            continue
    header = JobHeader(
        exe=header_fields.get("exe", "unknown"),
        uid=int(header_fields.get("uid", 0) or 0),
        jobid=int(header_fields.get("jobid", 0) or 0),
        nprocs=int(header_fields.get("nprocs", 1) or 1),
        start_time=int(header_fields.get("start_time", 0) or 0),
        end_time=int(header_fields.get("end_time", 0) or 0),
        run_time=float(header_fields.get("run time", 0.0) or 0.0),
    )
    return DarshanLog(header=header, records=list(records.values()))


_PLAN_TEXT = """\
To analyze this Darshan trace, I would suggest proceeding as follows:

1. Examine the open/close operations to understand how many files are involved.
2. Review the read/write operation counts and the total bytes moved.
3. Inspect metadata operations for signs of excessive file system activity.
4. Check the stripe patterns and storage configuration on the Lustre mount.
5. Graphically plot the time series data of operations or use statistical tools
   to identify phases where I/O may be inefficient.
6. Compare the application's access sizes against the file system's optimal
   transfer size.

Carrying out these steps with appropriate tooling should reveal whether the
application suffers from I/O performance issues and where to focus tuning."""


@register_task("plain")
def handle_plain(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    if model.plans_instead_of_diagnosing:
        # The Fig. 1 gpt-4 behaviour: a plan, not a diagnosis.
        return _PLAN_TEXT

    # Late import: summaries lives in core, which imports llm.facts; the
    # function-level import keeps the module graph acyclic.
    from repro.core.summaries import app_context_facts, extract_fragments

    partial = _parse_partial_log(visible)
    facts = app_context_facts(partial)
    for fragment in extract_fragments(partial):
        facts.extend(fragment.facts)
    kept = sample_facts(facts, model.fact_recall * RAW_READING_PENALTY, rng)
    findings = infer_findings(kept)

    lines: list[str] = []
    lines.append(
        "Reviewing the darshan-parser output, here is my assessment of the "
        "application's I/O behaviour and the issues I can identify:"
    )
    if findings:
        lines.append(render_findings(findings))
    else:
        lines.append(
            "From the visible portion of the trace, the I/O behaviour looks "
            "reasonable; no major issues stand out."
        )
    for mis in triggered_misconceptions(kept):
        if rng.random() < model.misconception_rate:
            lines.append(mis.text)
    if model.verbosity > 0.6:
        lines.append(
            "Overall, addressing the points above should improve the "
            "application's I/O efficiency; re-profiling with Darshan after "
            "each change is recommended."
        )
    return "\n\n".join(lines)
