"""Describe task: JSON summary fragment → natural-language description.

Reproduces paper Fig. 3: the prompt carries the extraction code, the JSON
summary values, and the application context; the model answers with a
descriptive interpretation whose sentences embed the quantities.  The
handler renders one canonical sentence per fact found in the JSON block —
the honest core — plus a tier-dependent amount of interpretive prose.
"""

from __future__ import annotations

import json
import re

import numpy as np

from repro.llm.facts import Fact, render_fact
from repro.llm.models import ModelProfile
from repro.llm.engine import register_task

__all__ = ["build_describe_prompt"]

_JSON_RE = re.compile(r"```json\s*(\{.*?\})\s*```", re.DOTALL)
_CONTEXT_RE = re.compile(r"^APPLICATION CONTEXT: (.*)$", re.MULTILINE)


def build_describe_prompt(fragment_json: dict, code: str, context_sentences: str) -> str:
    """Assemble the Fig. 3-style describe prompt."""
    return (
        "TASK: describe\n"
        "You are assisting with HPC I/O analysis. Below is the code of the "
        "summary extraction function, the JSON summary it produced from a "
        "Darshan module, and the broader application context. Interpret the "
        "JSON summary in plain language, preserving all quantities.\n\n"
        f"APPLICATION CONTEXT: {context_sentences}\n\n"
        "Extraction function:\n"
        f"```python\n{code}\n```\n\n"
        "JSON summary:\n"
        f"```json\n{json.dumps(fragment_json, indent=1)}\n```\n"
    )


@register_task("describe")
def handle_describe(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    m = _JSON_RE.search(visible)
    if m is None:
        return "I cannot find the JSON summary in the provided context."
    try:
        payload = json.loads(m.group(1))
    except json.JSONDecodeError:
        return "The JSON summary in the context appears malformed; unable to interpret it."
    facts = []
    for entry in payload.get("facts", []):
        entry = dict(entry)
        kind = entry.pop("kind", None)
        if kind:
            facts.append(Fact(kind=kind, data=entry))
    module = payload.get("module", "?")
    category = payload.get("category", "?")
    lines = [f"Interpretation of the {module} module's {category.replace('_', ' ')} summary:"]
    ctx = _CONTEXT_RE.search(visible)
    if ctx:
        lines.append(ctx.group(1).strip())
    for fact in facts:
        try:
            lines.append(render_fact(fact))
        except ValueError:
            continue  # unknown fact kinds are skipped, as a model would paraphrase-drop
    if model.verbosity > 0.6 and facts:
        lines.append(
            "Taken together these figures characterize how this aspect of the "
            "application's I/O interacts with the storage system and where it "
            "may deviate from best practice."
        )
    return "\n".join(lines)
