"""Fragment diagnosis task (paper §IV-B3, "first true diagnosis").

Input prompt: application context + the fragment's NL description + the
self-reflection-filtered knowledge sources.  The handler extracts facts
from the *visible* text (subject to the model's fact recall), applies the
expert rules, attaches references from the supplied sources by topic, and
— when no source refutes a topically-triggered misconception — may emit
the misconception, at the model's rate.  This is where RAG visibly earns
its keep: the same model without sources hallucinates more and cites
nothing.
"""

from __future__ import annotations

import re

import numpy as np

from repro.llm.engine import register_task
from repro.llm.facts import Fact, extract_facts
from repro.llm.findings import Finding, render_findings
from repro.llm.misconceptions import triggered_misconceptions
from repro.llm.models import ModelProfile
from repro.llm.reasoning import infer_findings
from repro.rag.corpus import topics_for_issue
from repro.util.rng import rng_for

__all__ = ["build_diagnose_prompt", "attach_references", "sample_facts"]

_SOURCE_RE = re.compile(
    r"^\[(?P<id>S\d+)\] \"(?P<title>[^\"]+)\" \((?P<rest>[^)]+)\)\nTopics: (?P<topics>.*)$",
    re.MULTILINE,
)


def build_diagnose_prompt(
    context_sentences: str, description: str, sources: list[str]
) -> str:
    """Assemble the fragment-diagnosis prompt."""
    source_block = "\n\n".join(sources) if sources else "(no sources retrieved)"
    return (
        "TASK: diagnose\n"
        "You are an HPC I/O performance expert. Based on the application "
        "context, the trace summary description, and the retrieved domain "
        "knowledge below, diagnose any I/O performance issues. Justify each "
        "diagnosis with the quantities observed and cite the sources that "
        "support it.\n\n"
        f"APPLICATION CONTEXT: {context_sentences}\n\n"
        "TRACE SUMMARY DESCRIPTION:\n"
        f"{description}\n\n"
        "RETRIEVED DOMAIN KNOWLEDGE:\n"
        f"{source_block}\n"
    )


def sample_facts(
    facts: list[Fact], recall: float, rng: np.random.Generator
) -> list[Fact]:
    """Keep each fact with probability ``recall`` (the model's attention)."""
    if recall >= 1.0:
        return list(facts)
    return [f for f in facts if rng.random() < recall]


def sample_facts_correlated(
    facts: list[Fact], recall: float, model_name: str, salt: str
) -> list[Fact]:
    """Recall sampling correlated *within* a trace.

    A model that overlooks a signal tends to overlook it consistently in
    one sitting: the keep/drop draw is keyed on (model, trace context,
    fact kind, direction), so the same evidence kind is missed in every
    fragment of a trace rather than independently per fragment — without
    this, the redundancy of facts across module fragments would let even
    weak models reach near-perfect issue recall.
    """
    if recall >= 1.0:
        return list(facts)
    kept = []
    for f in facts:
        key_rng = rng_for(
            0, "fact-recall", model_name, salt, f.kind, str(f.get("direction", ""))
        )
        if key_rng.random() < recall:
            kept.append(f)
    return kept


def _parse_sources(visible: str) -> list[tuple[str, str, set[str]]]:
    """(doc_id, citation, topics) for every source block in the prompt."""
    out = []
    for m in _SOURCE_RE.finditer(visible):
        citation = f"[{m['id']}] {m['rest'].split(',')[0]}, \"{m['title']}\""
        topics = {t.strip() for t in m["topics"].split(",")}
        out.append((m["id"], citation, topics))
    return out


def attach_references(
    findings: list[Finding], sources: list[tuple[str, str, set[str]]], max_refs: int = 3
) -> list[Finding]:
    """Attach topically matching sources to each finding."""
    out = []
    for finding in findings:
        wanted = set(topics_for_issue(finding.issue_key))
        refs = tuple(
            citation for _, citation, topics in sources if topics & wanted
        )[:max_refs]
        out.append(
            Finding(
                issue_key=finding.issue_key,
                evidence=finding.evidence,
                assessment=finding.assessment,
                recommendation=finding.recommendation,
                references=refs or finding.references,
            )
        )
    return out


@register_task("diagnose")
def handle_diagnose(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    # A fragment prompt is small and focused, which is precisely why the
    # pre-processor exists: attention per fact is far higher than over a
    # raw dump, modeled as a cube-root boost of the base recall.
    focused_recall = min(1.0, model.fact_recall ** (1.0 / 3.0))
    ctx_m = re.search(r"^APPLICATION CONTEXT: (.*)$", visible, re.MULTILINE)
    salt = ctx_m.group(1) if ctx_m else visible[:200]
    facts = sample_facts_correlated(
        extract_facts(visible), focused_recall, model.name, salt
    )
    findings = infer_findings(facts)
    sources = _parse_sources(visible)
    findings = attach_references(findings, sources)
    present_topics: set[str] = set()
    for _, _, topics in sources:
        present_topics |= topics

    lines: list[str] = []
    if findings:
        if model.verbosity > 0.6:
            lines.append(
                "Based on the observed quantities and the retrieved literature, "
                "the following issues are diagnosed for this aspect of the "
                "application's I/O behaviour:"
            )
        lines.append(render_findings(findings))
    else:
        lines.append(
            "No significant I/O performance issue is indicated by this summary "
            "fragment; the observed values are within expected ranges."
        )

    # Retrieved evidence suppresses misconceptions two ways: a source on
    # the misconception's own topic refutes it outright, and the mere
    # presence of grounding text strongly dampens free-associated claims
    # (the general hallucination-reduction effect of RAG).
    grounding = 0.12 if sources else 1.0
    for mis in triggered_misconceptions(facts):
        if mis.refuted_by_topic in present_topics:
            continue  # RAG evidence contradicts the popular belief
        if rng.random() < model.misconception_rate * grounding:
            lines.append(mis.text)
    return "\n\n".join(lines)
