"""Self-reflection relevance filter (paper §IV-B3).

A fast, cheap model (gpt-4o-mini in the paper) decides, per retrieved
source, whether it actually bears on the fragment being diagnosed — a more
nuanced judgment than raw cosine rank.  The handler extracts the facts
from the fragment description, derives the topics those facts implicate,
and accepts the source iff its topic coverage intersects; a small seeded
flip probability models the cheap model's imperfection.
"""

from __future__ import annotations

import re

import numpy as np

from repro.llm.engine import register_task
from repro.llm.facts import extract_facts
from repro.llm.models import ModelProfile
from repro.llm.reasoning import infer_findings
from repro.rag.corpus import topics_for_issue

__all__ = ["build_relevance_prompt", "fact_topics"]

_TOPICS_RE = re.compile(r"^Topics: (.*)$", re.MULTILINE)
_FLIP_PROB = 0.08

# Baseline topic implied by each fact kind, before any rule fires.
_KIND_TOPICS = {
    "size_hist": ("small-io",),
    "alignment": ("alignment",),
    "order": ("access-pattern", "repetition"),
    "meta": ("metadata",),
    "shared": ("shared-file",),
    "rank_balance": ("rank-balance",),
    "stripe": ("striping",),
    "server_usage": ("server-balance", "striping"),
    "stdio_share": ("stdio",),
    "mpi_ops": ("collective-io",),
    "mpi_presence": ("mpi",),
    "repetition": ("repetition", "burst-buffer"),
    "volume": ("general",),
    "counts": ("general",),
    "mount": ("general", "striping"),
    "app_context": ("general",),
}


def fact_topics(description: str) -> set[str]:
    """Topics implicated by a fragment description's facts and findings."""
    facts = extract_facts(description)
    topics: set[str] = set()
    for fact in facts:
        topics.update(_KIND_TOPICS.get(fact.kind, ()))
    for finding in infer_findings(facts):
        topics.update(topics_for_issue(finding.issue_key))
    return topics


def build_relevance_prompt(description: str, source_text: str) -> str:
    """Assemble the per-source self-reflection prompt."""
    return (
        "TASK: relevance\n"
        "Decide whether the following retrieved source is relevant to "
        "diagnosing the I/O behaviour described. Answer RELEVANT or "
        "IRRELEVANT with a one-line reason.\n\n"
        "FRAGMENT DESCRIPTION:\n"
        f"{description}\n\n"
        "SOURCE:\n"
        f"{source_text}\n"
    )


@register_task("relevance")
def handle_relevance(visible: str, model: ModelProfile, rng: np.random.Generator) -> str:
    parts = visible.split("FRAGMENT DESCRIPTION:", 1)
    if len(parts) < 2 or "SOURCE:" not in parts[1]:
        return "IRRELEVANT: the prompt does not contain a description and a source."
    description, source = parts[1].split("SOURCE:", 1)
    wanted = fact_topics(description)
    m = _TOPICS_RE.search(source)
    source_topics = (
        {t.strip() for t in m.group(1).split(",")} if m else set()
    )
    specific = source_topics - {"general"}
    relevant = bool(specific & wanted)
    if rng.random() < _FLIP_PROB:  # the cheap model's occasional misjudgment
        relevant = not relevant
    if relevant:
        overlap = sorted(specific & wanted) or sorted(source_topics)
        return f"RELEVANT: the source covers {', '.join(overlap)}, which matches the description."
    return "IRRELEVANT: the source's topics do not bear on the behaviours described."
