"""The misconception bank: popular-but-wrong claims LLMs reproduce.

The paper's §III shows gpt-4o asserting that a 1 MiB stripe size "is
optimal for minimizing the number of I/O requests on Lustre" while the
stripe *count* of 1 was the actual problem, plus an internally inconsistent
small-write assessment.  We model this failure mode as a bank of
topically-triggered misconceptions: when a model's reasoning touches a
topic, it emits the corresponding misconception with probability
``model.misconception_rate`` — *unless* retrieved domain knowledge on that
topic is present in the prompt, which is precisely the hallucination
defense RAG provides (paper §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.llm.facts import Fact

__all__ = ["Misconception", "MISCONCEPTIONS", "triggered_misconceptions", "misconception_in_text"]


@dataclass(frozen=True)
class Misconception:
    """One plausible-but-wrong claim.

    ``trigger`` decides whether the visible facts touch the topic;
    ``refuted_by_topic`` is the knowledge-base topic whose presence in the
    prompt suppresses the claim; ``contradicts`` lists ground-truth issue
    keys the claim denies (used by the evaluation to count it as an
    incorrect statement when those issues are actually present).
    ``signature`` is a stable phrase for detecting the claim in text.
    """

    key: str
    text: str
    signature: str
    trigger: Callable[[dict[str, list[Fact]]], bool]
    refuted_by_topic: str
    contradicts: tuple[str, ...]


def _has(kind: str) -> Callable[[dict], bool]:
    return lambda kinds: bool(kinds.get(kind))


MISCONCEPTIONS: tuple[Misconception, ...] = (
    Misconception(
        key="stripe_default_optimal",
        text=(
            "Note: the files use a 1 MiB stripe size, which matches the common "
            "Lustre default. This is optimal for minimizing the number of I/O "
            "requests on Lustre, so the striping configuration needs no change."
        ),
        signature="optimal for minimizing the number of I/O requests",
        trigger=lambda kinds: any(
            f.get("stripe_size") == 1024 * 1024 for f in kinds.get("stripe", [])
        ),
        refuted_by_topic="striping",
        contradicts=("server_imbalance",),
    ),
    Misconception(
        key="posix_adequate",
        text=(
            "Note: direct POSIX I/O is generally efficient at this scale, so "
            "restructuring the application around MPI-IO collective operations "
            "is unlikely to improve performance."
        ),
        signature="restructuring the application around MPI-IO",
        trigger=lambda kinds: any(
            f.get("posix_bytes", 0) > 0 for f in kinds.get("mpi_presence", [])
        ),
        refuted_by_topic="collective-io",
        contradicts=("no_collective_read", "no_collective_write", "no_mpi"),
    ),
    Misconception(
        key="metadata_negligible",
        text=(
            "Note: metadata overhead is negligible on modern parallel file "
            "systems and the observed open/stat activity can safely be ignored."
        ),
        signature="metadata overhead is negligible",
        trigger=_has("meta"),
        refuted_by_topic="metadata",
        contradicts=("high_metadata_load",),
    ),
    Misconception(
        key="small_coalesced_anyway",
        text=(
            "Note: client-side caching will coalesce these requests before they "
            "reach the servers, so the small request sizes are an efficient I/O "
            "size in practice and not a concern."
        ),
        signature="small request sizes are an efficient I/O size",
        trigger=lambda kinds: any(
            f.get("small_fraction", 0.0) >= 0.3 for f in kinds.get("size_hist", [])
        ),
        refuted_by_topic="small-io",
        contradicts=("small_read", "small_write"),
    ),
    Misconception(
        key="random_like_sequential",
        text=(
            "Note: on modern storage hardware random access performs on par "
            "with sequential access, so the access ordering needs no attention."
        ),
        signature="random access performs on par with sequential",
        trigger=_has("order"),
        refuted_by_topic="access-pattern",
        contradicts=("random_read", "random_write"),
    ),
    Misconception(
        key="shared_file_always_best",
        text=(
            "Note: funneling all ranks into a single shared file is the "
            "recommended pattern on parallel file systems and carries no lock "
            "contention risk."
        ),
        signature="carries no lock contention risk",
        trigger=_has("shared"),
        refuted_by_topic="shared-file",
        contradicts=("shared_file_access",),
    ),
)


def triggered_misconceptions(facts: list[Fact]) -> list[Misconception]:
    """Misconceptions whose topic the visible facts touch."""
    kinds: dict[str, list[Fact]] = {}
    for f in facts:
        kinds.setdefault(f.kind, []).append(f)
    return [m for m in MISCONCEPTIONS if m.trigger(kinds)]


def misconception_in_text(text: str) -> list[Misconception]:
    """Detect asserted misconceptions by their signature phrases."""
    return [m for m in MISCONCEPTIONS if m.signature in text]
