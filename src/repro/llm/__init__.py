"""SimLLM: a deterministic, capability-tiered language-model substrate.

The paper runs on OpenAI and Meta models over the network.  This package
is the offline substitution: an engine that reproduces the LLM behaviours
IOAgent's design exists to manage —

* a finite **context window** with *lost-in-the-middle* truncation
  (:mod:`repro.llm.context`): content in the middle of an over-long prompt
  is simply not seen;
* imperfect **fact extraction** from prompt text, with per-tier recall
  (:mod:`repro.llm.facts`): weaker models miss more of the evidence;
* **misconceptions/hallucinations** (:mod:`repro.llm.misconceptions`):
  plausible-but-wrong claims emitted unless retrieved knowledge in the
  prompt contradicts them;
* degraded **multi-way merging** (:mod:`repro.llm.tasks.merge`): pairwise
  merges are reliable, one-shot merges of many summaries lose
  mid-positioned content;
* **positional bias** when judging (:mod:`repro.llm.tasks.judge`).

Crucially, every handler works *only from the prompt text that survives
truncation* — there is no back-channel to the trace or the ground truth —
so the pipeline-level comparisons (IOAgent vs. plain prompting, tree merge
vs. 1-step merge) exercise the same failure modes as the paper.
"""

from repro.llm.client import ChatMessage, Completion, LLMClient, Usage
from repro.llm.context import fit_prompt
from repro.llm.models import MODEL_REGISTRY, ModelProfile, get_model
from repro.llm.tokenizer import approx_tokens

__all__ = [
    "ModelProfile",
    "MODEL_REGISTRY",
    "get_model",
    "approx_tokens",
    "fit_prompt",
    "LLMClient",
    "ChatMessage",
    "Completion",
    "Usage",
]
