"""Model registry: capability profiles for the SimLLM.

Context windows are **scaled down** relative to the real models by roughly
the same factor our synthetic traces are smaller than production Darshan
logs (paper: "lengths often surpass millions of lines"; ours run from a
hundred to several hundred thousand lines).  What matters for reproducing
the paper's phenomena is the *ratio* of trace length to window: plain
prompting overflows on real applications while IOAgent's summaries always
fit.  All other knobs model documented failure modes per tier.

Costs are the providers' 2024 USD list prices per million tokens, kept so
the cost discussion in the paper (§I, §III) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelProfile", "MODEL_REGISTRY", "get_model"]


@dataclass(frozen=True, slots=True)
class ModelProfile:
    """Behavioural profile of one model tier.

    ``fact_recall`` — probability a fact present in the (surviving) prompt
    is actually used by the model's reasoning.
    ``misconception_rate`` — probability a topically-triggered popular
    misconception is asserted when no retrieved source contradicts it.
    ``merge_retention_decay`` — per-extra-summary probability of losing a
    mid-positioned finding when asked to merge more than two summaries in
    one shot (the Fig. 6 failure); pairwise merges are unaffected.
    ``verbosity`` — 0..1; scales how much boilerplate the model wraps
    around its findings (drives the utility/interpretability trade-off the
    paper observes between gpt-4o and llama on Simple-Bench).
    ``positional_bias`` — additive score bonus the model gives the first
    candidate when used as a ranking judge without prompt augmentation.
    ``plans_instead_of_diagnosing`` — the gpt-4 behaviour in Fig. 1: on a
    raw-trace prompt it produces an analysis *plan* rather than concrete
    diagnoses.
    """

    name: str
    context_tokens: int
    fact_recall: float
    misconception_rate: float
    merge_retention_decay: float
    verbosity: float
    positional_bias: float
    usd_per_mtok_in: float
    usd_per_mtok_out: float
    open_source: bool = False
    plans_instead_of_diagnosing: bool = False

    def __post_init__(self) -> None:
        for field_name in ("fact_recall", "misconception_rate", "verbosity"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.context_tokens <= 0:
            raise ValueError("context_tokens must be positive")


MODEL_REGISTRY: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        ModelProfile(
            name="gpt-4",
            context_tokens=6_000,
            fact_recall=0.70,
            misconception_rate=0.35,
            merge_retention_decay=0.30,
            verbosity=0.35,
            positional_bias=0.6,
            usd_per_mtok_in=30.0,
            usd_per_mtok_out=60.0,
            plans_instead_of_diagnosing=True,
        ),
        ModelProfile(
            name="gpt-4o",
            context_tokens=24_000,
            fact_recall=0.95,
            misconception_rate=0.25,
            merge_retention_decay=0.18,
            verbosity=0.90,
            positional_bias=0.45,
            usd_per_mtok_in=5.0,
            usd_per_mtok_out=15.0,
        ),
        ModelProfile(
            name="gpt-4o-mini",
            context_tokens=24_000,
            fact_recall=0.82,
            misconception_rate=0.30,
            merge_retention_decay=0.30,
            verbosity=0.45,
            positional_bias=0.55,
            usd_per_mtok_in=0.15,
            usd_per_mtok_out=0.60,
        ),
        ModelProfile(
            name="o1-preview",
            context_tokens=4_000,  # the paper: too small for a full AMReX trace
            fact_recall=0.96,
            misconception_rate=0.12,
            merge_retention_decay=0.10,
            verbosity=0.70,
            positional_bias=0.30,
            usd_per_mtok_in=15.0,
            usd_per_mtok_out=60.0,
        ),
        ModelProfile(
            name="llama-3-70b",
            context_tokens=8_000,
            fact_recall=0.65,
            misconception_rate=0.38,
            merge_retention_decay=0.45,
            verbosity=0.40,
            positional_bias=0.75,
            usd_per_mtok_in=0.0,
            usd_per_mtok_out=0.0,
            open_source=True,
        ),
        ModelProfile(
            name="llama-3.1-70b",
            context_tokens=16_000,
            fact_recall=0.68,
            misconception_rate=0.32,
            merge_retention_decay=0.35,
            verbosity=0.45,
            positional_bias=0.65,
            usd_per_mtok_in=0.0,
            usd_per_mtok_out=0.0,
            open_source=True,
        ),
    )
}


def get_model(name: str) -> ModelProfile:
    """Fetch a profile; raises a helpful error listing known models."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
