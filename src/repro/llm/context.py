"""Context-window assembly with lost-in-the-middle truncation.

When a prompt exceeds the model's window, real LLM serving stacks truncate
and models additionally exhibit *lost in the middle*: content at the two
extremities dominates attention [Liu et al., 2023, cited by the paper].
We model both at once: an over-long prompt is reduced to its head and tail
(60% / 40% of the window), and everything in between is invisible to the
task handlers.  This is the mechanism that makes ION miss the MPI-IO
section "in the latter half of the Darshan trace" (paper §III) while
IOAgent's compact summaries always fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.models import ModelProfile
from repro.llm.tokenizer import approx_tokens, take_tokens_back, take_tokens_front

__all__ = ["FittedPrompt", "fit_prompt", "HEAD_FRACTION"]

# Share of the surviving window devoted to the head of the prompt; the
# remainder keeps the tail.  Head-heavy, as observed in practice.
HEAD_FRACTION = 0.6

# Tokens reserved for the model's own response.
RESPONSE_RESERVE = 512


@dataclass(frozen=True, slots=True)
class FittedPrompt:
    """The prompt as the model actually sees it."""

    visible_text: str
    original_tokens: int
    visible_tokens: int
    truncated: bool

    @property
    def loss_fraction(self) -> float:
        """Fraction of the original prompt the model never saw."""
        if self.original_tokens == 0:
            return 0.0
        return 1.0 - self.visible_tokens / self.original_tokens


def fit_prompt(text: str, model: ModelProfile) -> FittedPrompt:
    """Fit ``text`` into ``model``'s context window.

    Returns the surviving text (head + a marker + tail) and accounting.
    The marker line makes truncation visible in rendered transcripts and
    tests, like the "..." elision messages serving stacks emit.
    """
    total = approx_tokens(text)
    budget = model.context_tokens - RESPONSE_RESERVE
    if budget <= 0:
        raise ValueError(f"model {model.name} has no room for a prompt")
    if total <= budget:
        return FittedPrompt(
            visible_text=text, original_tokens=total, visible_tokens=total, truncated=False
        )
    head_budget = int(budget * HEAD_FRACTION)
    tail_budget = budget - head_budget
    head = take_tokens_front(text, head_budget)
    tail = take_tokens_back(text, tail_budget)
    visible = head + "\n[... context truncated: middle of input not visible ...]\n" + tail
    return FittedPrompt(
        visible_text=visible,
        original_tokens=total,
        visible_tokens=approx_tokens(visible),
        truncated=True,
    )
