"""The fact grammar: typed quantitative observations about a trace.

A :class:`Fact` is a typed, numeric statement extracted from Darshan
counters (by :mod:`repro.core.summaries`) or asserted in natural language.
Each fact kind has exactly one NL sentence template and one extraction
regex, defined side by side so the two can never drift apart: the describe
task renders facts into prose, and the diagnose task recovers facts *from
that prose* (or from whatever other text survives context truncation).

This is the mechanism that keeps the SimLLM honest: a fact that was
truncated away, or that a low-recall model fails to extract, is simply not
available to the diagnostic reasoning.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "Fact",
    "render_fact",
    "extract_facts",
    "example_fact",
    "FACT_KINDS",
    "FACT_EXAMPLES",
    "CONTEXT_ONLY_KINDS",
]


@dataclass(frozen=True, slots=True)
class Fact:
    """One typed observation.  ``data`` field names match the templates."""

    kind: str
    data: dict = field(default_factory=dict)

    def get(self, name: str, default: object = None) -> object:
        return self.data.get(name, default)


def _pct(x: float) -> str:
    return f"{100.0 * x:.1f}"


# ---------------------------------------------------------------------------
# Templates and extractors.  Each entry: kind -> (render_fn, regex, parse_fn,
# example payload).  Numbers are rendered in fixed formats (plain integers,
# one-decimal percentages, three-decimal seconds) so the regexes are exact
# inverses.  The example payload is part of the grammar contract: it must
# survive a render -> extract round-trip unchanged, which the static
# analyzer (`python -m repro.analysis`) verifies for every kind without
# running a simulation.
# ---------------------------------------------------------------------------

RenderFn = Callable[[dict], str]
ParseFn = Callable[["re.Match[str]"], dict]

_SPEC: dict[str, tuple[RenderFn, "re.Pattern[str]", ParseFn, dict]] = {}


def _register(kind: str, render: RenderFn, pattern: str, parse: ParseFn, *, example: dict) -> None:
    _SPEC[kind] = (render, re.compile(pattern), parse, example)


_register(
    "app_context",
    lambda d: (
        f"The application ran for {d['runtime_s']:.1f} seconds with "
        f"{d['nprocs']} processes and moved {d['total_bytes']} bytes in total."
    ),
    r"application ran for (?P<runtime>[0-9.]+) seconds with (?P<nprocs>\d+) "
    r"processes and moved (?P<total>\d+) bytes",
    lambda m: {
        "runtime_s": float(m["runtime"]),
        "nprocs": int(m["nprocs"]),
        "total_bytes": int(m["total"]),
    },
    example={"runtime_s": 12.5, "nprocs": 16, "total_bytes": 1048576},
)

_register(
    "mpi_presence",
    lambda d: (
        f"MPI-IO was {'used' if d['mpiio_used'] else 'not used'} by the "
        f"{d['nprocs']} processes (MPI-IO volume {d['mpiio_bytes']} bytes versus "
        f"{d['posix_bytes']} bytes through POSIX)."
    ),
    r"MPI-IO was (?P<used>used|not used) by the (?P<nprocs>\d+) processes "
    r"\(MPI-IO volume (?P<mb>\d+) bytes versus (?P<pb>\d+) bytes through POSIX\)",
    lambda m: {
        "mpiio_used": m["used"] == "used",
        "nprocs": int(m["nprocs"]),
        "mpiio_bytes": int(m["mb"]),
        "posix_bytes": int(m["pb"]),
    },
    example={"mpiio_used": True, "nprocs": 16, "mpiio_bytes": 1048576, "posix_bytes": 2048},
)

_register(
    "size_hist",
    lambda d: (
        f"In the {d['module']} module, the median {d['direction']} request size is "
        f"{d['p50_bytes']} bytes across {d['n_requests']} {d['direction']} requests, "
        f"with {_pct(d['small_fraction'])}% of them below 128 KiB."
    ),
    r"In the (?P<module>POSIX|MPIIO|STDIO) module, the median "
    r"(?P<direction>read|write) request size is (?P<p50>\d+) bytes across "
    r"(?P<n>\d+) (?:read|write) requests, with (?P<small>[0-9.]+)% of them below 128 KiB",
    lambda m: {
        "module": m["module"],
        "direction": m["direction"],
        "p50_bytes": int(m["p50"]),
        "n_requests": int(m["n"]),
        "small_fraction": float(m["small"]) / 100.0,
    },
    example={
        "module": "POSIX",
        "direction": "read",
        "p50_bytes": 4096,
        "n_requests": 1200,
        "small_fraction": 0.75,
    },
)

_register(
    "volume",
    lambda d: (
        f"The {d['module']} module read {d['bytes_read']} bytes and wrote "
        f"{d['bytes_written']} bytes."
    ),
    r"The (?P<module>POSIX|MPIIO|STDIO) module read (?P<br>\d+) bytes and wrote "
    r"(?P<bw>\d+) bytes",
    lambda m: {
        "module": m["module"],
        "bytes_read": int(m["br"]),
        "bytes_written": int(m["bw"]),
    },
    example={"module": "POSIX", "bytes_read": 1048576, "bytes_written": 2097152},
)

_register(
    "counts",
    lambda d: (
        f"The {d['module']} module performed {d['reads']} read operations and "
        f"{d['writes']} write operations over {d['n_files']} files."
    ),
    r"The (?P<module>POSIX|MPIIO|STDIO) module performed (?P<r>\d+) read "
    r"operations and (?P<w>\d+) write operations over (?P<f>\d+) files",
    lambda m: {
        "module": m["module"],
        "reads": int(m["r"]),
        "writes": int(m["w"]),
        "n_files": int(m["f"]),
    },
    example={"module": "POSIX", "reads": 1200, "writes": 300, "n_files": 4},
)

_register(
    "mpi_ops",
    lambda d: (
        f"The MPIIO module records {d['indep_reads']} independent reads, "
        f"{d['indep_writes']} independent writes, {d['coll_reads']} collective reads, "
        f"and {d['coll_writes']} collective writes."
    ),
    r"MPIIO module records (?P<ir>\d+) independent reads, (?P<iw>\d+) independent "
    r"writes, (?P<cr>\d+) collective reads, and (?P<cw>\d+) collective writes",
    lambda m: {
        "indep_reads": int(m["ir"]),
        "indep_writes": int(m["iw"]),
        "coll_reads": int(m["cr"]),
        "coll_writes": int(m["cw"]),
    },
    example={"indep_reads": 64, "indep_writes": 32, "coll_reads": 0, "coll_writes": 16},
)

_register(
    "meta",
    lambda d: (
        f"The {d['module']} module spent {d['meta_time_s']:.3f} seconds in "
        f"{d['meta_ops']} metadata operations against {d['data_time_s']:.3f} seconds "
        f"of data transfer time ({_pct(d['meta_fraction'])}% metadata share)."
    ),
    r"The (?P<module>POSIX|MPIIO|STDIO) module spent (?P<mt>[0-9.]+) seconds in "
    r"(?P<ops>\d+) metadata operations against (?P<dt>[0-9.]+) seconds of data "
    r"transfer time \((?P<frac>[0-9.]+)% metadata share\)",
    lambda m: {
        "module": m["module"],
        "meta_time_s": float(m["mt"]),
        "meta_ops": int(m["ops"]),
        "data_time_s": float(m["dt"]),
        "meta_fraction": float(m["frac"]) / 100.0,
    },
    example={
        "module": "POSIX",
        "meta_time_s": 1.25,
        "meta_ops": 4000,
        "data_time_s": 0.75,
        "meta_fraction": 0.625,
    },
)

_register(
    "alignment",
    lambda d: (
        f"Approximately {_pct(d['unaligned_fraction'])}% of {d['module']} "
        f"{d['direction']} requests are not aligned with the file system block size "
        f"of {d['alignment']} bytes; the most common {d['direction']} request size is "
        f"{d['common_size']} bytes."
    ),
    r"Approximately (?P<frac>[0-9.]+)% of (?P<module>POSIX|MPIIO) "
    r"(?P<direction>read|write) requests are not aligned with the file system block "
    r"size of (?P<align>\d+) bytes; the most common (?:read|write) request size is "
    r"(?P<common>\d+) bytes",
    lambda m: {
        "module": m["module"],
        "direction": m["direction"],
        "unaligned_fraction": float(m["frac"]) / 100.0,
        "alignment": int(m["align"]),
        "common_size": int(m["common"]),
    },
    example={
        "module": "POSIX",
        "direction": "write",
        "unaligned_fraction": 0.75,
        "alignment": 1048576,
        "common_size": 5000,
    },
)

_register(
    "order",
    lambda d: (
        f"About {_pct(d['seq_fraction'])}% of {d['module']} {d['direction']} requests "
        f"are sequential and {_pct(d['consec_fraction'])}% are consecutive."
    ),
    r"About (?P<seq>[0-9.]+)% of (?P<module>POSIX|MPIIO) (?P<direction>read|write) "
    r"requests are sequential and (?P<consec>[0-9.]+)% are consecutive",
    lambda m: {
        "module": m["module"],
        "direction": m["direction"],
        "seq_fraction": float(m["seq"]) / 100.0,
        "consec_fraction": float(m["consec"]) / 100.0,
    },
    example={
        "module": "POSIX",
        "direction": "read",
        "seq_fraction": 0.25,
        "consec_fraction": 0.125,
    },
)

_register(
    "shared",
    lambda d: (
        f"{d['n_shared_files']} file(s) were accessed concurrently by multiple ranks, "
        f"accounting for {d['shared_bytes']} of {d['total_bytes']} total bytes; the "
        f"largest is {d['example_path']}."
    ),
    r"(?P<n>\d+) file\(s\) were accessed concurrently by multiple ranks, accounting "
    r"for (?P<sb>\d+) of (?P<tb>\d+) total bytes; the largest is (?P<path>\S+)\.",
    lambda m: {
        "n_shared_files": int(m["n"]),
        "shared_bytes": int(m["sb"]),
        "total_bytes": int(m["tb"]),
        "example_path": m["path"],
    },
    example={
        "n_shared_files": 2,
        "shared_bytes": 33554432,
        "total_bytes": 67108864,
        "example_path": "/scratch/app/shared.dat",
    },
)

_register(
    "rank_balance",
    lambda d: (
        f"Per-rank {d['module']} I/O volume has a Gini coefficient of "
        f"{d['gini']:.3f} and a normalized cross-rank variance of {d['norm_variance']:.3f} "
        f"over {d['nprocs']} ranks."
    ),
    r"Per-rank (?P<module>POSIX|MPIIO) I/O volume has a Gini coefficient of "
    r"(?P<gini>[0-9.]+) and a normalized cross-rank variance of (?P<nv>[0-9.]+) over "
    r"(?P<np>\d+) ranks",
    lambda m: {
        "module": m["module"],
        "gini": float(m["gini"]),
        "norm_variance": float(m["nv"]),
        "nprocs": int(m["np"]),
    },
    example={"module": "MPIIO", "gini": 0.625, "norm_variance": 2.5, "nprocs": 16},
)

_register(
    "repetition",
    lambda d: (
        f"The file {d['path']} shows a re-read ratio of {d['ratio']:.1f}: "
        f"{d['bytes_read']} bytes were read from an extent of only {d['extent']} bytes."
    ),
    r"The file (?P<path>\S+) shows a re-read ratio of (?P<ratio>[0-9.]+): "
    r"(?P<br>\d+) bytes were read from an extent of only (?P<ext>\d+) bytes",
    lambda m: {
        "path": m["path"],
        "ratio": float(m["ratio"]),
        "bytes_read": int(m["br"]),
        "extent": int(m["ext"]),
    },
    example={
        "path": "/scratch/app/mesh.dat",
        "ratio": 4.5,
        "bytes_read": 4194304,
        "extent": 1048576,
    },
)

_register(
    "stdio_share",
    lambda d: (
        f"STDIO accounts for {_pct(d['share'])}% of all bytes {d['direction']} "
        f"({d['stdio_bytes']} of {d['total_bytes']} bytes)."
    ),
    r"STDIO accounts for (?P<share>[0-9.]+)% of all bytes "
    r"(?P<direction>read|written) \((?P<sb>\d+) of (?P<tb>\d+) bytes\)",
    lambda m: {
        "direction": m["direction"],
        "share": float(m["share"]) / 100.0,
        "stdio_bytes": int(m["sb"]),
        "total_bytes": int(m["tb"]),
    },
    example={
        "direction": "written",
        "share": 0.5,
        "stdio_bytes": 1048576,
        "total_bytes": 2097152,
    },
)

_register(
    "stripe",
    lambda d: (
        f"{d['n_files']} file(s) on {d['mount']} use a stripe width of "
        f"{d['stripe_width']} with a stripe size of {d['stripe_size']} bytes."
    ),
    r"(?P<n>\d+) file\(s\) on (?P<mount>\S+) use a stripe width of (?P<w>\d+) with "
    r"a stripe size of (?P<s>\d+) bytes",
    lambda m: {
        "n_files": int(m["n"]),
        "mount": m["mount"],
        "stripe_width": int(m["w"]),
        "stripe_size": int(m["s"]),
    },
    example={"n_files": 3, "mount": "/scratch", "stripe_width": 1, "stripe_size": 1048576},
)

_register(
    "server_usage",
    lambda d: (
        f"I/O traffic touches an effective {d['eff_osts']:.1f} of {d['num_osts']} "
        f"available OSTs ({_pct(d['utilization'])}% utilization); the busiest OST "
        f"serves {_pct(d['top_share'])}% of {d['total_bytes']} bytes."
    ),
    r"I/O traffic touches an effective (?P<eff>[0-9.]+) of (?P<n>\d+) available "
    r"OSTs \((?P<util>[0-9.]+)% utilization\); the busiest OST serves "
    r"(?P<top>[0-9.]+)% of (?P<tb>\d+) bytes",
    lambda m: {
        "eff_osts": float(m["eff"]),
        "num_osts": int(m["n"]),
        "utilization": float(m["util"]) / 100.0,
        "top_share": float(m["top"]) / 100.0,
        "total_bytes": int(m["tb"]),
    },
    example={
        "eff_osts": 2.0,
        "num_osts": 16,
        "utilization": 0.125,
        "top_share": 0.5,
        "total_bytes": 67108864,
    },
)

_register(
    "mount",
    lambda d: f"The application's files reside on the {d['fs_type']} file system mounted at {d['mount']}.",
    r"files reside on the (?P<fs>\w+) file system mounted at (?P<mount>\S+)\.",
    lambda m: {"fs_type": m["fs"], "mount": m["mount"]},
    example={"fs_type": "lustre", "mount": "/scratch"},
)

_register(
    "dxt_timeline",
    lambda d: (
        f"Extended tracing recorded {d['n_segments']} I/O segments over "
        f"{d['span_s']:.3f} seconds in a {d['phase']} phase structure, with "
        f"{d['n_bursts']} traffic burst(s) peaking at {d['peak_to_mean']:.1f}x "
        f"the mean slice traffic."
    ),
    r"Extended tracing recorded (?P<n>\d+) I/O segments over (?P<span>[0-9.]+) "
    r"seconds in a (?P<phase>[a-z\-]+) phase structure, with (?P<bursts>\d+) "
    r"traffic burst\(s\) peaking at (?P<peak>[0-9.]+)x",
    lambda m: {
        "n_segments": int(m["n"]),
        "span_s": float(m["span"]),
        "phase": m["phase"],
        "n_bursts": int(m["bursts"]),
        "peak_to_mean": float(m["peak"]),
    },
    example={
        "n_segments": 4096,
        "span_s": 2.5,
        "phase": "burst-gap",
        "n_bursts": 3,
        "peak_to_mean": 4.5,
    },
)

_register(
    "dxt_rank_skew",
    lambda d: (
        f"Extended tracing shows rank {d['slowest_rank']} occupies an I/O window "
        f"{d['span_skew']:.1f}x the median rank's and spends {d['time_skew']:.1f}x "
        f"the median I/O time while moving {d['bytes_ratio']:.2f}x the median "
        f"per-rank volume across {d['nprocs']} ranks."
    ),
    r"Extended tracing shows rank (?P<rank>\d+) occupies an I/O window "
    r"(?P<span>[0-9.]+)x the median rank's and spends (?P<time>[0-9.]+)x the "
    r"median I/O time while moving (?P<bytes>[0-9.]+)x the median per-rank "
    r"volume across (?P<np>\d+) ranks",
    lambda m: {
        "slowest_rank": int(m["rank"]),
        "span_skew": float(m["span"]),
        "time_skew": float(m["time"]),
        "bytes_ratio": float(m["bytes"]),
        "nprocs": int(m["np"]),
    },
    example={
        "slowest_rank": 3,
        "span_skew": 3.5,
        "time_skew": 4.5,
        "bytes_ratio": 1.25,
        "nprocs": 16,
    },
)

_register(
    "dxt_concurrency",
    lambda d: (
        f"Extended tracing shows a mean of {d['mean_inflight']:.2f} I/O operations "
        f"in flight (peak {d['peak_inflight']}) across {d['active_ranks']} ranks "
        f"performing I/O."
    ),
    r"Extended tracing shows a mean of (?P<mean>[0-9.]+) I/O operations in flight "
    r"\(peak (?P<peak>\d+)\) across (?P<ranks>\d+) ranks performing I/O",
    lambda m: {
        "mean_inflight": float(m["mean"]),
        "peak_inflight": int(m["peak"]),
        "active_ranks": int(m["ranks"]),
    },
    example={"mean_inflight": 1.25, "peak_inflight": 2, "active_ranks": 8},
)

_register(
    "dxt_idle",
    lambda d: (
        f"Extended tracing shows the I/O stream pausing {d['n_gaps']} time(s) for "
        f"{_pct(d['idle_fraction'])}% of its {d['span_s']:.3f}-second span, with the "
        f"longest pause lasting {d['longest_gap_s']:.3f} seconds and "
        f"{d['stalled_ranks']} rank(s) stalled while their peers kept doing I/O."
    ),
    r"Extended tracing shows the I/O stream pausing (?P<gaps>\d+) time\(s\) for "
    r"(?P<idle>[0-9.]+)% of its (?P<span>[0-9.]+)-second span, with the longest "
    r"pause lasting (?P<longest>[0-9.]+) seconds and (?P<stalled>\d+) rank\(s\) "
    r"stalled while their peers kept doing I/O",
    lambda m: {
        "n_gaps": int(m["gaps"]),
        "idle_fraction": float(m["idle"]) / 100.0,
        "span_s": float(m["span"]),
        "longest_gap_s": float(m["longest"]),
        "stalled_ranks": int(m["stalled"]),
    },
    example={
        "n_gaps": 7,
        "idle_fraction": 0.375,
        "span_s": 2.5,
        "longest_gap_s": 0.125,
        "stalled_ranks": 2,
    },
)

_register(
    "dxt_file_skew",
    lambda d: (
        f"Extended tracing shows {d['slow_path']} sustaining {d['slow_mbps']:.1f} MiB/s "
        f"against a median of {d['median_mbps']:.1f} MiB/s over {d['n_files']} "
        f"comparably-accessed files ({d['ratio']:.1f}x slower than its peers)."
    ),
    r"Extended tracing shows (?P<path>\S+) sustaining (?P<slow>[0-9.]+) MiB/s "
    r"against a median of (?P<median>[0-9.]+) MiB/s over (?P<n>\d+) "
    r"comparably-accessed files \((?P<ratio>[0-9.]+)x slower than its peers\)",
    lambda m: {
        "slow_path": m["path"],
        "slow_mbps": float(m["slow"]),
        "median_mbps": float(m["median"]),
        "n_files": int(m["n"]),
        "ratio": float(m["ratio"]),
    },
    example={
        "slow_path": "/scratch/app/block07.dat",
        "slow_mbps": 12.5,
        "median_mbps": 50.0,
        "n_files": 8,
        "ratio": 4.0,
    },
)

_register(
    "dxt_ost_skew",
    lambda d: (
        f"Extended tracing attributes {_pct(d['time_share'])}% of server service time "
        f"to OST {d['hot_ost']} against {_pct(d['bytes_share'])}% of the bytes "
        f"({d['skew']:.1f}x its byte share) across {d['n_osts']} active OSTs."
    ),
    r"Extended tracing attributes (?P<ts>[0-9.]+)% of server service time to "
    r"OST (?P<ost>\d+) against (?P<bs>[0-9.]+)% of the bytes \((?P<skew>[0-9.]+)x "
    r"its byte share\) across (?P<n>\d+) active OSTs",
    lambda m: {
        "time_share": float(m["ts"]) / 100.0,
        "hot_ost": int(m["ost"]),
        "bytes_share": float(m["bs"]) / 100.0,
        "skew": float(m["skew"]),
        "n_osts": int(m["n"]),
    },
    example={
        "time_share": 0.5,
        "hot_ost": 3,
        "bytes_share": 0.125,
        "skew": 4.0,
        "n_osts": 8,
    },
)

_register(
    "dxt_ost_latency",
    lambda d: (
        f"Extended tracing shows OST(s) {', '.join(str(o) for o in d['slow_osts'])} "
        f"sustaining {d['slow_mbps']:.1f} MiB/s against a median OST rate of "
        f"{d['median_mbps']:.1f} MiB/s over {d['n_osts']} active OSTs "
        f"({d['ratio']:.1f}x slower than their peers)."
    ),
    r"Extended tracing shows OST\(s\) (?P<ids>\d+(?:, \d+)*) sustaining "
    r"(?P<slow>[0-9.]+) MiB/s against a median OST rate of (?P<median>[0-9.]+) "
    r"MiB/s over (?P<n>\d+) active OSTs \((?P<ratio>[0-9.]+)x slower than their peers\)",
    lambda m: {
        "slow_osts": [int(o) for o in m["ids"].split(", ")],
        "slow_mbps": float(m["slow"]),
        "median_mbps": float(m["median"]),
        "n_osts": int(m["n"]),
        "ratio": float(m["ratio"]),
    },
    example={
        "slow_osts": [3, 7],
        "slow_mbps": 12.5,
        "median_mbps": 50.0,
        "n_osts": 8,
        "ratio": 4.0,
    },
)

_register(
    "trend_regression",
    lambda d: (
        f"Longitudinal monitoring of {d['n_runs']} runs shows the I/O profile "
        f"departing from its {d['baseline_runs']}-run baseline at run "
        f"{d['run_index']}: drift score {d['drift']:.3f} against a threshold of "
        f"{d['threshold']:.3f}, dominated by the {d['top_feature']} feature."
    ),
    r"Longitudinal monitoring of (?P<n>\d+) runs shows the I/O profile "
    r"departing from its (?P<k>\d+)-run baseline at run (?P<r>\d+): drift "
    r"score (?P<drift>[0-9.]+) against a threshold of (?P<thr>[0-9.]+), "
    r"dominated by the (?P<feat>[a-z0-9_.]+) feature",
    lambda m: {
        "n_runs": int(m["n"]),
        "baseline_runs": int(m["k"]),
        "run_index": int(m["r"]),
        "drift": float(m["drift"]),
        "threshold": float(m["thr"]),
        "top_feature": m["feat"],
    },
    example={
        "n_runs": 8,
        "baseline_runs": 3,
        "run_index": 5,
        "drift": 4.5,
        "threshold": 1.0,
        "top_feature": "dxt.idle_fraction",
    },
)

FACT_KINDS: tuple[str, ...] = tuple(_SPEC)

FACT_EXAMPLES: dict[str, dict] = {kind: spec[3] for kind, spec in _SPEC.items()}

# Kinds that set the scene for the LLM (and for the judge's relevance
# scoring) but deliberately ground no expert rule: they carry context, not
# evidence.  The static analyzer enforces that this set plus the kinds
# consumed by :mod:`repro.llm.reasoning` exactly partitions ``FACT_KINDS``,
# so a new kind must either gain a rule or be declared here on purpose.
CONTEXT_ONLY_KINDS: frozenset[str] = frozenset(
    {"counts", "volume", "mount", "stripe", "dxt_timeline"}
)


def render_fact(fact: Fact) -> str:
    """Render a fact to its canonical NL sentence."""
    try:
        render, _, _, _ = _SPEC[fact.kind]
    except KeyError:
        raise ValueError(f"unknown fact kind {fact.kind!r}") from None
    return render(fact.data)


def example_fact(kind: str) -> Fact:
    """The grammar's canonical example fact for ``kind``."""
    try:
        example = _SPEC[kind][3]
    except KeyError:
        raise ValueError(f"unknown fact kind {kind!r}") from None
    return Fact(kind=kind, data=dict(example))


def extract_facts(text: str) -> list[Fact]:
    """Recover every recognizable fact from ``text``.

    Order of appearance in the text is preserved so recall sampling is
    deterministic given the text.
    """
    hits: list[tuple[int, Fact]] = []
    for kind, (_, pattern, parse, _) in _SPEC.items():
        for m in pattern.finditer(text):
            hits.append((m.start(), Fact(kind=kind, data=parse(m))))
    hits.sort(key=lambda pair: pair[0])
    return [fact for _, fact in hits]
