"""The SimLLM engine: context fitting + task dispatch.

A prompt declares its task with a leading ``TASK: <name>`` line (our
prompt templates all do; a real LLM infers the task from instructions, the
marker is simply the deterministic stand-in).  The engine fits the prompt
to the model's context window — applying lost-in-the-middle truncation —
and dispatches the *visible* text to the task handler.  Handlers never see
anything the window dropped.
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from repro.llm.context import fit_prompt
from repro.llm.models import ModelProfile
from repro.util.rng import derive_seed

__all__ = ["SimLLMEngine", "register_task"]

_TASK_RE = re.compile(r"^TASK:\s*([a-z_]+)\s*$", re.MULTILINE)

Handler = Callable[[str, ModelProfile, np.random.Generator], str]

_TASKS: dict[str, Handler] = {}


def register_task(name: str) -> Callable[[Handler], Handler]:
    """Decorator registering a task handler under ``name``."""

    def deco(fn: Handler) -> Handler:
        if name in _TASKS:
            raise ValueError(f"task {name!r} already registered")
        _TASKS[name] = fn
        return fn

    return deco


def _ensure_handlers_loaded() -> None:
    # Handlers live in repro.llm.tasks.*; importing the package registers
    # them.  Deferred to first use to avoid import cycles.
    if not _TASKS:
        import repro.llm.tasks  # noqa: F401


class SimLLMEngine:
    """Deterministic engine: same (prompt, model, call_id, seed) → same text."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def run(self, prompt: str, model: ModelProfile, call_id: str) -> tuple[str, bool, int]:
        """Returns (response_text, prompt_was_truncated, visible_tokens)."""
        _ensure_handlers_loaded()
        fitted = fit_prompt(prompt, model)
        visible = fitted.visible_text
        m = _TASK_RE.search(visible[:2000])
        task = m.group(1) if m else "plain"
        handler = _TASKS.get(task)
        if handler is None:
            raise ValueError(f"no handler for task {task!r}")
        rng = np.random.default_rng(derive_seed(self.seed, model.name, call_id, task))
        response = handler(visible, model, rng)
        return response, fitted.truncated, fitted.visible_tokens
