"""Command-line interface: ``python -m repro <command>``.

Commands:

* one subcommand per registered diagnosis tool (``repro --list-tools``
  shows them), all driven by the :mod:`repro.core.registry` — e.g.
  ``diagnose <trace.darshan.txt>`` (alias ``ioagent``) runs IOAgent,
  ``drishti`` the heuristic baseline, ``ion`` the plain-prompt baseline;
* ``tracebench export <dir>`` — write the 40-trace suite + labels to disk;
* ``tracebench table3`` — print the Table III composition;
* ``evaluate [--traces id,id,...]`` — run the Table IV harness and print it;
* ``chat <trace.darshan.txt>`` — diagnose, then answer questions from stdin.

A tool registered via :func:`repro.core.registry.register_tool` before
``build_parser()`` runs gets its CLI subcommand for free.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__
    from repro.core.registry import available_tools

    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOAgent reproduction: HPC I/O diagnosis from Darshan traces.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--list-tools",
        action="store_true",
        help="list the registered diagnosis tools and exit",
    )
    sub = parser.add_subparsers(dest="command", required=False)

    def add_trace_cmd(name: str, help_text: str, aliases: tuple[str, ...] = ()) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text, aliases=list(aliases))
        p.add_argument("trace", help="path to darshan-parser text output")
        p.add_argument("--seed", type=int, default=0)
        return p

    # One subcommand per registered tool.  IOAgent keeps its historical
    # name `diagnose` (with `ioagent` as alias) and its design switches.
    # Names that would collide with the fixed subcommands are skipped (the
    # tool stays reachable through the API) rather than crashing argparse.
    reserved = {"diagnose", "chat", "tracebench", "evaluate"}
    for tool_name in available_tools():
        if tool_name in reserved:
            continue
        if tool_name == "ioagent":
            p = add_trace_cmd(
                "diagnose", "diagnose a trace with IOAgent", aliases=("ioagent",)
            )
            p.add_argument("--no-rag", action="store_true", help="disable knowledge retrieval")
            p.add_argument("--merge", choices=("tree", "one-step"), default="tree")
        else:
            p = add_trace_cmd(tool_name, f"run the {tool_name} diagnosis tool")
        p.add_argument("--model", default="gpt-4o", help="LLM backbone (ignored by heuristic tools)")
        p.add_argument(
            "--max-workers",
            type=int,
            default=None,
            help="thread-pool width for per-fragment parallelism",
        )
        p.set_defaults(func=_cmd_tool, tool_name=tool_name)

    p = add_trace_cmd("chat", "diagnose, then answer questions interactively")
    p.add_argument("--model", default="gpt-4o")
    p.add_argument("--max-workers", type=int, default=None)
    p.set_defaults(func=_cmd_chat)

    tb = sub.add_parser("tracebench", help="TraceBench suite operations")
    tb.set_defaults(func=_cmd_tracebench)
    tb_sub = tb.add_subparsers(dest="tb_command", required=True)
    export = tb_sub.add_parser("export", help="write all traces + labels to a directory")
    export.add_argument("directory")
    export.add_argument("--seed", type=int, default=0)
    tb_sub.add_parser("table3", help="print the Table III composition")

    ev = sub.add_parser("evaluate", help="run the Table IV evaluation harness")
    ev.add_argument("--traces", default="", help="comma-separated trace ids (default: all 40)")
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="thread-pool width for the LLM tools under evaluation",
    )
    ev.set_defaults(func=_cmd_evaluate)
    return parser


def _load_log(path: str):
    from repro.darshan.parser import parse_darshan_text

    with open(path, "r", encoding="utf-8") as fh:
        return parse_darshan_text(fh.read())


def _cmd_tool(args) -> int:
    from repro.core.registry import get_tool

    kwargs: dict = {"seed": args.seed, "model": args.model}
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    if args.tool_name == "ioagent":
        kwargs["use_rag"] = not args.no_rag
        kwargs["merge_strategy"] = args.merge
    tool = get_tool(args.tool_name, **kwargs)
    report = tool.diagnose(_load_log(args.trace), trace_id=args.trace)
    print(report.render())
    return 0


def _cmd_chat(args) -> int:
    from repro.core.agent import IOAgent, IOAgentConfig
    from repro.core.session import InteractiveSession

    log = _load_log(args.trace)
    config = IOAgentConfig(model=args.model, seed=args.seed, max_workers=args.max_workers)
    agent = IOAgent(config)
    report = agent.diagnose(log, trace_id=args.trace)
    print(report.render())
    session = InteractiveSession(report=report, client=agent.client, model=args.model)
    print("\nAsk follow-up questions (empty line to exit).")
    for line in sys.stdin:
        question = line.strip()
        if not question:
            break
        print(session.ask(question))
        print()
    return 0


def _cmd_tracebench(args) -> int:
    if args.tb_command == "table3":
        from repro.evaluation.tables import render_table3

        print(render_table3())
        return 0
    # export
    import os

    from repro.tracebench import build_tracebench

    os.makedirs(args.directory, exist_ok=True)
    suite = build_tracebench(args.seed)
    manifest = ["trace_id\tsource\tnprocs\tlabels"]
    for trace in suite:
        path = os.path.join(args.directory, f"{trace.trace_id}.darshan.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(trace.text)
        manifest.append(
            f"{trace.trace_id}\t{trace.source}\t{trace.log.header.nprocs}\t"
            + ",".join(sorted(trace.labels))
        )
    with open(os.path.join(args.directory, "labels.tsv"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(manifest) + "\n")
    print(f"wrote {len(suite)} traces to {args.directory}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.evaluation.harness import default_tools, evaluate_tools
    from repro.evaluation.tables import render_table4
    from repro.tracebench import build_tracebench
    from repro.tracebench.dataset import TraceBench

    suite = build_tracebench(args.seed)
    if args.traces:
        wanted = [t.strip() for t in args.traces.split(",") if t.strip()]
        known = {t.trace_id for t in suite}
        unknown = [t for t in wanted if t not in known]
        if unknown:
            print(f"error: unknown trace id(s): {', '.join(unknown)}", file=sys.stderr)
            print("available trace ids:", file=sys.stderr)
            for tid in sorted(known):
                print(f"  {tid}", file=sys.stderr)
            return 2
        suite = TraceBench(traces=[suite.get(t) for t in wanted], seed=args.seed)
    tools = default_tools(seed=args.seed, max_workers=args.max_workers)
    result = evaluate_tools(
        suite, tools=tools, progress=lambda msg: print(f"  {msg}", file=sys.stderr)
    )
    print(render_table4(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_tools:
        from repro.core.registry import available_tools

        for name in available_tools():
            print(name)
        return 0
    if args.command is None:
        parser.error("a command is required (or --list-tools / --version)")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
