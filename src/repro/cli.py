"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``diagnose <trace.darshan.txt>`` — run IOAgent on a darshan-parser text
  file and print the report (optionally ``--model``, ``--no-rag``);
* ``drishti <trace.darshan.txt>`` — run the Drishti baseline;
* ``ion <trace.darshan.txt>`` — run the plain-prompt ION baseline;
* ``tracebench export <dir>`` — write the 40-trace suite + labels to disk;
* ``tracebench table3`` — print the Table III composition;
* ``evaluate [--traces id,id,...]`` — run the Table IV harness and print it;
* ``chat <trace.darshan.txt>`` — diagnose, then answer questions from stdin.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOAgent reproduction: HPC I/O diagnosis from Darshan traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_cmd(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("trace", help="path to darshan-parser text output")
        p.add_argument("--seed", type=int, default=0)
        return p

    p = add_trace_cmd("diagnose", "diagnose a trace with IOAgent")
    p.add_argument("--model", default="gpt-4o")
    p.add_argument("--no-rag", action="store_true", help="disable knowledge retrieval")
    p.add_argument("--merge", choices=("tree", "one-step"), default="tree")

    add_trace_cmd("drishti", "run the Drishti heuristic baseline")

    p = add_trace_cmd("ion", "run the plain-prompt ION baseline")
    p.add_argument("--model", default="gpt-4o")

    p = add_trace_cmd("chat", "diagnose, then answer questions interactively")
    p.add_argument("--model", default="gpt-4o")

    tb = sub.add_parser("tracebench", help="TraceBench suite operations")
    tb_sub = tb.add_subparsers(dest="tb_command", required=True)
    export = tb_sub.add_parser("export", help="write all traces + labels to a directory")
    export.add_argument("directory")
    export.add_argument("--seed", type=int, default=0)
    tb_sub.add_parser("table3", help="print the Table III composition")

    ev = sub.add_parser("evaluate", help="run the Table IV evaluation harness")
    ev.add_argument("--traces", default="", help="comma-separated trace ids (default: all 40)")
    ev.add_argument("--seed", type=int, default=0)
    return parser


def _load_log(path: str):
    from repro.darshan.parser import parse_darshan_text

    with open(path, "r", encoding="utf-8") as fh:
        return parse_darshan_text(fh.read())


def _cmd_diagnose(args) -> int:
    from repro.core.agent import IOAgent, IOAgentConfig

    log = _load_log(args.trace)
    agent = IOAgent(
        IOAgentConfig(
            model=args.model,
            use_rag=not args.no_rag,
            merge_strategy=args.merge,
            seed=args.seed,
        )
    )
    report = agent.diagnose(log, trace_id=args.trace)
    print(report.render())
    return 0


def _cmd_drishti(args) -> int:
    from repro.baselines.drishti import DrishtiTool

    print(DrishtiTool().diagnose_log(_load_log(args.trace)))
    return 0


def _cmd_ion(args) -> int:
    from repro.baselines.ion import IONTool

    print(IONTool(model=args.model, seed=args.seed).diagnose_log(_load_log(args.trace)))
    return 0


def _cmd_chat(args) -> int:
    from repro.core.agent import IOAgent, IOAgentConfig
    from repro.core.session import InteractiveSession

    log = _load_log(args.trace)
    agent = IOAgent(IOAgentConfig(model=args.model, seed=args.seed))
    report = agent.diagnose(log, trace_id=args.trace)
    print(report.render())
    session = InteractiveSession(report=report, client=agent.client, model=args.model)
    print("\nAsk follow-up questions (empty line to exit).")
    for line in sys.stdin:
        question = line.strip()
        if not question:
            break
        print(session.ask(question))
        print()
    return 0


def _cmd_tracebench(args) -> int:
    if args.tb_command == "table3":
        from repro.evaluation.tables import render_table3

        print(render_table3())
        return 0
    # export
    import os

    from repro.tracebench import build_tracebench

    os.makedirs(args.directory, exist_ok=True)
    suite = build_tracebench(args.seed)
    manifest = ["trace_id\tsource\tnprocs\tlabels"]
    for trace in suite:
        path = os.path.join(args.directory, f"{trace.trace_id}.darshan.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(trace.text)
        manifest.append(
            f"{trace.trace_id}\t{trace.source}\t{trace.log.header.nprocs}\t"
            + ",".join(sorted(trace.labels))
        )
    with open(os.path.join(args.directory, "labels.tsv"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(manifest) + "\n")
    print(f"wrote {len(suite)} traces to {args.directory}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.evaluation.harness import evaluate_tools
    from repro.evaluation.tables import render_table4
    from repro.tracebench import build_tracebench
    from repro.tracebench.dataset import TraceBench

    suite = build_tracebench(args.seed)
    if args.traces:
        wanted = [t.strip() for t in args.traces.split(",") if t.strip()]
        suite = TraceBench(traces=[suite.get(t) for t in wanted], seed=args.seed)
    result = evaluate_tools(suite, progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    print(render_table4(result))
    return 0


_COMMANDS = {
    "diagnose": _cmd_diagnose,
    "drishti": _cmd_drishti,
    "ion": _cmd_ion,
    "chat": _cmd_chat,
    "tracebench": _cmd_tracebench,
    "evaluate": _cmd_evaluate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
