"""Command-line interface: ``python -m repro <command>``.

Commands:

* one subcommand per registered diagnosis tool (``repro --list-tools``
  shows them), all driven by the :mod:`repro.core.registry` — e.g.
  ``diagnose <trace.darshan.txt>`` (alias ``ioagent``) runs IOAgent,
  ``drishti`` the heuristic baseline, ``ion`` the plain-prompt baseline;
* ``list-scenarios [--tag TAG]`` (or the ``--list-scenarios`` flag) —
  enumerate the scenario registry;
* ``tracebench export <dir>`` — write the 40-trace suite + labels to disk;
* ``tracebench table3`` — print the Table III composition;
* ``evaluate [--traces id,...] [--scenarios name-or-tag,...]`` — run the
  Table IV harness over registry-selected scenarios and print it;
* ``series <run1> <run2> ...`` (or ``series --scenario NAME``) — monitor a
  run series for longitudinal regression against its early-run baseline;
* ``serve [traces...] [--scenarios SEL] [--repeat N]`` — drive the
  streaming serving layer: feed trace files and/or scenario builds through
  the bounded work queue (repeating each request ``--repeat`` times to
  exercise coalescing) and print the deterministic metrics report with
  per-stage latency and queue-depth histograms;
* ``fuzz generate|sweep|ramp`` — the generative scenario fuzzer: sample
  seeded pathology compositions, score the expert rules over a generated
  sweep (per-pathology confusion matrix), or binary-search each rule's
  masking threshold;
* ``chaos [--plans a,b] [--digest] [--out FILE]`` — run the seeded
  fault-injection sweep: every pinned fault plan over the chaos scenario
  set, printing per-run outcome (degraded channels, retries, breaker
  trips) and the byte-reproducible report digest;
* ``chat <trace.darshan.txt>`` — diagnose, then answer questions from stdin.

A tool registered via :func:`repro.core.registry.register_tool` before
``build_parser()`` runs gets its CLI subcommand for free, and a scenario
registered via :func:`repro.workloads.scenarios.register_scenario` is
selectable by ``evaluate --scenarios`` with no CLI changes.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.darshan.log import DarshanLog
    from repro.tracebench.dataset import TraceBench

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__
    from repro.core.registry import available_tools

    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOAgent reproduction: HPC I/O diagnosis from Darshan traces.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--list-tools",
        action="store_true",
        help="list the registered diagnosis tools and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered workload scenarios and exit",
    )
    sub = parser.add_subparsers(dest="command", required=False)

    def add_trace_cmd(name: str, help_text: str, aliases: tuple[str, ...] = ()) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text, aliases=list(aliases))
        p.add_argument("trace", help="path to darshan-parser text output")
        p.add_argument("--seed", type=int, default=0)
        return p

    # One subcommand per registered tool.  IOAgent keeps its historical
    # name `diagnose` (with `ioagent` as alias) and its design switches.
    # Names that would collide with the fixed subcommands are skipped (the
    # tool stays reachable through the API) rather than crashing argparse.
    reserved = {
        "diagnose",
        "chat",
        "tracebench",
        "evaluate",
        "list-scenarios",
        "series",
        "serve",
        "fuzz",
        "chaos",
    }
    for tool_name in available_tools():
        if tool_name in reserved:
            continue
        if tool_name == "ioagent":
            p = add_trace_cmd(
                "diagnose", "diagnose a trace with IOAgent", aliases=("ioagent",)
            )
            p.add_argument("--no-rag", action="store_true", help="disable knowledge retrieval")
            p.add_argument("--merge", choices=("tree", "one-step"), default="tree")
        else:
            p = add_trace_cmd(tool_name, f"run the {tool_name} diagnosis tool")
        p.add_argument("--model", default="gpt-4o", help="LLM backbone (ignored by heuristic tools)")
        p.add_argument(
            "--max-workers",
            type=int,
            default=None,
            help="thread-pool width for per-fragment parallelism",
        )
        p.set_defaults(func=_cmd_tool, tool_name=tool_name)

    p = add_trace_cmd("chat", "diagnose, then answer questions interactively")
    p.add_argument("--model", default="gpt-4o")
    p.add_argument("--max-workers", type=int, default=None)
    p.set_defaults(func=_cmd_chat)

    tb = sub.add_parser("tracebench", help="TraceBench suite operations")
    tb.set_defaults(func=_cmd_tracebench)
    tb_sub = tb.add_subparsers(dest="tb_command", required=True)
    export = tb_sub.add_parser("export", help="write all traces + labels to a directory")
    export.add_argument("directory")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument(
        "--dxt",
        action="store_true",
        help="embed the DXT segment table in each trace (preserves the temporal channel)",
    )
    tb_sub.add_parser("table3", help="print the Table III composition")

    ls = sub.add_parser("list-scenarios", help="list the registered workload scenarios")
    ls.add_argument("--tag", default=None, help="only scenarios matching this tag/selector")
    ls.set_defaults(func=_cmd_list_scenarios)

    se = sub.add_parser(
        "series",
        help="monitor a run series for longitudinal regression "
        "(drift against an early-run baseline)",
    )
    se.add_argument(
        "traces",
        nargs="*",
        help="darshan-parser text files, one per run, in run order",
    )
    se.add_argument(
        "--scenario",
        default=None,
        help="build a registered series scenario instead of reading trace files",
    )
    se.add_argument("--seed", type=int, default=0)
    se.add_argument(
        "--baseline-runs",
        type=int,
        default=3,
        help="how many leading runs freeze the baseline",
    )
    se.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="drift score that declares a regression (default: 1.0)",
    )
    se.add_argument("--inner", default="ioagent", help="single-trace tool to wrap")
    se.add_argument("--model", default="gpt-4o")
    se.add_argument("--max-workers", type=int, default=None)
    se.set_defaults(func=_cmd_series)

    sv = sub.add_parser(
        "serve",
        help="drive the streaming serving layer (bounded queue, coalescing, "
        "persistent store, latency histograms)",
    )
    sv.add_argument(
        "traces",
        nargs="*",
        help="darshan-parser text files to submit as requests",
    )
    sv.add_argument(
        "--scenarios",
        default="",
        help="comma-separated scenario selectors to build and submit "
        "(see `list-scenarios`)",
    )
    sv.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit each request this many times (identical requests coalesce "
        "into one pipeline run)",
    )
    sv.add_argument("--tool", default="ioagent", help="registered diagnosis tool to serve")
    sv.add_argument("--model", default="gpt-4o")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--workers", type=int, default=4, help="serving worker threads")
    sv.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="bounded work queue capacity (overflow is a typed rejection)",
    )
    sv.add_argument(
        "--store",
        default=None,
        help="persistent result store directory (cross-process cache)",
    )
    sv.add_argument(
        "--wall",
        action="store_true",
        help="histogram measured wall-clock latency instead of the "
        "deterministic usage model (snapshots stop being reproducible)",
    )
    sv.add_argument(
        "--reports", action="store_true", help="also print each diagnosis report"
    )
    sv.add_argument("--out", default=None, help="write the metrics snapshot JSON to this file")
    sv.set_defaults(func=_cmd_serve)

    fz = sub.add_parser(
        "fuzz", help="generative scenario fuzzer (seeded pathology compositions)"
    )
    fz.set_defaults(func=_cmd_fuzz)
    fz_sub = fz.add_subparsers(dest="fuzz_command", required=True)
    gen = fz_sub.add_parser(
        "generate", help="sample compositions and print their derived ground truth"
    )
    gen.add_argument("--seed", type=int, default=0, help="root seed of the composition stream")
    gen.add_argument("--count", type=int, default=10, help="how many compositions to sample")
    sweep = fz_sub.add_parser(
        "sweep",
        help="build each sampled composition, score the expert rules, and "
        "render the per-pathology confusion matrix",
    )
    sweep.add_argument("--seed", type=int, default=0, help="root seed of the composition stream")
    sweep.add_argument("--count", type=int, default=10, help="how many compositions to sweep")
    sweep.add_argument("--build-seed", type=int, default=0, help="seed for the trace builds")
    sweep.add_argument(
        "--out", default=None, help="also write the rendered confusion matrix to this file"
    )
    ramp = fz_sub.add_parser(
        "ramp", help="binary-search the masking intensity at which each rule stops firing"
    )
    ramp.add_argument("--seed", type=int, default=0, help="seed for the ramp trace builds")
    ramp.add_argument(
        "--iterations", type=int, default=6, help="bisection steps per ramp (resolution 2^-n)"
    )

    ch = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection sweep (resilience chaos harness)",
    )
    ch.add_argument("--seed", type=int, default=0, help="root seed of the chaos sweep")
    ch.add_argument(
        "--plans",
        default="",
        help="comma-separated fault plan names (default: every pinned plan)",
    )
    ch.add_argument(
        "--scenarios",
        default="",
        help="comma-separated scenario names (default: the chaos scenario set)",
    )
    ch.add_argument(
        "--list-plans", action="store_true", help="list the registered fault plans and exit"
    )
    ch.add_argument(
        "--digest",
        action="store_true",
        help="print only the report digest (cross-process reproducibility checks)",
    )
    ch.add_argument("--out", default=None, help="write the chaos report JSON to this file")
    ch.set_defaults(func=_cmd_chaos)

    ev = sub.add_parser("evaluate", help="run the Table IV evaluation harness")
    ev.add_argument("--traces", default="", help="comma-separated trace ids (default: all 40)")
    ev.add_argument(
        "--scenarios",
        default="",
        help="comma-separated scenario names, tags, sources, and/or difficulty "
        "tiers (e.g. 'pathology', 'hard', 'path09-fsync-per-write,easy'); "
        "see `list-scenarios`.  The printed Table IV always includes the "
        "per-difficulty accuracy split.",
    )
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="thread-pool width for the LLM tools under evaluation",
    )
    ev.set_defaults(func=_cmd_evaluate)
    return parser


def _load_log(path: str) -> DarshanLog:
    from repro.darshan.parser import parse_darshan_text

    with open(path, "r", encoding="utf-8") as fh:
        return parse_darshan_text(fh.read())


def _cmd_tool(args) -> int:
    from repro.core.registry import get_tool

    kwargs: dict = {"seed": args.seed, "model": args.model}
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    if args.tool_name == "ioagent":
        kwargs["use_rag"] = not args.no_rag
        kwargs["merge_strategy"] = args.merge
    tool = get_tool(args.tool_name, **kwargs)
    report = tool.diagnose(_load_log(args.trace), trace_id=args.trace)
    print(report.render())
    return 0


def _cmd_chat(args) -> int:
    from repro.core.agent import IOAgent, IOAgentConfig
    from repro.core.session import InteractiveSession

    log = _load_log(args.trace)
    config = IOAgentConfig(model=args.model, seed=args.seed, max_workers=args.max_workers)
    agent = IOAgent(config)
    report = agent.diagnose(log, trace_id=args.trace)
    print(report.render())
    session = InteractiveSession(report=report, client=agent.client, model=args.model)
    print("\nAsk follow-up questions (empty line to exit).")
    for line in sys.stdin:
        question = line.strip()
        if not question:
            break
        print(session.ask(question))
        print()
    return 0


def _fail_lookup(exc) -> int:
    """Print a :class:`~repro.util.lookup.RegistryLookupError` and exit 2.

    The one CLI rendering for every registry (tools, scenarios, series,
    fault plans, checks): the error subclass carries its own noun, hints,
    and options line; this helper just routes it to stderr.
    """
    print(exc.render_cli(), file=sys.stderr)
    return 2


def _cmd_series(args) -> int:
    from repro.core.registry import ToolNotFoundError, get_tool
    from repro.regression.drift import DRIFT_THRESHOLD
    from repro.workloads.scenarios import (
        ScenarioNotFoundError,
        build_series,
        get_series_scenario,
    )

    threshold = DRIFT_THRESHOLD if args.threshold is None else args.threshold
    baseline_runs = args.baseline_runs
    if args.scenario is not None:
        try:
            scenario = get_series_scenario(args.scenario)
        except ScenarioNotFoundError as exc:
            return _fail_lookup(exc)
        traces = build_series(scenario, seed=args.seed)
        logs = [t.log for t in traces]
        trace_ids = [t.trace_id for t in traces]
        series_id = scenario.name
        baseline_runs = scenario.baseline_runs
    elif len(args.traces) >= 2:
        logs = [_load_log(path) for path in args.traces]
        trace_ids = list(args.traces)
        series_id = "series"
    else:
        print(
            "error: pass two or more trace files in run order, or --scenario NAME",
            file=sys.stderr,
        )
        return 2
    if len(logs) <= baseline_runs:
        print(
            f"error: a series needs more runs ({len(logs)}) than the "
            f"baseline window ({baseline_runs})",
            file=sys.stderr,
        )
        return 2

    kwargs: dict = {"seed": args.seed, "model": args.model}
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    try:
        tool = get_tool(
            "series",
            inner=args.inner,
            baseline_runs=baseline_runs,
            threshold=threshold,
            **kwargs,
        )
        result = tool.diagnose_series(logs, series_id=series_id, trace_ids=trace_ids)
    except ToolNotFoundError as exc:  # --inner named an unregistered tool
        return _fail_lookup(exc)
    print(result.render())
    return 0


def _select_scenarios_or_fail(tokens: list[str]):
    """Select scenarios, or print the friendly selector error and return None.

    The shared exit-2 error path for every CLI surface that accepts
    scenario selectors (``evaluate --scenarios``, ``list-scenarios
    --tag``): unknown tokens get the same hints everywhere.
    """
    from repro.workloads.scenarios import ScenarioNotFoundError, select_scenarios

    try:
        return select_scenarios(tokens)
    except ScenarioNotFoundError as exc:
        _fail_lookup(exc)
        return None


def _cmd_list_scenarios(args) -> int:
    from repro.workloads.scenarios import iter_scenarios

    tag = getattr(args, "tag", None)
    if tag is not None:
        scenarios = _select_scenarios_or_fail([tag])
        if scenarios is None:
            return 2
    else:
        scenarios = iter_scenarios(None)
    width = max(len(s.name) for s in scenarios)
    for s in scenarios:
        causes = ",".join(sorted(s.root_causes)) or "<clean>"
        print(f"{s.name:{width}s}  {s.difficulty:8s} {' '.join(s.tags):24s} {causes}")
    return 0


def _cmd_tracebench(args) -> int:
    if args.tb_command == "table3":
        from repro.evaluation.tables import render_table3

        print(render_table3())
        return 0
    # export
    import os

    from repro.tracebench import build_tracebench

    os.makedirs(args.directory, exist_ok=True)
    suite = build_tracebench(args.seed)
    manifest = ["trace_id\tsource\tnprocs\tlabels"]
    from repro.darshan.writer import render_darshan_text

    include_dxt = getattr(args, "dxt", False)
    for trace in suite:
        path = os.path.join(args.directory, f"{trace.trace_id}.darshan.txt")
        text = (
            render_darshan_text(trace.log, include_dxt=True) if include_dxt else trace.text
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        manifest.append(
            f"{trace.trace_id}\t{trace.source}\t{trace.log.header.nprocs}\t"
            + ",".join(sorted(trace.labels))
        )
    with open(os.path.join(args.directory, "labels.tsv"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(manifest) + "\n")
    print(f"wrote {len(suite)} traces to {args.directory}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.evaluation.harness import default_tools, evaluate_tools
    from repro.evaluation.tables import render_table4
    from repro.tracebench import build_tracebench
    from repro.tracebench.dataset import TraceBench
    from repro.tracebench.spec import TRACE_SPECS
    from repro.workloads.scenarios import build_scenario

    # The full 40-trace build is only paid when a TraceBench trace is
    # actually evaluated; pathology-only runs never touch it.
    tracebench_ids = {s.trace_id for s in TRACE_SPECS}
    _suite_cache = []

    def suite() -> TraceBench:
        if not _suite_cache:
            _suite_cache.append(build_tracebench(args.seed))
        return _suite_cache[0]

    selected = []
    if args.scenarios:
        tokens = [t.strip() for t in args.scenarios.split(",") if t.strip()]
        scenarios = _select_scenarios_or_fail(tokens)
        if scenarios is None:
            return 2
        # The memoized TraceBench build already holds the tracebench-tagged
        # traces; anything else (e.g. the pathology tier) builds fresh.
        selected.extend(
            suite().get(s.name) if s.name in tracebench_ids else build_scenario(s, seed=args.seed)
            for s in scenarios
        )
    if args.traces:
        wanted = [t.strip() for t in args.traces.split(",") if t.strip()]
        unknown = [t for t in wanted if t not in tracebench_ids]
        if unknown:
            print(f"error: unknown trace id(s): {', '.join(unknown)}", file=sys.stderr)
            print("available trace ids:", file=sys.stderr)
            for tid in sorted(tracebench_ids):
                print(f"  {tid}", file=sys.stderr)
            return 2
        have = {t.trace_id for t in selected}
        selected.extend(suite().get(t) for t in wanted if t not in have)
    bench = TraceBench(traces=selected, seed=args.seed) if selected else suite()
    tools = default_tools(seed=args.seed, max_workers=args.max_workers)
    result = evaluate_tools(
        bench, tools=tools, progress=lambda msg: print(f"  {msg}", file=sys.stderr)
    )
    print(render_table4(result))
    # Generated scenarios add the per-pathology view: across the fuzz
    # sweep, which *rules* held up (confusion counts per issue key)?
    fuzz_traces = [t for t in selected if t.source == "fuzz"]
    if fuzz_traces:
        from repro.evaluation.confusion import ConfusionMatrix
        from repro.evaluation.detector import detected_issues

        pairs = [(detected_issues(t.log), set(t.labels)) for t in fuzz_traces]
        print()
        print(ConfusionMatrix.from_pairs(pairs).render("Fuzz tier confusion (expert rules)"))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.evaluation.detector import detected_issues
    from repro.workloads.fuzz import RAMPS, find_detection_threshold, generate_compositions

    if args.fuzz_command == "generate":
        for comp in generate_compositions(args.seed, args.count):
            print(comp.name)
            print(
                f"  nprocs={comp.nprocs} num_osts={comp.num_osts} "
                f"labels={','.join(sorted(comp.labels))}"
            )
            print(f"  {comp.description}")
        return 0

    if args.fuzz_command == "ramp":
        for ramp in RAMPS:
            result = find_detection_threshold(
                ramp, detected_issues, seed=args.seed, iterations=args.iterations
            )
            print(
                f"{result.ramp:24s} {result.issue_key:20s} "
                f"detected at {result.detected_at:.3f}, masked at {result.masked_at:.3f} "
                f"(threshold ~{result.threshold:.3f})"
            )
        return 0

    # sweep
    from repro.evaluation.confusion import ConfusionMatrix
    from repro.workloads.scenarios import build_scenario

    pairs = []
    misses = 0
    for comp in generate_compositions(args.seed, args.count):
        trace = build_scenario(comp.scenario(), seed=args.build_seed)
        detected = detected_issues(trace.log)
        labels = set(trace.labels)
        pairs.append((detected, labels))
        missing = labels - detected
        if missing:
            misses += 1
            print(f"MISS {comp.name}: not recovered: {', '.join(sorted(missing))}")
        else:
            print(f"ok   {comp.name}")
    rendered = ConfusionMatrix.from_pairs(pairs).render("Fuzz sweep confusion (expert rules)")
    print()
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    return 1 if misses else 0


def _cmd_serve(args) -> int:
    from repro.core.agent import IOAgentConfig
    from repro.core.registry import ToolNotFoundError
    from repro.serve import DiagnosisServer, QueueFullError
    from repro.workloads.scenarios import build_scenario

    requests: list[tuple] = [(path, _load_log(path)) for path in args.traces]
    if args.scenarios:
        tokens = [t.strip() for t in args.scenarios.split(",") if t.strip()]
        scenarios = _select_scenarios_or_fail(tokens)
        if scenarios is None:
            return 2
        for s in scenarios:
            trace = build_scenario(s, seed=args.seed)
            requests.append((trace.trace_id, trace.log))
    if not requests:
        print(
            "error: pass trace files and/or --scenarios selectors to serve",
            file=sys.stderr,
        )
        return 2
    if args.repeat > 1:
        requests = [req for req in requests for _ in range(args.repeat)]

    config = IOAgentConfig(model=args.model, seed=args.seed)
    try:
        server = DiagnosisServer(
            tool=args.tool,
            config=config,
            store=args.store,
            queue_depth=args.queue_depth,
            workers=args.workers,
            wall_clock=args.wall,
            autostart=False,  # deterministic driving mode: submit, then start
        )
    except ToolNotFoundError as exc:
        return _fail_lookup(exc)
    try:
        reports = server.serve_all([(log, trace_id) for trace_id, log in requests])
    except QueueFullError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"hint: the workload outgrew the bounded queue; raise --queue-depth "
            f"(currently {args.queue_depth}) or shrink --repeat",
            file=sys.stderr,
        )
        server.close()
        return 2
    server.close()
    if args.reports:
        for report in reports:
            print(report.render())
            print()
    snapshot = server.metrics_snapshot()
    print(snapshot.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(snapshot.to_json() + "\n")
    return 0


def _cmd_chaos(args) -> int:
    from repro.resilience.chaos import DEFAULT_CHAOS_SCENARIOS, run_chaos
    from repro.resilience.faults import (
        FaultPlanNotFoundError,
        available_fault_plans,
        get_fault_plan,
    )

    if args.list_plans:
        for name in available_fault_plans():
            plan = get_fault_plan(name)
            print(f"{name:18s} kinds={','.join(plan.kinds)}")
            print(f"  {plan.description}")
        return 0

    plans = tuple(p for p in args.plans.split(",") if p) or None
    scenarios = tuple(s for s in args.scenarios.split(",") if s) or DEFAULT_CHAOS_SCENARIOS
    try:
        report = run_chaos(plans=plans, scenarios=scenarios, seed=args.seed)
    except FaultPlanNotFoundError as exc:
        return _fail_lookup(exc)

    if args.digest:
        print(report.digest)
    else:
        for run in report.runs:
            status = "ok  " if run.completed else "FAIL"
            deg = ",".join(run.degraded) or "-"
            print(
                f"{status} {run.plan:18s} {run.scenario:28s} f1={run.f1:.3f} "
                f"degraded={deg} retries={run.retries} trips={run.circuit_trips} "
                f"skipped_lines={run.parse_skipped}"
            )
        print(f"digest: {report.digest}")
    if args.out:
        import json

        payload = report.as_dict()
        payload["digest"] = report.digest
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return 0 if report.all_completed else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_tools:
        from repro.core.registry import available_tools

        for name in available_tools():
            print(name)
        return 0
    if args.list_scenarios and args.command is None:
        from repro.workloads.scenarios import available_scenarios

        for name in available_scenarios():
            print(name)
        return 0
    if args.command is None:
        parser.error("a command is required (or --list-tools / --list-scenarios / --version)")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
