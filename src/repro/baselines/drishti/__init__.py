"""Drishti reimplementation (Bez et al., PDSW'22; paper §II-B)."""

from repro.baselines.drishti.tool import DrishtiTool
from repro.baselines.drishti.triggers import TRIGGERS, TriggerResult, run_triggers

__all__ = ["DrishtiTool", "TRIGGERS", "TriggerResult", "run_triggers"]
