"""The Drishti tool wrapper: triggers → the familiar insight report."""

from __future__ import annotations

from repro.baselines.drishti.triggers import run_triggers
from repro.core.registry import register_tool
from repro.core.report import DiagnosisReport
from repro.darshan.log import DarshanLog
from repro.llm.client import Usage

__all__ = ["DrishtiTool"]

_LEVEL_MARK = {"HIGH": "▶ HIGH", "WARN": "▶ WARN", "OK": "✓ OK  ", "INFO": "i INFO"}
_LEVEL_ORDER = {"HIGH": 0, "WARN": 1, "INFO": 2, "OK": 3}


class DrishtiTool:
    """Heuristic baseline (a `DiagnosticTool`): fixed triggers, canned
    text, no LLM, no interaction."""

    name = "drishti"

    def __init__(self, include_ok: bool = False) -> None:
        self.include_ok = include_ok

    def render_insights(self, log: DarshanLog) -> str:
        """Produce the insight-report text for one Darshan log."""
        results = run_triggers(log)
        if not self.include_ok:
            results = [r for r in results if r.level != "OK"]
        results.sort(key=lambda r: _LEVEL_ORDER.get(r.level, 9))
        lines = [
            "DRISHTI v.reproduction — insights from Darshan counters",
            "=" * 60,
        ]
        for r in results:
            lines.append(f"{_LEVEL_MARK.get(r.level, r.level)} [{r.code}] {r.message}")
            if r.recommendation:
                lines.append(f"        Recommendation: {r.recommendation}")
        if not results:
            lines.append("No insights triggered.")
        return "\n".join(lines)

    def diagnose(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport:
        """Diagnose one Darshan log (DiagnosticTool protocol)."""
        return DiagnosisReport(trace_id=trace_id, model="heuristic", text=self.render_insights(log))

    def usage(self) -> Usage:
        """Heuristic tool: no LLM spend, ever."""
        return Usage()


register_tool("drishti", DrishtiTool, replace=True)
