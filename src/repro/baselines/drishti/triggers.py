"""Drishti's heuristic triggers.

Thirty-two named triggers over Darshan counters, in the spirit of the real
tool: fixed thresholds "determined via expert knowledge", per-trigger
hard-coded messages, and insight levels (HIGH / WARN / OK / INFO).  The
limitations the paper calls out are reproduced deliberately:

* thresholds are absolute and not personalized (e.g. small I/O fires at
  >10% small requests regardless of whether the volume matters);
* metadata triggers use an absolute time threshold (the real tool's 30 s,
  scaled here to the simulation's compressed timescale);
* explanations are canned strings with counter jargon, not tailored text;
* whole issue families (multi-process-without-MPI, repetitive reads
  beyond a simple heuristic) have no trigger at all.

Time thresholds are scaled by ``TIME_SCALE`` because the simulated traces
run ~15x faster than the production runs Drishti's defaults assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.darshan.counters import SMALL_SIZE_SUFFIXES
from repro.darshan.log import DarshanLog

__all__ = [
    "TriggerResult",
    "TRIGGERS",
    "TRIGGER_ISSUES",
    "UNTRIGGERED_ISSUES",
    "run_triggers",
    "THRESHOLDS",
]

# Simulation-scale factor applied to Drishti's absolute time thresholds.
TIME_SCALE = 15.0

THRESHOLDS = {
    "small_requests_fraction": 0.10,  # >10% of requests under 1 MiB
    "small_request_bytes": 1_048_576,
    "misaligned_fraction": 0.10,
    "random_fraction": 0.20,  # >20% non-sequential
    "metadata_seconds": 30.0 / TIME_SCALE,
    "shared_file_min_bytes": 1_048_576,
    "imbalance_fraction": 0.15,  # (slowest-fastest)/slowest > 15%
    "stripe_small_file_bytes": 16 * 1_048_576,
    "redundant_read_ratio": 2.0,
    "fsync_fraction": 0.5,  # more than one fsync per two writes
    "fsync_min_ops": 500,
    "small_collective_fraction": 0.9,  # tiny payloads behind collectives
    "small_collective_min_ops": 500,
    # DXT time-domain cutoffs.  The straggler and serialization
    # conditions double as mutual-exclusion guards between the three
    # DXT triggers, so they must be read from here, never inlined —
    # tuning one in place would silently desynchronize the ownership
    # logic that prevents one timeline from firing multiple triggers.
    "dxt_time_skew": 3.0,
    "dxt_bytes_balanced": 1.5,
    "dxt_serialized_inflight": 1.3,
    "dxt_serialized_min_ranks": 4,
    "dxt_stall_gaps": 6,
    "dxt_stall_idle_fraction": 0.25,
    "dxt_stalled_ranks": 2,
    "dxt_ost_latency_ratio": 3.0,
    "dxt_ost_time_skew": 2.5,
    "dxt_ost_min_osts": 4,
}


@dataclass(frozen=True, slots=True)
class TriggerResult:
    """One fired (or informational) trigger."""

    code: str
    level: str  # 'HIGH' | 'WARN' | 'OK' | 'INFO'
    message: str
    recommendation: str = ""


TriggerFn = Callable[[DarshanLog], list[TriggerResult]]
TRIGGERS: dict[str, TriggerFn] = {}

# Which Table II issue keys each trigger evidences when it fires — the
# baseline's half of the knowledge base.  Purely-informational triggers
# map to the empty tuple.  The static analyzer checks this map covers
# exactly the registered triggers, that every key is a canonical
# repro.core.issues key, and that the computed coverage gap equals the
# declared UNTRIGGERED_ISSUES below.
TRIGGER_ISSUES: dict[str, tuple[str, ...]] = {
    "POSIX_SMALL_READS": ("small_read",),
    "POSIX_SMALL_WRITES": ("small_write",),
    "POSIX_SMALL_READ_VOLUME": ("small_read",),
    "POSIX_SMALL_WRITE_VOLUME": ("small_write",),
    "POSIX_STRIPE_MISALIGNMENT": ("misaligned_read", "misaligned_write"),
    "POSIX_MEM_NOT_ALIGNED": (),  # memory alignment has no Table II label
    "POSIX_RANDOM_READS": ("random_read",),
    "POSIX_RANDOM_WRITES": ("random_write",),
    "POSIX_SEQ_READ_INSIGHT": (),
    "POSIX_SEQ_WRITE_INSIGHT": (),
    "POSIX_HIGH_METADATA_TIME": ("high_metadata_load",),
    "POSIX_MANY_OPENS": ("high_metadata_load",),
    "POSIX_MANY_STATS": ("high_metadata_load",),
    "POSIX_FSYNC_FREQUENT": ("high_metadata_load",),
    "POSIX_SHARED_FILE": ("shared_file_access",),
    "POSIX_RANK_IMBALANCE": ("rank_imbalance",),
    "POSIX_TIME_IMBALANCE": ("rank_imbalance",),
    "POSIX_RW_SWITCHES": (),
    "POSIX_REDUNDANT_READS": ("repetitive_read",),
    "MPIIO_NO_COLLECTIVE_READS": ("no_collective_read",),
    "MPIIO_NO_COLLECTIVE_WRITES": ("no_collective_write",),
    "MPIIO_COLLECTIVE_INSIGHT": (),
    "MPIIO_SMALL_COLLECTIVES": ("small_read", "small_write"),
    "MPIIO_BLOCKING_READS": (),
    "MPIIO_BLOCKING_WRITES": (),
    "STDIO_HIGH_USAGE": ("low_level_read", "low_level_write"),
    "STDIO_FLUSHES": (),
    "LUSTRE_STRIPE_WIDTH_ONE": ("server_imbalance",),
    "LUSTRE_STRIPE_SIZE_MISMATCH": (),
    "LUSTRE_OST_USAGE": ("server_imbalance",),
    "LUSTRE_MOUNT_INFO": (),
    "JOB_SUMMARY": (),
    "DXT_TIME_STRAGGLER": ("rank_imbalance",),
    "DXT_SERIALIZED_IO": ("lock_contention",),
    "DXT_IO_STALLS": ("io_stall",),
    "DXT_OST_SLOW_SERVER": ("server_imbalance",),
    "DXT_OST_HOTSPOT": ("server_imbalance",),
}

# Issue families Drishti deliberately has no trigger for — one of the
# paper's critiques, reproduced on purpose (see the module docstring).
# trend_regression is structurally out of reach: Drishti sees one trace at
# a time, and the longitudinal issue only exists across a run series.
UNTRIGGERED_ISSUES: tuple[str, ...] = ("no_mpi", "trend_regression")


def _trigger(code: str) -> Callable[[TriggerFn], TriggerFn]:
    def deco(fn: TriggerFn) -> TriggerFn:
        TRIGGERS[code] = fn
        return fn

    return deco


def _posix(log: DarshanLog) -> list:
    return log.records_for("POSIX")


def _total(log: DarshanLog, counter: str) -> float:
    return log.total(counter)


def _small_ops(log: DarshanLog, direction: str) -> int:
    # Bins strictly below 1 MiB (Drishti's small-request threshold).
    return int(sum(_total(log, f"POSIX_SIZE_{direction}_{s}") for s in SMALL_SIZE_SUFFIXES))


# -- size triggers (1-4) -----------------------------------------------------


@_trigger("POSIX_SMALL_READS")
def t_small_reads(log: DarshanLog) -> list[TriggerResult]:
    reads = _total(log, "POSIX_READS")
    if reads == 0:
        return []
    frac = _small_ops(log, "READ") / reads
    if frac > THRESHOLDS["small_requests_fraction"]:
        return [
            TriggerResult(
                "POSIX_SMALL_READS",
                "HIGH",
                f"Application issues a high number ({100 * frac:.1f}%) of small read "
                f"requests (i.e., POSIX_SIZE_READ_* below 1 MB) out of "
                f"{int(reads)} total POSIX_READS.",
                "Consider buffering read operations into larger, more contiguous ones.",
            )
        ]
    return [TriggerResult("POSIX_SMALL_READS", "OK", "Read request sizes look adequate.")]


@_trigger("POSIX_SMALL_WRITES")
def t_small_writes(log: DarshanLog) -> list[TriggerResult]:
    writes = _total(log, "POSIX_WRITES")
    if writes == 0:
        return []
    frac = _small_ops(log, "WRITE") / writes
    if frac > THRESHOLDS["small_requests_fraction"]:
        return [
            TriggerResult(
                "POSIX_SMALL_WRITES",
                "HIGH",
                f"Application issues a high number ({100 * frac:.1f}%) of small write "
                f"requests (i.e., POSIX_SIZE_WRITE_* below 1 MB) out of "
                f"{int(writes)} total POSIX_WRITES.",
                "Consider buffering write operations into larger, more contiguous ones.",
            )
        ]
    return [TriggerResult("POSIX_SMALL_WRITES", "OK", "Write request sizes look adequate.")]


@_trigger("POSIX_SMALL_READ_VOLUME")
def t_small_read_volume(log: DarshanLog) -> list[TriggerResult]:
    reads = _total(log, "POSIX_READS")
    if reads == 0:
        return []
    frac = _small_ops(log, "READ") / reads
    if frac > 0.9:
        return [
            TriggerResult(
                "POSIX_SMALL_READ_VOLUME",
                "WARN",
                "Nearly all read traffic is carried by small read requests.",
                "Aggregate reads via MPI-IO collectives or application-side buffering.",
            )
        ]
    return []


@_trigger("POSIX_SMALL_WRITE_VOLUME")
def t_small_write_volume(log: DarshanLog) -> list[TriggerResult]:
    writes = _total(log, "POSIX_WRITES")
    if writes == 0:
        return []
    frac = _small_ops(log, "WRITE") / writes
    if frac > 0.9:
        return [
            TriggerResult(
                "POSIX_SMALL_WRITE_VOLUME",
                "WARN",
                "Nearly all write traffic is carried by small write requests.",
                "Aggregate writes via MPI-IO collectives or application-side buffering.",
            )
        ]
    return []


# -- alignment triggers (5-6) -------------------------------------------------


@_trigger("POSIX_STRIPE_MISALIGNMENT")
def t_file_alignment(log: DarshanLog) -> list[TriggerResult]:
    """Drishti checks request sizes against the Lustre *stripe size*.

    Two consequences the paper's critique anticipates: any sub-stripe
    transfer size trips the trigger even when the access is block-aligned
    and harmless, and offset-shifted misalignment with stripe-multiple
    sizes is invisible to it.
    """
    lustre = {r.path: r for r in log.records_for("LUSTRE")}
    for rec in _posix(log):
        reads = rec.counters.get("POSIX_READS", 0)
        writes = rec.counters.get("POSIX_WRITES", 0)
        nbytes = rec.counters.get("POSIX_BYTES_READ", 0) + rec.counters.get(
            "POSIX_BYTES_WRITTEN", 0
        )
        access = rec.counters.get("POSIX_ACCESS1_ACCESS", 0)
        if nbytes < 1_048_576 or access <= 0:
            continue  # too little traffic on this file to matter
        stripe = 1_048_576
        lrec = lustre.get(rec.path)
        if lrec is not None:
            stripe = lrec.counters.get("LUSTRE_STRIPE_SIZE", stripe) or stripe
        if access % stripe != 0:
            directions = []
            if reads > 0:
                directions.append("misaligned read requests")
            if writes > 0:
                directions.append("misaligned write requests")
            return [
                TriggerResult(
                    "POSIX_STRIPE_MISALIGNMENT",
                    "HIGH",
                    f"Requests of {access} bytes on {rec.path} are not aligned "
                    f"with the file system's stripe size of {stripe} bytes "
                    f"({' and '.join(directions)}).",
                    "Align requests with the file system block/stripe boundaries.",
                )
            ]
    return [TriggerResult("POSIX_STRIPE_MISALIGNMENT", "OK", "Requests are stripe-aligned.")]


@_trigger("POSIX_MEM_NOT_ALIGNED")
def t_mem_alignment(log: DarshanLog) -> list[TriggerResult]:
    ops = _total(log, "POSIX_READS") + _total(log, "POSIX_WRITES")
    if ops == 0:
        return []
    frac = _total(log, "POSIX_MEM_NOT_ALIGNED") / ops
    if frac > THRESHOLDS["misaligned_fraction"]:
        return [
            TriggerResult(
                "POSIX_MEM_NOT_ALIGNED",
                "WARN",
                f"{100 * frac:.1f}% of requests use memory-misaligned buffers "
                f"(POSIX_MEM_NOT_ALIGNED).",
                "Allocate I/O buffers aligned to the memory alignment (posix_memalign).",
            )
        ]
    return []


# -- access-pattern triggers (7-10) --------------------------------------------


def _random_fraction(log: DarshanLog, stem: str) -> float | None:
    ops = _total(log, f"POSIX_{stem}S")
    if ops == 0:
        return None
    seq = _total(log, f"POSIX_SEQ_{stem}S")
    return 1.0 - seq / ops


@_trigger("POSIX_RANDOM_READS")
def t_random_reads(log: DarshanLog) -> list[TriggerResult]:
    frac = _random_fraction(log, "READ")
    if frac is None:
        return []
    if frac > THRESHOLDS["random_fraction"]:
        return [
            TriggerResult(
                "POSIX_RANDOM_READS",
                "HIGH",
                f"Application issues a random access pattern on read: {100 * frac:.1f}% "
                f"of reads are non-sequential (POSIX_SEQ_READS/POSIX_READS).",
                "Reorder reads into increasing offsets or use collective buffering.",
            )
        ]
    return [TriggerResult("POSIX_RANDOM_READS", "OK", "Reads are mostly sequential.")]


@_trigger("POSIX_RANDOM_WRITES")
def t_random_writes(log: DarshanLog) -> list[TriggerResult]:
    frac = _random_fraction(log, "WRITE")
    if frac is None:
        return []
    if frac > THRESHOLDS["random_fraction"]:
        return [
            TriggerResult(
                "POSIX_RANDOM_WRITES",
                "HIGH",
                f"Application issues a random access pattern on write: {100 * frac:.1f}% "
                f"of writes are non-sequential (POSIX_SEQ_WRITES/POSIX_WRITES).",
                "Reorder writes into increasing offsets or use collective buffering.",
            )
        ]
    return [TriggerResult("POSIX_RANDOM_WRITES", "OK", "Writes are mostly sequential.")]


@_trigger("POSIX_SEQ_READ_INSIGHT")
def t_seq_read_insight(log: DarshanLog) -> list[TriggerResult]:
    frac = _random_fraction(log, "READ")
    if frac is not None and frac < 0.05:
        return [
            TriggerResult(
                "POSIX_SEQ_READ_INSIGHT", "INFO", "Read accesses are highly sequential."
            )
        ]
    return []


@_trigger("POSIX_SEQ_WRITE_INSIGHT")
def t_seq_write_insight(log: DarshanLog) -> list[TriggerResult]:
    frac = _random_fraction(log, "WRITE")
    if frac is not None and frac < 0.05:
        return [
            TriggerResult(
                "POSIX_SEQ_WRITE_INSIGHT", "INFO", "Write accesses are highly sequential."
            )
        ]
    return []


# -- metadata triggers (11-13) ---------------------------------------------------


@_trigger("POSIX_HIGH_METADATA_TIME")
def t_metadata_time(log: DarshanLog) -> list[TriggerResult]:
    meta = sum(r.fcounters.get("POSIX_F_META_TIME", 0.0) for r in _posix(log))
    if meta > THRESHOLDS["metadata_seconds"]:
        return [
            TriggerResult(
                "POSIX_HIGH_METADATA_TIME",
                "HIGH",
                f"Application spends a high metadata load: {meta:.2f} s in metadata "
                f"operations (POSIX_F_META_TIME exceeds the threshold).",
                "Avoid per-iteration open/close cycles and excessive stat calls.",
            )
        ]
    return [TriggerResult("POSIX_HIGH_METADATA_TIME", "OK", "Metadata time within bounds.")]


@_trigger("POSIX_MANY_OPENS")
def t_many_opens(log: DarshanLog) -> list[TriggerResult]:
    opens = _total(log, "POSIX_OPENS")
    if opens > 4000:
        return [
            TriggerResult(
                "POSIX_MANY_OPENS",
                "WARN",
                f"Application performs {int(opens)} POSIX_OPENS, indicating heavy "
                f"file-creation or reopen churn (high metadata load).",
                "Keep files open across phases or consolidate into fewer files.",
            )
        ]
    return []


@_trigger("POSIX_MANY_STATS")
def t_many_stats(log: DarshanLog) -> list[TriggerResult]:
    stats = _total(log, "POSIX_STATS")
    if stats > 4000:
        return [
            TriggerResult(
                "POSIX_MANY_STATS",
                "WARN",
                f"Application performs {int(stats)} POSIX_STATS calls (high metadata load).",
                "Cache stat results instead of re-querying the file system.",
            )
        ]
    return []


@_trigger("POSIX_FSYNC_FREQUENT")
def t_fsync_frequent(log: DarshanLog) -> list[TriggerResult]:
    writes = _total(log, "POSIX_WRITES")
    syncs = _total(log, "POSIX_FSYNCS")
    if (
        writes > 0
        and syncs > THRESHOLDS["fsync_min_ops"]
        and syncs / writes > THRESHOLDS["fsync_fraction"]
    ):
        return [
            TriggerResult(
                "POSIX_FSYNC_FREQUENT",
                "HIGH",
                f"Application issues {int(syncs)} POSIX_FSYNCS against {int(writes)} "
                f"POSIX_WRITES — synchronizing after nearly every write serializes "
                f"I/O on commit latency.",
                "Batch writes between fsync calls or rely on close-time flushing.",
            )
        ]
    return []


# -- shared file / rank triggers (14-17) --------------------------------------------


@_trigger("POSIX_SHARED_FILE")
def t_shared_file(log: DarshanLog) -> list[TriggerResult]:
    shared = [
        r
        for r in _posix(log)
        if r.shared
        and r.counters.get("POSIX_BYTES_READ", 0) + r.counters.get("POSIX_BYTES_WRITTEN", 0)
        > THRESHOLDS["shared_file_min_bytes"]
    ]
    if shared and log.header.nprocs > 1:
        return [
            TriggerResult(
                "POSIX_SHARED_FILE",
                "WARN",
                f"Application uses shared file access: {len(shared)} file(s) are "
                f"accessed by multiple ranks (rank -1 records).",
                "Combine shared files with collective I/O and wide striping.",
            )
        ]
    return []


@_trigger("POSIX_RANK_IMBALANCE")
def t_rank_imbalance(log: DarshanLog) -> list[TriggerResult]:
    for rec in _posix(log) + log.records_for("MPIIO"):
        if not rec.shared:
            continue
        prefix = rec.module
        fastest = rec.counters.get(f"{prefix}_FASTEST_RANK_BYTES", 0)
        slowest = rec.counters.get(f"{prefix}_SLOWEST_RANK_BYTES", 0)
        if slowest <= 0:
            continue
        imbalance = (slowest - fastest) / slowest
        if imbalance > THRESHOLDS["imbalance_fraction"] and slowest > 1_048_576:
            return [
                TriggerResult(
                    "POSIX_RANK_IMBALANCE",
                    "HIGH",
                    f"Detected rank load imbalance of {100 * imbalance:.1f}% on "
                    f"{rec.path} ({prefix}_SLOWEST_RANK_BYTES vs "
                    f"{prefix}_FASTEST_RANK_BYTES).",
                    "Rebalance the data distribution among ranks or use collective I/O.",
                )
            ]
    return []


@_trigger("POSIX_TIME_IMBALANCE")
def t_time_imbalance(log: DarshanLog) -> list[TriggerResult]:
    for rec in _posix(log):
        if not rec.shared:
            continue
        fast = rec.fcounters.get("POSIX_F_FASTEST_RANK_TIME", 0.0)
        slow = rec.fcounters.get("POSIX_F_SLOWEST_RANK_TIME", 0.0)
        if slow > 0.5 and fast >= 0 and (slow - fast) / slow > 0.5:
            return [
                TriggerResult(
                    "POSIX_TIME_IMBALANCE",
                    "WARN",
                    f"Stragglers detected on {rec.path}: slowest rank spends "
                    f"{slow:.2f} s vs fastest {fast:.2f} s.",
                    "Investigate rank-level stragglers (imbalance across ranks).",
                )
            ]
    return []


@_trigger("POSIX_RW_SWITCHES")
def t_rw_switches(log: DarshanLog) -> list[TriggerResult]:
    switches = _total(log, "POSIX_RW_SWITCHES")
    ops = _total(log, "POSIX_READS") + _total(log, "POSIX_WRITES")
    if ops > 0 and switches / ops > 0.3:
        return [
            TriggerResult(
                "POSIX_RW_SWITCHES",
                "INFO",
                f"Frequent read/write switching ({int(switches)} POSIX_RW_SWITCHES).",
                "Separate read and write phases where possible.",
            )
        ]
    return []


# -- redundant access (18) -----------------------------------------------------------


@_trigger("POSIX_REDUNDANT_READS")
def t_redundant_reads(log: DarshanLog) -> list[TriggerResult]:
    for rec in _posix(log):
        bytes_read = rec.counters.get("POSIX_BYTES_READ", 0)
        extent = rec.counters.get("POSIX_MAX_BYTE_READ", 0) + 1
        if extent > 1 and bytes_read / extent > THRESHOLDS["redundant_read_ratio"]:
            return [
                TriggerResult(
                    "POSIX_REDUNDANT_READS",
                    "WARN",
                    f"Application reads the same data repeatedly from {rec.path}: "
                    f"POSIX_BYTES_READ is {bytes_read / extent:.1f}x the file extent.",
                    "Cache repeatedly accessed data in memory.",
                )
            ]
    return []


# -- MPI-IO triggers (19-23) -----------------------------------------------------------


@_trigger("MPIIO_NO_COLLECTIVE_READS")
def t_no_coll_reads(log: DarshanLog) -> list[TriggerResult]:
    indep = _total(log, "MPIIO_INDEP_READS")
    coll = _total(log, "MPIIO_COLL_READS")
    if indep > 0 and coll == 0 and log.header.nprocs > 1:
        return [
            TriggerResult(
                "MPIIO_NO_COLLECTIVE_READS",
                "HIGH",
                f"Application uses MPI-IO but performs no collective I/O on read: "
                f"{int(indep)} MPIIO_INDEP_READS and zero MPIIO_COLL_READS.",
                "Use collective read operations (e.g. MPI_File_read_all).",
            )
        ]
    return []


@_trigger("MPIIO_NO_COLLECTIVE_WRITES")
def t_no_coll_writes(log: DarshanLog) -> list[TriggerResult]:
    indep = _total(log, "MPIIO_INDEP_WRITES")
    coll = _total(log, "MPIIO_COLL_WRITES")
    if indep > 0 and coll == 0 and log.header.nprocs > 1:
        return [
            TriggerResult(
                "MPIIO_NO_COLLECTIVE_WRITES",
                "HIGH",
                f"Application uses MPI-IO but performs no collective I/O on write: "
                f"{int(indep)} MPIIO_INDEP_WRITES and zero MPIIO_COLL_WRITES.",
                "Use collective write operations (e.g. MPI_File_write_all).",
            )
        ]
    return []


@_trigger("MPIIO_COLLECTIVE_INSIGHT")
def t_collective_insight(log: DarshanLog) -> list[TriggerResult]:
    coll = _total(log, "MPIIO_COLL_READS") + _total(log, "MPIIO_COLL_WRITES")
    if coll > 0:
        return [
            TriggerResult(
                "MPIIO_COLLECTIVE_INSIGHT",
                "INFO",
                f"Application performs {int(coll)} collective MPI-IO operations.",
            )
        ]
    return []


@_trigger("MPIIO_SMALL_COLLECTIVES")
def t_small_collectives(log: DarshanLog) -> list[TriggerResult]:
    coll = _total(log, "MPIIO_COLL_READS") + _total(log, "MPIIO_COLL_WRITES")
    if coll <= THRESHOLDS["small_collective_min_ops"]:
        return []
    small = sum(
        _total(log, f"MPIIO_SIZE_{d}_AGG_{s}")
        for d in ("READ", "WRITE")
        for s in SMALL_SIZE_SUFFIXES
    )
    ops = _total(log, "MPIIO_INDEP_READS") + _total(log, "MPIIO_INDEP_WRITES") + coll
    # The AGG histogram mixes independent and collective requests, so only
    # attribute smallness to collectives when they dominate the op mix.
    if (
        ops > 0
        and coll / ops >= 0.5
        and small / ops > THRESHOLDS["small_collective_fraction"]
    ):
        return [
            TriggerResult(
                "MPIIO_SMALL_COLLECTIVES",
                "WARN",
                f"Application performs {int(coll)} collective operations but "
                f"{100 * small / ops:.1f}% of MPI-IO requests carry less than 1 MB "
                f"each: collective buffering is amortizing very little data.",
                "Aggregate more data per collective call (fewer, larger rounds).",
            )
        ]
    return []


@_trigger("MPIIO_BLOCKING_READS")
def t_nb_reads(log: DarshanLog) -> list[TriggerResult]:
    nb = _total(log, "MPIIO_NB_READS")
    reads = _total(log, "MPIIO_INDEP_READS") + _total(log, "MPIIO_COLL_READS")
    if reads > 100 and nb == 0:
        return [
            TriggerResult(
                "MPIIO_BLOCKING_READS",
                "INFO",
                "Application could benefit from non-blocking (asynchronous) reads.",
            )
        ]
    return []


@_trigger("MPIIO_BLOCKING_WRITES")
def t_nb_writes(log: DarshanLog) -> list[TriggerResult]:
    nb = _total(log, "MPIIO_NB_WRITES")
    writes = _total(log, "MPIIO_INDEP_WRITES") + _total(log, "MPIIO_COLL_WRITES")
    if writes > 100 and nb == 0:
        return [
            TriggerResult(
                "MPIIO_BLOCKING_WRITES",
                "INFO",
                "Application could benefit from non-blocking (asynchronous) writes.",
            )
        ]
    return []


# -- STDIO triggers (24-25) ---------------------------------------------------------------


@_trigger("STDIO_HIGH_USAGE")
def t_stdio_usage(log: DarshanLog) -> list[TriggerResult]:
    stdio = _total(log, "STDIO_BYTES_READ") + _total(log, "STDIO_BYTES_WRITTEN")
    posix = _total(log, "POSIX_BYTES_READ") + _total(log, "POSIX_BYTES_WRITTEN")
    total = stdio + posix
    if total > 0 and stdio / total > 0.1 and stdio > 1_048_576:
        reads = _total(log, "STDIO_BYTES_READ")
        writes = _total(log, "STDIO_BYTES_WRITTEN")
        directions = []
        if reads > writes:
            directions.append("stdio reads")
        if writes >= reads and writes > 0:
            directions.append("stdio writes")
        return [
            TriggerResult(
                "STDIO_HIGH_USAGE",
                "WARN",
                f"Application relies on a low-level library (STDIO) for "
                f"{100 * stdio / total:.1f}% of its I/O volume ({' and '.join(directions)}).",
                "Use POSIX or MPI-IO for bulk transfers instead of fread/fwrite.",
            )
        ]
    return []


@_trigger("STDIO_FLUSHES")
def t_stdio_flushes(log: DarshanLog) -> list[TriggerResult]:
    flushes = _total(log, "STDIO_FLUSHES")
    if flushes > 1000:
        return [
            TriggerResult(
                "STDIO_FLUSHES",
                "INFO",
                f"Application issues {int(flushes)} STDIO_FLUSHES; frequent flushing "
                f"defeats stream buffering.",
            )
        ]
    return []


# -- LUSTRE triggers (26-30) ------------------------------------------------------------------


@_trigger("LUSTRE_STRIPE_WIDTH_ONE")
def t_stripe_one(log: DarshanLog) -> list[TriggerResult]:
    posix_bytes = {
        r.path: r.counters.get("POSIX_BYTES_READ", 0) + r.counters.get("POSIX_BYTES_WRITTEN", 0)
        for r in _posix(log)
    }
    hot = []
    for rec in log.records_for("LUSTRE"):
        width = rec.counters.get("LUSTRE_STRIPE_WIDTH", 0)
        if width == 1 and posix_bytes.get(rec.path, 0) > THRESHOLDS["stripe_small_file_bytes"]:
            hot.append(rec.path)
    if hot:
        return [
            TriggerResult(
                "LUSTRE_STRIPE_WIDTH_ONE",
                "HIGH",
                f"{len(hot)} heavily-used file(s) have LUSTRE_STRIPE_WIDTH = 1 "
                f"(e.g. {hot[0]}), causing server load imbalance: all traffic for "
                f"each file is served by a single OST.",
                "Increase the stripe count (lfs setstripe -c) for large files.",
            )
        ]
    return []


@_trigger("LUSTRE_STRIPE_SIZE_MISMATCH")
def t_stripe_size(log: DarshanLog) -> list[TriggerResult]:
    for rec in log.records_for("LUSTRE"):
        stripe = rec.counters.get("LUSTRE_STRIPE_SIZE", 0)
        if stripe and stripe < 1_048_576:
            return [
                TriggerResult(
                    "LUSTRE_STRIPE_SIZE_MISMATCH",
                    "INFO",
                    f"Stripe size of {stripe} bytes on {rec.path} is below the common "
                    f"1 MiB default.",
                    "Match the stripe size to the dominant transfer size.",
                )
            ]
    return []


@_trigger("LUSTRE_OST_USAGE")
def t_ost_usage(log: DarshanLog) -> list[TriggerResult]:
    lustre = log.records_for("LUSTRE")
    if not lustre:
        return []
    used = set()
    for rec in lustre:
        width = rec.counters.get("LUSTRE_STRIPE_WIDTH", 0)
        for i in range(width):
            used.add(rec.counters.get(f"LUSTRE_OST_ID_{i}", 0))
    num = max(r.counters.get("LUSTRE_OSTS", 0) for r in lustre)
    if num and len(used) / num < 0.25:
        return [
            TriggerResult(
                "LUSTRE_OST_USAGE",
                "WARN",
                f"Application data touches only {len(used)} of {num} OSTs, "
                f"underutilizing the available storage servers (server load imbalance).",
                "Spread files across more OSTs via wider striping.",
            )
        ]
    return []


@_trigger("LUSTRE_MOUNT_INFO")
def t_mount_info(log: DarshanLog) -> list[TriggerResult]:
    mounts = {(rec.fs_type, rec.mount_point) for rec in log.records_for("LUSTRE")}
    return [
        TriggerResult(
            "LUSTRE_MOUNT_INFO", "INFO", f"Files reside on {fs} mounted at {mount}."
        )
        for fs, mount in sorted(mounts)
    ]


@_trigger("JOB_SUMMARY")
def t_job_summary(log: DarshanLog) -> list[TriggerResult]:
    read, written = log.module_bytes("POSIX")
    return [
        TriggerResult(
            "JOB_SUMMARY",
            "INFO",
            f"Job ran {log.header.run_time:.1f} s with {log.header.nprocs} processes; "
            f"POSIX volume: {read} bytes read, {written} bytes written.",
        )
    ]


# -- DXT time-domain triggers (33-35) ------------------------------------------
# Real Drishti grew a DXT module for exactly this reason: some pathologies
# live in *when* operations happen, not in the counters.  These triggers
# are no-ops on counter-only logs (no DXT segments collected).


def _temporal_facts(log: DarshanLog) -> dict[str, dict]:
    from repro.darshan.dxt import cached_temporal_facts

    return {f.kind: f.data for f in cached_temporal_facts(log)}


def _time_skewed(facts: dict[str, dict]) -> bool:
    """The straggler condition, shared by all three DXT triggers."""
    skew = facts.get("dxt_rank_skew")
    return skew is not None and (
        max(skew["span_skew"], skew["time_skew"]) >= THRESHOLDS["dxt_time_skew"]
    )


def _serialized(facts: dict[str, dict]) -> bool:
    """The lock-convoy condition, shared by the serialization/stall triggers."""
    conc = facts.get("dxt_concurrency")
    return (
        conc is not None
        and conc["active_ranks"] >= THRESHOLDS["dxt_serialized_min_ranks"]
        and conc["mean_inflight"] <= THRESHOLDS["dxt_serialized_inflight"]
    )


def _ost_slow(facts: dict[str, dict]) -> bool:
    """The slow-server condition: an attributed OST lagging its peers.

    The deepest attribution of the DXT triggers — when it holds, the
    straggler trigger stays quiet (the "slow rank" is slow because the
    server behind its data is)."""
    latency = facts.get("dxt_ost_latency")
    return (
        latency is not None
        and latency["n_osts"] >= THRESHOLDS["dxt_ost_min_osts"]
        and latency["ratio"] >= THRESHOLDS["dxt_ost_latency_ratio"]
    )


@_trigger("DXT_TIME_STRAGGLER")
def t_dxt_straggler(log: DarshanLog) -> list[TriggerResult]:
    facts = _temporal_facts(log)
    skew = facts.get("dxt_rank_skew")
    if skew is None:
        return []
    if _ost_slow(facts):
        return []  # a degraded server owns this timeline, not a rank
    stretched = max(skew["span_skew"], skew["time_skew"])
    if _time_skewed(facts) and skew["bytes_ratio"] <= THRESHOLDS["dxt_bytes_balanced"]:
        return [
            TriggerResult(
                "DXT_TIME_STRAGGLER",
                "HIGH",
                f"DXT timeline shows rank load imbalance in time: rank "
                f"{skew['slowest_rank']} occupies an I/O window {stretched:.1f}x the "
                f"median rank's while per-rank byte volume stays balanced "
                f"({skew['bytes_ratio']:.2f}x the median).",
                "Profile the straggler rank and rebalance its work or request sizes.",
            )
        ]
    return []


@_trigger("DXT_SERIALIZED_IO")
def t_dxt_serialized(log: DarshanLog) -> list[TriggerResult]:
    facts = _temporal_facts(log)
    conc = facts.get("dxt_concurrency")
    if conc is None:
        return []
    if _time_skewed(facts):
        return []  # one straggler's lone tail also reads as serial
    if _serialized(facts):
        return [
            TriggerResult(
                "DXT_SERIALIZED_IO",
                "HIGH",
                f"DXT timeline shows serialized shared-file access (lock contention): "
                f"a mean of {conc['mean_inflight']:.2f} operations in flight although "
                f"{conc['active_ranks']} ranks perform I/O.",
                "Use collective I/O or stripe-aligned, disjoint per-rank regions.",
            )
        ]
    return []


@_trigger("DXT_IO_STALLS")
def t_dxt_stalls(log: DarshanLog) -> list[TriggerResult]:
    facts = _temporal_facts(log)
    idle = facts.get("dxt_idle")
    if idle is None:
        return []
    if _time_skewed(facts):
        return []  # the straggler trigger owns this timeline
    if _serialized(facts):
        return []  # the serialization trigger owns this timeline
    repeated_gaps = (
        idle["n_gaps"] >= THRESHOLDS["dxt_stall_gaps"]
        and idle["idle_fraction"] >= THRESHOLDS["dxt_stall_idle_fraction"]
    )
    if repeated_gaps or idle["stalled_ranks"] >= THRESHOLDS["dxt_stalled_ranks"]:
        return [
            TriggerResult(
                "DXT_IO_STALLS",
                "WARN",
                f"DXT timeline shows repeated I/O stalls: {idle['n_gaps']} pauses "
                f"covering {100 * idle['idle_fraction']:.0f}% of the span, and "
                f"{idle['stalled_ranks']} rank(s) stalled while their peers kept "
                f"doing I/O (possible interference from other jobs or a "
                f"producer/consumer hand-off).",
                "Overlap I/O with computation or stage through a burst buffer.",
            )
        ]
    return []


# -- DXT per-OST server-attribution triggers (36-37) --------------------------
# Real Lustre DXT records the OST list per segment; these two triggers
# consume the interned ost column's reductions and localize degradation
# to named servers.  Like the other DXT triggers, they are no-ops on
# counter-only logs — and on attributed logs whose servers are healthy.


@_trigger("DXT_OST_SLOW_SERVER")
def t_dxt_ost_slow_server(log: DarshanLog) -> list[TriggerResult]:
    facts = _temporal_facts(log)
    latency = facts.get("dxt_ost_latency")
    if latency is None or not _ost_slow(facts):
        return []
    ids = ", ".join(str(o) for o in latency["slow_osts"])
    return [
        TriggerResult(
            "DXT_OST_SLOW_SERVER",
            "HIGH",
            f"DXT server attribution shows server load imbalance from degraded "
            f"OST(s) {ids}: they sustain {latency['slow_mbps']:.1f} MiB/s against "
            f"a median OST rate of {latency['median_mbps']:.1f} MiB/s "
            f"({latency['ratio']:.1f}x slower than their peers).",
            "Check the degraded OST(s) and restripe affected files away from them.",
        )
    ]


@_trigger("DXT_OST_HOTSPOT")
def t_dxt_ost_hotspot(log: DarshanLog) -> list[TriggerResult]:
    facts = _temporal_facts(log)
    skew = facts.get("dxt_ost_skew")
    if skew is None:
        return []
    if (
        skew["n_osts"] >= THRESHOLDS["dxt_ost_min_osts"]
        and skew["skew"] >= THRESHOLDS["dxt_ost_time_skew"]
    ):
        return [
            TriggerResult(
                "DXT_OST_HOTSPOT",
                "WARN",
                f"DXT server attribution shows OST {skew['hot_ost']} absorbing "
                f"{100 * skew['time_share']:.0f}% of server service time against "
                f"{100 * skew['bytes_share']:.0f}% of the bytes (server load "
                f"imbalance: {skew['skew']:.1f}x its byte share).",
                "Investigate the hot OST and rebalance striping off it.",
            )
        ]
    return []


def run_triggers(log: DarshanLog) -> list[TriggerResult]:
    """Run all 37 triggers over ``log``."""
    results: list[TriggerResult] = []
    for fn in TRIGGERS.values():
        results.extend(fn(log))
    return results
