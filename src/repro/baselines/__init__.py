"""Baseline diagnosis tools the paper compares against.

* :mod:`repro.baselines.drishti` — a reimplementation of Drishti's
  trigger-based analysis (30 heuristic triggers, fixed thresholds,
  hard-coded explanation/recommendation strings);
* :mod:`repro.baselines.ion` — ION, the proof-of-concept tool that sends
  an engineered prompt plus the raw parsed trace straight to an LLM.
"""

from repro.baselines.drishti import DrishtiTool
from repro.baselines.ion import IONTool

__all__ = ["DrishtiTool", "IONTool"]
