"""ION: LLM diagnosis by direct prompting (Egersdoerfer et al., HotStorage'24).

The proof-of-concept predecessor of IOAgent: take ``darshan-parser``
output, wrap it in an engineered prompt, and send the whole thing to the
model.  Everything the paper criticizes follows from that design — the
trace may vastly exceed the context window (lost-in-the-middle losses),
there is no injected domain knowledge (misconceptions go unchecked), and
no references can be produced.
"""

from __future__ import annotations

from repro.core.registry import register_tool
from repro.core.report import DiagnosisReport
from repro.darshan.log import DarshanLog
from repro.darshan.writer import render_darshan_text
from repro.llm.client import LLMClient, Usage
from repro.llm.tasks.plain import build_plain_prompt

__all__ = ["IONTool"]


class IONTool:
    """Plain-prompt LLM baseline (a `DiagnosticTool`)."""

    name = "ion"

    def __init__(self, client: LLMClient | None = None, model: str = "gpt-4o", seed: int = 0) -> None:
        self.client = client or LLMClient(seed=seed)
        self.model = model

    def diagnose(self, log: DarshanLog, trace_id: str = "trace") -> DiagnosisReport:
        """Diagnose one Darshan log by direct prompting."""
        text = render_darshan_text(log)
        prompt = build_plain_prompt(text)
        answer = self.client.complete(prompt, model=self.model, call_id=f"ion/{trace_id}").text
        return DiagnosisReport(trace_id=trace_id, model=self.model, text=answer)

    def usage(self) -> Usage:
        """Cumulative LLM spend across every diagnosis this tool ran."""
        return self.client.total_usage()


register_tool("ion", IONTool, replace=True)
