"""Shared failure shape for every name registry in the repo.

Five registries hand out objects by short name — diagnosis tools
(:mod:`repro.core.registry`), workload scenarios and run series
(:mod:`repro.workloads.scenarios`), fault plans
(:mod:`repro.resilience.faults`), and analysis checks
(:mod:`repro.analysis.registry`).  They all fail the same way: someone
asked for a name nobody registered.  :class:`RegistryLookupError` is the
one base class for that failure, so callers can catch "any unknown
registry name" generically and the CLI renders every variant through one
formatter (:meth:`RegistryLookupError.render_cli`) instead of hand-rolling
five near-identical error blocks.

Subclasses customize three class attributes — ``noun`` (what kind of name
was unknown), ``available_label`` (the label on the options list), and
``cli_noun`` (the noun the CLI error line uses, when it differs) — plus
optionally :meth:`hints` for domain-specific guidance lines and
:meth:`available_cli_line` when the options list is too long to inline.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["RegistryLookupError"]


class RegistryLookupError(KeyError):
    """A registry was asked for one or more names nobody registered.

    ``unknown`` is the tuple of unmatched names (a single-name lookup
    wraps it); ``available`` is the registry's current offering, in the
    registry's canonical order.
    """

    #: What kind of name was unknown ("tool", "scenario", "fault plan", ...).
    noun = "entry"
    #: Label introducing the options list in ``str(exc)``.
    available_label = "available entries"
    #: Noun used on the CLI error line when it differs from ``noun``
    #: (e.g. scenario lookups speak of "selectors").  Empty → ``noun``.
    cli_noun = ""

    def __init__(self, unknown: str | Iterable[str], available: Iterable[str]) -> None:
        names = (unknown,) if isinstance(unknown, str) else tuple(unknown)
        super().__init__(", ".join(names))
        self.unknown: tuple[str, ...] = names
        self.available: tuple[str, ...] = tuple(available)

    # -- shared rendering --------------------------------------------------

    def _pluralized(self, noun: str) -> str:
        return noun if len(self.unknown) == 1 else noun + "s"

    def options(self) -> str:
        """The options list as one comma-joined string (``<none>`` if empty)."""
        return ", ".join(self.available) or "<none>"

    def __str__(self) -> str:
        names = ", ".join(repr(n) for n in self.unknown)
        return f"unknown {self._pluralized(self.noun)} {names}; {self.available_label}: {self.options()}"

    # -- CLI rendering (one formatter for all five registries) -------------

    def hints(self) -> tuple[str, ...]:
        """Domain-specific guidance lines for the CLI block (none by default)."""
        return ()

    def available_cli_line(self) -> str:
        """The final "here are your options" line of the CLI block."""
        return f"{self.available_label}: {self.options()}"

    def render_cli(self) -> str:
        """The friendly multi-line error block every CLI surface prints.

        Shape: an ``error:`` line naming the unknown name(s), any
        subclass hints, then where to find the valid options.  Callers
        print this to stderr and exit 2.
        """
        noun = self._pluralized(self.cli_noun or self.noun)
        lines = [f"error: unknown {noun}: {', '.join(self.unknown)}"]
        lines.extend(self.hints())
        lines.append(self.available_cli_line())
        return "\n".join(lines)
