"""Byte-count and duration formatting/parsing.

Darshan counters are raw byte counts; diagnosis text and the knowledge base
speak in KiB/MiB/GiB.  These helpers are the single place where the two are
converted, so the NL templates and the fact-extraction regexes in
:mod:`repro.llm` stay in sync.
"""

from __future__ import annotations

__all__ = ["KiB", "MiB", "GiB", "format_bytes", "parse_bytes", "format_count", "format_duration"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_UNITS = [(GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]

_PARSE_UNITS = {
    "b": 1,
    "bytes": 1,
    "byte": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}


def format_bytes(n: float) -> str:
    """Render a byte count in the largest unit that keeps the value >= 1.

    >>> format_bytes(4 * MiB)
    '4.00 MiB'
    >>> format_bytes(512)
    '512 B'
    """
    n = float(n)
    for factor, suffix in _UNITS:
        if abs(n) >= factor:
            return f"{n / factor:.2f} {suffix}"
    return f"{int(n)} B"


def parse_bytes(text: str) -> int:
    """Parse strings like ``"4M"``, ``"1 MiB"``, ``"47008"`` into bytes.

    Raises :class:`ValueError` on malformed input.
    """
    s = text.strip().lower().replace(" ", "")
    i = len(s)
    while i > 0 and not s[i - 1].isdigit() and s[i - 1] != ".":
        i -= 1
    num, unit = s[:i], s[i:]
    if not num:
        raise ValueError(f"no numeric part in byte string {text!r}")
    if unit and unit not in _PARSE_UNITS:
        raise ValueError(f"unknown byte unit {unit!r} in {text!r}")
    return int(float(num) * _PARSE_UNITS.get(unit, 1))


def format_count(n: int) -> str:
    """Render an operation count with thousands separators (``12,345``)."""
    return f"{int(n):,}"


def format_duration(seconds: float) -> str:
    """Render a duration in seconds with sensible precision.

    >>> format_duration(722.0)
    '722.0 s'
    >>> format_duration(0.0042)
    '4.200 ms'
    """
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds:.1f} s"
