"""Text helpers shared by the SimLLM tokenizer, NL templates, and reports."""

from __future__ import annotations

import re
import textwrap

__all__ = ["simple_tokens", "sentence_split", "wrap_paragraph", "slugify", "dedent_strip"]

_WORD_RE = re.compile(r"[A-Za-z0-9_/.\-]+|[^\sA-Za-z0-9]")
_SENT_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9])")


def simple_tokens(text: str) -> list[str]:
    """Split text into word-ish tokens (the SimLLM's token unit).

    Numbers, identifiers, and paths count as single tokens; punctuation is
    token-per-character.  This over-counts slightly relative to BPE, which
    is the conservative direction for modelling context-window overflow.
    """
    return _WORD_RE.findall(text)


def sentence_split(text: str) -> list[str]:
    """Split prose into sentences on terminal punctuation boundaries."""
    parts = [p.strip() for p in _SENT_RE.split(text.strip())]
    return [p for p in parts if p]


def wrap_paragraph(text: str, width: int = 88) -> str:
    """Re-wrap a paragraph to ``width`` columns for report rendering."""
    return textwrap.fill(" ".join(text.split()), width=width)


def slugify(text: str) -> str:
    """Lowercase-kebab a label for filenames and anonymized tool ids."""
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


def dedent_strip(text: str) -> str:
    """``textwrap.dedent`` + strip, for inline prompt templates."""
    return textwrap.dedent(text).strip()
