"""Deterministic random-number streams.

Everything in this reproduction must be reproducible run-to-run: trace
synthesis, the SimLLM's capability noise, judge tie-breaking.  Rather than
sharing one global generator (whose consumption order would couple unrelated
subsystems), each consumer derives an independent :class:`numpy.random.
Generator` from a *root seed* plus a string *scope* via a stable hash.

This mirrors the "independent streams per rank" idiom from parallel HPC
codes: changing how many draws one subsystem makes never perturbs another.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for"]


def derive_seed(root_seed: int, *scope: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a scope path.

    The scope components are stringified and hashed with BLAKE2b, so the
    mapping is stable across processes and Python versions (unlike
    ``hash()``, which is salted).

    >>> derive_seed(7, "tracebench", "io500", 3) == derive_seed(7, "tracebench", "io500", 3)
    True
    >>> derive_seed(7, "a") != derive_seed(7, "b")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode("utf-8"))
    for part in scope:
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


def rng_for(root_seed: int, *scope: object) -> np.random.Generator:
    """Return an independent PCG64 generator for ``(root_seed, *scope)``."""
    return np.random.default_rng(derive_seed(root_seed, *scope))
