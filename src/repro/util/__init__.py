"""Shared utilities used by every subsystem of the IOAgent reproduction.

The helpers here are deliberately small and dependency-free (NumPy only):
seeded random-number streams (:mod:`repro.util.rng`), byte/unit formatting
(:mod:`repro.util.units`), text helpers (:mod:`repro.util.text`), histogram
and distribution statistics (:mod:`repro.util.stats`), and a deterministic
parallel map (:mod:`repro.util.parallel`) used by the tree merger and the
self-reflection filter, mirroring the paper's per-level parallelism.
"""

from repro.util.parallel import parallel_map
from repro.util.rng import derive_seed, rng_for
from repro.util.stats import gini, normalized_variance, weighted_percentile
from repro.util.units import format_bytes, format_count, format_duration, parse_bytes

__all__ = [
    "derive_seed",
    "rng_for",
    "parallel_map",
    "format_bytes",
    "format_count",
    "format_duration",
    "parse_bytes",
    "gini",
    "normalized_variance",
    "weighted_percentile",
]
