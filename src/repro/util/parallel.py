"""Deterministic parallel map.

The paper runs all pairwise merges at each tree level in parallel, and the
self-reflection source filter "is run in parallel over all retrieved
sources" (§IV).  This helper provides that concurrency with thread pools
(the work units are pure-Python prompt evaluations, so threads suffice and
keep everything in-process and deterministic) while preserving input order
in the output, which the merger relies on.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, concurrently, preserving input order.

    ``max_workers=None`` lets the executor pick; ``max_workers=1`` (or a
    single item) degrades to a plain serial loop, which keeps tracebacks
    simple in tests.  Exceptions propagate to the caller exactly as with
    the serial loop.
    """
    seq: Sequence[T] = list(items)
    if max_workers == 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, seq))
