"""Distribution statistics used by summaries, triggers, and the judge.

All functions are vectorized over NumPy arrays; none copies its input.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["gini", "normalized_variance", "weighted_percentile", "histogram_fractions"]


def gini(values: Sequence[float] | np.ndarray) -> float:
    """Gini coefficient of non-negative ``values`` (0 = even, →1 = skewed).

    Used to quantify rank and server load imbalance.  An all-zero or empty
    input is perfectly balanced by convention (returns 0.0).
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 0.0
    if np.any(x < 0):
        raise ValueError("gini is defined for non-negative values")
    total = x.sum()
    if total == 0.0:
        return 0.0
    xs = np.sort(x)
    n = xs.size
    # Standard closed form: G = (2*sum(i*x_i)/(n*sum(x))) - (n+1)/n, i = 1..n
    idx = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.dot(idx, xs)) / (n * total) - (n + 1.0) / n)


def normalized_variance(values: Sequence[float] | np.ndarray) -> float:
    """Coefficient-of-variation squared: Var(x) / mean(x)^2.

    Darshan's ``*_F_VARIANCE_RANK_*`` counters are raw variances whose scale
    depends on the workload; normalizing by the squared mean makes the
    imbalance triggers threshold-able across workloads.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 0.0
    mean = x.mean()
    if mean == 0.0:
        return 0.0
    return float(x.var() / (mean * mean))


def weighted_percentile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Percentile ``q`` in [0, 100] of ``values`` weighted by ``weights``.

    Used to report "typical request size" from Darshan size-bin histograms
    (bin midpoints weighted by bin counts).
    """
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if v.shape != w.shape:
        raise ValueError("values and weights must have the same shape")
    if v.size == 0 or w.sum() == 0:
        return 0.0
    order = np.argsort(v)
    v, w = v[order], w[order]
    cdf = np.cumsum(w)
    cdf /= cdf[-1]
    return float(np.interp(q / 100.0, cdf, v))


def histogram_fractions(counts: Sequence[int] | np.ndarray) -> np.ndarray:
    """Normalize a histogram of counts to fractions summing to 1.

    Returns an all-zero array (not NaN) when the histogram is empty, so
    summary JSON stays finite.
    """
    c = np.asarray(counts, dtype=np.float64)
    total = c.sum()
    if total == 0.0:
        return np.zeros_like(c)
    return c / total
