"""Deterministic hashed TF-IDF embeddings.

Stands in for ``text-embedding-3-large``: tokens are hashed into a
fixed-dimension space (the "hashing trick"), weighted by TF-IDF fitted on
the corpus, and L2-normalized so cosine similarity is a dot product.  The
model is fully deterministic and dependency-free, and it preserves the one
property the pipeline needs: text about a topic lands near other text
about that topic, imperfectly — imperfectly matters, because the
self-reflection filter exists to clean up vector-retrieval noise.
"""

from __future__ import annotations

import hashlib
import math
import re

import numpy as np

__all__ = ["HashedTfIdfEmbedder"]

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9\-/]{1,}")

# Ubiquitous words carry no topical signal; dropping them keeps the
# hashed space from being dominated by glue words.
_STOPWORDS = frozenset(
    """a an and are as at be by for from has have in into is it its of on or
    that the their this to was were will with the such so no not can""".split()
)


def _tokenize(text: str) -> list[str]:
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in _STOPWORDS]


def _bucket(token: str, dim: int) -> int:
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little") % dim


class HashedTfIdfEmbedder:
    """Hashing-trick TF-IDF embedder with cosine geometry."""

    def __init__(self, dim: int = 1024) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._idf: dict[int, float] = {}
        self._fitted = False

    def fit(self, texts: list[str]) -> "HashedTfIdfEmbedder":
        """Fit IDF weights on the corpus (bucket-level document counts)."""
        n_docs = len(texts)
        df: dict[int, int] = {}
        for text in texts:
            buckets = {_bucket(tok, self.dim) for tok in _tokenize(text)}
            for b in buckets:
                df[b] = df.get(b, 0) + 1
        self._idf = {
            b: math.log((1 + n_docs) / (1 + count)) + 1.0 for b, count in df.items()
        }
        self._fitted = True
        return self

    def embed(self, text: str) -> np.ndarray:
        """Embed one text; unit-norm unless the text is empty."""
        if not self._fitted:
            raise RuntimeError("embedder must be fitted on the corpus first")
        vec = np.zeros(self.dim, dtype=np.float64)
        tokens = _tokenize(text)
        if not tokens:
            return vec
        for tok in tokens:
            b = _bucket(tok, self.dim)
            vec[b] += self._idf.get(b, 1.0)
        norm = float(np.linalg.norm(vec))
        if norm > 0:
            vec /= norm
        return vec

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many texts into a (n, dim) matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(t) for t in texts])
