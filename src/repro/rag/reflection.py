"""Self-reflection source filtering (paper §IV-B3).

Runs the cheap relevance model over every retrieved source in parallel
(the paper: "this source filtering is run in parallel over all retrieved
sources") and keeps those judged RELEVANT.
"""

from __future__ import annotations

from repro.llm.client import LLMClient
from repro.llm.tasks.relevance import build_relevance_prompt
from repro.util.parallel import parallel_map

__all__ = ["reflect_filter"]


def reflect_filter(
    description: str,
    sources: list[str],
    client: LLMClient,
    model: str = "gpt-4o-mini",
    call_id_prefix: str = "",
    max_workers: int | None = None,
) -> list[str]:
    """Return the subset of ``sources`` the reflection model keeps."""

    def judge_one(indexed: tuple[int, str]) -> bool:
        i, source = indexed
        prompt = build_relevance_prompt(description, source)
        response = client.complete(
            prompt, model=model, call_id=f"{call_id_prefix}/reflect/{i}"
        )
        return response.text.startswith("RELEVANT")

    verdicts = parallel_map(judge_one, list(enumerate(sources)), max_workers=max_workers)
    return [src for src, keep in zip(sources, verdicts) if keep]
