"""The HPC-I/O knowledge corpus: 66 synthetic works (paper §IV-B2).

The paper surveyed five years of 'HPC I/O Performance' literature from the
ACM DL and IEEE Xplore, manually filtering the top hits down to 66 key
works.  We cannot ship those texts, so this module *writes* a corpus with
the same shape: each work has a title, authors, venue, year, topic coverage,
and a ~150-word body of concrete, citable guidance.  Bodies are assembled
from curated per-topic knowledge statements with seeded variation, so the
corpus is deterministic, diverse enough to exercise retrieval, and every
claim in it is real HPC I/O lore (this is the knowledge RAG is supposed to
inject — including the statements that *refute* the misconception bank).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import rng_for

__all__ = ["KnowledgeDoc", "TOPICS", "ISSUE_TOPICS", "topics_for_issue", "build_corpus"]

# Topic vocabulary.  Issue keys map onto these (see ISSUE_TOPICS).
TOPICS: tuple[str, ...] = (
    "small-io",
    "alignment",
    "access-pattern",
    "shared-file",
    "metadata",
    "striping",
    "collective-io",
    "rank-balance",
    "server-balance",
    "stdio",
    "repetition",
    "mpi",
    "burst-buffer",
    "general",
)

ISSUE_TOPICS: dict[str, tuple[str, ...]] = {
    "small_read": ("small-io",),
    "small_write": ("small-io",),
    "misaligned_read": ("alignment", "striping"),
    "misaligned_write": ("alignment", "striping"),
    "random_read": ("access-pattern",),
    "random_write": ("access-pattern",),
    "shared_file_access": ("shared-file", "collective-io"),
    "high_metadata_load": ("metadata",),
    "server_imbalance": ("striping", "server-balance"),
    "rank_imbalance": ("rank-balance",),
    "no_mpi": ("mpi", "collective-io"),
    "no_collective_read": ("collective-io",),
    "no_collective_write": ("collective-io",),
    "low_level_read": ("stdio",),
    "low_level_write": ("stdio",),
    "repetitive_read": ("repetition", "burst-buffer"),
    # Time-domain issues lean on the shared-file/locking and balance
    # literature; no dedicated corpus topic exists (yet).
    "lock_contention": ("shared-file", "collective-io"),
    "io_stall": ("rank-balance", "burst-buffer"),
}


def topics_for_issue(issue_key: str) -> tuple[str, ...]:
    """Knowledge topics relevant to an issue (for reference attachment)."""
    return ISSUE_TOPICS.get(issue_key, ("general",))


@dataclass(frozen=True)
class KnowledgeDoc:
    """One work in the knowledge base."""

    doc_id: str  # "S01".."S66"
    title: str
    authors: str
    venue: str
    year: int
    topics: tuple[str, ...]
    body: str

    @property
    def citation(self) -> str:
        """Short citation used in diagnosis reference lists."""
        return f"[{self.doc_id}] {self.authors}, \"{self.title}\", {self.venue} {self.year}"


# Per-topic knowledge statements.  Each topic gets several independent
# statements; documents sample 3-4 of them, so different documents on one
# topic overlap but are not identical (which retrieval needs).
_KNOWLEDGE: dict[str, list[str]] = {
    "small-io": [
        "Requests smaller than roughly one megabyte leave parallel file system "
        "bandwidth unused because per-request latency dominates transfer time; "
        "aggregating small I/O into large contiguous requests routinely yields "
        "order-of-magnitude speedups on Lustre and GPFS.",
        "Contrary to the belief that client caches coalesce everything, small "
        "writes frequently reach the object servers individually once locks or "
        "sync points intervene, so small request sizes remain a first-order "
        "performance problem.",
        "Write-behind buffering in the application or middleware is the standard "
        "remedy for frequent small writes; collective MPI-IO buffering achieves "
        "the same effect transparently across ranks.",
        "Histograms of request sizes from Darshan are the quickest way to spot "
        "small-I/O pathologies: a median request below 128 KiB across thousands "
        "of operations is a reliable red flag.",
    ],
    "alignment": [
        "I/O requests whose offsets do not fall on file system block or stripe "
        "boundaries trigger read-modify-write cycles and extra extent lock "
        "round-trips; aligning record sizes to the stripe size removes this tax.",
        "Odd transfer sizes such as 47008 bytes, as used by ior-hard, are a "
        "classic source of misalignment: every request straddles a boundary "
        "somewhere in the file.",
        "Padding data structures so each rank's region starts on a stripe "
        "boundary is a cheap, purely client-side fix for misaligned access.",
        "Darshan's FILE_NOT_ALIGNED counter directly measures boundary-crossing "
        "requests; sustained ratios above half of all accesses deserve action.",
    ],
    "access-pattern": [
        "Random access defeats server-side prefetching: once the request stream "
        "stops being sequential, measured throughput on disk-backed OSTs drops "
        "to a small fraction of streaming bandwidth, even on flash it costs "
        "substantial IOPS overhead.",
        "Sorting work items by file offset before issuing I/O restores "
        "sequentiality at negligible compute cost and is among the most "
        "effective application-level I/O optimizations.",
        "Contrary to the claim that modern storage makes access order "
        "irrelevant, production measurements consistently show sequential "
        "streams outperforming random ones on parallel file systems.",
        "Collective buffering converts scattered per-rank accesses into large "
        "ordered transfers, masking randomized patterns from the file system.",
    ],
    "shared-file": [
        "Many ranks writing disjoint regions of one shared file contend for "
        "extent locks on the same OSTs; without collective coordination the "
        "accesses serialize and bandwidth collapses as rank counts grow.",
        "Single-shared-file output simplifies data management but demands wide "
        "striping plus collective I/O to perform; otherwise file-per-process "
        "with a post-processing merge is usually faster.",
        "Lock contention on shared files is the canonical explanation when "
        "per-rank bandwidth falls as more ranks are added to the same file.",
        "The ior-hard benchmark exists precisely because shared-file, "
        "interleaved, odd-sized accesses are the worst case for Lustre locking.",
    ],
    "metadata": [
        "Metadata operations — opens, creates, stats — are serviced by a small "
        "number of metadata servers, so a workload that creates thousands of "
        "files per process is bottlenecked there no matter how many OSTs exist.",
        "Far from being negligible, metadata overhead routinely dominates "
        "runtime in many-small-file workloads; mdtest was designed to expose "
        "exactly this regime.",
        "Keeping files open across timesteps, batching creates, and packing "
        "many logical objects into container formats such as HDF5 are the "
        "standard mitigations for metadata storms.",
        "When Darshan shows metadata time rivaling data-transfer time, the fix "
        "is structural (fewer files) rather than parameter tuning.",
    ],
    "striping": [
        "A Lustre stripe count of 1 places a file's entire load on a single "
        "OST; contrary to the common belief that the default 1 MiB stripe "
        "configuration is optimal, width-1 striping caps a file's bandwidth at "
        "one server's throughput and is the most frequent striping mistake.",
        "Large shared files should be striped across many OSTs — `lfs "
        "setstripe -c 16` or `-c -1` — while tiny per-process files are better "
        "left at width 1 to limit metadata cost.",
        "Matching the stripe size to the dominant transfer size (for example "
        "`lfs setstripe -S 4M` for 4 MiB transfers) keeps each request on a "
        "single OST and avoids split transfers.",
        "Progressive file layouts let small files stay narrow while large "
        "files widen automatically, removing the need to hand-tune every path.",
    ],
    "collective-io": [
        "Collective MPI-IO (two-phase I/O) aggregates many small, scattered "
        "per-rank requests into few large, aligned, well-ordered transfers "
        "issued by designated aggregators; it is the single most effective "
        "remedy for shared-file and small-request pathologies.",
        "Independent MPI-IO calls forfeit collective buffering: Darshan traces "
        "showing thousands of independent operations and zero collective ones "
        "indicate an easily recoverable optimization gap.",
        "POSIX-level I/O from an MPI application at scale leaves coordination "
        "on the table; routing the same accesses through MPI_File_write_all "
        "typically multiplies achieved bandwidth.",
        "Collective I/O performance depends on hints such as cb_nodes and "
        "cb_buffer_size; defaults are sane but worth tuning for wide runs.",
    ],
    "rank-balance": [
        "When a few MPI ranks perform most of the I/O, the job's I/O phase "
        "lasts as long as the busiest rank; Darshan's fastest/slowest rank and "
        "variance counters expose this skew directly.",
        "Funneling all output through rank 0 is a legacy pattern that "
        "serializes I/O; collective operations or balanced domain decomposition "
        "restore parallelism.",
        "Per-rank byte variance normalized by the mean squared is a robust "
        "scale-free indicator of rank load imbalance.",
    ],
    "server-balance": [
        "Uneven traffic across object storage targets — a few hot OSTs serving "
        "most bytes — shows up as low effective server utilization and caps "
        "aggregate bandwidth regardless of client parallelism.",
        "Restriping hot files and randomizing file placement are the standard "
        "fixes when monitoring shows a handful of OSTs saturated while the "
        "rest idle.",
        "The effective number of utilized servers (inverse Herfindahl of "
        "per-OST bytes) summarizes placement quality in a single number.",
    ],
    "stdio": [
        "The stdio layer (fopen/fread/fwrite) buffers in small user-space "
        "chunks, serializes access, and cannot express parallel semantics; "
        "bulk data movement through stdio on a parallel file system wastes "
        "most of the available bandwidth.",
        "stdio is fine for configuration files and logs, but bulk reads and "
        "writes belong on POSIX, MPI-IO, or a parallel high-level library.",
        "Darshan's STDIO module makes it easy to quantify how much volume "
        "flows through the slow path; more than a few percent is a smell.",
    ],
    "repetition": [
        "Reading the same file region repeatedly multiplies network and server "
        "load for no new information; Darshan exposes this as bytes-read far "
        "exceeding the file's extent.",
        "Application-level caching — keeping the hot region in memory after "
        "the first pass — removes re-read traffic entirely and is usually a "
        "few lines of code.",
        "Staging repeatedly-accessed inputs into node-local storage or a burst "
        "buffer converts repeated remote reads into local memory traffic.",
    ],
    "mpi": [
        "Running many independent processes without MPI forecloses every "
        "coordinated-I/O optimization; even embarrassingly parallel workloads "
        "benefit from an MPI layer purely for its parallel I/O stack.",
        "MPI-IO's file views and derived datatypes let non-contiguous "
        "accesses be described once and optimized by the library instead of "
        "issued as many small operations.",
        "High-level libraries (HDF5, PnetCDF, ADIOS) inherit MPI-IO's "
        "collective machinery while adding portable, self-describing formats.",
    ],
    "burst-buffer": [
        "Burst buffers absorb bursty checkpoint traffic at memory-class "
        "bandwidth and drain to the parallel file system asynchronously, "
        "decoupling application progress from PFS throughput.",
        "Staging hot inputs into a burst buffer before the compute phase "
        "eliminates repeated cold reads from the parallel file system.",
    ],
    "general": [
        "Darshan's counter-level characterization is lightweight enough for "
        "always-on deployment and captures volumes, request sizes, alignment, "
        "and per-rank timing for every file an application touches.",
        "Most production I/O problems fall into a dozen recurring categories — "
        "small requests, misalignment, metadata storms, poor striping, missing "
        "collectives — each with a well-known remedy.",
        "I/O tuning should proceed from measurement: trace first, then change "
        "one layer at a time, re-measuring after each change.",
        "The gap between peak and achieved I/O bandwidth on HPC systems is "
        "usually a software configuration problem, not a hardware limit.",
    ],
}

_VENUES = ("SC", "IPDPS", "CLUSTER", "HPDC", "FAST", "PDSW", "CCGrid", "HotStorage", "TPDS")
_SURNAMES = (
    "Chen", "Garcia", "Kim", "Patel", "Nguyen", "Muller", "Rossi", "Tanaka",
    "Olsen", "Costa", "Novak", "Singh", "Dubois", "Haas", "Silva", "Park",
)
_TITLE_STEMS = {
    "small-io": "Request Aggregation for Small I/O on Parallel File Systems",
    "alignment": "Alignment-Aware Access in Striped Storage",
    "access-pattern": "Sequentializing Access Patterns in Scientific Workloads",
    "shared-file": "Taming Shared-File Contention at Scale",
    "metadata": "Metadata Scalability in Many-File Workloads",
    "striping": "Striping Policies for Lustre-Class File Systems",
    "collective-io": "Two-Phase Collective I/O in Practice",
    "rank-balance": "Balancing Per-Rank I/O in MPI Applications",
    "server-balance": "Server Load Balance in Object Storage Backends",
    "stdio": "The Cost of Buffered Streams for Bulk Data",
    "repetition": "Eliminating Redundant Reads in Analysis Pipelines",
    "mpi": "Coordinated I/O for Multi-Process Applications",
    "burst-buffer": "Burst Buffers as an I/O Impedance Match",
    "general": "A Field Guide to HPC I/O Performance Problems",
}
_TITLE_QUALIFIERS = (
    "A Measurement Study", "Design and Evaluation", "Lessons from Production",
    "An Empirical Analysis", "Revisited", "at Exascale", "A Practitioner's View",
)

# How many documents to mint per topic (sums to 66).
_DOCS_PER_TOPIC = {
    "small-io": 6, "alignment": 5, "access-pattern": 5, "shared-file": 5,
    "metadata": 5, "striping": 6, "collective-io": 6, "rank-balance": 4,
    "server-balance": 4, "stdio": 4, "repetition": 4, "mpi": 4,
    "burst-buffer": 3, "general": 5,
}


def build_corpus(seed: int = 0) -> list[KnowledgeDoc]:
    """Mint the 66-document corpus deterministically."""
    assert sum(_DOCS_PER_TOPIC.values()) == 66
    docs: list[KnowledgeDoc] = []
    serial = 0
    for topic, n_docs in _DOCS_PER_TOPIC.items():
        statements = _KNOWLEDGE[topic]
        for j in range(n_docs):
            serial += 1
            rng = rng_for(seed, "corpus", topic, j)
            doc_id = f"S{serial:02d}"
            # Each doc leads with a different statement so retrieval can
            # distinguish them, then adds 2 more plus one general remark.
            lead = statements[j % len(statements)]
            extra_pool = [s for s in statements if s is not lead]
            k = min(2, len(extra_pool))
            extras = [extra_pool[int(i)] for i in rng.choice(len(extra_pool), size=k, replace=False)]
            general = _KNOWLEDGE["general"][int(rng.integers(len(_KNOWLEDGE["general"])))]
            body = " ".join([lead, *extras, general])
            qualifier = _TITLE_QUALIFIERS[int(rng.integers(len(_TITLE_QUALIFIERS)))]
            author_idx = rng.choice(len(_SURNAMES), size=2, replace=False)
            authors = f"{_SURNAMES[int(author_idx[0])]} and {_SURNAMES[int(author_idx[1])]}"
            secondary = "general" if topic != "general" else "mpi"
            docs.append(
                KnowledgeDoc(
                    doc_id=doc_id,
                    title=f"{_TITLE_STEMS[topic]}: {qualifier}",
                    authors=authors,
                    venue=_VENUES[int(rng.integers(len(_VENUES)))],
                    year=int(2019 + rng.integers(6)),
                    topics=(topic, secondary),
                    body=body,
                )
            )
    return docs
