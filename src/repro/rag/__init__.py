"""RAG substrate: domain-knowledge corpus, embeddings, retrieval, reflection.

Reproduces the paper's Domain Knowledge Integrator (§IV-B): a corpus of 66
HPC-I/O works (here written for this repo rather than scraped from digital
libraries), chunked at 512 tokens with 20-token overlap, embedded with a
deterministic hashed TF-IDF model standing in for
``text-embedding-3-large``, indexed for cosine-similarity search, queried
with the top-15 neighbours, and filtered by a cheap-model self-reflection
step that discards sources the vector ranking got wrong.
"""

from repro.rag.chunking import Chunk, chunk_text
from repro.rag.corpus import KnowledgeDoc, TOPICS, build_corpus, topics_for_issue
from repro.rag.embedding import HashedTfIdfEmbedder
from repro.rag.index import (
    SearchHit,
    VectorIndex,
    build_default_index,
    clear_default_index_cache,
    default_index_builds,
)
from repro.rag.reflection import reflect_filter
from repro.rag.retriever import Retriever

__all__ = [
    "KnowledgeDoc",
    "TOPICS",
    "build_corpus",
    "topics_for_issue",
    "Chunk",
    "chunk_text",
    "HashedTfIdfEmbedder",
    "VectorIndex",
    "SearchHit",
    "build_default_index",
    "clear_default_index_cache",
    "default_index_builds",
    "Retriever",
    "reflect_filter",
]
