"""The vector index: cosine top-k over embedded corpus chunks."""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.rag.chunking import Chunk, chunk_text
from repro.rag.corpus import KnowledgeDoc, build_corpus
from repro.rag.embedding import HashedTfIdfEmbedder

__all__ = [
    "SearchHit",
    "VectorIndex",
    "build_default_index",
    "clear_default_index_cache",
    "default_index_builds",
    "DEFAULT_TOP_K",
]

# The paper retrieves the top 15 closest matches per summary fragment.
DEFAULT_TOP_K = 15


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result."""

    chunk: Chunk
    doc: KnowledgeDoc
    score: float


class VectorIndex:
    """Embeds chunks once; answers cosine top-k queries."""

    def __init__(self, docs: list[KnowledgeDoc], embedder: HashedTfIdfEmbedder | None = None) -> None:
        self.docs = {doc.doc_id: doc for doc in docs}
        self.chunks: list[Chunk] = []
        for doc in docs:
            # Index title + body so title words contribute to matching.
            self.chunks.extend(chunk_text(doc.doc_id, f"{doc.title}. {doc.body}"))
        texts = [c.text for c in self.chunks]
        self.embedder = embedder or HashedTfIdfEmbedder()
        if not self.embedder._fitted:  # noqa: SLF001 - deliberate internal check
            self.embedder.fit(texts)
        self._matrix = self.embedder.embed_batch(texts)  # (n_chunks, dim), unit rows

    def __len__(self) -> int:
        return len(self.chunks)

    def search(self, query: str, k: int = DEFAULT_TOP_K) -> list[SearchHit]:
        """Top-``k`` chunks by cosine similarity to ``query``."""
        if k <= 0:
            return []
        q = self.embedder.embed(query)
        scores = self._matrix @ q
        k = min(k, len(self.chunks))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [
            SearchHit(chunk=self.chunks[i], doc=self.docs[self.chunks[i].doc_id], score=float(scores[i]))
            for i in top
        ]


# Module-level memo: every IOAgent / DiagnosisService shares one index per
# seed instead of re-embedding the 66-doc corpus on each construction.  A
# plain dict (not lru_cache) so the memo never evicts under multi-seed use
# and tests can observe/reset it.
_DEFAULT_INDEX_CACHE: dict[int, VectorIndex] = {}
_DEFAULT_INDEX_LOCK = threading.Lock()
_default_index_builds = 0


def build_default_index(seed: int = 0) -> VectorIndex:
    """Build (and memoize per seed) the index over the default 66-doc corpus."""
    global _default_index_builds
    with _DEFAULT_INDEX_LOCK:
        index = _DEFAULT_INDEX_CACHE.get(seed)
        if index is None:
            index = VectorIndex(build_corpus(seed))
            _DEFAULT_INDEX_CACHE[seed] = index
            _default_index_builds += 1
        return index


def default_index_builds() -> int:
    """How many times the default index was actually constructed."""
    return _default_index_builds


def clear_default_index_cache() -> None:
    """Drop all memoized default indices (tests / corpus hot-reload)."""
    with _DEFAULT_INDEX_LOCK:
        _DEFAULT_INDEX_CACHE.clear()
