"""Query construction and retrieval for summary fragments (§IV-B1/B3).

The paper's key observation: raw JSON summaries embed poorly against
prose-form domain knowledge, so queries are the *natural language
descriptions* of fragments.  The retriever simply wraps the index; the
describe step (``repro.core.describe``) produces the query text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rag.index import DEFAULT_TOP_K, SearchHit, VectorIndex

__all__ = ["Retriever"]


@dataclass
class Retriever:
    """Top-k retrieval over the knowledge index."""

    index: VectorIndex
    top_k: int = DEFAULT_TOP_K

    def retrieve(self, description: str) -> list[SearchHit]:
        """Retrieve knowledge for one fragment's NL description."""
        return self.index.search(description, k=self.top_k)

    @staticmethod
    def render_source(hit: SearchHit) -> str:
        """Render a hit as it appears in a diagnosis prompt."""
        doc = hit.doc
        return (
            f"[{doc.doc_id}] \"{doc.title}\" ({doc.authors}, {doc.venue} {doc.year})\n"
            f"Topics: {', '.join(doc.topics)}\n"
            f"{hit.chunk.text}"
        )
