"""Document chunking (LlamaIndex-style: 512-token chunks, 20 overlap).

The paper reports using LlamaIndex defaults — chunk size 512, overlap 20 —
and found retrieval quality insensitive to reasonable variations.  The
chunker operates on word-ish tokens and never splits mid-word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.text import simple_tokens

__all__ = ["Chunk", "chunk_text", "DEFAULT_CHUNK_SIZE", "DEFAULT_OVERLAP"]

DEFAULT_CHUNK_SIZE = 512
DEFAULT_OVERLAP = 20


@dataclass(frozen=True)
class Chunk:
    """One indexed chunk of a source document."""

    doc_id: str
    chunk_index: int
    text: str

    @property
    def chunk_id(self) -> str:
        return f"{self.doc_id}#{self.chunk_index}"


def chunk_text(
    doc_id: str,
    text: str,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    overlap: int = DEFAULT_OVERLAP,
) -> list[Chunk]:
    """Split ``text`` into overlapping chunks of ~``chunk_size`` tokens."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if not 0 <= overlap < chunk_size:
        raise ValueError("overlap must be in [0, chunk_size)")
    tokens = simple_tokens(text)
    if not tokens:
        return []
    chunks: list[Chunk] = []
    step = chunk_size - overlap
    start = 0
    index = 0
    while start < len(tokens):
        window = tokens[start : start + chunk_size]
        chunks.append(Chunk(doc_id=doc_id, chunk_index=index, text=" ".join(window)))
        if start + chunk_size >= len(tokens):
            break
        start += step
        index += 1
    return chunks
