"""Darshan-like instrumentation of the simulated runtime.

Registers as an observer on :class:`repro.sim.runtime.IORuntime` and
accumulates counters with the same semantics real Darshan uses:

* sequential vs. consecutive detection per record (``SEQ_*`` counts ops at
  an offset >= the previous end, ``CONSEC_*`` at exactly the previous end);
* read/write switch counting per record;
* request-size histograms in Darshan's ten bins;
* the four most common access sizes and strides per record;
* memory/file alignment checks;
* per-rank byte and time tallies folded into fastest/slowest/variance
  counters by the shared-file reduction at finalize time;
* a LUSTRE record per file residing on a Lustre mount.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.darshan.counters import (
    MODULE_COUNTERS,
    MODULE_F_COUNTERS,
    N_ACCESS_SLOTS,
    N_STRIDE_SLOTS,
    SIZE_BIN_SUFFIXES,
    size_bin_index,
)
from repro.darshan.log import DarshanLog, JobHeader
from repro.darshan.records import DarshanRecord
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind
from repro.sim.runtime import JobSpec

__all__ = ["DarshanInstrument"]


@dataclass(slots=True)
class _RecordState:
    """Mutable accumulation state for one (module, path) pair."""

    module: str
    path: str
    mount_point: str
    fs_type: str
    counters: Counter = field(default_factory=Counter)
    fcounters: dict[str, float] = field(default_factory=dict)
    ranks: set[int] = field(default_factory=set)
    rank_bytes: Counter = field(default_factory=Counter)
    rank_time: Counter = field(default_factory=Counter)
    # per-rank last end-offset and last op kind for SEQ/CONSEC/RW_SWITCH
    last_end: dict[int, int] = field(default_factory=dict)
    last_offset: dict[int, int] = field(default_factory=dict)
    last_kind: dict[int, OpKind] = field(default_factory=dict)
    access_sizes: Counter = field(default_factory=Counter)
    strides: Counter = field(default_factory=Counter)

    def stamp(self, name: str, value: float, how: str) -> None:
        """Update a timestamp fcounter (first-start / last-end semantics)."""
        cur = self.fcounters.get(name)
        if cur is None:
            self.fcounters[name] = value
        elif how == "min":
            self.fcounters[name] = min(cur, value)
        else:
            self.fcounters[name] = max(cur, value)

    def add_time(self, name: str, dt: float) -> None:
        self.fcounters[name] = self.fcounters.get(name, 0.0) + dt


class DarshanInstrument:
    """Observe executed ops and build a :class:`DarshanLog` at finalize."""

    def __init__(self, spec: JobSpec, fs: LustreFileSystem) -> None:
        self._spec = spec
        self._fs = fs
        self._states: dict[tuple[str, str], _RecordState] = {}
        self._end_clock = 0.0

    # -- OpObserver ------------------------------------------------------

    def on_op(self, op: IOOp, t_start: float, t_end: float, fs: LustreFileSystem | None) -> None:
        """Accumulate one executed operation into its module record."""
        module = op.api.value
        state = self._state_for(module, op.path, fs)
        state.ranks.add(op.rank)
        self._end_clock = max(self._end_clock, t_end)
        dt = t_end - t_start
        prefix = module

        if op.kind is OpKind.OPEN:
            if op.api is API.MPIIO:
                state.counters["MPIIO_COLL_OPENS" if op.collective else "MPIIO_INDEP_OPENS"] += 1
            else:
                state.counters[f"{prefix}_OPENS"] += 1
            state.stamp(f"{prefix}_F_OPEN_START_TIMESTAMP", t_start, "min")
            state.stamp(f"{prefix}_F_OPEN_END_TIMESTAMP", t_end, "max")
            state.add_time(f"{prefix}_F_META_TIME", dt)
            state.rank_time[op.rank] += dt
        elif op.kind in (OpKind.READ, OpKind.WRITE):
            self._on_data_op(state, op, t_start, t_end, fs)
        elif op.kind is OpKind.SEEK:
            if op.api is not API.MPIIO:  # MPI-IO has no user-visible seek
                state.counters[f"{prefix}_SEEKS"] += 1
            state.last_end[op.rank] = op.offset
            state.last_offset[op.rank] = op.offset
            state.add_time(f"{prefix}_F_META_TIME", dt)
            state.rank_time[op.rank] += dt
        elif op.kind is OpKind.STAT:
            if op.api is API.POSIX:
                state.counters["POSIX_STATS"] += 1
            state.add_time(f"{prefix}_F_META_TIME", dt)
            state.rank_time[op.rank] += dt
        elif op.kind is OpKind.SYNC:
            if op.api is API.POSIX:
                state.counters["POSIX_FSYNCS"] += 1
            elif op.api is API.MPIIO:
                state.counters["MPIIO_SYNCS"] += 1
            else:
                state.counters["STDIO_FLUSHES"] += 1
            state.add_time(f"{prefix}_F_META_TIME", dt)
            state.rank_time[op.rank] += dt
        elif op.kind is OpKind.CLOSE:
            state.stamp(f"{prefix}_F_CLOSE_END_TIMESTAMP", t_end, "max")
            state.add_time(f"{prefix}_F_META_TIME", dt)
            state.rank_time[op.rank] += dt

    # -- data-op bookkeeping ----------------------------------------------

    def _on_data_op(
        self,
        state: _RecordState,
        op: IOOp,
        t_start: float,
        t_end: float,
        fs: LustreFileSystem | None,
    ) -> None:
        prefix = state.module
        reading = op.kind is OpKind.READ
        direction = "READ" if reading else "WRITE"
        dt = t_end - t_start

        # Operation counts.
        if op.api is API.MPIIO:
            stem = "COLL" if op.collective else ("NB" if op.nonblocking else "INDEP")
            state.counters[f"MPIIO_{stem}_{direction}S"] += 1
        else:
            state.counters[f"{prefix}_{direction}S"] += 1

        # Volume / extent counters.
        state.counters[f"{prefix}_BYTES_{'READ' if reading else 'WRITTEN'}"] += op.size
        max_byte = f"{prefix}_MAX_BYTE_{'READ' if reading else 'WRITTEN'}"
        if op.size > 0 and prefix != "MPIIO":
            state.counters[max_byte] = max(state.counters[max_byte], op.end_offset - 1)

        # Size histogram.
        if prefix in ("POSIX", "MPIIO"):
            suffix = SIZE_BIN_SUFFIXES[size_bin_index(op.size)]
            agg = "_AGG" if prefix == "MPIIO" else ""
            state.counters[f"{prefix}_SIZE_{direction}{agg}_{suffix}"] += 1

        # Sequential / consecutive / stride / rw-switch (POSIX only, as in
        # Darshan where these pattern counters live in the POSIX module).
        if prefix == "POSIX":
            last_end = state.last_end.get(op.rank)
            if last_end is not None:
                if op.offset >= last_end:
                    state.counters[f"POSIX_SEQ_{direction}S"] += 1
                if op.offset == last_end:
                    state.counters[f"POSIX_CONSEC_{direction}S"] += 1
            last_off = state.last_offset.get(op.rank)
            if last_off is not None and op.offset != last_off:
                state.strides[abs(op.offset - last_off)] += 1
            state.last_end[op.rank] = op.end_offset
            state.last_offset[op.rank] = op.offset
            state.access_sizes[op.size] += 1

            # Alignment checks.
            if not op.mem_aligned:
                state.counters["POSIX_MEM_NOT_ALIGNED"] += 1
            if fs is not None:
                state.counters["POSIX_FILE_ALIGNMENT"] = fs.block_size
                if op.offset % fs.block_size != 0:
                    state.counters["POSIX_FILE_NOT_ALIGNED"] += 1
            state.counters["POSIX_MEM_ALIGNMENT"] = (
                fs.memory_alignment if fs is not None else 8
            )

        # Read/write switches.
        last_kind = state.last_kind.get(op.rank)
        if last_kind is not None and last_kind is not op.kind:
            state.counters[f"{prefix}_RW_SWITCHES"] += 1
        state.last_kind[op.rank] = op.kind

        # Timing.
        time_name = f"{prefix}_F_{direction}_TIME"
        state.add_time(time_name, dt)
        state.stamp(f"{prefix}_F_{direction}_START_TIMESTAMP", t_start, "min")
        state.stamp(f"{prefix}_F_{direction}_END_TIMESTAMP", t_end, "max")
        state.rank_bytes[op.rank] += op.size
        state.rank_time[op.rank] += dt

    # -- record management ----------------------------------------------

    def _state_for(
        self, module: str, path: str, fs: LustreFileSystem | None
    ) -> _RecordState:
        key = (module, path)
        state = self._states.get(key)
        if state is None:
            mount, fs_type = ("/", "unknown")
            if fs is not None:
                mount, fs_type = fs.mount_point, fs.fs_type
            state = _RecordState(
                module=module, path=path, mount_point=mount, fs_type=fs_type
            )
            self._states[key] = state
            # First touch of a Lustre-resident file also creates the
            # LUSTRE module record (real Darshan does this at open time).
            if fs is not None and fs.fs_type == "lustre" and module != "LUSTRE":
                lkey = ("LUSTRE", path)
                if lkey not in self._states:
                    layout = fs.layout_for(path)
                    lstate = _RecordState(
                        module="LUSTRE",
                        path=path,
                        mount_point=fs.mount_point,
                        fs_type=fs.fs_type,
                    )
                    lstate.counters["LUSTRE_OSTS"] = fs.num_osts
                    lstate.counters["LUSTRE_MDTS"] = fs.num_mdts
                    lstate.counters["LUSTRE_STRIPE_OFFSET"] = layout.stripe_offset
                    lstate.counters["LUSTRE_STRIPE_SIZE"] = layout.stripe_size
                    lstate.counters["LUSTRE_STRIPE_WIDTH"] = layout.stripe_width
                    for i, ost in enumerate(layout.ost_ids):
                        lstate.counters[f"LUSTRE_OST_ID_{i}"] = ost
                    self._states[lkey] = lstate
        return state

    # -- finalize ----------------------------------------------------------

    def finalize(self, run_time: float | None = None) -> DarshanLog:
        """Reduce accumulated state into a :class:`DarshanLog`.

        Files touched by more than one rank collapse into a shared record
        (rank -1) with fastest/slowest/variance counters filled in, exactly
        like Darshan's shared-file reduction at MPI_Finalize.
        """
        spec = self._spec
        run_time = float(run_time if run_time is not None else self._end_clock)
        header = JobHeader(
            exe=spec.exe,
            uid=spec.uid,
            jobid=spec.jobid,
            nprocs=spec.nprocs,
            start_time=spec.start_time,
            end_time=spec.start_time + int(round(run_time)),
            run_time=run_time,
            mounts=[(self._fs.mount_point, self._fs.fs_type)],
        )
        records: list[DarshanRecord] = []
        for (module, path), state in self._states.items():
            rank = next(iter(state.ranks)) if len(state.ranks) == 1 else -1
            if module == "LUSTRE":
                # LUSTRE records carry layout only; attribute to rank 0 or
                # shared depending on the data modules that touched it.
                data_ranks: set[int] = set()
                for m in ("POSIX", "MPIIO", "STDIO"):
                    st = self._states.get((m, path))
                    if st is not None:
                        data_ranks |= st.ranks
                rank = next(iter(data_ranks)) if len(data_ranks) == 1 else -1
            counters = dict(state.counters)
            fcounters = dict(state.fcounters)
            if module in ("POSIX", "MPIIO") and state.rank_bytes:
                self._fill_shared_reduction(module, state, counters, fcounters)
            if module == "POSIX":
                self._fill_common_slots(state, counters)
            record = DarshanRecord(
                module=module,
                path=path,
                rank=rank,
                counters=self._canonicalize(module, counters),
                fcounters=self._canonicalize_f(module, fcounters),
                mount_point=state.mount_point,
                fs_type=state.fs_type,
            )
            records.append(record)
        records.sort(key=lambda r: (_module_sort_key(r.module), r.path))
        return DarshanLog(header=header, records=records)

    @staticmethod
    def _fill_shared_reduction(
        module: str,
        state: _RecordState,
        counters: dict[str, int],
        fcounters: dict[str, float],
    ) -> None:
        ranks = sorted(state.rank_bytes)
        byte_arr = np.array([state.rank_bytes[r] for r in ranks], dtype=np.float64)
        time_arr = np.array([state.rank_time.get(r, 0.0) for r in ranks], dtype=np.float64)
        fastest = int(np.argmin(time_arr))
        slowest = int(np.argmax(time_arr))
        counters[f"{module}_FASTEST_RANK"] = ranks[fastest]
        counters[f"{module}_FASTEST_RANK_BYTES"] = int(byte_arr[fastest])
        counters[f"{module}_SLOWEST_RANK"] = ranks[slowest]
        counters[f"{module}_SLOWEST_RANK_BYTES"] = int(byte_arr[slowest])
        fcounters[f"{module}_F_FASTEST_RANK_TIME"] = float(time_arr[fastest])
        fcounters[f"{module}_F_SLOWEST_RANK_TIME"] = float(time_arr[slowest])
        fcounters[f"{module}_F_VARIANCE_RANK_TIME"] = float(time_arr.var())
        fcounters[f"{module}_F_VARIANCE_RANK_BYTES"] = float(byte_arr.var())

    @staticmethod
    def _fill_common_slots(state: _RecordState, counters: dict[str, int]) -> None:
        for i, (size, count) in enumerate(state.access_sizes.most_common(N_ACCESS_SLOTS)):
            counters[f"POSIX_ACCESS{i + 1}_ACCESS"] = size
            counters[f"POSIX_ACCESS{i + 1}_COUNT"] = count
        for i, (stride, count) in enumerate(state.strides.most_common(N_STRIDE_SLOTS)):
            counters[f"POSIX_STRIDE{i + 1}_STRIDE"] = stride
            counters[f"POSIX_STRIDE{i + 1}_COUNT"] = count

    @staticmethod
    def _canonicalize(module: str, counters: dict[str, int]) -> dict[str, int]:
        """Emit every declared counter (zero-filled), preserving order."""
        out = {name: int(counters.get(name, 0)) for name in MODULE_COUNTERS[module]}
        if module == "LUSTRE":
            width = counters.get("LUSTRE_STRIPE_WIDTH", 0)
            for i in range(width):
                name = f"LUSTRE_OST_ID_{i}"
                out[name] = int(counters.get(name, 0))
        return out

    @staticmethod
    def _canonicalize_f(module: str, fcounters: dict[str, float]) -> dict[str, float]:
        return {name: float(fcounters.get(name, 0.0)) for name in MODULE_F_COUNTERS[module]}


def _module_sort_key(module: str) -> int:
    from repro.darshan.log import MODULE_ORDER

    return MODULE_ORDER.index(module) if module in MODULE_ORDER else len(MODULE_ORDER)
