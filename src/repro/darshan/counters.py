"""Darshan counter declarations.

Counter names, ordering, and size-bin edges follow Darshan 3.4's
``darshan-parser`` output for the POSIX, MPIIO, STDIO, and LUSTRE modules
(the four modules the paper's pre-processor handles, Table I).  Only
counters that carry diagnostic signal for the paper's issue taxonomy are
included; the subset is documented here so the writer, parser, summaries,
and Drishti triggers all agree on one vocabulary.
"""

from __future__ import annotations

import bisect

__all__ = [
    "SIZE_BIN_EDGES",
    "SIZE_BIN_SUFFIXES",
    "SIZE_BIN_LABELS",
    "SMALL_SIZE_SUFFIXES",
    "size_bin_index",
    "size_counters",
    "POSIX_COUNTERS",
    "POSIX_F_COUNTERS",
    "MPIIO_COUNTERS",
    "MPIIO_F_COUNTERS",
    "STDIO_COUNTERS",
    "STDIO_F_COUNTERS",
    "LUSTRE_COUNTERS",
    "MODULE_COUNTERS",
    "MODULE_F_COUNTERS",
    "N_STRIDE_SLOTS",
    "N_ACCESS_SLOTS",
]

# Darshan's request-size histogram bins (upper-edge exclusive, bytes).
SIZE_BIN_EDGES: tuple[int, ...] = (
    100,
    1_024,
    10_240,
    102_400,
    1_048_576,
    4_194_304,
    10_485_760,
    104_857_600,
    1_073_741_824,
)
SIZE_BIN_SUFFIXES: tuple[str, ...] = (
    "0_100",
    "100_1K",
    "1K_10K",
    "10K_100K",
    "100K_1M",
    "1M_4M",
    "4M_10M",
    "10M_100M",
    "100M_1G",
    "1G_PLUS",
)
# Human-readable bin labels used by NL summaries ("0-100 bytes", ...).
SIZE_BIN_LABELS: tuple[str, ...] = (
    "0-100 bytes",
    "100 bytes-1 KiB",
    "1-10 KiB",
    "10-100 KiB",
    "100 KiB-1 MiB",
    "1-4 MiB",
    "4-10 MiB",
    "10-100 MiB",
    "100 MiB-1 GiB",
    "1 GiB+",
)

# Bins strictly below 1 MiB — Drishti's "small request" population.  One
# definition shared by the triggers and the tests so the tools and their
# counter-signature checks cannot drift apart.
SMALL_SIZE_SUFFIXES: tuple[str, ...] = SIZE_BIN_SUFFIXES[:5]

# Number of "common stride" / "common access size" slots Darshan keeps.
N_STRIDE_SLOTS = 4
N_ACCESS_SLOTS = 4


def size_bin_index(size: int) -> int:
    """Index of the Darshan size bin containing ``size`` bytes.

    >>> SIZE_BIN_SUFFIXES[size_bin_index(47008)]
    '10K_100K'
    >>> SIZE_BIN_SUFFIXES[size_bin_index(0)]
    '0_100'
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    return bisect.bisect_right(SIZE_BIN_EDGES, size)


def size_counters(prefix: str, direction: str, agg: bool = False) -> list[str]:
    """Counter names of a size histogram, e.g. ``POSIX_SIZE_READ_0_100``."""
    infix = f"SIZE_{direction}_AGG" if agg else f"SIZE_{direction}"
    return [f"{prefix}_{infix}_{suffix}" for suffix in SIZE_BIN_SUFFIXES]


def _slot_counters(prefix: str, stem: str, field: str, n: int) -> list[str]:
    return [f"{prefix}_{stem}{i}_{field}" for i in range(1, n + 1)]


# --------------------------------------------------------------------------
# POSIX module
# --------------------------------------------------------------------------

POSIX_COUNTERS: tuple[str, ...] = tuple(
    [
        "POSIX_OPENS",
        "POSIX_READS",
        "POSIX_WRITES",
        "POSIX_SEEKS",
        "POSIX_STATS",
        "POSIX_FSYNCS",
        "POSIX_RW_SWITCHES",
        "POSIX_SEQ_READS",
        "POSIX_SEQ_WRITES",
        "POSIX_CONSEC_READS",
        "POSIX_CONSEC_WRITES",
        "POSIX_BYTES_READ",
        "POSIX_BYTES_WRITTEN",
        "POSIX_MAX_BYTE_READ",
        "POSIX_MAX_BYTE_WRITTEN",
        "POSIX_MEM_ALIGNMENT",
        "POSIX_MEM_NOT_ALIGNED",
        "POSIX_FILE_ALIGNMENT",
        "POSIX_FILE_NOT_ALIGNED",
    ]
    + size_counters("POSIX", "READ")
    + size_counters("POSIX", "WRITE")
    + _slot_counters("POSIX", "STRIDE", "STRIDE", N_STRIDE_SLOTS)
    + _slot_counters("POSIX", "STRIDE", "COUNT", N_STRIDE_SLOTS)
    + _slot_counters("POSIX", "ACCESS", "ACCESS", N_ACCESS_SLOTS)
    + _slot_counters("POSIX", "ACCESS", "COUNT", N_ACCESS_SLOTS)
    + [
        "POSIX_FASTEST_RANK",
        "POSIX_FASTEST_RANK_BYTES",
        "POSIX_SLOWEST_RANK",
        "POSIX_SLOWEST_RANK_BYTES",
    ]
)

POSIX_F_COUNTERS: tuple[str, ...] = (
    "POSIX_F_OPEN_START_TIMESTAMP",
    "POSIX_F_READ_START_TIMESTAMP",
    "POSIX_F_WRITE_START_TIMESTAMP",
    "POSIX_F_OPEN_END_TIMESTAMP",
    "POSIX_F_READ_END_TIMESTAMP",
    "POSIX_F_WRITE_END_TIMESTAMP",
    "POSIX_F_CLOSE_END_TIMESTAMP",
    "POSIX_F_READ_TIME",
    "POSIX_F_WRITE_TIME",
    "POSIX_F_META_TIME",
    "POSIX_F_FASTEST_RANK_TIME",
    "POSIX_F_SLOWEST_RANK_TIME",
    "POSIX_F_VARIANCE_RANK_TIME",
    "POSIX_F_VARIANCE_RANK_BYTES",
)

# --------------------------------------------------------------------------
# MPI-IO module
# --------------------------------------------------------------------------

MPIIO_COUNTERS: tuple[str, ...] = tuple(
    [
        "MPIIO_INDEP_OPENS",
        "MPIIO_COLL_OPENS",
        "MPIIO_INDEP_READS",
        "MPIIO_INDEP_WRITES",
        "MPIIO_COLL_READS",
        "MPIIO_COLL_WRITES",
        "MPIIO_NB_READS",
        "MPIIO_NB_WRITES",
        "MPIIO_SYNCS",
        "MPIIO_HINTS",
        "MPIIO_VIEWS",
        "MPIIO_RW_SWITCHES",
        "MPIIO_BYTES_READ",
        "MPIIO_BYTES_WRITTEN",
    ]
    + size_counters("MPIIO", "READ", agg=True)
    + size_counters("MPIIO", "WRITE", agg=True)
    + [
        "MPIIO_FASTEST_RANK",
        "MPIIO_FASTEST_RANK_BYTES",
        "MPIIO_SLOWEST_RANK",
        "MPIIO_SLOWEST_RANK_BYTES",
    ]
)

MPIIO_F_COUNTERS: tuple[str, ...] = (
    "MPIIO_F_OPEN_START_TIMESTAMP",
    "MPIIO_F_READ_START_TIMESTAMP",
    "MPIIO_F_WRITE_START_TIMESTAMP",
    "MPIIO_F_OPEN_END_TIMESTAMP",
    "MPIIO_F_READ_END_TIMESTAMP",
    "MPIIO_F_WRITE_END_TIMESTAMP",
    "MPIIO_F_CLOSE_END_TIMESTAMP",
    "MPIIO_F_READ_TIME",
    "MPIIO_F_WRITE_TIME",
    "MPIIO_F_META_TIME",
    "MPIIO_F_FASTEST_RANK_TIME",
    "MPIIO_F_SLOWEST_RANK_TIME",
    "MPIIO_F_VARIANCE_RANK_TIME",
    "MPIIO_F_VARIANCE_RANK_BYTES",
)

# --------------------------------------------------------------------------
# STDIO module
# --------------------------------------------------------------------------

STDIO_COUNTERS: tuple[str, ...] = (
    "STDIO_OPENS",
    "STDIO_READS",
    "STDIO_WRITES",
    "STDIO_SEEKS",
    "STDIO_FLUSHES",
    "STDIO_BYTES_READ",
    "STDIO_BYTES_WRITTEN",
    "STDIO_MAX_BYTE_READ",
    "STDIO_MAX_BYTE_WRITTEN",
)

STDIO_F_COUNTERS: tuple[str, ...] = (
    "STDIO_F_OPEN_START_TIMESTAMP",
    "STDIO_F_READ_START_TIMESTAMP",
    "STDIO_F_WRITE_START_TIMESTAMP",
    "STDIO_F_OPEN_END_TIMESTAMP",
    "STDIO_F_READ_END_TIMESTAMP",
    "STDIO_F_WRITE_END_TIMESTAMP",
    "STDIO_F_CLOSE_END_TIMESTAMP",
    "STDIO_F_READ_TIME",
    "STDIO_F_WRITE_TIME",
    "STDIO_F_META_TIME",
)

# --------------------------------------------------------------------------
# LUSTRE module (fixed counters; LUSTRE_OST_ID_<k> entries are variable
# length and appended per record by the instrumentation/writer).
# --------------------------------------------------------------------------

LUSTRE_COUNTERS: tuple[str, ...] = (
    "LUSTRE_OSTS",
    "LUSTRE_MDTS",
    "LUSTRE_STRIPE_OFFSET",
    "LUSTRE_STRIPE_SIZE",
    "LUSTRE_STRIPE_WIDTH",
)

MODULE_COUNTERS: dict[str, tuple[str, ...]] = {
    "POSIX": POSIX_COUNTERS,
    "MPIIO": MPIIO_COUNTERS,
    "STDIO": STDIO_COUNTERS,
    "LUSTRE": LUSTRE_COUNTERS,
}

MODULE_F_COUNTERS: dict[str, tuple[str, ...]] = {
    "POSIX": POSIX_F_COUNTERS,
    "MPIIO": MPIIO_F_COUNTERS,
    "STDIO": STDIO_F_COUNTERS,
    "LUSTRE": (),
}
