"""Darshan substrate: counters, records, logs, instrumentation, text I/O.

This package reproduces the parts of Darshan 3.x that the paper's pipeline
consumes: the POSIX / MPI-IO / STDIO / LUSTRE module counters (names, size
bins, stride/access tables, variance counters), per-file records with
shared-file reduction, the ``darshan-parser`` text serialization that plain
LLMs are fed, and a parser to read that text back.

The instrumentation layer (:class:`~repro.darshan.instrument.
DarshanInstrument`) observes the simulated runtime exactly as the real
Darshan library interposes on I/O calls, then finalizes into a
:class:`~repro.darshan.log.DarshanLog`.
"""

from repro.darshan.counters import (
    LUSTRE_COUNTERS,
    MPIIO_COUNTERS,
    MPIIO_F_COUNTERS,
    POSIX_COUNTERS,
    POSIX_F_COUNTERS,
    SIZE_BIN_EDGES,
    SIZE_BIN_LABELS,
    SIZE_BIN_SUFFIXES,
    STDIO_COUNTERS,
    STDIO_F_COUNTERS,
    size_bin_index,
)
from repro.darshan.dxt import (
    DxtCollector,
    DxtSegment,
    parse_dxt_text,
    render_dxt_text,
)
from repro.darshan.instrument import DarshanInstrument
from repro.darshan.log import DarshanLog, JobHeader
from repro.darshan.parser import parse_darshan_text
from repro.darshan.records import DarshanRecord
from repro.darshan.segtable import SegmentTable, SegmentTableBuilder
from repro.darshan.writer import render_darshan_text

__all__ = [
    "SIZE_BIN_EDGES",
    "SIZE_BIN_SUFFIXES",
    "SIZE_BIN_LABELS",
    "size_bin_index",
    "POSIX_COUNTERS",
    "POSIX_F_COUNTERS",
    "MPIIO_COUNTERS",
    "MPIIO_F_COUNTERS",
    "STDIO_COUNTERS",
    "STDIO_F_COUNTERS",
    "LUSTRE_COUNTERS",
    "DarshanRecord",
    "JobHeader",
    "DarshanLog",
    "DarshanInstrument",
    "render_darshan_text",
    "parse_darshan_text",
    "DxtSegment",
    "DxtCollector",
    "SegmentTable",
    "SegmentTableBuilder",
    "render_dxt_text",
    "parse_dxt_text",
]
