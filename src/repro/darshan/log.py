"""The in-memory Darshan log: job header plus per-file module records."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["JobHeader", "DarshanLog", "MODULE_ORDER"]

# Section order in darshan-parser output.  MPIIO deliberately sits after
# POSIX: the paper's preliminary study observes that plain LLMs miss the
# MPI-IO information "in the latter half of the Darshan trace" (§III).
MODULE_ORDER: tuple[str, ...] = ("POSIX", "MPIIO", "STDIO", "LUSTRE")


@dataclass(slots=True)
class JobHeader:
    """Job-level metadata from the darshan log header."""

    exe: str
    uid: int
    jobid: int
    nprocs: int
    start_time: int
    end_time: int
    run_time: float
    log_version: str = "3.41"
    mounts: list[tuple[str, str]] = field(default_factory=list)  # (mount point, fs type)

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if self.run_time < 0:
            raise ValueError("run_time must be non-negative")

    @property
    def start_time_ascii(self) -> str:
        """Human-readable start time (UTC, reproducible across machines)."""
        return time.strftime("%a %b %d %H:%M:%S %Y", time.gmtime(self.start_time))


@dataclass(slots=True)
class DarshanLog:
    """A parsed (or synthesized) Darshan log.

    ``dxt_segments`` is the optional temporal evidence channel: per-operation
    DXT segments captured alongside the counters when the trace came from
    the simulated runtime.  It holds a columnar
    :class:`repro.darshan.segtable.SegmentTable` (which is also a lazy
    ``Sequence`` of :class:`~repro.darshan.segtable.DxtSegment` objects, so
    per-segment consumers keep working).  Logs parsed from
    ``darshan-parser`` text carry ``None`` here — exactly like a real
    deployment where DXT was not enabled — unless the text embedded a DXT
    section (``render_darshan_text(..., include_dxt=True)``); every
    consumer treats the channel as best-effort extra evidence, never a
    requirement.
    """

    header: JobHeader
    records: list = field(default_factory=list)  # list[DarshanRecord]
    dxt_segments: object | None = None  # SegmentTable | list[DxtSegment] | None
    # Memoized derivations of dxt_segments (segments are never mutated
    # after collection): the content digest maintained by
    # repro.core.service.trace_digest, and the temporal fact list
    # maintained by repro.darshan.dxt.cached_temporal_facts.
    dxt_digest_cache: str | None = field(default=None, repr=False, compare=False)
    dxt_facts_cache: list | None = field(default=None, repr=False, compare=False)

    @property
    def has_dxt(self) -> bool:
        """Whether the temporal (DXT) evidence channel is available."""
        return bool(self.dxt_segments)

    def modules(self) -> list[str]:
        """Module names present, in canonical section order."""
        present = {r.module for r in self.records}
        return [m for m in MODULE_ORDER if m in present]

    def records_for(self, module: str) -> list:
        """All records of one module, in insertion (file-touch) order."""
        return [r for r in self.records if r.module == module]

    def files(self) -> list[str]:
        """Distinct file paths across all modules, insertion-ordered."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.path, None)
        return list(seen)

    def total(self, counter: str) -> float:
        """Sum of ``counter`` over all records that define it."""
        return float(sum(r.get(counter, 0) for r in self.records))

    def module_bytes(self, module: str) -> tuple[int, int]:
        """(bytes_read, bytes_written) aggregated over one module."""
        prefix = module
        read = int(self.total(f"{prefix}_BYTES_READ"))
        written = int(self.total(f"{prefix}_BYTES_WRITTEN"))
        return read, written
