"""Parse darshan-parser text output back into a :class:`DarshanLog`.

Round-trips the output of :func:`repro.darshan.writer.render_darshan_text`
and tolerates the benign variations real darshan-parser output exhibits
(extra comment lines, blank lines, unknown modules are kept verbatim).
When the text embeds a DXT section (``render_darshan_text(...,
include_dxt=True)``), the segment table is restored onto
``DarshanLog.dxt_segments`` instead of being dropped to ``None``.

Two failure postures:

* **strict** (the default, unchanged) — the first malformed record line
  raises :class:`DarshanParseError`; right for trusted, freshly-rendered
  text where damage means a bug;
* **lenient** (``lenient=True``) — malformed record/DXT lines are
  *skipped and counted* into a :class:`ParseReport` instead of raising,
  so a truncated or partially-garbled trace still yields every record
  that survived.  Missing required header fields raise even in lenient
  mode: with no job header there is no log to speak of.

Use :func:`parse_darshan_text_with_report` when you need the
:class:`ParseReport`; :func:`parse_darshan_text` keeps the original
log-only signature.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.darshan.log import DarshanLog, JobHeader
from repro.darshan.records import DarshanRecord

__all__ = [
    "parse_darshan_text",
    "parse_darshan_text_with_report",
    "DarshanParseError",
    "ParseReport",
    "SkippedLine",
]


class DarshanParseError(ValueError):
    """Raised when the text is not recognizable darshan-parser output."""


@dataclass(frozen=True)
class SkippedLine:
    """One malformed line the lenient parser dropped."""

    lineno: int  # 1-based, in the full input text
    text: str
    reason: str


@dataclass(frozen=True)
class ParseReport:
    """What the parser saw: volume parsed and damage skipped."""

    total_lines: int
    record_lines: int  # counter records successfully parsed
    dxt_lines: int  # DXT segment lines successfully parsed
    skipped: tuple[SkippedLine, ...] = ()

    @property
    def skipped_count(self) -> int:
        return len(self.skipped)

    @property
    def clean(self) -> bool:
        return not self.skipped


_HEADER_RE = re.compile(r"^# ([a-z_ ]+): (.*)$")
_MOUNT_RE = re.compile(r"^# mount entry:\t(\S+)\t(\S+)$")


def _parse_record_line(
    line: str, lineno: int, records: dict[tuple[str, str], DarshanRecord]
) -> None:
    """Fold one tab-separated counter line into ``records`` (or raise)."""
    parts = line.split("\t")
    if len(parts) != 8:
        raise DarshanParseError(
            f"line {lineno}: expected 8 tab-separated fields, got {len(parts)}"
        )
    module, rank_s, _rid, counter, value_s, path, mount, fs_type = parts
    if "." in value_s or "e" in value_s or "E" in value_s:
        value: int | float = float(value_s)
    else:
        value = int(value_s)
    rank = int(rank_s)
    key = (module, path)
    rec = records.get(key)
    if rec is None:
        rec = DarshanRecord(
            module=module,
            path=path,
            rank=rank,
            mount_point=mount,
            fs_type=fs_type,
        )
        records[key] = rec
    if isinstance(value, float):
        rec.fcounters[counter] = value
    else:
        rec.counters[counter] = value


def parse_darshan_text_with_report(
    text: str, *, lenient: bool = False
) -> tuple[DarshanLog, ParseReport]:
    """Parse darshan-parser text; returns the log plus a :class:`ParseReport`."""
    header_fields: dict[str, str] = {}
    mounts: list[tuple[str, str]] = []
    records: dict[tuple[str, str], DarshanRecord] = {}
    dxt_text: str | None = None
    dxt_start = 0
    record_lines = 0
    skipped: list[SkippedLine] = []

    lines = text.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if line.startswith("# DXT trace"):
            # Everything from the marker on is the embedded DXT section.
            dxt_text = "\n".join(lines[lineno - 1 :])
            dxt_start = lineno - 1
            break
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _MOUNT_RE.match(line)
            if m:
                mounts.append((m.group(1), m.group(2)))
                continue
            m = _HEADER_RE.match(line)
            if m:
                header_fields[m.group(1).strip()] = m.group(2).strip()
            continue
        try:
            _parse_record_line(line, lineno, records)
        except (DarshanParseError, ValueError) as exc:
            if not lenient:
                if isinstance(exc, DarshanParseError):
                    raise
                raise DarshanParseError(f"line {lineno}: {exc}") from exc
            skipped.append(SkippedLine(lineno=lineno, text=line, reason=str(exc)))
            continue
        record_lines += 1

    required = ("exe", "uid", "jobid", "start_time", "end_time", "nprocs", "run time")
    missing = [k for k in required if k not in header_fields]
    if missing:
        # Even lenient parsing needs a job header to anchor the log.
        raise DarshanParseError(f"missing header fields: {missing}")

    dxt_segments = None
    dxt_lines = 0
    if dxt_text is not None:
        from repro.darshan.dxt import parse_dxt_text

        dxt_skipped: list[tuple[int, str, str]] = []
        try:
            table = parse_dxt_text(
                dxt_text, lenient=lenient, skipped=dxt_skipped if lenient else None
            )
        except DarshanParseError:
            raise
        except ValueError as exc:
            raise DarshanParseError(str(exc)) from exc
        for sub_lineno, sub_text, reason in dxt_skipped:
            skipped.append(
                SkippedLine(lineno=dxt_start + sub_lineno, text=sub_text, reason=reason)
            )
        dxt_lines = len(table)
        dxt_segments = table if len(table) else None

    header = JobHeader(
        exe=header_fields["exe"],
        uid=int(header_fields["uid"]),
        jobid=int(header_fields["jobid"]),
        nprocs=int(header_fields["nprocs"]),
        start_time=int(header_fields["start_time"]),
        end_time=int(header_fields["end_time"]),
        run_time=float(header_fields["run time"]),
        log_version=header_fields.get("darshan log version", "3.41"),
        mounts=mounts,
    )
    log = DarshanLog(
        header=header, records=list(records.values()), dxt_segments=dxt_segments
    )
    report = ParseReport(
        total_lines=len(lines),
        record_lines=record_lines,
        dxt_lines=dxt_lines,
        skipped=tuple(skipped),
    )
    return log, report


def parse_darshan_text(text: str, *, lenient: bool = False) -> DarshanLog:
    """Parse darshan-parser text into a structured log.

    ``lenient=True`` skips-and-counts malformed lines instead of raising;
    use :func:`parse_darshan_text_with_report` to see what was skipped.
    """
    log, _report = parse_darshan_text_with_report(text, lenient=lenient)
    return log
