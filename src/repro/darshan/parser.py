"""Parse darshan-parser text output back into a :class:`DarshanLog`.

Round-trips the output of :func:`repro.darshan.writer.render_darshan_text`
and tolerates the benign variations real darshan-parser output exhibits
(extra comment lines, blank lines, unknown modules are kept verbatim).
When the text embeds a DXT section (``render_darshan_text(...,
include_dxt=True)``), the segment table is restored onto
``DarshanLog.dxt_segments`` instead of being dropped to ``None``.
"""

from __future__ import annotations

import re

from repro.darshan.log import DarshanLog, JobHeader
from repro.darshan.records import DarshanRecord

__all__ = ["parse_darshan_text", "DarshanParseError"]


class DarshanParseError(ValueError):
    """Raised when the text is not recognizable darshan-parser output."""


_HEADER_RE = re.compile(r"^# ([a-z_ ]+): (.*)$")
_MOUNT_RE = re.compile(r"^# mount entry:\t(\S+)\t(\S+)$")


def parse_darshan_text(text: str) -> DarshanLog:
    """Parse darshan-parser text into a structured log."""
    header_fields: dict[str, str] = {}
    mounts: list[tuple[str, str]] = []
    records: dict[tuple[str, str], DarshanRecord] = {}
    dxt_text: str | None = None

    lines = text.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if line.startswith("# DXT trace"):
            # Everything from the marker on is the embedded DXT section.
            dxt_text = "\n".join(lines[lineno - 1 :])
            break
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _MOUNT_RE.match(line)
            if m:
                mounts.append((m.group(1), m.group(2)))
                continue
            m = _HEADER_RE.match(line)
            if m:
                header_fields[m.group(1).strip()] = m.group(2).strip()
            continue
        parts = line.split("\t")
        if len(parts) != 8:
            raise DarshanParseError(
                f"line {lineno}: expected 8 tab-separated fields, got {len(parts)}"
            )
        module, rank_s, _rid, counter, value_s, path, mount, fs_type = parts
        key = (module, path)
        rec = records.get(key)
        if rec is None:
            rec = DarshanRecord(
                module=module,
                path=path,
                rank=int(rank_s),
                mount_point=mount,
                fs_type=fs_type,
            )
            records[key] = rec
        if "." in value_s or "e" in value_s or "E" in value_s:
            rec.fcounters[counter] = float(value_s)
        else:
            rec.counters[counter] = int(value_s)

    required = ("exe", "uid", "jobid", "start_time", "end_time", "nprocs", "run time")
    missing = [k for k in required if k not in header_fields]
    if missing:
        raise DarshanParseError(f"missing header fields: {missing}")

    dxt_segments = None
    if dxt_text is not None:
        from repro.darshan.dxt import parse_dxt_text

        table = parse_dxt_text(dxt_text)
        dxt_segments = table if len(table) else None

    header = JobHeader(
        exe=header_fields["exe"],
        uid=int(header_fields["uid"]),
        jobid=int(header_fields["jobid"]),
        nprocs=int(header_fields["nprocs"]),
        start_time=int(header_fields["start_time"]),
        end_time=int(header_fields["end_time"]),
        run_time=float(header_fields["run time"]),
        log_version=header_fields.get("darshan log version", "3.41"),
        mounts=mounts,
    )
    return DarshanLog(
        header=header, records=list(records.values()), dxt_segments=dxt_segments
    )
